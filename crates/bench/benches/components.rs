//! Criterion microbenchmarks of the simulator's hot components: cache
//! array accesses, directory CAM lookups, branch prediction, prefetcher
//! observation and the functional backing store.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hsim_coherence::{DirConfig, Directory};
use hsim_core::BranchPredictor;
use hsim_mem::{
    AccessKind, Cache, CacheConfig, PagedMem, PrefetchConfig, StreamPrefetcher, WritePolicy,
};

fn bench_cache(c: &mut Criterion) {
    let mut cache = Cache::new(CacheConfig {
        name: "L1D",
        size_bytes: 32 * 1024,
        ways: 8,
        line_bytes: 64,
        latency: 2,
        write_policy: WritePolicy::WriteThrough,
    });
    for i in 0..512u64 {
        cache.fill(i * 64, false, false);
    }
    let mut i = 0u64;
    c.bench_function("cache_access_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(cache.access(black_box(i * 64), AccessKind::Read))
        })
    });
}

fn bench_directory(c: &mut Criterion) {
    let mut dir = Directory::new(DirConfig::default());
    dir.configure(1024).unwrap();
    for k in 0..32u64 {
        dir.update_get(
            hsim_isa::memmap::LM_BASE + k * 1024,
            0x1000_0000 + k * 1024,
            0,
        )
        .unwrap();
    }
    let mut a = 0u64;
    c.bench_function("directory_cam_lookup", |b| {
        b.iter(|| {
            a = (a + 8) % (32 * 1024);
            black_box(dir.lookup(black_box(0x1000_0000 + a)))
        })
    });
}

fn bench_predictor(c: &mut Criterion) {
    let mut bp = BranchPredictor::new(4096, 4096, 4096, 12);
    let mut pc = 0u64;
    c.bench_function("branch_predict_update", |b| {
        b.iter(|| {
            pc = (pc + 8) & 0xffff;
            let t = bp.predict(black_box(pc));
            bp.update(pc, t);
            black_box(t)
        })
    });
}

fn bench_prefetcher(c: &mut Criterion) {
    let mut pf = StreamPrefetcher::new(PrefetchConfig::default());
    let mut addr = 0u64;
    c.bench_function("prefetcher_observe", |b| {
        b.iter(|| {
            addr += 8;
            black_box(pf.observe(black_box(0x40), addr, 64))
        })
    });
}

fn bench_backing(c: &mut Criterion) {
    let mut mem = PagedMem::new();
    let mut a = 0u64;
    c.bench_function("backing_rw64", |b| {
        b.iter(|| {
            a = (a + 8) & 0xf_ffff;
            mem.write_u64(a, a);
            black_box(mem.read_u64(a))
        })
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_directory,
    bench_predictor,
    bench_prefetcher,
    bench_backing
);
criterion_main!(benches);
