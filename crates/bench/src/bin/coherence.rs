//! Coherence comparison: `Replicate` vs the directory protocol family
//! (`Msi`/`Mesi`/`Moesi`/`Mesif`) on the same sharded kernels, per
//! kernel × core count.
//!
//! `Replicate` keeps per-core private replicas of every cacheable line
//! (the historical backside); the directory modes serve the sharder's
//! replicated-whole tables from shared, directory-tracked lines at the
//! L3 banks. The headline is DRAM read traffic: under a directory
//! protocol, a shared table is fetched once per chip instead of once
//! per core — and the family members then differ in how dirty lines are
//! recalled (MSI re-reads memory, MOESI shares the dirty copy, MESIF
//! pins a designated forwarder). Results are printed as two tables
//! (the historic Replicate-vs-Mesi pairing, then the protocol axis)
//! and written to `BENCH_coherence.json`.
//!
//! ```text
//! cargo run --release -p hsim-bench --bin coherence [--test-scale|--smoke]
//! ```
//!
//! `--smoke` runs a minimal grid (test scale, two kernels, 1/2/4
//! cores): the CI guard. The grid always includes CG at 4 cores, whose
//! gathered `x` table is the acceptance case for directory sharing.

use hsim::prelude::*;
use hsim_bench::{jstr, kernels, scale_from_args, SweepJson, Table};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke {
        Scale::Test
    } else {
        scale_from_args()
    };
    let mut kernels = kernels(scale);
    let core_counts: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    if smoke {
        // CG (the gathered-table acceptance case) plus one double-store
        // kernel.
        kernels.retain(|k| k.name == "CG" || k.name == "IS");
    }

    let rows = coherence_sweep(
        &kernels,
        core_counts,
        SysMode::HybridCoherent,
        Parallelism::HostThreads,
    )
    .expect("coherence sweep failed");

    println!("COHERENCE: Replicate vs Mesi on the shared backside ({scale:?} scale)");
    println!("(hybrid-coherent machine; dramR = total DRAM line reads)");
    println!();
    let t = Table::new(&[6, 5, 10, 10, 9, 9, 9, 8, 8, 8, 8]);
    t.row(
        &[
            "kernel",
            "cores",
            "mk.rep",
            "mk.mesi",
            "dramR.rep",
            "dramR.mesi",
            "shrhits",
            "invals",
            "intervs",
            "replfall",
            "clufall",
        ]
        .map(String::from),
    );
    t.sep();
    for r in &rows {
        t.row(&[
            r.kernel.clone(),
            format!("{}", r.cores),
            format!("{}", r.makespan_replicate),
            format!("{}", r.makespan_mesi),
            format!("{}", r.dram_reads_replicate),
            format!("{}", r.dram_reads_mesi),
            format!("{}", r.shared_hits),
            format!("{}", r.invalidations),
            format!("{}", r.interventions),
            format!("{}", r.replication_fallbacks),
            format!("{}", r.cluster_fallbacks),
        ]);
    }
    println!();
    let fallbacks: u64 = rows.iter().map(|r| r.replication_fallbacks).sum();
    if fallbacks > 0 {
        println!(
            "note: {fallbacks} shared-marked array(s) fell back to per-core \
             replication (diverged shard layouts) and were not served from \
             shared lines under Mesi."
        );
        println!();
    }
    let cluster_fallbacks: u64 = rows.iter().map(|r| r.cluster_fallbacks).sum();
    if cluster_fallbacks > 0 {
        println!(
            "note: clufall counts shared-marked array(s) that a 2-cluster \
             split of the same kernel would replicate per cluster (directory \
             slices do not span clusters in v1) — cross-cluster sharing is \
             counted, never silently free."
        );
        println!();
    }

    // The acceptance shape: sharded CG at 4 cores must read less DRAM
    // under Mesi than under Replicate (the gathered x table is fetched
    // once per chip, not once per core).
    if let Some(cg4) = rows.iter().find(|r| r.kernel == "CG" && r.cores == 4) {
        println!(
            "CG x4 DRAM reads: {} (Replicate) vs {} (Mesi), {} shared hits",
            cg4.dram_reads_replicate, cg4.dram_reads_mesi, cg4.shared_hits
        );
        assert!(
            cg4.dram_reads_mesi < cg4.dram_reads_replicate,
            "CG x4 must read less DRAM under Mesi ({} vs {})",
            cg4.dram_reads_mesi,
            cg4.dram_reads_replicate
        );
        assert!(cg4.shared_hits > 0, "CG x4 must score shared hits");
    }
    // Single-core points must be mode-invariant (nothing is shared).
    for r in rows.iter().filter(|r| r.cores == 1) {
        assert_eq!(
            r.makespan_replicate, r.makespan_mesi,
            "{}: a lone core has nothing to share",
            r.kernel
        );
    }

    // The protocol axis: the same grid, every family member side by
    // side. Smoke keeps the grid small enough for CI.
    let proto_rows = protocol_sweep(
        &kernels,
        core_counts,
        SysMode::HybridCoherent,
        Parallelism::HostThreads,
    )
    .expect("protocol sweep failed");

    println!();
    println!("PROTOCOL FAMILY: protocol x kernel x cores ({scale:?} scale)");
    println!();
    let pt = Table::new(&[6, 5, 9, 10, 9, 9, 8, 8]);
    pt.row(
        &[
            "kernel", "cores", "proto", "makespan", "dramR", "shrhits", "invals", "intervs",
        ]
        .map(String::from),
    );
    pt.sep();
    for r in &proto_rows {
        pt.row(&[
            r.kernel.clone(),
            format!("{}", r.cores),
            r.protocol.clone(),
            format!("{}", r.makespan),
            format!("{}", r.dram_reads),
            format!("{}", r.shared_hits),
            format!("{}", r.invalidations),
            format!("{}", r.interventions),
        ]);
    }
    println!();

    // Family-ordering sanity on every multi-core point: MSI re-reads
    // memory on dirty recalls that MESI serves silently, and MOESI's
    // dirty sharing can only drop further reads — never add them.
    for r in &proto_rows {
        let by = |name: &str| {
            proto_rows
                .iter()
                .find(|p| p.kernel == r.kernel && p.cores == r.cores && p.protocol == name)
                .expect("every point runs every protocol")
        };
        if r.protocol == "mesi" && r.cores > 1 {
            assert!(
                by("msi").dram_reads >= r.dram_reads,
                "{} x{}: MSI must not read less DRAM than MESI",
                r.kernel,
                r.cores
            );
            assert!(
                r.dram_reads >= by("moesi").dram_reads,
                "{} x{}: MOESI must not read more DRAM than MESI",
                r.kernel,
                r.cores
            );
            assert!(
                by("mesif").shared_hits >= r.shared_hits,
                "{} x{}: MESIF must not score fewer shared hits than MESI",
                r.kernel,
                r.cores
            );
        }
    }

    let mut json = SweepJson::new(scale).meta("mode", jstr("HybridCoherent"));
    json.begin_rows("rows");
    for r in &rows {
        json.row(&[
            ("kernel", jstr(&r.kernel)),
            ("cores", format!("{}", r.cores)),
            ("makespan_replicate", format!("{}", r.makespan_replicate)),
            ("makespan_mesi", format!("{}", r.makespan_mesi)),
            (
                "dram_reads_replicate",
                format!("{}", r.dram_reads_replicate),
            ),
            ("dram_reads_mesi", format!("{}", r.dram_reads_mesi)),
            ("shared_hits", format!("{}", r.shared_hits)),
            ("invalidations", format!("{}", r.invalidations)),
            ("interventions", format!("{}", r.interventions)),
            ("committed", format!("{}", r.committed)),
            (
                "replication_fallbacks",
                format!("{}", r.replication_fallbacks),
            ),
            ("cluster_fallbacks", format!("{}", r.cluster_fallbacks)),
        ]);
    }
    json.begin_rows("protocol_rows");
    for r in &proto_rows {
        json.row(&[
            ("kernel", jstr(&r.kernel)),
            ("cores", format!("{}", r.cores)),
            ("protocol", jstr(&r.protocol)),
            ("makespan", format!("{}", r.makespan)),
            ("dram_reads", format!("{}", r.dram_reads)),
            ("shared_hits", format!("{}", r.shared_hits)),
            ("invalidations", format!("{}", r.invalidations)),
            ("interventions", format!("{}", r.interventions)),
            ("committed", format!("{}", r.committed)),
        ]);
    }
    json.write("BENCH_coherence.json");
}
