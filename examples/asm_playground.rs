//! Write a program in the textual assembly, run it on the coherent
//! hybrid machine, and disassemble what the compiler would generate for
//! the same loop — a tour of the ISA including the paper's guarded
//! mnemonics (`gld`/`gst`) and the DMA operations.
//!
//! ```text
//! cargo run --release --example asm_playground
//! ```

use hsim::isa::asm::{assemble, disassemble};
use hsim::machine::{Machine, MachineConfig, SysMode};
use hsim::prelude::*;
use hsim_isa::memmap::DATA_BASE;

fn main() {
    // Sum the first 100 integers straight from assembly.
    let src = format!(
        "
        li   r1, 0          ; i
        li   r2, 100        ; n
        li   r3, 0          ; sum
        li   r7, {base}     ; output address
    loop:
        add  r3, r3, r1
        addi r1, r1, 1
        blt  r1, r2, loop
        st.d r3, 0(r7)
        halt
        ",
        base = DATA_BASE
    );
    let program = assemble(&src).expect("assembles");
    println!("hand-written program:\n{}", disassemble(&program));

    let mut m = Machine::new(MachineConfig::for_mode(SysMode::HybridCoherent), program);
    m.run().expect("halts");
    let sum = m.world.backing.read_u64(DATA_BASE);
    println!(
        "sum(0..100) = {sum} in {} cycles, IPC {:.2}",
        m.core.stats.cycles,
        m.core.stats.ipc()
    );
    assert_eq!(sum, 4950);

    // Now the compiler's view of an equivalent kernel, with a guarded
    // reference thrown in.
    let mut kb = KernelBuilder::new("asm_tour");
    let a = kb.array_i64("a", 256);
    let idx = kb.array_i64_init("idx", &(0..256).collect::<Vec<i64>>());
    kb.begin_loop(256);
    let ra = kb.ref_affine(a, 1, 0);
    let ridx = kb.ref_affine(idx, 1, 0);
    let rg = kb.ref_indirect(a, ridx, 0); // must-aliases a: guarded
    kb.stmt(ra, Expr::Ivar);
    kb.stmt(rg, Expr::add(Expr::Ref(rg), Expr::ConstI(1)));
    kb.end_loop();
    let ck = compile(&kb.build().unwrap(), CodegenMode::HybridCoherent);
    let text = disassemble(&ck.program);
    println!("\ncompiler-generated code (first 40 lines):");
    for line in text.lines().take(40) {
        println!("{line}");
    }
    println!(
        "... ({} instructions total, {} guarded)",
        ck.program.len(),
        ck.program.count_route(Route::Guarded)
    );
}
