//! Experiment drivers: one function per paper table/figure.
//!
//! The bench harness binaries (`hsim-bench`) print these results in the
//! paper's format; the integration tests assert the qualitative shapes
//! at small scale. Each driver compiles the workload for the modes it
//! compares, runs the machine(s), and returns structured rows.
//!
//! Two execution back ends exist for every sweep:
//!
//! * the original sequential drivers ([`fig7`], [`fig8`],
//!   [`compare_systems`]), and
//! * `_parallel` variants that fan the independent simulations across
//!   host threads with [`parallel_map`] — same results (each simulation
//!   is deterministic and self-contained), a fraction of the wall-clock
//!   on multi-core hosts.
//!
//! [`run_kernel_multi`] is the multicore entry point: it shards one
//! kernel across `n` simulated cores and runs them lock-step on a shared
//! L3/DRAM backside (one *simulated* machine — unrelated to the host
//! threading above).

use crate::cluster::{
    cross_cluster_fallbacks, run_clusters, ClusterConfig, ClusterError, ClusterRunReport,
};
use crate::machine::{Machine, MachineConfig, MultiMachine, SysMode};
use crate::metrics::{MultiRunReport, RunReport};
use hsim_compiler::{compile, compile_with_lm, interpret, CompiledKernel, Kernel, ShardError};
use hsim_core::pipeline::SimError;
use hsim_workloads::{microbench, MicroMode, MicrobenchConfig};

/// Runs `f` over `items` on a pool of host threads (scoped; no
/// dependencies beyond `std`) and returns the outputs in input order.
///
/// The worker count is `min(available_parallelism, items)`; on a
/// single-CPU host this degenerates to the sequential loop. Ordering and
/// results are independent of the schedule because every job is
/// self-contained.
pub fn parallel_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let jobs: Vec<std::sync::Mutex<Option<I>>> = items
        .into_iter()
        .map(|i| std::sync::Mutex::new(Some(i)))
        .collect();
    let slots: Vec<std::sync::Mutex<Option<O>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i].lock().unwrap().take().expect("job claimed once");
                *slots[i].lock().unwrap() = Some(f(job));
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// Compiles `kernel` for `mode`, runs it, and reports.
pub fn run_kernel(kernel: &Kernel, mode: SysMode, track: bool) -> Result<RunReport, SimError> {
    let mut cfg = MachineConfig::for_mode(mode);
    cfg.track_coherence = track;
    run_kernel_with(kernel, cfg)
}

/// The configurable sibling of [`run_kernel`]: compiles `kernel` for
/// `cfg.mode` and runs it on a machine built from `cfg`. Used by the
/// cycle-skip equivalence tests (`cfg.with_lockstep()`) and the
/// `simspeed` bench.
pub fn run_kernel_with(kernel: &Kernel, cfg: MachineConfig) -> Result<RunReport, SimError> {
    let ck = compile(kernel, cfg.mode.codegen());
    let mut m = Machine::for_kernel(cfg, &ck, kernel);
    m.run()?;
    Ok(RunReport::collect(&m, &ck))
}

/// Runs `kernel` in `mode` and also checks the final memory image
/// against the reference interpreter. Returns the report and the number
/// of mismatching array elements.
pub fn run_kernel_verified(
    kernel: &Kernel,
    mode: SysMode,
    track: bool,
) -> Result<(RunReport, usize), SimError> {
    let ck = compile(kernel, mode.codegen());
    let mut cfg = MachineConfig::for_mode(mode);
    cfg.track_coherence = track;
    let mut m = Machine::for_kernel(cfg, &ck, kernel);
    m.run()?;
    let report = RunReport::collect(&m, &ck);
    let want = interpret(kernel).expect("kernel must interpret");
    let mut mismatches = 0;
    for (id, expect) in want.iter().enumerate() {
        let got = m.read_array(&ck, kernel, id);
        mismatches += got.iter().zip(expect).filter(|(g, w)| g != w).count();
    }
    Ok((report, mismatches))
}

/// Shards `kernel` across `n_cores` simulated cores and runs them as one
/// lock-step machine on a shared L3/DRAM backside (see
/// [`MultiMachine`]). Each core gets its disjoint iteration slice
/// compiled for `mode`; the coherence hardware stays per core.
pub fn run_kernel_multi(
    kernel: &Kernel,
    n_cores: usize,
    mode: SysMode,
    track: bool,
) -> Result<MultiRunReport, MultiRunError> {
    let mut cfg = MachineConfig::for_mode(mode);
    cfg.track_coherence = track;
    run_kernel_multi_with(kernel, n_cores, cfg)
}

/// The configurable sibling of [`run_kernel_multi`]: shards `kernel`
/// across `n_cores` tiles built from `cfg` (compiling for `cfg.mode`).
pub fn run_kernel_multi_with(
    kernel: &Kernel,
    n_cores: usize,
    cfg: MachineConfig,
) -> Result<MultiRunReport, MultiRunError> {
    let shards = kernel.shard(n_cores)?;
    let compiled: Vec<_> = shards
        .iter()
        .map(|s| (compile(s, cfg.mode.codegen()), s.clone()))
        .collect();
    let mut m = MultiMachine::for_kernels(cfg, &compiled);
    m.run()?;
    let cks: Vec<_> = compiled.into_iter().map(|(ck, _)| ck).collect();
    Ok(MultiRunReport::collect(&m, &cks))
}

/// [`run_kernel_with`] with host-time attribution: runs the same
/// simulation under [`Machine::run_profiled`], charging every host
/// second to a scheduler phase (tick / horizon scan / bulk advance) in
/// the returned [`hsim_core::HostProfile`]. The simulated results are
/// bit-identical to the unprofiled run — profiling only adds host-side
/// clocks around phases the scheduler already executes.
pub fn run_kernel_profiled(
    kernel: &Kernel,
    cfg: MachineConfig,
) -> Result<(RunReport, hsim_core::HostProfile), SimError> {
    let ck = compile(kernel, cfg.mode.codegen());
    let mut m = Machine::for_kernel(cfg, &ck, kernel);
    let mut prof = hsim_core::HostProfile::default();
    m.run_profiled(&mut prof)?;
    Ok((RunReport::collect(&m, &ck), prof))
}

/// [`run_kernel_multi_with`] with host-time attribution (see
/// [`run_kernel_profiled`]); phases are accumulated across all tiles of
/// the multicore scheduler.
pub fn run_kernel_multi_profiled(
    kernel: &Kernel,
    n_cores: usize,
    cfg: MachineConfig,
) -> Result<(MultiRunReport, hsim_core::HostProfile), MultiRunError> {
    let shards = kernel.shard(n_cores)?;
    let compiled: Vec<_> = shards
        .iter()
        .map(|s| (compile(s, cfg.mode.codegen()), s.clone()))
        .collect();
    let mut m = MultiMachine::for_kernels(cfg, &compiled);
    let mut prof = hsim_core::HostProfile::default();
    m.run_profiled(&mut prof)?;
    let cks: Vec<_> = compiled.into_iter().map(|(ck, _)| ck).collect();
    Ok((MultiRunReport::collect(&m, &cks), prof))
}

/// Shards `kernel` two-level across a clustered machine
/// ([`hsim_compiler::Kernel::shard_clustered`]) and runs it with the
/// epoch-synchronized cluster driver ([`crate::cluster::run_clusters`]):
/// cluster `c` is a [`MultiMachine`] over its superslice's per-core
/// shards with its **own** L3 + DRAM backside, advanced on its own host
/// thread (or serially under [`ClusterConfig::serial_clusters`], bit-
/// identically). Shards are compiled exactly as
/// [`run_kernel_multi_with`] compiles them, so a 1-cluster run
/// reproduces the flat multicore machine bit for bit. Cross-cluster
/// shared arrays fall back to per-cluster replication, counted in the
/// report's `cross_cluster_fallbacks` — never silently free.
pub fn run_kernel_clustered(
    kernel: &Kernel,
    cluster: &ClusterConfig,
    cfg: MachineConfig,
) -> Result<ClusterRunReport, MultiRunError> {
    let topo = cluster.topology;
    let sliced = kernel.shard_clustered(topo.clusters, topo.cores_per_cluster)?;
    let shards: Vec<Vec<(CompiledKernel, Kernel)>> = sliced
        .into_iter()
        .map(|superslice| {
            superslice
                .into_iter()
                .map(|s| (compile(&s, cfg.mode.codegen()), s))
                .collect()
        })
        .collect();
    let fallbacks = cross_cluster_fallbacks(kernel, topo.clusters);
    Ok(run_clusters(&cfg, cluster, &shards, fallbacks)?)
}

/// The heterogeneous sibling of [`run_kernel_multi_with`]: shards
/// `kernel` across `cfgs.len()` tiles, tile `i` built from `cfgs[i]`
/// with a share of the iterations proportional to `weights[i]`
/// ([`hsim_compiler::Kernel::shard_weighted`]). Each shard is compiled
/// for its own tile's `SysMode` and LM budget
/// ([`hsim_compiler::compile_with_lm`]), so one chip can mix hybrid and
/// cache-based tiles, or hybrid tiles with different scratchpad sizes,
/// with iteration counts matched to tile strength. Uniform configs and
/// weights reproduce [`run_kernel_multi_with`] bit for bit.
pub fn run_kernel_multi_hetero(
    kernel: &Kernel,
    cfgs: &[MachineConfig],
    weights: &[u64],
) -> Result<MultiRunReport, MultiRunError> {
    assert_eq!(cfgs.len(), weights.len(), "one weight per tile");
    let shards = kernel.shard_weighted(weights)?;
    let compiled: Vec<(CompiledKernel, Kernel)> = shards
        .into_iter()
        .zip(cfgs)
        .map(|(s, cfg)| {
            let ck = compile_for_tile(&s, cfg);
            (ck, s)
        })
        .collect();
    let mut m = MultiMachine::for_kernels_hetero(cfgs.to_vec(), &compiled);
    m.run()?;
    let cks: Vec<_> = compiled.into_iter().map(|(ck, _)| ck).collect();
    Ok(MultiRunReport::collect(&m, &cks))
}

/// Compiles one shard for one tile of a heterogeneous machine: for the
/// tile's `SysMode`, against the tile's own LM budget when it has a
/// local memory (`compile_with_lm`), plainly otherwise. The single
/// compile policy shared by [`run_kernel_multi_hetero`], the hetero
/// integration tests and the examples — change it here and every
/// hetero machine follows.
pub fn compile_for_tile(shard: &Kernel, cfg: &MachineConfig) -> CompiledKernel {
    match cfg.mem.lm.as_ref() {
        Some(lm) => compile_with_lm(shard, cfg.mode.codegen(), lm.size_bytes),
        None => compile(shard, cfg.mode.codegen()),
    }
}

/// What can go wrong in a sharded multicore run: the split itself, the
/// simulation of one of the cores, or — for clustered runs — a
/// host-level cluster failure (contained panic, epoch watchdog, or a
/// cluster's own simulation error) with the surviving clusters'
/// partial reports attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiRunError {
    /// The kernel could not be sharded.
    Shard(ShardError),
    /// A core's simulation failed.
    Sim(SimError),
    /// A clustered run degraded: one or more clusters failed (see
    /// [`ClusterError`] for causes and the completed clusters' reports).
    Cluster(ClusterError),
}

impl std::fmt::Display for MultiRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiRunError::Shard(e) => write!(f, "shard: {e}"),
            MultiRunError::Sim(e) => write!(f, "simulation: {e}"),
            MultiRunError::Cluster(e) => write!(f, "clusters: {e}"),
        }
    }
}

impl std::error::Error for MultiRunError {}

impl From<ShardError> for MultiRunError {
    fn from(e: ShardError) -> Self {
        MultiRunError::Shard(e)
    }
}

impl From<SimError> for MultiRunError {
    fn from(e: SimError) -> Self {
        MultiRunError::Sim(e)
    }
}

impl From<ClusterError> for MultiRunError {
    fn from(e: ClusterError) -> Self {
        MultiRunError::Cluster(e)
    }
}

/// One point of Figure 7.
#[derive(Clone, Debug)]
pub struct Fig7Point {
    /// Microbenchmark mode.
    pub mode: MicroMode,
    /// Percentage of guarded references.
    pub pct: u32,
    /// Work-phase execution-time ratio against the Baseline mode.
    ///
    /// The work phase isolates the cost of the guards and double stores,
    /// which is what the paper's microbenchmark measures; the control
    /// phase additionally differs because a buffer that is only written
    /// through guarded stores is mapped read-only and skips its
    /// `dma-put`s (see EXPERIMENTS.md).
    pub overhead: f64,
    /// Instruction-count ratio against the Baseline mode.
    pub inst_ratio: f64,
}

/// The (mode, pct) grid of the Figure 7 sweep.
fn fig7_points(step: u32) -> Vec<(MicroMode, u32)> {
    let mut points = Vec::new();
    for mode in [MicroMode::Rd, MicroMode::Wr, MicroMode::RdWr] {
        let mut pct = 0;
        while pct <= 100 {
            points.push((mode, pct));
            pct += step.max(10);
        }
    }
    points
}

/// Runs one Figure 7 sweep point against the baseline run.
fn fig7_point(n: u64, mode: MicroMode, pct: u32, base: &RunReport) -> Result<Fig7Point, SimError> {
    let k = microbench(&MicrobenchConfig {
        mode,
        guarded_pct: pct,
        n,
    });
    let r = run_kernel(&k, SysMode::HybridCoherent, false)?;
    let base_work = base.phase(hsim_isa::Phase::Work).max(1) as f64;
    Ok(Fig7Point {
        mode,
        pct,
        overhead: r.phase(hsim_isa::Phase::Work) as f64 / base_work,
        inst_ratio: r.committed as f64 / base.committed as f64,
    })
}

/// The Baseline-mode run every Figure 7 point normalizes against.
fn fig7_baseline(n: u64) -> Result<RunReport, SimError> {
    let base_kernel = microbench(&MicrobenchConfig {
        mode: MicroMode::Baseline,
        guarded_pct: 0,
        n,
    });
    run_kernel(&base_kernel, SysMode::HybridCoherent, false)
}

/// Figure 7: microbenchmark overhead as the share of guarded references
/// grows, for the RD / WR / RD+WR modes. `n` is the iteration count;
/// `step` the sweep step in percent (multiple of 10).
pub fn fig7(n: u64, step: u32) -> Result<Vec<Fig7Point>, SimError> {
    let base = fig7_baseline(n)?;
    fig7_points(step)
        .into_iter()
        .map(|(mode, pct)| fig7_point(n, mode, pct, &base))
        .collect()
}

/// [`fig7`] with the sweep points fanned across host threads. The
/// baseline runs first (every point normalizes against it), then every
/// (mode, pct) point is an independent job. Results are identical to the
/// sequential driver.
pub fn fig7_parallel(n: u64, step: u32) -> Result<Vec<Fig7Point>, SimError> {
    let base = fig7_baseline(n)?;
    parallel_map(fig7_points(step), |(mode, pct)| {
        fig7_point(n, mode, pct, &base)
    })
    .into_iter()
    .collect()
}

/// One row of Figure 8: coherence-protocol overhead on a real benchmark.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Benchmark name.
    pub name: String,
    /// Execution-time overhead vs the oracle baseline (ratio, 1.0 = no
    /// overhead).
    pub time_ratio: f64,
    /// Energy overhead vs the oracle baseline.
    pub energy_ratio: f64,
    /// Reports for deeper inspection (coherent, oracle).
    pub coherent: RunReport,
    /// The oracle baseline report.
    pub oracle: RunReport,
}

/// Runs one benchmark on the coherent and oracle machines.
fn fig8_row(k: &Kernel) -> Result<Fig8Row, SimError> {
    let coherent = run_kernel(k, SysMode::HybridCoherent, false)?;
    let oracle = run_kernel(k, SysMode::HybridOracle, false)?;
    Ok(Fig8Row {
        name: k.name.clone(),
        time_ratio: coherent.cycles as f64 / oracle.cycles as f64,
        energy_ratio: coherent.energy_total() / oracle.energy_total(),
        coherent,
        oracle,
    })
}

/// Figure 8: hybrid-coherent vs hybrid-oracle on the given kernels.
pub fn fig8(kernels: &[Kernel]) -> Result<Vec<Fig8Row>, SimError> {
    kernels.iter().map(fig8_row).collect()
}

/// [`fig8`] with one host job per benchmark (each runs its coherent and
/// oracle machines). Results are identical to the sequential driver.
pub fn fig8_parallel(kernels: &[Kernel]) -> Result<Vec<Fig8Row>, SimError> {
    parallel_map(kernels.iter().collect(), fig8_row)
        .into_iter()
        .collect()
}

/// One row of Figures 9 and 10 plus Table 3: hybrid-coherent vs
/// cache-based.
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// Benchmark name.
    pub name: String,
    /// Speedup of the hybrid system (cache cycles / hybrid cycles).
    pub speedup: f64,
    /// Hybrid execution time normalized to cache-based (Figure 9 bar).
    pub time_norm: f64,
    /// Normalized phase split of the hybrid bar `[other, control,
    /// synch, work]`.
    pub phases_norm: [f64; 4],
    /// Hybrid energy normalized to cache-based (Figure 10 bar).
    pub energy_norm: f64,
    /// Hybrid run report.
    pub hybrid: RunReport,
    /// Cache-based run report.
    pub cache: RunReport,
}

/// Runs one benchmark on the hybrid-coherent and cache-based machines.
fn comparison_row(k: &Kernel) -> Result<ComparisonRow, SimError> {
    let hybrid = run_kernel(k, SysMode::HybridCoherent, false)?;
    let cache = run_kernel(k, SysMode::CacheBased, false)?;
    let denom = cache.cycles.max(1) as f64;
    Ok(ComparisonRow {
        name: k.name.clone(),
        speedup: cache.cycles as f64 / hybrid.cycles.max(1) as f64,
        time_norm: hybrid.cycles as f64 / denom,
        phases_norm: [
            hybrid.phase_cycles[0] as f64 / denom,
            hybrid.phase_cycles[1] as f64 / denom,
            hybrid.phase_cycles[2] as f64 / denom,
            hybrid.phase_cycles[3] as f64 / denom,
        ],
        energy_norm: hybrid.energy_total() / cache.energy_total(),
        hybrid,
        cache,
    })
}

/// Figures 9/10 + Table 3: runs both systems on each kernel.
pub fn compare_systems(kernels: &[Kernel]) -> Result<Vec<ComparisonRow>, SimError> {
    kernels.iter().map(comparison_row).collect()
}

/// [`compare_systems`] with one host job per benchmark. Results are
/// identical to the sequential driver.
pub fn compare_systems_parallel(kernels: &[Kernel]) -> Result<Vec<ComparisonRow>, SimError> {
    parallel_map(kernels.iter().collect(), comparison_row)
        .into_iter()
        .collect()
}

/// One row of the backside-sensitivity sweep: how one kernel at one
/// core count exercises the banked L3 and the DRAM row buffers.
/// Counters are machine totals (summed over the per-core shares, which
/// partition them exactly).
#[derive(Clone, Debug)]
pub struct BacksideSweepRow {
    /// Kernel name.
    pub kernel: String,
    /// Simulated core count.
    pub cores: usize,
    /// Parallel makespan in cycles.
    pub makespan: u64,
    /// DRAM accesses that hit an open row.
    pub dram_row_hits: u64,
    /// DRAM accesses to a bank with no open row.
    pub dram_row_misses: u64,
    /// DRAM accesses that closed another row first.
    pub dram_row_conflicts: u64,
    /// Row-buffer hit rate in percent (100.0 with no row activity).
    pub dram_row_hit_rate: f64,
    /// Requests that found their L3 bank's port busy.
    pub bank_conflicts: u64,
    /// Cycles spent waiting on L3 bank ports.
    pub bus_wait_cycles: u64,
    /// Posted DRAM writes that found the write queue full.
    pub dram_queue_stalls: u64,
}

/// Runs one sweep point; `None` when the kernel does not shard to
/// `cores` (indirect indexing), which the sweep skips like the scaling
/// bench does.
fn backside_point(
    kernel: &Kernel,
    cores: usize,
    mode: SysMode,
) -> Result<Option<BacksideSweepRow>, SimError> {
    let cfg = MachineConfig::for_mode(mode);
    let (per_core, makespan) = if cores == 1 {
        let r = run_kernel_with(kernel, cfg)?;
        let makespan = r.cycles;
        (vec![r], makespan)
    } else {
        match run_kernel_multi_with(kernel, cores, cfg) {
            Ok(m) => {
                let makespan = m.makespan;
                (m.per_core, makespan)
            }
            Err(MultiRunError::Shard(_)) => return Ok(None),
            Err(MultiRunError::Sim(e)) => return Err(e),
            Err(MultiRunError::Cluster(_)) => {
                unreachable!("flat multicore runs produce no cluster errors")
            }
        }
    };
    let sum = |f: fn(&RunReport) -> u64| per_core.iter().map(f).sum::<u64>();
    // Route the hit-rate computation through `DramStats` so the sweep
    // shares one definition (including the empty-denominator
    // convention) with the report accessors.
    let rows = hsim_mem::DramStats {
        row_hits: sum(|r| r.dram_row_hits),
        row_misses: sum(|r| r.dram_row_misses),
        row_conflicts: sum(|r| r.dram_row_conflicts),
        ..Default::default()
    };
    Ok(Some(BacksideSweepRow {
        kernel: kernel.name.clone(),
        cores,
        makespan,
        dram_row_hits: rows.row_hits,
        dram_row_misses: rows.row_misses,
        dram_row_conflicts: rows.row_conflicts,
        dram_row_hit_rate: rows.row_hit_rate(),
        bank_conflicts: sum(|r| r.l3_bank_conflicts),
        bus_wait_cycles: sum(|r| r.bus_wait_cycles),
        dram_queue_stalls: sum(|r| r.dram_queue_stalls),
    }))
}

/// Backside-sensitivity sweep: row-buffer locality and L3 bank
/// contention for every kernel × core-count point, on the default
/// (banked, row-aware) backside. Points a kernel cannot shard to are
/// skipped.
pub fn backside_sweep(
    kernels: &[Kernel],
    core_counts: &[usize],
    mode: SysMode,
) -> Result<Vec<BacksideSweepRow>, SimError> {
    let mut rows = Vec::new();
    for k in kernels {
        for &cores in core_counts {
            if let Some(row) = backside_point(k, cores, mode)? {
                rows.push(row);
            }
        }
    }
    Ok(rows)
}

/// [`backside_sweep`] with one host job per (kernel, core-count) point.
/// Results are identical to the sequential driver.
pub fn backside_sweep_parallel(
    kernels: &[Kernel],
    core_counts: &[usize],
    mode: SysMode,
) -> Result<Vec<BacksideSweepRow>, SimError> {
    let points: Vec<(&Kernel, usize)> = kernels
        .iter()
        .flat_map(|k| core_counts.iter().map(move |&c| (k, c)))
        .collect();
    let results = parallel_map(points, |(k, cores)| backside_point(k, cores, mode));
    let mut rows = Vec::new();
    for r in results {
        if let Some(row) = r? {
            rows.push(row);
        }
    }
    Ok(rows)
}

/// One point of the scaling experiment: one kernel sharded over one
/// core count, with the speedup against its own 1-core run and the
/// bus-wait breakdown of where the scaling went.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Kernel name.
    pub kernel: String,
    /// Simulated core count.
    pub cores: usize,
    /// Parallel makespan in cycles.
    pub makespan: u64,
    /// Speedup against the same kernel's 1-core makespan.
    pub speedup: f64,
    /// Total committed instructions over all cores.
    pub committed: u64,
    /// Aggregate IPC (total committed over the makespan).
    pub aggregate_ipc: f64,
    /// Total cycles cores spent waiting on L3 bank ports — the
    /// contention share of the lost scaling.
    pub bus_wait_cycles: u64,
    /// Requests that found their L3 bank's port busy.
    pub bank_conflicts: u64,
    /// Machine-wide DRAM row-buffer hit rate in percent.
    pub dram_row_hit_rate: f64,
    /// Total DRAM line reads (replication traffic shows up here).
    pub dram_reads: u64,
}

/// Runs the scaling sweep for one kernel: its 1-core run (the speedup
/// denominator) followed by every requested core count. Core counts a
/// kernel cannot shard to are skipped, like the backside sweep does.
fn scaling_rows_for(
    kernel: &Kernel,
    core_counts: &[usize],
    cfg: &MachineConfig,
) -> Result<Vec<ScalingRow>, SimError> {
    let run = |cores: usize| -> Result<Option<MultiRunReport>, SimError> {
        match run_kernel_multi_with(kernel, cores, cfg.clone()) {
            Ok(m) => Ok(Some(m)),
            Err(MultiRunError::Shard(_)) => Ok(None),
            Err(MultiRunError::Sim(e)) => Err(e),
            Err(MultiRunError::Cluster(_)) => {
                unreachable!("flat multicore runs produce no cluster errors")
            }
        }
    };
    let Some(base) = run(1)? else {
        return Ok(Vec::new());
    };
    let mut rows = Vec::new();
    for &cores in core_counts {
        let m = if cores == 1 {
            base.clone()
        } else {
            match run(cores)? {
                Some(m) => m,
                None => continue,
            }
        };
        rows.push(ScalingRow {
            kernel: kernel.name.clone(),
            cores,
            makespan: m.makespan,
            speedup: base.makespan as f64 / m.makespan.max(1) as f64,
            committed: m.total_committed(),
            aggregate_ipc: m.aggregate_ipc(),
            bus_wait_cycles: m.total_bus_wait_cycles(),
            bank_conflicts: m.total_bank_conflicts(),
            dram_row_hit_rate: m.dram_row_hit_rate(),
            dram_reads: m.total_dram_reads(),
        });
    }
    Ok(rows)
}

/// The scaling experiment (promoted from the `scaling` bench):
/// speedup-vs-cores curves per kernel with bus-wait breakdowns, on
/// machines built from `cfg`. Rows are grouped by kernel, core counts
/// ascending within a group when `core_counts` is ascending.
pub fn scaling_sweep(
    kernels: &[Kernel],
    core_counts: &[usize],
    cfg: &MachineConfig,
) -> Result<Vec<ScalingRow>, SimError> {
    let mut rows = Vec::new();
    for k in kernels {
        rows.extend(scaling_rows_for(k, core_counts, cfg)?);
    }
    Ok(rows)
}

/// [`scaling_sweep`] with one host job per kernel (each job runs that
/// kernel's whole curve, since every point normalizes against the
/// kernel's own 1-core run). Results are identical to the sequential
/// driver.
pub fn scaling_sweep_parallel(
    kernels: &[Kernel],
    core_counts: &[usize],
    cfg: &MachineConfig,
) -> Result<Vec<ScalingRow>, SimError> {
    let per_kernel = parallel_map(kernels.iter().collect(), |k| {
        scaling_rows_for(k, core_counts, cfg)
    });
    let mut rows = Vec::new();
    for r in per_kernel {
        rows.extend(r?);
    }
    Ok(rows)
}

/// One point of the coherence-mode comparison: the same sharded kernel
/// at the same core count under `Replicate` and under `Mesi`, side by
/// side.
#[derive(Clone, Debug)]
pub struct CoherenceSweepRow {
    /// Kernel name.
    pub kernel: String,
    /// Simulated core count.
    pub cores: usize,
    /// Makespan under `CoherenceMode::Replicate`.
    pub makespan_replicate: u64,
    /// Makespan under `CoherenceMode::Mesi`.
    pub makespan_mesi: u64,
    /// Total DRAM line reads under `Replicate` (shared tables are
    /// fetched once per core).
    pub dram_reads_replicate: u64,
    /// Total DRAM line reads under `Mesi` (shared tables are fetched
    /// once per chip, directory permitting).
    pub dram_reads_mesi: u64,
    /// Shared-line L3 hits the directory served (Mesi run).
    pub shared_hits: u64,
    /// Invalidation messages sent (Mesi run).
    pub invalidations: u64,
    /// M-state interventions (Mesi run).
    pub interventions: u64,
    /// Total committed instructions (identical in both runs — the modes
    /// may only change timing, never architectural work).
    pub committed: u64,
    /// Shared-marked arrays that fell back to per-core replication
    /// because the shards' layouts diverged: under `Mesi` those arrays
    /// were *not* served from shared lines (0 on even shards).
    pub replication_fallbacks: u64,
    /// Shared-marked arrays that would fall back to per-cluster
    /// replication if this kernel were split across a 2-cluster
    /// machine ([`cross_cluster_fallbacks`]): cross-cluster sharing is
    /// never silently free, so the sweep surfaces the cost a clustered
    /// run of the same kernel would pay.
    pub cluster_fallbacks: u64,
}

/// Runs one coherence-comparison point; `None` when the kernel does not
/// shard to `cores`.
fn coherence_point(
    kernel: &Kernel,
    cores: usize,
    mode: SysMode,
) -> Result<Option<CoherenceSweepRow>, MultiRunError> {
    use hsim_core::config::CoherenceMode;
    let run = |cm: CoherenceMode| {
        run_kernel_multi_with(
            kernel,
            cores,
            MachineConfig::for_mode(mode).with_coherence(cm),
        )
    };
    let rep = match run(CoherenceMode::Replicate) {
        Ok(m) => m,
        Err(MultiRunError::Shard(_)) => return Ok(None),
        Err(e) => return Err(e),
    };
    let mesi = run(CoherenceMode::Mesi)?;
    assert_eq!(
        rep.total_committed(),
        mesi.total_committed(),
        "{} x{cores}: coherence modes must not change committed work",
        kernel.name
    );
    Ok(Some(CoherenceSweepRow {
        kernel: kernel.name.clone(),
        cores,
        makespan_replicate: rep.makespan,
        makespan_mesi: mesi.makespan,
        dram_reads_replicate: rep.total_dram_reads(),
        dram_reads_mesi: mesi.total_dram_reads(),
        shared_hits: mesi.total_shared_hits(),
        invalidations: mesi.total_invalidations(),
        interventions: mesi.total_interventions(),
        committed: rep.total_committed(),
        replication_fallbacks: mesi.replication_fallbacks,
        cluster_fallbacks: cross_cluster_fallbacks(kernel, 2),
    }))
}

/// The coherence-mode comparison: every kernel × core-count point run
/// under `Replicate` and `Mesi` on otherwise identical machines. Points
/// a kernel cannot shard to are skipped.
pub fn coherence_sweep(
    kernels: &[Kernel],
    core_counts: &[usize],
    mode: SysMode,
) -> Result<Vec<CoherenceSweepRow>, MultiRunError> {
    let mut rows = Vec::new();
    for k in kernels {
        for &cores in core_counts {
            if let Some(row) = coherence_point(k, cores, mode)? {
                rows.push(row);
            }
        }
    }
    Ok(rows)
}

/// [`coherence_sweep`] with one host job per (kernel, core-count)
/// point. Results are identical to the sequential driver.
pub fn coherence_sweep_parallel(
    kernels: &[Kernel],
    core_counts: &[usize],
    mode: SysMode,
) -> Result<Vec<CoherenceSweepRow>, MultiRunError> {
    let points: Vec<(&Kernel, usize)> = kernels
        .iter()
        .flat_map(|k| core_counts.iter().map(move |&c| (k, c)))
        .collect();
    let results = parallel_map(points, |(k, cores)| coherence_point(k, cores, mode));
    let mut rows = Vec::new();
    for r in results {
        if let Some(row) = r? {
            rows.push(row);
        }
    }
    Ok(rows)
}

/// One point of the protocol-family comparison: one kernel at one core
/// count under one inter-core protocol (or the `Replicate` baseline),
/// with the directory-side aggregates that separate the family members.
#[derive(Clone, Debug)]
pub struct ProtocolSweepRow {
    /// Kernel name.
    pub kernel: String,
    /// Simulated core count.
    pub cores: usize,
    /// Coherence-mode name (`"replicate"`, `"msi"`, `"mesi"`, `"moesi"`,
    /// `"mesif"`).
    pub protocol: String,
    /// Makespan of the run.
    pub makespan: u64,
    /// Total DRAM line reads: MSI re-reads memory on dirty recalls, so
    /// it upper-bounds MESI, which upper-bounds MOESI (dirty sharing
    /// skips the round-trip entirely).
    pub dram_reads: u64,
    /// Shared-line L3 hits the directory served (0 under `Replicate`).
    pub shared_hits: u64,
    /// Invalidation messages sent (0 under `Replicate`).
    pub invalidations: u64,
    /// Dirty-owner interventions (0 under `Replicate`).
    pub interventions: u64,
    /// Total committed instructions (identical across modes — protocols
    /// may only change timing, never architectural work).
    pub committed: u64,
}

/// Runs one kernel × core-count point under every [`CoherenceMode`];
/// `None` when the kernel does not shard to `cores`. Asserts that no
/// protocol changes the committed-instruction count.
fn protocol_point(
    kernel: &Kernel,
    cores: usize,
    mode: SysMode,
) -> Result<Option<Vec<ProtocolSweepRow>>, MultiRunError> {
    use hsim_core::config::CoherenceMode;
    let mut rows = Vec::new();
    let mut committed = None;
    for cm in CoherenceMode::ALL {
        let report = match run_kernel_multi_with(
            kernel,
            cores,
            MachineConfig::for_mode(mode).with_coherence(cm),
        ) {
            Ok(m) => m,
            Err(MultiRunError::Shard(_)) => return Ok(None),
            Err(e) => return Err(e),
        };
        match committed {
            None => committed = Some(report.total_committed()),
            Some(c) => assert_eq!(
                c,
                report.total_committed(),
                "{} x{cores}: {} changed committed work",
                kernel.name,
                cm.name()
            ),
        }
        rows.push(ProtocolSweepRow {
            kernel: kernel.name.clone(),
            cores,
            protocol: cm.name().to_string(),
            makespan: report.makespan,
            dram_reads: report.total_dram_reads(),
            shared_hits: report.total_shared_hits(),
            invalidations: report.total_invalidations(),
            interventions: report.total_interventions(),
            committed: report.total_committed(),
        });
    }
    Ok(Some(rows))
}

/// The protocol-family comparison: every kernel × core-count point run
/// under the `Replicate` baseline and all four directory protocols on
/// otherwise identical machines. Points a kernel cannot shard to are
/// skipped.
pub fn protocol_sweep(
    kernels: &[Kernel],
    core_counts: &[usize],
    mode: SysMode,
) -> Result<Vec<ProtocolSweepRow>, MultiRunError> {
    let mut rows = Vec::new();
    for k in kernels {
        for &cores in core_counts {
            if let Some(point) = protocol_point(k, cores, mode)? {
                rows.extend(point);
            }
        }
    }
    Ok(rows)
}

/// [`protocol_sweep`] with one host job per (kernel, core-count) point.
/// Results are identical to the sequential driver.
pub fn protocol_sweep_parallel(
    kernels: &[Kernel],
    core_counts: &[usize],
    mode: SysMode,
) -> Result<Vec<ProtocolSweepRow>, MultiRunError> {
    let points: Vec<(&Kernel, usize)> = kernels
        .iter()
        .flat_map(|k| core_counts.iter().map(move |&c| (k, c)))
        .collect();
    let results = parallel_map(points, |(k, cores)| protocol_point(k, cores, mode));
    let mut rows = Vec::new();
    for r in results {
        if let Some(point) = r? {
            rows.extend(point);
        }
    }
    Ok(rows)
}

/// One point of the heterogeneous-chip sweep: one kernel on one mixed
/// machine shape — a hybrid:cache tile ratio, an LM-size asymmetry, or
/// a weighted-shard split — with the chip-level aggregates the
/// homogeneous sweeps report.
#[derive(Clone, Debug)]
pub struct HeteroSweepRow {
    /// Kernel name.
    pub kernel: String,
    /// Human-readable machine shape, e.g. `"3H+1C"` (3 hybrid + 1
    /// cache-based tile), `"4H lm/4x2"` (all hybrid, two tiles at a
    /// quarter LM budget) or `"2H+2C w2:1"` (weighted shards).
    pub label: String,
    /// Simulated core count.
    pub cores: usize,
    /// Tiles running a hybrid (LM + directory) memory system.
    pub hybrid_tiles: usize,
    /// Hybrid tiles configured below the default LM budget.
    pub small_lm_tiles: usize,
    /// Per-tile shard weights (all 1 for even splits).
    pub weights: Vec<u64>,
    /// Parallel makespan in cycles.
    pub makespan: u64,
    /// Total committed instructions over all cores.
    pub committed: u64,
    /// Total DRAM line reads.
    pub dram_reads: u64,
    /// Total cycles cores spent waiting on L3 bank ports.
    pub bus_wait_cycles: u64,
    /// Shared-line L3 hits the directory served (0 under `Replicate`).
    pub shared_hits: u64,
    /// Shared-marked arrays that fell back to per-core replication
    /// because the weighted shards' layouts diverged.
    pub replication_fallbacks: u64,
}

/// One machine shape of the hetero sweep: a display label, the
/// per-tile configurations, and the per-tile shard weights.
type HeteroShape = (String, Vec<MachineConfig>, Vec<u64>);

/// The machine shapes [`hetero_sweep`] visits at one core count: every
/// hybrid:cache ratio with even shards, an all-hybrid chip with half
/// the tiles at a quarter LM budget, and a weighted mixed chip whose
/// hybrid tiles take double iteration shares. Default-configured tiles
/// inherit the `HSIM_COHERENCE` environment mode like every other
/// sweep.
fn hetero_shapes(cores: usize) -> Vec<HeteroShape> {
    let hybrid = || MachineConfig::for_mode(SysMode::HybridCoherent);
    let cache = || MachineConfig::for_mode(SysMode::CacheBased);
    let mixed = |h: usize| -> Vec<MachineConfig> {
        (0..cores)
            .map(|i| if i < h { hybrid() } else { cache() })
            .collect()
    };
    let mut shapes = Vec::new();
    for h in (0..=cores).rev() {
        shapes.push((format!("{h}H+{}C", cores - h), mixed(h), vec![1; cores]));
    }
    if cores >= 2 {
        // LM-size asymmetry: big/little hybrid tiles. The little tiles
        // compile their shards against the smaller budget, so they pay
        // more DMA round trips per array.
        let small = cores / 2;
        let cfgs: Vec<MachineConfig> = (0..cores)
            .map(|i| {
                let mut c = hybrid();
                if i >= cores - small {
                    let lm = c.mem.lm.as_mut().expect("hybrid tiles have an LM");
                    lm.size_bytes /= 4;
                }
                c
            })
            .collect();
        shapes.push((format!("{cores}H lm/4x{small}"), cfgs, vec![1; cores]));
        // Weighted shards on a mixed chip: hybrid tiles are faster, so
        // they take double shares; the uneven slices can diverge the
        // shard layouts, exercising the replication-fallback
        // accounting.
        let h = cores - small;
        let weights: Vec<u64> = (0..cores).map(|i| u64::from(i < h) + 1).collect();
        shapes.push((format!("{h}H+{small}C w2:1"), mixed(h), weights));
    }
    shapes
}

/// Runs one hetero point; `None` when the kernel does not shard to the
/// shape (indirect indexing, or a weight starving a shard).
fn hetero_point(
    kernel: &Kernel,
    label: &str,
    cfgs: &[MachineConfig],
    weights: &[u64],
) -> Result<Option<HeteroSweepRow>, SimError> {
    let m = match run_kernel_multi_hetero(kernel, cfgs, weights) {
        Ok(m) => m,
        Err(MultiRunError::Shard(_)) => return Ok(None),
        Err(MultiRunError::Sim(e)) => return Err(e),
        Err(MultiRunError::Cluster(_)) => {
            unreachable!("flat multicore runs produce no cluster errors")
        }
    };
    let default_lm = hsim_mem::LmConfig::default().size_bytes;
    Ok(Some(HeteroSweepRow {
        kernel: kernel.name.clone(),
        label: label.to_string(),
        cores: cfgs.len(),
        hybrid_tiles: cfgs
            .iter()
            .filter(|c| !matches!(c.mode, SysMode::CacheBased))
            .count(),
        small_lm_tiles: cfgs
            .iter()
            .filter(|c| c.mem.lm.as_ref().is_some_and(|l| l.size_bytes < default_lm))
            .count(),
        weights: weights.to_vec(),
        makespan: m.makespan,
        committed: m.total_committed(),
        dram_reads: m.total_dram_reads(),
        bus_wait_cycles: m.total_bus_wait_cycles(),
        shared_hits: m.total_shared_hits(),
        replication_fallbacks: m.replication_fallbacks,
    }))
}

/// The heterogeneous-chip sweep: every kernel × machine shape (see
/// `hetero_shapes`) at one core count. The all-hybrid shape (`"4H+0C"`)
/// is built from default configurations, so it reproduces the
/// homogeneous [`run_kernel_multi_with`] machine bit for bit — the
/// anchor the mixed shapes are compared against. Shapes a kernel
/// cannot shard to are skipped.
pub fn hetero_sweep(kernels: &[Kernel], cores: usize) -> Result<Vec<HeteroSweepRow>, SimError> {
    let shapes = hetero_shapes(cores);
    let mut rows = Vec::new();
    for k in kernels {
        for (label, cfgs, weights) in &shapes {
            if let Some(row) = hetero_point(k, label, cfgs, weights)? {
                rows.push(row);
            }
        }
    }
    Ok(rows)
}

/// [`hetero_sweep`] with one host job per (kernel, shape) point.
/// Results are identical to the sequential driver.
pub fn hetero_sweep_parallel(
    kernels: &[Kernel],
    cores: usize,
) -> Result<Vec<HeteroSweepRow>, SimError> {
    let shapes = hetero_shapes(cores);
    let points: Vec<(&Kernel, &HeteroShape)> = kernels
        .iter()
        .flat_map(|k| shapes.iter().map(move |s| (k, s)))
        .collect();
    let results = parallel_map(points, |(k, (label, cfgs, weights))| {
        hetero_point(k, label, cfgs, weights)
    });
    let mut rows = Vec::new();
    for r in results {
        if let Some(row) = r? {
            rows.push(row);
        }
    }
    Ok(rows)
}

/// Geometric-mean helper used when averaging ratios across benchmarks.
pub fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = xs.fold((0.0, 0), |(s, n), x| (s + x.ln(), n + 1));
    if n == 0 {
        1.0
    } else {
        (sum / n as f64).exp()
    }
}
