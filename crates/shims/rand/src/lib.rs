//! Offline stand-in for the `rand` crate (API subset).
//!
//! Provides exactly what this repository uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`] and [`Rng::gen_range`] over half-open
//! ranges of `i64`/`u64`/`usize`/`i32`/`f64`. The generator is
//! SplitMix64 — deterministic, well distributed, and *not* the real
//! crate's stream (nothing here depends on specific values).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Core interface of a random generator (subset of `rand::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws a uniform value in `[range.start, range.end)`.
    fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + (range.end - range.start) * unit
    }
}

/// User-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniform value from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele et al.): passes BigCrush, one u64 state.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = r.gen_range(0u64..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for b in buckets {
            assert!((700..1300).contains(&b), "bucket count {b} out of range");
        }
    }
}
