//! The coherence directory (paper §3.2, Figure 4).
//!
//! A small per-core CAM that keeps track of what data is mapped to the
//! local memory. One entry is statically assigned to each equally-sized LM
//! buffer; the entry index *is* the buffer number. Each entry maps the
//! starting SM address of the copied chunk (the *tag*) to the buffer, and
//! carries a *presence bit* covering in-flight `dma-get` transfers.
//!
//! The software side configures the LM buffer size through a
//! memory-mapped register (`dir.cfg`); the hardware derives the **Base
//! Mask** and **Offset Mask** registers from it. A guarded access then
//! decomposes its SM address with two AND gates, compares the base against
//! all tags, and on a hit ORs the matching buffer's base address with the
//! offset — producing the diverted LM address in the same cycle as address
//! generation (§3.2 estimates 0.348 ns for a 32-entry CAM at 45 nm).
//!
//! Invariants enforced here (and leaned on by the compiler):
//! * the buffer size is a power of two, at least 64 bytes, at most the LM
//!   size;
//! * `dma-get` chunks are buffer-size aligned in both memories (the
//!   compiler allocates arrays and windows aligned — see DESIGN.md §5);
//! * reconfiguring the buffer size invalidates all entries.

/// Outcome of a directory lookup that hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirHit {
    /// The diverted local-memory address (`LM base | offset`).
    pub lm_addr: u64,
    /// Cycle at which the mapping's `dma-get` completes. A guarded access
    /// executing before this cycle stalls on the presence bit (§3.2,
    /// double-buffer support).
    pub ready_at: u64,
}

/// Directory configuration.
#[derive(Clone, Debug)]
pub struct DirConfig {
    /// Number of CAM entries (paper: 32, to keep the lookup in-cycle).
    pub entries: usize,
    /// Base virtual address of the LM window.
    pub lm_base: u64,
    /// Size of the LM in bytes.
    pub lm_size: u64,
}

impl Default for DirConfig {
    fn default() -> Self {
        DirConfig {
            entries: 32,
            lm_base: hsim_isa::memmap::LM_BASE,
            lm_size: hsim_isa::memmap::LM_SIZE,
        }
    }
}

/// Errors raised by directory operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirError {
    /// `dir.cfg` with a size that is not a power of two, too small, or
    /// larger than the LM.
    BadBufferSize(u64),
    /// A `dma-get` whose LM destination is not buffer-aligned or outside
    /// the LM.
    BadLmAddress(u64),
    /// A `dma-get` whose SM source is not buffer-aligned.
    BadSmAddress(u64),
    /// A `dma-get` targeting a buffer beyond the CAM's entry count.
    NoEntry(usize),
}

impl std::fmt::Display for DirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirError::BadBufferSize(s) => write!(f, "bad LM buffer size {s:#x}"),
            DirError::BadLmAddress(a) => write!(f, "unaligned or out-of-range LM address {a:#x}"),
            DirError::BadSmAddress(a) => write!(f, "unaligned SM address {a:#x}"),
            DirError::NoEntry(i) => write!(f, "LM buffer {i} has no directory entry"),
        }
    }
}

impl std::error::Error for DirError {}

/// Directory activity counters (drive the Table 3 "Directory Accesses"
/// column and the directory's energy contribution).
#[derive(Clone, Copy, Debug, Default)]
pub struct DirStats {
    /// CAM lookups performed by guarded accesses.
    pub lookups: u64,
    /// Lookups that hit (diverted to the LM).
    pub hits: u64,
    /// Entry updates performed by `dma-get` commands.
    pub updates: u64,
    /// Buffer-size reconfigurations.
    pub configures: u64,
    /// Guarded accesses that stalled on an unset presence bit.
    pub presence_stalls: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    valid: bool,
    /// SM base address of the mapped chunk (buffer-size aligned).
    tag: u64,
    /// Completion cycle of the mapping `dma-get` (presence bit proxy).
    ready_at: u64,
}

/// The per-core coherence directory.
pub struct Directory {
    cfg: DirConfig,
    buf_size: u64,
    base_mask: u64,
    offset_mask: u64,
    entries: Vec<Entry>,
    /// Activity counters.
    pub stats: DirStats,
}

impl Directory {
    /// Builds a directory; the initial buffer size is the whole LM split
    /// across all entries.
    pub fn new(cfg: DirConfig) -> Self {
        assert!(cfg.entries > 0 && cfg.lm_size.is_power_of_two());
        let initial = (cfg.lm_size / cfg.entries as u64)
            .next_power_of_two()
            .max(64);
        let mut d = Directory {
            entries: vec![Entry::default(); cfg.entries],
            buf_size: 0,
            base_mask: 0,
            offset_mask: 0,
            stats: DirStats::default(),
            cfg,
        };
        d.configure(initial).expect("initial size is valid");
        d.stats.configures = 0; // implicit initial configuration is free
        d
    }

    /// The current LM buffer size in bytes.
    pub fn buf_size(&self) -> u64 {
        self.buf_size
    }

    /// The Base Mask register (AND with an address to get its base).
    pub fn base_mask(&self) -> u64 {
        self.base_mask
    }

    /// The Offset Mask register (AND with an address to get its offset).
    pub fn offset_mask(&self) -> u64 {
        self.offset_mask
    }

    /// Number of usable LM buffers under the current configuration.
    pub fn num_buffers(&self) -> usize {
        ((self.cfg.lm_size / self.buf_size) as usize).min(self.cfg.entries)
    }

    /// Reconfigures the LM buffer size (the `dir.cfg` MMIO write). All
    /// entries are invalidated: the previous mapping is meaningless under
    /// new masks.
    pub fn configure(&mut self, buf_size: u64) -> Result<(), DirError> {
        if !buf_size.is_power_of_two() || buf_size < 64 || buf_size > self.cfg.lm_size {
            return Err(DirError::BadBufferSize(buf_size));
        }
        self.buf_size = buf_size;
        self.offset_mask = buf_size - 1;
        self.base_mask = !self.offset_mask;
        self.entries.iter_mut().for_each(|e| e.valid = false);
        self.stats.configures += 1;
        Ok(())
    }

    /// The buffer index owning an LM address, if in range.
    pub fn buf_index(&self, lm_addr: u64) -> Option<usize> {
        let off = lm_addr.wrapping_sub(self.cfg.lm_base);
        if off >= self.cfg.lm_size {
            return None;
        }
        Some((off / self.buf_size) as usize)
    }

    /// Records a `dma-get`: maps the chunk starting at `sm_src` (SM) into
    /// the buffer at `lm_dst`; the presence bit is considered set from
    /// `ready_at` (the transfer's completion cycle) onward.
    pub fn update_get(&mut self, lm_dst: u64, sm_src: u64, ready_at: u64) -> Result<(), DirError> {
        if sm_src & self.offset_mask != 0 {
            return Err(DirError::BadSmAddress(sm_src));
        }
        let idx = self
            .buf_index(lm_dst)
            .ok_or(DirError::BadLmAddress(lm_dst))?;
        if !lm_dst
            .wrapping_sub(self.cfg.lm_base)
            .is_multiple_of(self.buf_size)
        {
            return Err(DirError::BadLmAddress(lm_dst));
        }
        if idx >= self.entries.len() {
            return Err(DirError::NoEntry(idx));
        }
        self.entries[idx] = Entry {
            valid: true,
            tag: sm_src,
            ready_at,
        };
        self.stats.updates += 1;
        Ok(())
    }

    /// The SM chunk currently mapped by buffer `idx`, if any (used by the
    /// machine to raise unmap events for the coherence tracker).
    pub fn mapped_chunk(&self, idx: usize) -> Option<u64> {
        let e = self.entries.get(idx)?;
        e.valid.then_some(e.tag)
    }

    /// CAM lookup in the address-generation path of a guarded access
    /// (Figure 4): splits `sm_addr` with the mask registers, compares the
    /// base against all valid tags, and returns the diverted LM address on
    /// a hit. Counted in the statistics.
    #[inline]
    pub fn lookup(&mut self, sm_addr: u64) -> Option<DirHit> {
        self.stats.lookups += 1;
        let hit = self.lookup_quiet(sm_addr);
        if hit.is_some() {
            self.stats.hits += 1;
        }
        hit
    }

    /// The same CAM match without touching statistics or energy — used by
    /// the oracle-routed baseline (Figure 8), which has no directory
    /// hardware but is "always served by the memory that has the valid
    /// copy".
    #[inline]
    pub fn lookup_quiet(&self, sm_addr: u64) -> Option<DirHit> {
        let base = sm_addr & self.base_mask;
        let offset = sm_addr & self.offset_mask;
        for (idx, e) in self.entries.iter().enumerate() {
            if e.valid && e.tag == base {
                let lm_buf_base = self.cfg.lm_base + idx as u64 * self.buf_size;
                return Some(DirHit {
                    lm_addr: lm_buf_base | offset,
                    ready_at: e.ready_at,
                });
            }
        }
        None
    }

    /// Notes a presence-bit stall (the machine calls this when a guarded
    /// access hits an entry whose `dma-get` has not completed).
    pub fn note_presence_stall(&mut self) {
        self.stats.presence_stalls += 1;
    }

    /// Invalidates every entry (used at kernel boundaries by generated
    /// code via reconfiguration; exposed for tests).
    pub fn invalidate_all(&mut self) {
        self.entries.iter_mut().for_each(|e| e.valid = false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LM_BASE: u64 = hsim_isa::memmap::LM_BASE;

    fn dir() -> Directory {
        Directory::new(DirConfig::default())
    }

    #[test]
    fn initial_configuration_splits_lm() {
        let d = dir();
        assert_eq!(d.buf_size(), 1024); // 32 KiB / 32 entries
        assert_eq!(d.num_buffers(), 32);
        assert_eq!(d.offset_mask(), 1023);
        assert_eq!(d.base_mask(), !1023);
    }

    #[test]
    fn configure_rejects_bad_sizes() {
        let mut d = dir();
        assert_eq!(d.configure(1000), Err(DirError::BadBufferSize(1000)));
        assert_eq!(d.configure(32), Err(DirError::BadBufferSize(32)));
        assert_eq!(
            d.configure(64 * 1024),
            Err(DirError::BadBufferSize(64 * 1024))
        );
        assert!(d.configure(4096).is_ok());
        assert_eq!(d.num_buffers(), 8, "32 KiB / 4 KiB");
    }

    #[test]
    fn update_and_lookup_roundtrip() {
        let mut d = dir();
        d.configure(1024).unwrap();
        let sm = 0x1000_0000u64;
        d.update_get(LM_BASE + 2048, sm, 500).unwrap();
        // Address inside the chunk hits and diverts with the same offset.
        let h = d.lookup(sm + 136).expect("must hit");
        assert_eq!(h.lm_addr, LM_BASE + 2048 + 136);
        assert_eq!(h.ready_at, 500);
        // Address in the next chunk misses.
        assert!(d.lookup(sm + 1024).is_none());
        // Address below misses.
        assert!(d.lookup(sm - 8).is_none());
        assert_eq!(d.stats.lookups, 3);
        assert_eq!(d.stats.hits, 1);
    }

    #[test]
    fn lookup_matches_figure4_datapath() {
        // The diverted address must equal (LM buffer base) | (addr &
        // offset mask) — bit-wise OR, exactly as in Figure 4.
        let mut d = dir();
        d.configure(512).unwrap();
        let sm = 0x2000_0400u64; // 512-aligned
        d.update_get(LM_BASE, sm, 0).unwrap();
        for off in [0u64, 8, 255, 511] {
            let h = d.lookup(sm + off).unwrap();
            assert_eq!(h.lm_addr, LM_BASE | off);
        }
    }

    #[test]
    fn remapping_a_buffer_replaces_its_tag() {
        let mut d = dir();
        d.configure(1024).unwrap();
        d.update_get(LM_BASE, 0x1000_0000, 0).unwrap();
        assert!(d.lookup(0x1000_0000).is_some());
        // New dma-get to the same buffer unmaps the old chunk.
        d.update_get(LM_BASE, 0x1000_0400, 0).unwrap();
        assert!(d.lookup(0x1000_0000).is_none(), "old chunk unmapped");
        assert!(d.lookup(0x1000_0400).is_some());
        assert_eq!(d.mapped_chunk(0), Some(0x1000_0400));
    }

    #[test]
    fn distinct_buffers_coexist() {
        let mut d = dir();
        d.configure(1024).unwrap();
        for i in 0..32u64 {
            d.update_get(LM_BASE + i * 1024, 0x1000_0000 + i * 1024, 0)
                .unwrap();
        }
        for i in 0..32u64 {
            let h = d.lookup(0x1000_0000 + i * 1024 + 8).unwrap();
            assert_eq!(h.lm_addr, LM_BASE + i * 1024 + 8);
        }
    }

    #[test]
    fn update_rejects_misaligned_addresses() {
        let mut d = dir();
        d.configure(1024).unwrap();
        assert_eq!(
            d.update_get(LM_BASE + 8, 0x1000_0000, 0),
            Err(DirError::BadLmAddress(LM_BASE + 8))
        );
        assert_eq!(
            d.update_get(LM_BASE, 0x1000_0008, 0),
            Err(DirError::BadSmAddress(0x1000_0008))
        );
        assert_eq!(
            d.update_get(0x10, 0x1000_0000, 0),
            Err(DirError::BadLmAddress(0x10))
        );
    }

    #[test]
    fn reconfigure_invalidates_entries() {
        let mut d = dir();
        d.configure(1024).unwrap();
        d.update_get(LM_BASE, 0x1000_0000, 0).unwrap();
        d.configure(2048).unwrap();
        assert!(d.lookup(0x1000_0000).is_none());
        assert_eq!(d.stats.configures, 2);
    }

    #[test]
    fn quiet_lookup_leaves_stats_untouched() {
        let mut d = dir();
        d.configure(1024).unwrap();
        d.update_get(LM_BASE, 0x1000_0000, 0).unwrap();
        let before = d.stats;
        assert!(d.lookup_quiet(0x1000_0010).is_some());
        assert_eq!(d.stats.lookups, before.lookups);
        assert_eq!(d.stats.hits, before.hits);
    }

    #[test]
    fn presence_ready_cycle_reported() {
        let mut d = dir();
        d.configure(1024).unwrap();
        d.update_get(LM_BASE, 0x1000_0000, 12345).unwrap();
        assert_eq!(d.lookup(0x1000_0001).unwrap().ready_at, 12345);
        d.note_presence_stall();
        assert_eq!(d.stats.presence_stalls, 1);
    }

    #[test]
    fn whole_lm_as_one_buffer() {
        let mut d = dir();
        d.configure(32 * 1024).unwrap();
        assert_eq!(d.num_buffers(), 1);
        d.update_get(LM_BASE, 0x4000_0000, 0).unwrap();
        let h = d.lookup(0x4000_0000 + 32 * 1024 - 1).unwrap();
        assert_eq!(h.lm_addr, LM_BASE + 32 * 1024 - 1);
        assert!(d.lookup(0x4000_0000 + 32 * 1024).is_none());
    }
}
