//! Quickstart: build the paper's running example (Figure 2/3), compile it
//! for all three systems, run them and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hsim::prelude::*;

fn main() {
    // The kernel of Figures 2/3:
    //   for i { a[i] = b[i]; c[idx[i]] = 0; ptr[idx[i]] += 1 }
    // where the compiler cannot prove `ptr` does not alias the LM-mapped
    // array `a` — so accesses through it must be guarded.
    let n = 16 * 1024u64;
    let mut kb = KernelBuilder::new("figure2");
    let a = kb.array_i64("a", n);
    let b = kb.array_i64_init("b", &(0..n as i64).collect::<Vec<_>>());
    let c = kb.array_i64("c", n / 2);
    let idx = kb.array_i64_init(
        "idx",
        &(0..n as i64)
            .map(|i| (i * 7) % (n as i64 / 2))
            .collect::<Vec<_>>(),
    );
    let ptr_target = kb.array_i64("ptr_target", n);
    kb.begin_loop(n);
    let ra = kb.ref_affine(a, 1, 0);
    let rb = kb.ref_affine(b, 1, 0);
    let ridx = kb.ref_affine(idx, 1, 0);
    let rc = kb.ref_indirect(c, ridx, 0);
    let rp = kb.ref_indirect(ptr_target, ridx, 0);
    kb.stmt(ra, Expr::Ref(rb));
    kb.stmt(rc, Expr::ConstI(0));
    kb.stmt(rp, Expr::add(Expr::Ref(rp), Expr::ConstI(1)));
    kb.alias_mut().may_alias(ptr_target, a); // "ptr may point into a"
    kb.end_loop();
    let kernel = kb.build().expect("valid kernel");

    println!("reference classification (hybrid modes):");
    let ck = compile(&kernel, CodegenMode::HybridCoherent);
    println!(
        "  {} references, {} potentially incoherent (guarded)",
        ck.total_refs(),
        ck.guarded_refs()
    );

    for mode in [
        SysMode::HybridCoherent,
        SysMode::HybridOracle,
        SysMode::CacheBased,
    ] {
        let (r, mismatches) = RunSpec::new(&kernel)
            .mode(mode)
            .track(true)
            .verified()
            .run()
            .map(|out| {
                let m = out.verify_mismatches.expect("verified run");
                (out.into_single(), m)
            })
            .expect("run");
        println!(
            "{:16}: {:>9} cycles, IPC {:.2}, AMAT {:.2}, directory accesses {:>6}, \
             violations {}, memory mismatches {}",
            mode.name(),
            r.cycles,
            r.ipc(),
            r.amat,
            r.dir_accesses,
            r.violations,
            mismatches
        );
    }
    println!("\nAll three systems computed identical results; the coherent hybrid did it");
    println!("without any aliasing information beyond 'ptr MAY alias a'.");
}
