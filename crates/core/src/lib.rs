//! # hsim-core — cycle-level out-of-order core model
//!
//! A speculative, 4-wide out-of-order core in the style of the paper's
//! PTLsim configuration (Table 1):
//!
//! * hybrid branch predictor (4K selector / 4K gshare / 4K bimodal),
//!   4K-entry 4-way BTB, 32-entry return address stack;
//! * rename onto 256-entry INT and FP physical register files;
//! * 3 INT ALUs, 3 FP ALUs, 2 load/store units; 128-entry ROB;
//! * a load/store queue with store-to-load forwarding and **store
//!   collapsing** — two uncommitted stores to the same address commit with
//!   a single cache access, which is the mechanism behind the paper's
//!   claim that the double store's second store is nearly free (§3.1);
//! * an address-generation path that performs the **coherence-directory
//!   lookup in the same cycle** for guarded accesses and stalls on unset
//!   presence bits (§3.2).
//!
//! The core is *functional-first, timing-directed*: instructions execute
//! functionally in program order at dispatch (via the [`MemoryPort`]
//! callbacks the machine provides), while fetch / rename / issue /
//! complete / commit timing is modeled cycle by cycle with real resource
//! constraints. Branch outcomes are compared against real predictor state
//! at fetch, so misprediction costs are modeled; wrong-path instructions
//! are not executed (documented simplification — no wrong-path cache
//! pollution).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod config;
pub mod pipeline;
pub mod port;
pub mod stats;

pub use branch::{BranchPredictor, Btb, Ras};
pub use config::{CoherenceConfig, CoherenceMode, CoreConfig, DramTiming, L3Geometry};
pub use pipeline::{Core, DeadlockReport, HostProfile, SimError};
pub use port::{DmaKind, MemSide, MemoryPort, PortDiagnostics, RouteInfo};
pub use stats::CoreStats;
