//! Refactor-equivalence pin: random [`MesiEvent`] traces stepped through
//! the table-driven Mesi [`ProtocolTable`] produce states and actions
//! identical to the pre-refactor hand-written [`MesiState::step`]
//! (which survives in `mesi.rs` exactly as the reference for this test).
//!
//! The mapping under test:
//! * states correspond via `line_state_of` (the Mesi table never leaves
//!   the four-state alphabet);
//! * `MesiAction::Writeback` ↔ `StepOutcome::writeback`,
//!   `MesiAction::InvalidateSharers` ↔ `StepOutcome::invalidate`,
//!   `MesiAction::WritebackAndInvalidate` ↔ both,
//!   `MesiAction::None` ↔ neither — and no family-extension action
//!   (cache transfer / memory read / claim forward) ever fires.

use hsim_coherence::protocol::line_state_of;
use hsim_coherence::{
    CoherenceProtocol, GuardCtx, MesiAction, MesiEvent, MesiState, ProtocolTable,
};
use proptest::prelude::*;

fn event_of(idx: u8) -> MesiEvent {
    match idx % 5 {
        0 => MesiEvent::LocalRead,
        1 => MesiEvent::LocalWrite,
        2 => MesiEvent::RemoteRead,
        3 => MesiEvent::RemoteWrite,
        _ => MesiEvent::Evict,
    }
}

proptest! {
    /// Any event trace, under any guard context at every step (the Mesi
    /// table must be guard-insensitive, like the hand-written code),
    /// keeps the two machines in lockstep.
    #[test]
    fn mesi_table_tracks_handwritten_step(
        trace in prop::collection::vec((0u8..5, any::<bool>(), any::<bool>()), 1..64)
    ) {
        let table = ProtocolTable::new(CoherenceProtocol::Mesi);
        let mut reference = MesiState::Invalid;
        let mut tabled = line_state_of(MesiState::Invalid);
        for (step, &(idx, other_sharers, requester_is_owner)) in trace.iter().enumerate() {
            let event = event_of(idx);
            let (next_ref, action) = reference.step(event);
            let out = table
                .step(
                    tabled,
                    event,
                    GuardCtx { other_sharers, requester_is_owner },
                )
                .expect("the Mesi table is total");
            prop_assert_eq!(
                out.next,
                line_state_of(next_ref),
                "state diverged at step {} on {:?}",
                step,
                event
            );
            let (want_wb, want_inv) = match action {
                MesiAction::None => (false, false),
                MesiAction::Writeback => (true, false),
                MesiAction::InvalidateSharers => (false, true),
                MesiAction::WritebackAndInvalidate => (true, true),
            };
            prop_assert_eq!(out.writeback, want_wb, "writeback diverged at step {}", step);
            prop_assert_eq!(out.invalidate, want_inv, "invalidate diverged at step {}", step);
            prop_assert!(
                !out.cache_transfer && !out.memory_read && !out.claim_forward,
                "Mesi emitted a family-extension action at step {}",
                step
            );
            reference = next_ref;
            tabled = out.next;
        }
    }
}
