//! End-to-end simulator throughput: whole-kernel runs per paper figure,
//! at test scale so `cargo bench` stays quick. These are the Criterion
//! counterparts of the `fig7`/`fig8`/`fig9` binaries — one benchmark per
//! experiment, measuring the wall time of regenerating a representative
//! slice of each.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hsim::prelude::*;
use hsim_workloads::nas;

fn bench_fig7_point(c: &mut Criterion) {
    // One WR point of the Figure 7 sweep.
    let k = microbench(&MicrobenchConfig {
        mode: MicroMode::Wr,
        guarded_pct: 50,
        n: 2048,
    });
    c.bench_function("fig7_wr50_microbench", |b| {
        b.iter(|| {
            black_box(
                RunSpec::new(&k)
                    .mode(SysMode::HybridCoherent)
                    .track(false)
                    .run()
                    .map(RunOutcome::into_single)
                    .unwrap()
                    .cycles,
            )
        })
    });
}

fn bench_fig8_pair(c: &mut Criterion) {
    // FT coherent vs oracle (the double-store benchmark).
    let k = nas::ft(Scale::Test);
    c.bench_function("fig8_ft_coherent", |b| {
        b.iter(|| {
            black_box(
                RunSpec::new(&k)
                    .mode(SysMode::HybridCoherent)
                    .track(false)
                    .run()
                    .map(RunOutcome::into_single)
                    .unwrap()
                    .cycles,
            )
        })
    });
    c.bench_function("fig8_ft_oracle", |b| {
        b.iter(|| {
            black_box(
                RunSpec::new(&k)
                    .mode(SysMode::HybridOracle)
                    .track(false)
                    .run()
                    .map(RunOutcome::into_single)
                    .unwrap()
                    .cycles,
            )
        })
    });
}

fn bench_fig9_pair(c: &mut Criterion) {
    let k = nas::cg(Scale::Test);
    c.bench_function("fig9_cg_hybrid", |b| {
        b.iter(|| {
            black_box(
                RunSpec::new(&k)
                    .mode(SysMode::HybridCoherent)
                    .track(false)
                    .run()
                    .map(RunOutcome::into_single)
                    .unwrap()
                    .cycles,
            )
        })
    });
    c.bench_function("fig9_cg_cache_based", |b| {
        b.iter(|| {
            black_box(
                RunSpec::new(&k)
                    .mode(SysMode::CacheBased)
                    .track(false)
                    .run()
                    .map(RunOutcome::into_single)
                    .unwrap()
                    .cycles,
            )
        })
    });
}

fn bench_tracking_overhead(c: &mut Criterion) {
    let k = nas::is(Scale::Test);
    c.bench_function("coherence_tracker_on", |b| {
        b.iter(|| {
            black_box(
                RunSpec::new(&k)
                    .mode(SysMode::HybridCoherent)
                    .track(true)
                    .run()
                    .map(RunOutcome::into_single)
                    .unwrap()
                    .cycles,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig7_point, bench_fig8_pair, bench_fig9_pair, bench_tracking_overhead
}
criterion_main!(benches);
