//! # hsim-workloads — the evaluation workloads (§4)
//!
//! * [`mod@microbench`] — the Table 2 microbenchmark: a load/add/store loop
//!   in four modes (Baseline / RD / WR / RD+WR) with an adjustable
//!   percentage of potentially incoherent references.
//! * [`nas`] — six kernels reproducing the *memory-reference signatures*
//!   of the NAS benchmarks used in the paper (CG, EP, FT, IS, MG, SP):
//!   the per-benchmark counts of strided / local / irregular /
//!   potentially-incoherent references of Table 3 and §4.2, with data
//!   footprints and reuse patterns matching the paper's narrative. The
//!   real NAS sources and 150M-instruction SimPoints are not reproducible
//!   inside this simulator; DESIGN.md §1 documents why the signature
//!   approach preserves the evaluated mechanisms.
//!
//! * [`comm`] — communication workloads, where the traffic *between*
//!   cores is the workload: producer-consumer flag/data ping-pong,
//!   multi-buffered queues, lock/barrier contention, and the
//!   request-serving kernels behind the open-loop latency driver.
//!   Per-core kernel sets with identical array layouts whose
//!   `mark_comm`-flagged arrays become directory-tracked shared lines.
//!
//! All kernels are deterministic: data is generated from fixed seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comm;
pub mod microbench;
pub mod nas;

pub use comm::{
    all_comm, barrier, lock, ping_pong, queue, request_serving, CommWorkload,
    RequestServingWorkload,
};
pub use microbench::{microbench, MicroMode, MicrobenchConfig};
pub use nas::{all_nas, cg, ep, ft, is, mg, sp, Scale};
