//! # hsim — hybrid memory system with a hardware/software coherence protocol
//!
//! A from-scratch reproduction of *"Hardware-Software Coherence Protocol
//! for the Coexistence of Caches and Local Memories"* (Alvarez et al.,
//! SC 2012): a cycle-level out-of-order core with a cache hierarchy
//! **and** a scratchpad local memory, kept coherent by a per-core
//! hardware directory plus compiler-emitted guarded memory instructions.
//!
//! ## Quickstart
//!
//! ```
//! use hsim::prelude::*;
//!
//! // The paper's running example: a[i] = b[i] with an update through a
//! // pointer the compiler cannot disambiguate from `a`.
//! let mut kb = KernelBuilder::new("example");
//! let a = kb.array_i64("a", 4096);
//! let b = kb.array_i64_init("b", &(0..4096).collect::<Vec<i64>>());
//! kb.begin_loop(4096);
//! let ra = kb.ref_affine(a, 1, 0);
//! let rb = kb.ref_affine(b, 1, 0);
//! kb.stmt(ra, Expr::Ref(rb));
//! kb.end_loop();
//! let kernel = kb.build().unwrap();
//!
//! // Compile for the coherent hybrid memory system and simulate.
//! let report = run_kernel(&kernel, SysMode::HybridCoherent, false).unwrap();
//! assert!(report.cycles > 0);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`isa`] | the simulated ISA: guarded/oracle memory ops, DMA, assembler |
//! | [`mem`] | caches, MSHRs, prefetcher, TLB, LM, DMAC, DRAM |
//! | [`coherence`] | the directory (Figure 4), Figure 6 state machine, runtime checker |
//! | [`core`] | 4-wide out-of-order core (Table 1) |
//! | [`energy`] | Wattch-style activity-based energy model |
//! | [`compiler`] | loop IR, classification, tiling, guarded codegen, double store |
//! | [`workloads`] | Table 2 microbenchmark + six NAS-signature kernels |
//! | [`machine`] | the assembled systems: hybrid coherent / hybrid oracle / cache-based |
//! | [`experiments`] | drivers regenerating every table and figure |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod machine;
pub mod metrics;

pub use hsim_coherence as coherence;
pub use hsim_compiler as compiler;
pub use hsim_core as core;
pub use hsim_energy as energy;
pub use hsim_isa as isa;
pub use hsim_mem as mem;
pub use hsim_workloads as workloads;

pub use experiments::{compare_systems, fig7, fig8, geomean, run_kernel, run_kernel_verified};
pub use machine::{Machine, MachineConfig, SysMode, World};
pub use metrics::{activity, RunReport};

/// The most common imports for building and running kernels.
pub mod prelude {
    pub use crate::experiments::{compare_systems, fig7, fig8, run_kernel, run_kernel_verified};
    pub use crate::machine::{Machine, MachineConfig, SysMode};
    pub use crate::metrics::RunReport;
    pub use hsim_compiler::{compile, interpret, CodegenMode, Expr, Kernel, KernelBuilder};
    pub use hsim_isa::{Phase, Program, ProgramBuilder, Route};
    pub use hsim_workloads::{microbench, MicroMode, MicrobenchConfig, Scale};
}
