//! Regenerates Figure 9: execution-time reduction of the coherent hybrid
//! memory system vs the cache-based system, with the work / synch /
//! control phase split.
//!
//! ```text
//! cargo run --release -p hsim-bench --bin fig9 [--test-scale]
//! ```

use hsim::prelude::*;
use hsim_bench::{kernels, paper_speedup, scale_from_args, Table};

fn main() {
    let rows = compare_systems(&kernels(scale_from_args()), Parallelism::Serial)
        .expect("simulation failed");
    println!("FIGURE 9: execution time normalized to the cache-based system");
    println!();
    let t = Table::new(&[4, 10, 8, 8, 8, 8, 10, 12]);
    t.row(
        &[
            "", "time", "work", "synch", "control", "other", "speedup", "paper",
        ]
        .map(String::from),
    );
    t.sep();
    let mut sum = 0.0;
    for r in &rows {
        sum += r.speedup;
        t.row(&[
            r.name.clone(),
            format!("{:.3}", r.time_norm),
            format!("{:.3}", r.phases_norm[3]),
            format!("{:.3}", r.phases_norm[2]),
            format!("{:.3}", r.phases_norm[1]),
            format!("{:.3}", r.phases_norm[0]),
            format!("{:.2}x", r.speedup),
            format!("{:.2}x", paper_speedup(&r.name)),
        ]);
    }
    t.sep();
    println!(
        "average speedup: {:.2}x (paper: 1.38x)",
        sum / rows.len() as f64
    );
}
