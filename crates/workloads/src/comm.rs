//! Communication workloads: kernels where the *traffic between cores*
//! is the workload (SNIPPETS.md §3, ROADMAP "millions of users").
//!
//! Every NAS-signature kernel is a disjoint data-parallel shard, so the
//! inter-core protocol family mostly idles. The generators here build
//! **per-core kernel sets** whose arrays deliberately overlap: each
//! kernel in a set declares the *identical* array list (same order and
//! lengths — the layout engine places arrays purely by declaration
//! order, so identical lists give identical chip-wide layouts) and
//! marks the communication arrays with
//! [`hsim_compiler::KernelBuilder::mark_comm`]. The machine registers
//! those ranges as directory-tracked shared lines; a layout divergence
//! is a hard `ShardError::CommLayoutDiverged`, never a silent
//! replication fallback.
//!
//! The simulator's inter-core coherence is **timing-only** (each tile
//! keeps a private functional backing store), so these kernels are
//! architecturally self-contained per core — what they share is the
//! *address traffic*: flag lines ping-ponging between writers and
//! readers, dirty payload lines handed M→S across the directory,
//! read-mostly table lines served by a Forwarder. That is exactly the
//! part the protocol family (MSI/MESI/MOESI/MESIF) differentiates.
//!
//! Workloads:
//! * [`ping_pong`] — producer/consumer pairs exchanging a payload
//!   stream against an acknowledgement stream. Hybrid tiles move the
//!   payload through LM+DMA double buffering and keep only the ack
//!   flags coherent (`no_map`); cache-based tiles pay per-line
//!   invalidation/intervention rounds on both streams.
//! * [`queue`] — a multi-buffered SPSC ring: strided payload slots,
//!   per-buffer valid/credit words (indirect `i/B` refs) and the
//!   classic head/tail hand-off. The dirty payload hand-off is where
//!   MOESI's Owned dirty-sharing and MESIF's Forwarder beat MSI's
//!   recall-to-DRAM.
//! * [`lock`] — all cores read-modify-write one lock word per
//!   iteration plus private critical-section work.
//! * [`barrier`] — each core bumps its own arrival slot and reads
//!   everyone else's (one cache line for ≤8 cores: deliberate false
//!   sharing).
//! * [`request_serving`] — every core gathers from one large
//!   comm-marked read-mostly table: the per-request service kernel
//!   under the open-loop arrival driver in `hsim::experiments`.

use crate::nas::Scale;
use hsim_compiler::{Expr, Kernel, KernelBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One communication workload: a set of per-core kernels (index =
/// core id) plus the hand-off count the timing results are normalized
/// by (`makespan / rounds` = cycles per hand-off).
#[derive(Clone, Debug)]
pub struct CommWorkload {
    /// Workload family name (`"pingpong"`, `"queue"`, ...).
    pub name: String,
    /// One kernel per core, all declaring the identical array list.
    pub kernels: Vec<Kernel>,
    /// Modeled hand-offs (rounds/slots/acquisitions/epochs) per core.
    pub rounds: u64,
}

/// The request-serving kernel set plus the parameters the open-loop
/// driver needs to turn one machine run into per-request latencies.
#[derive(Clone, Debug)]
pub struct RequestServingWorkload {
    /// One serving kernel per core.
    pub kernels: Vec<Kernel>,
    /// Requests modeled per core (`core cycles / requests` = service
    /// time per request).
    pub requests_per_core: u64,
    /// Indirect table gathers per request.
    pub gathers_per_request: u64,
    /// Elements in the shared read-mostly table.
    pub table_len: u64,
}

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn rand_f64s(r: &mut StdRng, n: u64) -> Vec<f64> {
    (0..n).map(|_| r.gen_range(-1.0..1.0)).collect()
}

fn rand_idx(r: &mut StdRng, n: u64, bound: u64) -> Vec<i64> {
    (0..n).map(|_| r.gen_range(0..bound as i64)).collect()
}

/// Flag/data ping-pong over `cores/2` producer/consumer pairs
/// (`cores` must be even and ≥ 2). Pair `p` exchanges `msg{p}`
/// (payload, written by the producer, read by the consumer) against
/// `ack{p}` (flags, written by the consumer, read by the producer) —
/// every kernel declares every pair's arrays (identical layouts) but
/// touches only its own pair's. The payload stays LM-mappable (hybrid
/// tiles double-buffer it over DMA); the ack stream is `no_map`ed so
/// synchronization always flows through the coherent caches, like the
/// paper's hybrid design keeps sync lines under hardware coherence.
pub fn ping_pong(scale: Scale, cores: usize) -> CommWorkload {
    assert!(
        cores >= 2 && cores.is_multiple_of(2),
        "ping_pong needs core pairs"
    );
    let n = scale.pick(2 * 1024, 16 * 1024);
    let pairs = cores / 2;
    let mut kernels = Vec::with_capacity(cores);
    for c in 0..cores {
        let p = c / 2;
        let producer = c % 2 == 0;
        let role = if producer { "tx" } else { "rx" };
        let mut kb = KernelBuilder::new(&format!("pingpong.p{p}.{role}"));
        let mut msgs = Vec::with_capacity(pairs);
        let mut acks = Vec::with_capacity(pairs);
        for q in 0..pairs {
            let msg = kb.array_f64(&format!("msg{q}"), n);
            let ack = kb.array_f64(&format!("ack{q}"), n);
            kb.mark_comm(msg);
            kb.mark_comm(ack);
            msgs.push(msg);
            acks.push(ack);
        }
        kb.begin_loop(n);
        let rmsg = kb.ref_affine(msgs[p], 1, 0);
        let rack = kb.ref_affine(acks[p], 1, 0);
        kb.no_map(acks[p]); // sync flags stay under cache coherence
        if producer {
            // msg[i] = 0.5 * ack[i] + 1.0 — writes the payload the
            // consumer reads, reads the flags the consumer writes.
            kb.stmt(
                rmsg,
                Expr::add(
                    Expr::mul(Expr::ConstF(0.5), Expr::Ref(rack)),
                    Expr::ConstF(1.0),
                ),
            );
        } else {
            // ack[i] = 0.25 * msg[i] + 2.0 — the mirror image.
            kb.stmt(
                rack,
                Expr::add(
                    Expr::mul(Expr::ConstF(0.25), Expr::Ref(rmsg)),
                    Expr::ConstF(2.0),
                ),
            );
        }
        kb.end_loop();
        kernels.push(kb.build().expect("ping_pong kernel"));
    }
    CommWorkload {
        name: "pingpong".into(),
        kernels,
        rounds: n,
    }
}

/// A multi-buffered SPSC queue per core pair: `n` payload slots in
/// buffers of `buffers` slots each. The producer writes payload slots
/// and bumps the per-buffer valid word `flag{p}[i/B]`; the consumer
/// drains slots into a private sink and bumps the per-buffer credit
/// word `credit{p}[i/B]` — so flag traffic is amortized per buffer
/// while every payload line is handed off dirty (the producer's M
/// line intervened by the consumer's read: MSI recalls it through
/// DRAM, MOESI dirty-shares, MESIF forwards).
pub fn queue(scale: Scale, cores: usize, buffers: u64) -> CommWorkload {
    assert!(
        cores >= 2 && cores.is_multiple_of(2),
        "queue needs core pairs"
    );
    assert!(buffers >= 1);
    let n = scale.pick(2 * 1024, 16 * 1024);
    let nb = n.div_ceil(buffers);
    let pairs = cores / 2;
    let bidx_vals: Vec<i64> = (0..n as i64).map(|i| i / buffers as i64).collect();
    let mut kernels = Vec::with_capacity(cores);
    for c in 0..cores {
        let p = c / 2;
        let producer = c % 2 == 0;
        let role = if producer { "tx" } else { "rx" };
        let mut kb = KernelBuilder::new(&format!("queue.p{p}.{role}"));
        let mut qs = Vec::with_capacity(pairs);
        let mut flags = Vec::with_capacity(pairs);
        let mut credits = Vec::with_capacity(pairs);
        for qd in 0..pairs {
            let qa = kb.array_f64(&format!("q{qd}"), n);
            let fl = kb.array_i64(&format!("flag{qd}"), nb);
            let cr = kb.array_i64(&format!("credit{qd}"), nb);
            kb.mark_comm(qa);
            kb.mark_comm(fl);
            kb.mark_comm(cr);
            qs.push(qa);
            flags.push(fl);
            credits.push(cr);
        }
        let bidx = kb.array_i64_init("bidx", &bidx_vals);
        let sink = kb.array_f64("sink", n);
        kb.begin_loop(n);
        let rb = kb.ref_affine(bidx, 1, 0);
        let rq = kb.ref_affine(qs[p], 1, 0);
        if producer {
            // q[i] = i (payload fill), flag[i/B] += credit[i/B] + 1
            // (publish the buffer, observing the consumer's credits).
            let rf = kb.ref_indirect(flags[p], rb, 0);
            let rc = kb.ref_indirect(credits[p], rb, 0);
            kb.stmt(rq, Expr::cvt(Expr::Ivar));
            kb.stmt(
                rf,
                Expr::add(Expr::Ref(rf), Expr::add(Expr::Ref(rc), Expr::ConstI(1))),
            );
        } else {
            // sink[i] = q[i] + 0.5 (drain), credit[i/B] = flag[i/B] + 1
            // (return the buffer, observing the producer's valid word).
            let rsink = kb.ref_affine(sink, 1, 0);
            let rf = kb.ref_indirect(flags[p], rb, 0);
            let rc = kb.ref_indirect(credits[p], rb, 0);
            kb.stmt(rsink, Expr::add(Expr::Ref(rq), Expr::ConstF(0.5)));
            kb.stmt(rc, Expr::add(Expr::Ref(rf), Expr::ConstI(1)));
        }
        kb.end_loop();
        kernels.push(kb.build().expect("queue kernel"));
    }
    CommWorkload {
        name: "queue".into(),
        kernels,
        rounds: n,
    }
}

/// Lock contention: every core read-modify-writes the same lock word
/// once per iteration (scale-0 ref — L1-resident until another core's
/// write invalidates it, which is every iteration) and runs a little
/// private critical-section work.
pub fn lock(scale: Scale, cores: usize) -> CommWorkload {
    assert!(cores >= 2, "lock contention needs at least two cores");
    let n = scale.pick(1024, 8 * 1024);
    let mut kernels = Vec::with_capacity(cores);
    for c in 0..cores {
        let mut kb = KernelBuilder::new(&format!("lock.c{c}"));
        let lockw = kb.array_i64("lockw", 8);
        kb.mark_comm(lockw);
        let work = kb.array_f64("work", n);
        kb.begin_loop(n);
        let rl = kb.ref_affine(lockw, 0, 0);
        let rw = kb.ref_affine(work, 1, 0);
        kb.stmt(rl, Expr::add(Expr::Ref(rl), Expr::ConstI(1)));
        kb.stmt(
            rw,
            Expr::add(
                Expr::mul(Expr::Ref(rw), Expr::ConstF(0.5)),
                Expr::ConstF(1.0 + c as f64),
            ),
        );
        kb.end_loop();
        kernels.push(kb.build().expect("lock kernel"));
    }
    CommWorkload {
        name: "lock".into(),
        kernels,
        rounds: n,
    }
}

/// Barrier arrival: each core bumps its own slot of one `arrive` line
/// and sums every core's slot (scale-0 refs — for ≤8 cores all slots
/// share one 64-byte line, so every arrival invalidates every waiter:
/// the textbook sense-reversing-barrier line ping-pong).
pub fn barrier(scale: Scale, cores: usize) -> CommWorkload {
    assert!(cores >= 2, "a barrier needs at least two cores");
    let n = scale.pick(1024, 8 * 1024);
    let slots = (cores as u64).max(8);
    let mut kernels = Vec::with_capacity(cores);
    for c in 0..cores {
        let mut kb = KernelBuilder::new(&format!("barrier.c{c}"));
        let arrive = kb.array_i64("arrive", slots);
        kb.mark_comm(arrive);
        kb.begin_loop(n);
        let mine = kb.ref_affine(arrive, 0, c as i64);
        let mut sum = Expr::ConstI(1);
        for o in 0..cores {
            let ro = if o == c {
                mine
            } else {
                kb.ref_affine(arrive, 0, o as i64)
            };
            sum = Expr::add(sum, Expr::Ref(ro));
        }
        kb.stmt(mine, sum);
        kb.end_loop();
        kernels.push(kb.build().expect("barrier kernel"));
    }
    CommWorkload {
        name: "barrier".into(),
        kernels,
        rounds: n,
    }
}

/// Request-serving: every core is a server draining short requests,
/// each request gathering `gathers_per_request` random elements from
/// one large comm-marked **read-mostly table** shared by all cores
/// (directory read-sharing and the MESIF Forwarder under load). The
/// per-core index streams differ (per-core seeds) while the declared
/// array list stays identical, so the chip-wide layouts agree.
pub fn request_serving(scale: Scale, cores: usize) -> RequestServingWorkload {
    assert!(cores >= 1);
    let requests = scale.pick(64, 512);
    let gathers = 16u64;
    let n = requests * gathers;
    let table_len = scale.pick(8 * 1024, 64 * 1024);
    let table_vals = rand_f64s(&mut rng(0x7AB1E), table_len);
    let mut kernels = Vec::with_capacity(cores);
    for c in 0..cores {
        let mut kb = KernelBuilder::new(&format!("serve.c{c}"));
        let table = kb.array_f64_init("table", &table_vals);
        kb.mark_comm(table);
        let idx = kb.array_i64_init("idx", &rand_idx(&mut rng(0x5EED + c as u64), n, table_len));
        let out = kb.array_f64("out", n);
        kb.begin_loop(n);
        let ridx = kb.ref_affine(idx, 1, 0);
        let rt = kb.ref_indirect(table, ridx, 0);
        let rout = kb.ref_affine(out, 1, 0);
        kb.stmt(
            rout,
            Expr::add(
                Expr::mul(Expr::Ref(rt), Expr::ConstF(0.5)),
                Expr::ConstF(1.0),
            ),
        );
        kb.end_loop();
        kernels.push(kb.build().expect("request-serving kernel"));
    }
    RequestServingWorkload {
        kernels,
        requests_per_core: requests,
        gathers_per_request: gathers,
        table_len,
    }
}

/// The pair-communication workload families at their default
/// parameters (queue with 64-slot buffers), for sweep drivers.
/// `cores` must be even.
pub fn all_comm(scale: Scale, cores: usize) -> Vec<CommWorkload> {
    vec![
        ping_pong(scale, cores),
        queue(scale, cores, 64),
        lock(scale, cores),
        barrier(scale, cores),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsim_compiler::interpret;

    fn decl_sig(k: &Kernel) -> Vec<(String, u64, bool)> {
        k.arrays
            .iter()
            .map(|a| (a.name.clone(), a.len, a.comm))
            .collect()
    }

    #[test]
    fn identical_declaration_lists_per_set() {
        for w in all_comm(Scale::Test, 4) {
            let sig0 = decl_sig(&w.kernels[0]);
            for k in &w.kernels[1..] {
                assert_eq!(decl_sig(k), sig0, "{}: diverging decls", w.name);
            }
            assert!(
                sig0.iter().any(|(_, _, comm)| *comm),
                "{}: no comm arrays",
                w.name
            );
        }
        let rs = request_serving(Scale::Test, 4);
        let sig0 = decl_sig(&rs.kernels[0]);
        for k in &rs.kernels[1..] {
            assert_eq!(decl_sig(k), sig0);
        }
        assert!(rs.kernels[0].arrays[0].comm, "table must be comm-marked");
    }

    #[test]
    fn all_comm_kernels_interpret_cleanly() {
        for w in all_comm(Scale::Test, 4) {
            for k in &w.kernels {
                interpret(k).unwrap_or_else(|e| panic!("{}: {e}", k.name));
            }
        }
        for k in &request_serving(Scale::Test, 2).kernels {
            interpret(k).unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = request_serving(Scale::Test, 2);
        let b = request_serving(Scale::Test, 2);
        for (ka, kb) in a.kernels.iter().zip(&b.kernels) {
            assert_eq!(ka.init, kb.init);
        }
        let qa = queue(Scale::Test, 2, 64);
        let qb = queue(Scale::Test, 2, 64);
        assert_eq!(qa.kernels[0].init, qb.kernels[0].init);
    }

    #[test]
    fn per_core_index_streams_differ() {
        let rs = request_serving(Scale::Test, 2);
        let idx_id = rs.kernels[0]
            .arrays
            .iter()
            .position(|a| a.name == "idx")
            .unwrap();
        assert_ne!(rs.kernels[0].init[idx_id], rs.kernels[1].init[idx_id]);
    }
}
