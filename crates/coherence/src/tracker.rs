//! Runtime coherence checker.
//!
//! The simulator's functional data always lives in a single backing
//! store, but the LM window and the SM hold *separate bytes*, so the
//! paper's replication invariants (§3.4) are directly checkable at run
//! time:
//!
//! 1. whenever data is replicated, either both copies are identical or
//!    the LM copy is the valid (newest) one — equivalently, an SM access
//!    to a chunk that is mapped to the LM must observe the same value the
//!    LM holds;
//! 2. LM accesses only touch buffers with a live mapping;
//! 3. the sequence of map / unmap / writeback / cache-fill / cache-evict
//!    events per chunk follows the Figure 6 state machine.
//!
//! The machine (root crate) feeds events in; violations are collected
//! rather than panicking so integration tests can assert on the full
//! list. The tracker costs time and is meant for tests and debugging —
//! benchmark runs disable it.

use crate::state::{DataEvent, DataState};
use std::collections::HashMap;

/// Which memory served an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessSide {
    /// The local memory.
    Lm,
    /// System memory (cache hierarchy).
    Sm,
}

/// A recorded violation of the protocol's invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoherenceViolation {
    /// Address (or chunk base) involved.
    pub addr: u64,
    /// Human-readable description.
    pub msg: String,
}

#[derive(Default)]
struct Chunk {
    state: DataState,
    /// Cache-resident lines of this chunk, with per-line level counts.
    resident: HashMap<u64, u32>,
}

impl Chunk {
    fn lines_resident(&self) -> bool {
        self.resident.values().any(|&c| c > 0)
    }
}

/// The runtime checker.
pub struct Tracker {
    chunk_mask: u64,
    chunk_size: u64,
    chunks: HashMap<u64, Chunk>,
    /// All violations recorded so far.
    pub violations: Vec<CoherenceViolation>,
    /// Count of events processed (to confirm the tracker was actually
    /// exercised by a test).
    pub events: u64,
}

impl Tracker {
    /// Creates a tracker with the given chunk (LM buffer) size.
    pub fn new(chunk_size: u64) -> Self {
        assert!(chunk_size.is_power_of_two());
        Tracker {
            chunk_mask: !(chunk_size - 1),
            chunk_size,
            chunks: HashMap::new(),
            violations: Vec::new(),
            events: 0,
        }
    }

    /// Reconfigures the chunk size (mirrors `dir.cfg`): all tracking
    /// state is reset, as the directory invalidates its entries.
    pub fn set_chunk_size(&mut self, chunk_size: u64) {
        assert!(chunk_size.is_power_of_two());
        self.chunk_mask = !(chunk_size - 1);
        self.chunk_size = chunk_size;
        self.chunks.clear();
    }

    /// The chunk base owning `addr`.
    #[inline]
    pub fn chunk_of(&self, addr: u64) -> u64 {
        addr & self.chunk_mask
    }

    fn violation(&mut self, addr: u64, msg: String) {
        self.violations.push(CoherenceViolation { addr, msg });
    }

    fn step(&mut self, chunk: u64, event: DataEvent) {
        self.events += 1;
        let c = self.chunks.entry(chunk).or_default();
        match c.state.step(event) {
            Ok(next) => c.state = next,
            Err(e) => {
                let msg = format!("chunk {chunk:#x}: {e}");
                self.violation(chunk, msg);
            }
        }
    }

    /// A `dma-get` mapped the chunk starting at `sm_chunk` into the LM.
    pub fn on_map(&mut self, sm_chunk: u64) {
        debug_assert_eq!(sm_chunk & !self.chunk_mask, 0, "map of unaligned chunk");
        self.step(sm_chunk, DataEvent::LmMap);
    }

    /// A `dma-get` overwrote the buffer that held `sm_chunk`.
    pub fn on_unmap(&mut self, sm_chunk: u64) {
        self.step(sm_chunk, DataEvent::LmUnmap);
    }

    /// A `dma-put` wrote `sm_chunk` back. The put's bus requests
    /// invalidate cached copies, so residency is cleared here; the cache
    /// model's matching invalidation events then find nothing to remove.
    pub fn on_writeback(&mut self, sm_chunk: u64) {
        if let Some(c) = self.chunks.get_mut(&sm_chunk) {
            c.resident.clear();
        }
        self.step(sm_chunk, DataEvent::LmWriteback);
    }

    /// A data-cache level filled `line`.
    pub fn on_cache_fill(&mut self, line: u64) {
        let chunk = self.chunk_of(line);
        if !self.chunks.contains_key(&chunk) {
            return; // never-mapped chunks are not tracked
        }
        let c = self.chunks.get_mut(&chunk).unwrap();
        let was_resident = c.lines_resident();
        *c.resident.entry(line).or_insert(0) += 1;
        if !was_resident {
            self.step(chunk, DataEvent::CmAccess);
        }
    }

    /// A data-cache level evicted or invalidated `line`.
    pub fn on_cache_evict(&mut self, line: u64) {
        let chunk = self.chunk_of(line);
        let Some(c) = self.chunks.get_mut(&chunk) else {
            return;
        };
        let Some(count) = c.resident.get_mut(&line) else {
            return; // cleared by a writeback, or never counted
        };
        if *count > 0 {
            *count -= 1;
        }
        if *count == 0 {
            c.resident.remove(&line);
        }
        if !self.chunks[&chunk].lines_resident() {
            // Last line gone: the cache replica disappeared.
            if self.chunks[&chunk].state.in_cache() {
                self.step(chunk, DataEvent::CmEvict);
            }
        }
    }

    /// Validates an access served by system memory. `identical` reports
    /// whether the SM bytes equal the LM bytes at the accessed location
    /// *after* the access (the machine compares both copies); it is
    /// `None` when the chunk is not LM-mapped.
    pub fn check_sm_access(&mut self, addr: u64, is_write: bool, identical: Option<bool>) {
        self.events += 1;
        let chunk = self.chunk_of(addr);
        let mapped = self
            .chunks
            .get(&chunk)
            .map(|c| c.state.in_lm())
            .unwrap_or(false);
        if !mapped {
            return;
        }
        match identical {
            Some(true) => {}
            Some(false) => {
                let what = if is_write {
                    "store diverged the copies"
                } else {
                    "load observed a stale copy"
                };
                let msg = format!(
                    "SM {} at {addr:#x}: chunk {chunk:#x} is LM-mapped and the copies differ ({what})",
                    if is_write { "write" } else { "read" },
                );
                self.violation(addr, msg);
            }
            None => {
                let msg = format!(
                    "machine reported chunk {chunk:#x} unmapped but tracker has it mapped (addr {addr:#x})"
                );
                self.violation(addr, msg);
            }
        }
    }

    /// Validates an access served by the local memory: the buffer must
    /// hold a live mapping of `sm_chunk` (`None` when the machine could
    /// not resolve one — always a violation).
    pub fn check_lm_access(&mut self, lm_addr: u64, sm_chunk: Option<u64>) {
        self.events += 1;
        match sm_chunk {
            None => {
                let msg = format!("LM access at {lm_addr:#x} to a buffer with no live mapping");
                self.violation(lm_addr, msg);
            }
            Some(chunk) => {
                let ok = self
                    .chunks
                    .get(&self.chunk_of(chunk))
                    .map(|c| c.state.in_lm())
                    .unwrap_or(false);
                if !ok {
                    let msg = format!(
                        "LM access at {lm_addr:#x}: tracker does not consider chunk {chunk:#x} mapped"
                    );
                    self.violation(lm_addr, msg);
                }
            }
        }
    }

    /// The current Figure 6 state of the chunk owning `addr`.
    pub fn state_of(&self, addr: u64) -> DataState {
        self.chunks
            .get(&self.chunk_of(addr))
            .map(|c| c.state)
            .unwrap_or_default()
    }

    /// True when no violations were recorded.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHUNK: u64 = 1024;

    fn tracker() -> Tracker {
        Tracker::new(CHUNK)
    }

    #[test]
    fn map_then_lm_access_is_clean() {
        let mut t = tracker();
        t.on_map(0x1000_0000);
        t.check_lm_access(0x7fff_0000_0000, Some(0x1000_0000));
        assert!(t.clean());
        assert_eq!(t.state_of(0x1000_0010), DataState::LM);
    }

    #[test]
    fn lm_access_without_mapping_flagged() {
        let mut t = tracker();
        t.check_lm_access(0x7fff_0000_0000, None);
        assert_eq!(t.violations.len(), 1);
        let mut t = tracker();
        t.check_lm_access(0x7fff_0000_0000, Some(0x1000_0000));
        assert_eq!(t.violations.len(), 1, "chunk never mapped");
    }

    #[test]
    fn sm_access_to_mapped_chunk_with_identical_copies_ok() {
        let mut t = tracker();
        t.on_map(0x1000_0000);
        t.check_sm_access(0x1000_0008, false, Some(true));
        t.check_sm_access(0x1000_0008, true, Some(true)); // double-store half
        assert!(t.clean());
    }

    #[test]
    fn stale_sm_read_flagged() {
        let mut t = tracker();
        t.on_map(0x1000_0000);
        t.check_sm_access(0x1000_0008, false, Some(false));
        assert_eq!(t.violations.len(), 1);
        assert!(t.violations[0].msg.contains("stale"));
    }

    #[test]
    fn diverging_sm_write_flagged() {
        let mut t = tracker();
        t.on_map(0x1000_0000);
        t.check_sm_access(0x1000_0008, true, Some(false));
        assert_eq!(t.violations.len(), 1);
        assert!(t.violations[0].msg.contains("diverged"));
    }

    #[test]
    fn sm_access_to_unmapped_chunk_ignored() {
        let mut t = tracker();
        t.check_sm_access(0x5000_0000, false, None);
        t.check_sm_access(0x5000_0000, true, None);
        assert!(t.clean());
    }

    #[test]
    fn unmap_then_sm_access_is_fine() {
        let mut t = tracker();
        t.on_map(0x1000_0000);
        t.on_unmap(0x1000_0000);
        t.check_sm_access(0x1000_0008, false, None);
        assert!(t.clean());
        assert_eq!(t.state_of(0x1000_0000), DataState::MM);
    }

    #[test]
    fn double_store_cache_fill_reaches_lmcm() {
        let mut t = tracker();
        t.on_map(0x1000_0000);
        // Plain half of the double store pulls the line into the caches.
        t.on_cache_fill(0x1000_0000);
        assert_eq!(t.state_of(0x1000_0000), DataState::LmCm);
        // Cache eviction drops back to LM.
        t.on_cache_evict(0x1000_0000);
        assert_eq!(t.state_of(0x1000_0000), DataState::LM);
        assert!(t.clean());
    }

    #[test]
    fn multi_level_residency_needs_all_evictions() {
        let mut t = tracker();
        t.on_map(0x1000_0000);
        // Same line filled at L1 and L2.
        t.on_cache_fill(0x1000_0000);
        t.on_cache_fill(0x1000_0000);
        t.on_cache_evict(0x1000_0000);
        assert_eq!(t.state_of(0x1000_0000), DataState::LmCm, "still in L2");
        t.on_cache_evict(0x1000_0000);
        assert_eq!(t.state_of(0x1000_0000), DataState::LM);
        assert!(t.clean());
    }

    #[test]
    fn writeback_clears_residency_without_evict_event() {
        let mut t = tracker();
        t.on_map(0x1000_0000);
        t.on_cache_fill(0x1000_0040);
        t.on_writeback(0x1000_0000);
        assert_eq!(t.state_of(0x1000_0000), DataState::LM);
        // The dma-put's invalidation arrives afterwards; it must not
        // produce an illegal CmEvict.
        t.on_cache_evict(0x1000_0040);
        assert!(t.clean(), "{:?}", t.violations);
    }

    #[test]
    fn unmap_without_map_is_a_violation() {
        let mut t = tracker();
        t.on_unmap(0x1000_0000);
        assert_eq!(t.violations.len(), 1);
        assert!(t.violations[0].msg.contains("illegal transition"));
    }

    #[test]
    fn fills_of_untracked_chunks_ignored() {
        let mut t = tracker();
        t.on_cache_fill(0x9000_0000);
        t.on_cache_evict(0x9000_0000);
        assert!(t.clean());
        assert_eq!(t.state_of(0x9000_0000), DataState::MM);
    }

    #[test]
    fn reconfigure_resets_tracking() {
        let mut t = tracker();
        t.on_map(0x1000_0000);
        t.set_chunk_size(4096);
        assert_eq!(t.state_of(0x1000_0000), DataState::MM);
        t.on_map(0x1000_0000);
        assert!(t.clean());
    }

    #[test]
    fn mapped_but_machine_says_unmapped_flagged() {
        let mut t = tracker();
        t.on_map(0x1000_0000);
        t.check_sm_access(0x1000_0008, false, None);
        assert_eq!(t.violations.len(), 1);
    }
}
