//! A sparse matrix-vector product on the hybrid memory system — the CG
//! scenario from the paper's evaluation: the gather `x[col[j]]` cannot be
//! disambiguated from the LM-mapped output vector, so the compiler guards
//! it, and the directory routes every access to the valid copy.
//!
//! ```text
//! cargo run --release --example spmv_guarded
//! ```

use hsim::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let rows = 24 * 1024u64;
    let x_len = 4096u64;
    let mut rng = StdRng::seed_from_u64(42);

    // CSR-ish: one nonzero per row keeps the IR simple while preserving
    // the access pattern (value stream + column stream + gather).
    let vals: Vec<f64> = (0..rows).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let cols: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..x_len as i64)).collect();
    let xs: Vec<f64> = (0..x_len).map(|_| rng.gen_range(-1.0..1.0)).collect();

    let mut kb = KernelBuilder::new("spmv");
    let a = kb.array_f64_init("val", &vals);
    let col = kb.array_i64_init("col", &cols);
    let x = kb.array_f64_init("x", &xs);
    let y = kb.array_f64("y", rows);
    kb.begin_loop(rows);
    let ra = kb.ref_affine(a, 1, 0);
    let rcol = kb.ref_affine(col, 1, 0);
    let rx = kb.ref_indirect(x, rcol, 0);
    let ry = kb.ref_affine(y, 1, 0);
    kb.stmt(
        ry,
        Expr::add(Expr::Ref(ry), Expr::mul(Expr::Ref(ra), Expr::Ref(rx))),
    );
    // The compiler cannot prove x != y: the gather is guarded.
    kb.alias_mut().may_alias(x, y);
    kb.end_loop();
    let kernel = kb.build().unwrap();

    let hybrid = RunSpec::new(&kernel)
        .mode(SysMode::HybridCoherent)
        .track(false)
        .run()
        .map(RunOutcome::into_single)
        .unwrap();
    let cache = RunSpec::new(&kernel)
        .mode(SysMode::CacheBased)
        .track(false)
        .run()
        .map(RunOutcome::into_single)
        .unwrap();
    println!("SpMV, {} rows, x of {} elements:", rows, x_len);
    println!(
        "  hybrid coherent : {:>9} cycles (AMAT {:.2}, {} guarded gathers via the directory)",
        hybrid.cycles, hybrid.amat, hybrid.dir_accesses
    );
    println!(
        "  cache-based     : {:>9} cycles (AMAT {:.2})",
        cache.cycles, cache.amat
    );
    println!(
        "  speedup         : {:.2}x",
        cache.cycles as f64 / hybrid.cycles as f64
    );
}
