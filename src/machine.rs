//! The machine: one simulated core wired to its memory world.
//!
//! [`Machine`] assembles the out-of-order core (`hsim-core`), the memory
//! hierarchy + LM + DMAC (`hsim-mem`), the coherence directory
//! (`hsim-coherence`) and the functional backing store into the three
//! systems of the evaluation:
//!
//! * [`SysMode::HybridCoherent`] — the paper's proposal: guarded accesses
//!   look up the directory in the AGU and are diverted to the LM on a
//!   hit (stalling on unset presence bits); `dma-get` updates the
//!   directory; potentially incoherent writes arrive as double stores.
//! * [`SysMode::HybridOracle`] — Figure 8's baseline: same LM and DMA,
//!   but no directory hardware; oracle-routed accesses are served by the
//!   memory holding the valid copy at zero cost.
//! * [`SysMode::CacheBased`] — §4.3's comparison system: no LM, 64 KB
//!   L1D.
//!
//! When coherence tracking is enabled, every functional access, DMA
//! command and cache residency change is replayed through the
//! `hsim-coherence` tracker, asserting the §3.4 invariants for the whole
//! run.

use hsim_coherence::{DirConfig, Directory, Tracker};
use hsim_compiler::{CodegenMode, CompiledKernel, Kernel, ShardError};
use hsim_core::pipeline::SimError;
use hsim_core::{Core, CoreConfig, DmaKind, MemSide, MemoryPort, PortDiagnostics, RouteInfo};
use hsim_isa::memmap::{MemoryMap, Region};
use hsim_isa::{Program, Route, Width};
use hsim_mem::{Level, MemConfig, MemSystem, PagedMem, SharedBackside};
use std::cell::RefCell;
use std::rc::Rc;

/// Which of the evaluation's three systems to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SysMode {
    /// The proposal: hybrid memory system + coherence protocol.
    HybridCoherent,
    /// The incoherent hybrid with an oracle compiler (Figure 8 baseline).
    HybridOracle,
    /// The cache-based system (§4.3 comparison).
    CacheBased,
}

impl SysMode {
    /// The matching code-generation mode.
    pub fn codegen(self) -> CodegenMode {
        match self {
            SysMode::HybridCoherent => CodegenMode::HybridCoherent,
            SysMode::HybridOracle => CodegenMode::HybridOracle,
            SysMode::CacheBased => CodegenMode::CacheBased,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SysMode::HybridCoherent => "Hybrid coherent",
            SysMode::HybridOracle => "Hybrid oracle",
            SysMode::CacheBased => "Cache-based",
        }
    }

    /// All three modes.
    pub const ALL: [SysMode; 3] = [
        SysMode::HybridCoherent,
        SysMode::HybridOracle,
        SysMode::CacheBased,
    ];
}

/// Full machine configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Core parameters (Table 1).
    pub core: CoreConfig,
    /// Memory-system parameters (Table 1).
    pub mem: MemConfig,
    /// System mode.
    pub mode: SysMode,
    /// Run the coherence tracker (tests; costs time).
    pub track_coherence: bool,
    /// Extra AGU cycles charged per directory lookup (0 per §3.2's CACTI
    /// argument; the `ablate_dir_latency` bench raises it).
    pub dir_lookup_extra_cycles: u64,
}

impl MachineConfig {
    /// The standard configuration for a mode.
    pub fn for_mode(mode: SysMode) -> Self {
        let mem = match mode {
            SysMode::CacheBased => MemConfig::cache_based(),
            _ => MemConfig::hybrid(),
        };
        MachineConfig {
            core: CoreConfig::default(),
            mem,
            mode,
            track_coherence: false,
            dir_lookup_extra_cycles: 0,
        }
    }

    /// Enables the runtime coherence checker.
    pub fn with_tracking(mut self) -> Self {
        self.track_coherence = true;
        self
    }

    /// Disables event-horizon cycle skipping (the `lockstep: true`
    /// escape hatch): `run` walks every cycle through the per-stage tick
    /// loop. Reports are bit-identical either way; the equivalence tests
    /// pin that claim against this mode.
    pub fn with_lockstep(mut self) -> Self {
        self.core.lockstep = true;
        self
    }

    /// Restores the pre-banking backside (the `flat_dram: true` escape
    /// hatch): a single monolithic single-ported L3 bank and a
    /// fixed-latency DRAM channel with no row-buffer or write-queue
    /// state, with the inter-core coherence mode pinned to `Replicate`
    /// (the flat backside predates the MESI directory). Runs under this
    /// configuration are bit-identical to the revisions before the
    /// banked backside landed; the identity tests pin that against
    /// recorded cycle counts.
    pub fn with_flat_backside(mut self) -> Self {
        self.mem.l3_geometry.banks = 1;
        self.mem.dram.flat_dram = true;
        self.mem.dram_channels = 1;
        self.mem.coherence.mode = hsim_core::config::CoherenceMode::Replicate;
        self
    }

    /// Selects the inter-core coherence model of the shared backside
    /// (overriding the `HSIM_COHERENCE` environment default):
    /// `Replicate` keeps per-core private replicas of every cacheable
    /// line; `Mesi` serves the sharder's replicated-whole arrays from
    /// shared, directory-tracked lines. Committed architectural state is
    /// identical either way — each tile's functional backing store is
    /// private — only timing and traffic differ.
    pub fn with_coherence(mut self, mode: hsim_core::config::CoherenceMode) -> Self {
        self.mem.coherence.mode = mode;
        self
    }

    /// Installs a deterministic fault-injection plan
    /// ([`hsim_mem::FaultConfig`]): seeded transient DRAM read errors,
    /// DMA timeouts and directory NACKs, recovered by bounded
    /// retry/backoff. Faults perturb timing only — architectural
    /// results are identical at any rate, and `FaultConfig::none()`
    /// (the default) is bit-identical to a machine with no plan at all;
    /// the fault-injection proptests pin both claims.
    pub fn with_faults(mut self, fault: hsim_mem::FaultConfig) -> Self {
        self.mem.fault = fault;
        self
    }
}

/// Everything the core's [`MemoryPort`] needs (split from the core for
/// borrow reasons).
pub struct World {
    /// The memory hierarchy, LM and DMAC.
    pub mem: MemSystem,
    /// The coherence directory (hybrid modes only).
    pub dir: Option<Directory>,
    /// The functional backing store.
    pub backing: PagedMem,
    /// The runtime coherence checker, when enabled.
    pub tracker: Option<Tracker>,
    mmap: MemoryMap,
    mode: SysMode,
    dir_extra: u64,
}

/// A simulated machine: core + world.
pub struct Machine {
    /// The out-of-order core.
    pub core: Core,
    /// The memory world.
    pub world: World,
    /// The configuration it was built with.
    pub cfg: MachineConfig,
}

impl Machine {
    /// Builds a single-core machine executing `program` (private L3 +
    /// DRAM backside).
    pub fn new(cfg: MachineConfig, program: Program) -> Self {
        let backside = Rc::new(RefCell::new(SharedBackside::new(&cfg.mem, 1)));
        Machine::with_backside(cfg, program, backside, 0)
    }

    /// Builds one core (tile) of a machine whose L3/DRAM backside is
    /// shared with other cores. The coherence hardware — LM, directory,
    /// tracker — stays strictly per core (§3).
    pub fn with_backside(
        cfg: MachineConfig,
        program: Program,
        backside: Rc<RefCell<SharedBackside>>,
        core_id: usize,
    ) -> Self {
        let mmap = MemoryMap::default();
        let mut mem = MemSystem::with_backside(cfg.mem.clone(), backside, core_id);
        let has_lm = cfg.mem.lm.is_some();
        let dir = has_lm.then(|| Directory::new(DirConfig::default()));
        let track = cfg.track_coherence && has_lm;
        if track {
            mem.enable_events();
        }
        let tracker =
            track.then(|| Tracker::new(dir.as_ref().map(|d| d.buf_size()).unwrap_or(1024)));
        Machine {
            core: Core::new(cfg.core.clone(), program, mmap.clone()),
            world: World {
                mem,
                dir,
                backing: PagedMem::new(),
                tracker,
                mmap,
                mode: cfg.mode,
                dir_extra: cfg.dir_lookup_extra_cycles,
            },
            cfg,
        }
    }

    /// Builds a machine for a compiled kernel and loads its initial data.
    pub fn for_kernel(cfg: MachineConfig, ck: &CompiledKernel, kernel: &Kernel) -> Self {
        assert_eq!(
            cfg.mode.codegen(),
            ck.mode,
            "machine mode must match the kernel's codegen mode"
        );
        let mut m = Machine::new(cfg, ck.program.clone());
        m.load_data(ck, kernel);
        m
    }

    /// Writes the kernel's initial array data into the backing store.
    pub fn load_data(&mut self, ck: &CompiledKernel, kernel: &Kernel) {
        for (id, init) in kernel.init.iter().enumerate() {
            let base = ck.layout.arrays[id].base;
            for (i, bits) in init.iter().enumerate() {
                if *bits != 0 {
                    self.world.backing.write_u64(base + i as u64 * 8, *bits);
                }
            }
        }
    }

    /// Runs to completion.
    pub fn run(&mut self) -> Result<(), SimError> {
        self.core.run(&mut self.world)
    }

    /// Runs to completion, attributing host time to scheduler phases
    /// (see [`hsim_core::HostProfile`]).
    pub fn run_profiled(&mut self, prof: &mut hsim_core::HostProfile) -> Result<(), SimError> {
        self.core.run_profiled(&mut self.world, prof)
    }

    /// Reads back an array's contents (raw element bits).
    pub fn read_array(&self, ck: &CompiledKernel, kernel: &Kernel, id: usize) -> Vec<u64> {
        let base = ck.layout.arrays[id].base;
        (0..kernel.arrays[id].len)
            .map(|i| self.world.backing.read_u64(base + i * 8))
            .collect()
    }

    /// Coherence violations recorded by the tracker (0 when disabled).
    pub fn violations(&self) -> usize {
        self.world
            .tracker
            .as_ref()
            .map(|t| t.violations.len())
            .unwrap_or(0)
    }

    /// Builds an `n`-core machine: per-core tiles (pipeline, L1/L2, TLB,
    /// prefetcher, LM, DMAC and coherence directory) in front of one
    /// shared L3 + DRAM backside, one program per core. See
    /// [`MultiMachine`] for the lock-step execution model.
    ///
    /// If the configuration's `l3_port_gap` is 0 (the single-core
    /// default, an ideally-ported L3), it is raised to
    /// [`MultiMachine::DEFAULT_L3_PORT_GAP`] so the shared port is a real
    /// contended resource; set it explicitly to model anything else.
    ///
    /// This is the homogeneous wrapper around
    /// [`Machine::new_multi_hetero`]: every tile gets a clone of `cfg`.
    pub fn new_multi(n: usize, cfg: MachineConfig, programs: Vec<Program>) -> MultiMachine {
        Machine::new_multi_hetero(vec![cfg; n], programs)
    }

    /// Builds a **heterogeneous** machine: tile `i` is configured by
    /// `cfgs[i]` and runs `programs[i]`. Tiles may differ in anything
    /// private to a tile — core parameters, `SysMode` (hybrid and
    /// cache-based tiles coexist on one chip), L1/L2 geometry, LM size
    /// or absence, prefetcher, MSHRs, DMA engine — but must agree on
    /// the *shared* backside slice (L3 array and banking, DRAM
    /// controller, port occupancy, inter-core coherence model), because
    /// there is only one L3 and one memory channel per chip
    /// ([`hsim_mem::MemConfig::backside_compatible`]; violations
    /// panic). Per-core stat partitioning and the event horizons are
    /// geometry-independent, so everything the homogeneous machine
    /// guarantees — exact per-core shares, bit-identical cycle skipping
    /// — holds for mixed chips too.
    ///
    /// Any tile whose `l3_port_gap` is 0 is raised to
    /// [`MultiMachine::DEFAULT_L3_PORT_GAP`], mirroring
    /// [`Machine::new_multi`].
    pub fn new_multi_hetero(mut cfgs: Vec<MachineConfig>, programs: Vec<Program>) -> MultiMachine {
        let n = cfgs.len();
        assert!(n >= 1, "a machine needs at least one core");
        assert_eq!(programs.len(), n, "one program per core");
        for cfg in &mut cfgs {
            if cfg.mem.l3_port_gap == 0 {
                cfg.mem.l3_port_gap = MultiMachine::DEFAULT_L3_PORT_GAP;
            }
        }
        for (i, cfg) in cfgs.iter().enumerate().skip(1) {
            assert!(
                cfgs[0].mem.backside_compatible(&cfg.mem),
                "tile {i}'s configuration disagrees with tile 0 on the shared \
                 backside slice (L3 geometry/banking, DRAM, port gap, coherence); \
                 heterogeneous tiles may only differ above the L3"
            );
        }
        let backside = Rc::new(RefCell::new(SharedBackside::new(&cfgs[0].mem, n)));
        let tiles = cfgs
            .into_iter()
            .zip(programs)
            .enumerate()
            .map(|(core_id, (cfg, p))| {
                Machine::with_backside(cfg, p, Rc::clone(&backside), core_id)
            })
            .collect();
        MultiMachine {
            tiles,
            backside,
            rr_start: 0,
            replication_fallbacks: 0,
            sched: None,
        }
    }
}

/// Persistent event-horizon scheduler state between [`MultiMachine::run_until`]
/// calls. Carrying the heap, live count, machine cycle and stretch flag
/// across calls makes a chunked run (`run_until(e1)`, `run_until(e2)`, …)
/// execute the *exact* operation sequence of one monolithic
/// [`MultiMachine::run`] — including each tile's `skipped_cycles` —
/// rather than merely an equivalent one.
struct SchedState {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    live: usize,
    mcycle: u64,
    /// The machine was mid lock-step stretch (every live tile busy) when
    /// the previous `run_until` hit its limit.
    in_stretch: bool,
}

/// Runs `f`, charging its wall-clock time to `secs`/`count` when `on`.
/// Monomorphized away entirely when the caller passes a const `false`.
#[inline(always)]
fn timed<T>(on: bool, secs: &mut f64, count: &mut u64, f: impl FnOnce() -> T) -> T {
    if on {
        let t0 = std::time::Instant::now();
        let r = f();
        *secs += t0.elapsed().as_secs_f64();
        *count += 1;
        r
    } else {
        f()
    }
}

/// An `n`-core machine: per-core [`Machine`] tiles sharing one L3 + DRAM
/// backside.
///
/// The execution model is lock-step: every machine cycle, each non-halted
/// core ticks once, and the order rotates each cycle so backside port
/// conflicts resolve round-robin rather than always favoring core 0.
/// [`MultiMachine::run`] drives that model event-style — idle stretches
/// where no tile can make progress are jumped in one step — with results
/// bit-identical to ticking every cycle (see its docs).
/// Everything the paper's protocol adds — LM, directory, guarded AGU
/// path, DMAC — is private per tile and never interacts across cores
/// (§3: the protocol "does not interact with the inter-core cache
/// coherence protocol"). Under `CoherenceMode::Replicate` the only
/// cross-core coupling is timing through the shared backside; under
/// `CoherenceMode::Mesi` a *real* inter-core protocol runs below the
/// tiles — per-L3-bank directory slices serving the sharder's
/// replicated-whole arrays from shared lines — and the §3 claim is
/// demonstrated against it: the per-tile hybrid machinery is untouched
/// by the mode, and the coherence-tracker invariants hold identically
/// in both (pinned by the `mesi_directory` integration tests).
pub struct MultiMachine {
    /// The per-core tiles, indexed by core id.
    pub tiles: Vec<Machine>,
    backside: Rc<RefCell<SharedBackside>>,
    rr_start: usize,
    /// Shared-marked arrays whose shard layouts diverged, silently
    /// served from per-core replicas instead (see
    /// [`MultiMachine::replication_fallbacks`]).
    replication_fallbacks: u64,
    /// Scheduler state carried across [`MultiMachine::run_until`] calls
    /// (`None` before the first call and after completion).
    sched: Option<SchedState>,
}

impl MultiMachine {
    /// Shared-L3 port occupancy (cycles per request) used when the
    /// caller's configuration left the single-core ideal port in place.
    pub const DEFAULT_L3_PORT_GAP: u64 = 4;

    /// Builds an `n`-core machine from compiled kernels: tile `i` runs
    /// `shards[i]`'s program with its data loaded. Use
    /// [`hsim_compiler::Kernel::shard`] to slice one kernel across cores.
    pub fn for_kernels(cfg: MachineConfig, shards: &[(CompiledKernel, Kernel)]) -> MultiMachine {
        MultiMachine::for_kernels_hetero(vec![cfg; shards.len()], shards)
    }

    /// The heterogeneous sibling of [`MultiMachine::for_kernels`]: tile
    /// `i` is built from `cfgs[i]` and runs `shards[i]`, whose codegen
    /// mode must match that tile's `SysMode` (compile each shard for
    /// its tile — hybrid tiles with [`hsim_compiler::compile`] or a
    /// per-tile LM budget via [`hsim_compiler::compile_with_lm`],
    /// cache-based tiles with their own codegen). Use
    /// [`hsim_compiler::Kernel::shard_weighted`] to match iteration
    /// counts to tile strength. Shared-range registration works across
    /// mixed modes: the data layout is mode-independent, so a
    /// cache-based tile and a hybrid tile can serve one read-only array
    /// from the same directory-tracked lines under
    /// `CoherenceMode::Mesi`.
    pub fn for_kernels_hetero(
        cfgs: Vec<MachineConfig>,
        shards: &[(CompiledKernel, Kernel)],
    ) -> MultiMachine {
        MultiMachine::try_for_kernels_hetero(cfgs, shards)
            .expect("communication-array layouts diverge across the kernels")
    }

    /// Like [`MultiMachine::for_kernels_hetero`], but surfaces the one
    /// construction failure that must not be papered over: a
    /// **communication array** ([`hsim_compiler::ArrayDecl::comm`] —
    /// flags, queue slots, locks, shared request tables) whose layouts
    /// diverge across the per-core kernels. Read-only sharder-derived
    /// shared arrays keep the counted per-core replication fallback
    /// (their values replicate correctly; only sharing timing is lost),
    /// but replicating a *written* comm array would silently turn the
    /// communication pattern into private traffic — a wrong-timing run
    /// masquerading as communication — so it is refused with
    /// [`ShardError::CommLayoutDiverged`] instead.
    pub fn try_for_kernels_hetero(
        cfgs: Vec<MachineConfig>,
        shards: &[(CompiledKernel, Kernel)],
    ) -> Result<MultiMachine, ShardError> {
        assert_eq!(cfgs.len(), shards.len(), "one configuration per shard");
        let programs = cfgs
            .iter()
            .zip(shards)
            .enumerate()
            .map(|(i, (cfg, (ck, _)))| {
                assert_eq!(
                    cfg.mode.codegen(),
                    ck.mode,
                    "tile {i}: machine mode must match the kernel's codegen mode"
                );
                ck.program.clone()
            })
            .collect();
        let mut m = Machine::new_multi_hetero(cfgs, programs);
        for (tile, (ck, kernel)) in m.tiles.iter_mut().zip(shards) {
            tile.load_data(ck, kernel);
        }
        m.register_shared_ranges(shards)?;
        Ok(m)
    }

    /// Registers the sharder's read-only replicated-whole arrays
    /// (`ArrayDecl::shared`) as cross-core shared address ranges with
    /// the backside, so `CoherenceMode::Mesi` can serve them from
    /// shared directory-tracked lines instead of per-core replicas.
    /// (Under `Replicate` the registration is recorded but never
    /// consulted.)
    ///
    /// An array is only registered when **every** shard's layout places
    /// it at the same base with the same size. Shards with uneven
    /// slice lengths (e.g. from [`hsim_compiler::Kernel::shard_weighted`])
    /// can lay out later arrays at diverging addresses (the per-array
    /// LM-size alignment absorbs most, but not all, length
    /// differences); a range that diverges across shards would alias
    /// one core's table lines with another core's unrelated private
    /// data, so such arrays fall back to per-core replication instead —
    /// counted in [`MultiMachine::replication_fallbacks`] so the
    /// fallback is visible in reports rather than silent.
    ///
    /// **Communication arrays** ([`hsim_compiler::ArrayDecl::comm`]) are
    /// registered through the same agreement check but get the opposite
    /// failure mode: they may be written, so the replication fallback
    /// would produce a wrong-timing run — divergence is a hard
    /// [`ShardError::CommLayoutDiverged`] instead of a counter bump.
    fn register_shared_ranges(
        &mut self,
        shards: &[(CompiledKernel, Kernel)],
    ) -> Result<(), ShardError> {
        let Some((ck0, k0)) = shards.first() else {
            return Ok(());
        };
        let backside = self.backside();
        for (id, decl) in k0.arrays.iter().enumerate() {
            if !decl.shared && !decl.comm {
                continue;
            }
            let slot = (ck0.layout.arrays[id].base, ck0.layout.arrays[id].bytes);
            let agree = shards.iter().all(|(ck, k)| {
                (k.arrays[id].shared || k.arrays[id].comm)
                    && (ck.layout.arrays[id].base, ck.layout.arrays[id].bytes) == slot
            });
            if agree {
                backside.borrow_mut().mark_shared_range(slot.0, slot.1);
            } else if decl.comm {
                return Err(ShardError::CommLayoutDiverged {
                    name: decl.name.clone(),
                });
            } else {
                self.replication_fallbacks += 1;
            }
        }
        Ok(())
    }

    /// How many shared-marked arrays could **not** be registered as
    /// cross-core shared ranges because the shards' layouts diverged
    /// (uneven slices moving later arrays): those arrays are served
    /// from per-core replicas even under `CoherenceMode::Mesi`. 0 on
    /// evenly-sharded and single-core machines. Surfaced through
    /// `MultiRunReport::replication_fallbacks` and the `coherence` /
    /// `hetero` bench outputs.
    pub fn replication_fallbacks(&self) -> u64 {
        self.replication_fallbacks
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.tiles.len()
    }

    /// The shared backside (contention statistics, aggregate L3/DRAM).
    pub fn backside(&self) -> Rc<RefCell<SharedBackside>> {
        Rc::clone(&self.backside)
    }

    /// Whether every core has halted.
    pub fn all_halted(&self) -> bool {
        self.tiles.iter().all(|t| t.core.halted())
    }

    /// Advances every non-halted core by one cycle, in rotating
    /// (round-robin) order.
    pub fn tick_all(&mut self) -> Result<(), SimError> {
        let n = self.tiles.len();
        for k in 0..n {
            let i = (self.rr_start + k) % n;
            let tile = &mut self.tiles[i];
            if !tile.core.halted() {
                tile.core.tick(&mut tile.world)?;
            }
        }
        self.rr_start = (self.rr_start + 1) % n;
        Ok(())
    }

    /// Runs the whole machine to completion (every core halted).
    ///
    /// Execution is event-driven: a min-heap of per-tile event horizons
    /// ([`hsim_core::Core::skip_target`], clamped by each tile's
    /// memory-side pending work) finds the earliest cycle at which any
    /// core can make progress. When that lies beyond the current cycle,
    /// every live tile bulk-advances to it in one step and the rotating
    /// round-robin origin moves by the same amount, so backside
    /// arbitration order — and with it every statistic — stays
    /// bit-identical to the naive lock-step loop. Tiles whose horizon is
    /// still in the future at an executed cycle have a provable no-op
    /// cycle and are advanced instead of ticked. Building the machine
    /// with `lockstep: true` in the core configuration falls back to the
    /// naive loop (the equivalence tests compare the two).
    pub fn run(&mut self) -> Result<(), SimError> {
        let mut prof = hsim_core::HostProfile::default();
        self.run_until_gen::<false>(u64::MAX, &mut prof)
    }

    /// Runs to completion like [`MultiMachine::run`], attributing host
    /// wall-clock time to the scheduler's tick / advance / horizon-scan
    /// phases in `prof` (the `simspeed --profile` instrumentation). The
    /// simulated outcome is identical; only host timing is added.
    pub fn run_profiled(&mut self, prof: &mut hsim_core::HostProfile) -> Result<(), SimError> {
        self.run_until_gen::<true>(u64::MAX, prof)
    }

    /// Runs the machine until every core halts **or** the machine cycle
    /// reaches `limit`: no tick executes at a cycle ≥ `limit`, and no
    /// event at or past it is processed. Scheduler state persists on the
    /// machine between calls, so a chunked run — `run_until(e)` for an
    /// increasing sequence of epoch boundaries — performs the *exact*
    /// operation sequence of one monolithic `run`, leaving every
    /// statistic (skip counters included) bit-identical. This is what
    /// the epoch-synchronized cluster driver calls once per epoch.
    pub fn run_until(&mut self, limit: u64) -> Result<(), SimError> {
        let mut prof = hsim_core::HostProfile::default();
        self.run_until_gen::<false>(limit, &mut prof)
    }

    fn run_until_gen<const PROF: bool>(
        &mut self,
        limit: u64,
        prof: &mut hsim_core::HostProfile,
    ) -> Result<(), SimError> {
        if self.tiles.iter().any(|t| t.cfg.core.lockstep) {
            while !self.all_halted() {
                let now = self
                    .tiles
                    .iter()
                    .filter(|t| !t.core.halted())
                    .map(|t| t.core.now())
                    .max()
                    .unwrap_or(0);
                if now >= limit {
                    return Ok(());
                }
                timed(PROF, &mut prof.tick_secs, &mut prof.ticks, || {
                    self.tick_all()
                })?;
            }
            return Ok(());
        }
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.tiles.len();
        // Resume the previous call's scheduler state, or build it fresh.
        // All live tiles share the same cycle (the lock-step invariant);
        // `mcycle` tracks it so the loop never rescans the tiles for it.
        let mut st = match self.sched.take() {
            Some(st) => st,
            None => {
                let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(n);
                let mut live = 0usize;
                let mut mcycle = 0u64;
                for (i, tile) in self.tiles.iter().enumerate() {
                    if !tile.core.halted() {
                        live += 1;
                        mcycle = mcycle.max(tile.core.now());
                        heap.push(Reverse((
                            timed(
                                PROF,
                                &mut prof.horizon_secs,
                                &mut prof.horizon_scans,
                                || Self::tile_target(tile),
                            ),
                            i,
                        )));
                    }
                }
                SchedState {
                    heap,
                    live,
                    mcycle,
                    in_stretch: false,
                }
            }
        };
        let mut busy: Vec<usize> = Vec::with_capacity(n);
        let mut is_due: Vec<bool> = vec![false; n];
        loop {
            if st.in_stretch {
                // Every live tile is busy: stay in a plain lock-step
                // stretch (no heap traffic) until one of them quiesces
                // or halts, then rebuild the horizons.
                debug_assert!(st.heap.is_empty());
                loop {
                    if st.mcycle >= limit {
                        self.sched = Some(st);
                        return Ok(());
                    }
                    let mut stretch_over = false;
                    for k in 0..n {
                        let i = (self.rr_start + k) % n;
                        let tile = &mut self.tiles[i];
                        if tile.core.halted() {
                            continue;
                        }
                        if tile.core.progress_certain() {
                            // A commit or dispatch is guaranteed this
                            // tick: the fingerprint provably changes,
                            // skip both probes.
                            timed(PROF, &mut prof.tick_secs, &mut prof.ticks, || {
                                tile.core.tick(&mut tile.world)
                            })?;
                            if tile.core.halted() {
                                st.live -= 1;
                                stretch_over = true;
                            }
                            continue;
                        }
                        let before = tile.core.progress_fingerprint();
                        timed(PROF, &mut prof.tick_secs, &mut prof.ticks, || {
                            tile.core.tick(&mut tile.world)
                        })?;
                        if tile.core.halted() {
                            st.live -= 1;
                            stretch_over = true;
                        } else if tile.core.progress_fingerprint() == before {
                            stretch_over = true;
                        }
                    }
                    self.rr_start = (self.rr_start + 1) % n;
                    st.mcycle += 1;
                    if stretch_over || st.live == 0 {
                        break;
                    }
                }
                st.in_stretch = false;
                for (i, tile) in self.tiles.iter().enumerate() {
                    if !tile.core.halted() {
                        st.heap.push(Reverse((
                            timed(
                                PROF,
                                &mut prof.horizon_secs,
                                &mut prof.horizon_scans,
                                || Self::tile_target(tile),
                            ),
                            i,
                        )));
                    }
                }
            }
            let Some(&Reverse((event, _))) = st.heap.peek() else {
                break;
            };
            if event >= limit {
                self.sched = Some(st);
                return Ok(());
            }
            // Fast-forward the machine to the earliest pending event.
            if event > st.mcycle {
                let skipped = event - st.mcycle;
                self.rr_start = (self.rr_start + (skipped % n as u64) as usize) % n;
                for tile in &mut self.tiles {
                    if !tile.core.halted() {
                        timed(PROF, &mut prof.advance_secs, &mut prof.advances, || {
                            tile.core.advance_to(event)
                        });
                    }
                }
            }
            // Pop every tile due at this cycle.
            let mut due_count = 0usize;
            while let Some(&Reverse((t, i))) = st.heap.peek() {
                if t > event {
                    break;
                }
                st.heap.pop();
                is_due[i] = true;
                due_count += 1;
            }
            // Walk all live tiles in the rotating round-robin order the
            // naive loop would use: due tiles tick; every other live
            // tile's cycle is a provable no-op (its horizon lies further
            // out, and no-op cycles generate no port traffic), accounted
            // by a one-cycle advance in its round-robin slot — so even a
            // mid-cycle error leaves every tile exactly where the naive
            // loop would have.
            let rr = self.rr_start;
            self.rr_start = (self.rr_start + 1) % n;
            let all_due = due_count == st.live;
            busy.clear();
            for k in 0..n {
                let i = (rr + k) % n;
                let tile = &mut self.tiles[i];
                if tile.core.halted() {
                    continue;
                }
                if !is_due[i] {
                    timed(PROF, &mut prof.advance_secs, &mut prof.advances, || {
                        tile.core.advance_to(event + 1)
                    });
                    continue;
                }
                is_due[i] = false;
                if tile.core.progress_certain() {
                    // Provably commits or dispatches — the fingerprint
                    // would change, so the tile stays busy without
                    // either probe.
                    timed(PROF, &mut prof.tick_secs, &mut prof.ticks, || {
                        tile.core.tick(&mut tile.world)
                    })?;
                    if tile.core.halted() {
                        st.live -= 1;
                    } else {
                        busy.push(i);
                    }
                    continue;
                }
                let before = tile.core.progress_fingerprint();
                timed(PROF, &mut prof.tick_secs, &mut prof.ticks, || {
                    tile.core.tick(&mut tile.world)
                })?;
                if tile.core.halted() {
                    st.live -= 1;
                } else if tile.core.progress_fingerprint() != before {
                    // A tile that moved something stays due next cycle;
                    // only quiesced tiles pay for a horizon scan.
                    busy.push(i);
                } else {
                    st.heap.push(Reverse((
                        timed(
                            PROF,
                            &mut prof.horizon_secs,
                            &mut prof.horizon_scans,
                            || Self::tile_target(tile),
                        ),
                        i,
                    )));
                }
            }
            st.mcycle = event + 1;
            if all_due && st.live > 0 && busy.len() == due_count {
                st.in_stretch = true;
            } else {
                for &i in &busy {
                    st.heap.push(Reverse((st.mcycle, i)));
                }
            }
        }
        Ok(())
    }

    /// One tile's next-event cycle: the core's clamped horizon, further
    /// clamped by its memory side's pending work.
    fn tile_target(tile: &Machine) -> u64 {
        let mem_event = tile.world.next_mem_event_at(tile.core.now());
        tile.core.skip_target(mem_event)
    }

    /// Parallel makespan: the cycle count of the slowest core.
    pub fn makespan(&self) -> u64 {
        self.tiles
            .iter()
            .map(|t| t.core.stats.cycles)
            .max()
            .unwrap_or(0)
    }

    /// Total coherence violations over all tiles (tracking runs only).
    pub fn violations(&self) -> usize {
        self.tiles.iter().map(|t| t.violations()).sum()
    }
}

impl World {
    /// Resolves the routing of a memory access (the pre-MMU range check
    /// plus, for guarded/oracle accesses, the directory).
    fn route_access(&mut self, addr: u64, route: Route) -> RouteInfo {
        match self.mmap.region(addr) {
            Region::LocalMem => RouteInfo {
                side: MemSide::Lm,
                addr,
                dir_lookup: false,
                dir_hit: false,
                ready_at: 0,
            },
            Region::Mmio | Region::SysMem => {
                let effective = match (route, self.mode) {
                    (Route::Plain, _) | (_, SysMode::CacheBased) => Route::Plain,
                    (r, _) => r,
                };
                match effective {
                    Route::Plain => RouteInfo {
                        side: MemSide::Sm,
                        addr,
                        dir_lookup: false,
                        dir_hit: false,
                        ready_at: 0,
                    },
                    Route::Guarded => {
                        let dir = self.dir.as_mut().expect("guarded access without directory");
                        match dir.lookup(addr) {
                            Some(hit) => RouteInfo {
                                side: MemSide::Lm,
                                addr: hit.lm_addr,
                                dir_lookup: true,
                                dir_hit: true,
                                ready_at: hit.ready_at,
                            },
                            None => RouteInfo {
                                side: MemSide::Sm,
                                addr,
                                dir_lookup: true,
                                dir_hit: false,
                                ready_at: 0,
                            },
                        }
                    }
                    Route::Oracle => {
                        // No hardware: routed by whichever memory holds
                        // the valid copy, which the (functional) mapping
                        // identifies. No stats, no energy, no stalls.
                        let dir = self.dir.as_ref().expect("oracle access without directory");
                        match dir.lookup_quiet(addr) {
                            Some(hit) => RouteInfo {
                                side: MemSide::Lm,
                                addr: hit.lm_addr,
                                dir_lookup: false,
                                dir_hit: true,
                                ready_at: 0,
                            },
                            None => RouteInfo {
                                side: MemSide::Sm,
                                addr,
                                dir_lookup: false,
                                dir_hit: false,
                                ready_at: 0,
                            },
                        }
                    }
                }
            }
        }
    }

    fn read_value(&self, addr: u64, width: Width) -> u64 {
        match width {
            Width::B => self.backing.read_u8(addr) as u64,
            Width::W => self.backing.read_u32(addr) as i32 as i64 as u64,
            Width::D => self.backing.read_u64(addr),
        }
    }

    fn write_value(&mut self, addr: u64, bits: u64, width: Width) {
        match width {
            Width::B => self.backing.write_u8(addr, bits as u8),
            Width::W => self.backing.write_u32(addr, bits as u32),
            Width::D => self.backing.write_u64(addr, bits),
        }
    }

    fn drain_events_into_tracker(&mut self) {
        if self.tracker.is_none() {
            return;
        }
        let events = self.mem.drain_events();
        let t = self.tracker.as_mut().unwrap();
        for e in events {
            if e.fill {
                t.on_cache_fill(e.line);
            } else {
                t.on_cache_evict(e.line);
            }
        }
    }

    /// For an SM access to `addr`: `Some(identical)` when the owning
    /// chunk is LM-mapped (comparing both copies at the access width),
    /// `None` otherwise.
    fn copies_identical(&self, addr: u64, width: Width) -> Option<bool> {
        let dir = self.dir.as_ref()?;
        let hit = dir.lookup_quiet(addr)?;
        Some(self.read_value(addr, width) == self.read_value(hit.lm_addr, width))
    }

    /// The SM chunk currently held by the LM buffer owning `lm_addr`.
    fn lm_mapping_of(&self, lm_addr: u64) -> Option<u64> {
        let dir = self.dir.as_ref()?;
        let idx = dir.buf_index(lm_addr)?;
        dir.mapped_chunk(idx)
    }
}

impl MemoryPort for World {
    fn exec_mem(
        &mut self,
        _pc: u64,
        addr: u64,
        width: Width,
        route: Route,
        store: Option<u64>,
    ) -> (u64, RouteInfo) {
        let info = self.route_access(addr, route);
        let value = match store {
            Some(bits) => {
                self.write_value(info.addr, bits, width);
                // An oracle store that hits the LM also keeps the SM copy
                // up to date: the magic oracle compiler of Figure 8 never
                // loses data to an unmapped read-only buffer, without
                // paying for a second store. (The coherent machine pays
                // for this with the explicit double store instead.)
                if route == Route::Oracle && info.side == MemSide::Lm {
                    self.write_value(addr, bits, width);
                }
                0
            }
            None => self.read_value(info.addr, width),
        };
        if self.tracker.is_some() {
            match info.side {
                MemSide::Lm => {
                    let chunk = self.lm_mapping_of(info.addr);
                    if let Some(t) = &mut self.tracker {
                        t.check_lm_access(info.addr, chunk);
                    }
                }
                MemSide::Sm => {
                    let identical = self.copies_identical(info.addr, width);
                    if let Some(t) = &mut self.tracker {
                        t.check_sm_access(info.addr, store.is_some(), identical);
                    }
                }
            }
        }
        (value, info)
    }

    fn timing_access(&mut self, now: u64, pc: u64, info: &RouteInfo, write: bool) -> (u64, Level) {
        let extra = if info.dir_lookup { self.dir_extra } else { 0 };
        match info.side {
            MemSide::Lm => {
                let r = self.mem.lm_access(write);
                (r.latency + extra, Level::Lm)
            }
            MemSide::Sm => {
                let r = self.mem.data_access(now, pc, info.addr, write);
                self.drain_events_into_tracker();
                (r.latency + extra, r.served)
            }
        }
    }

    fn exec_dma(&mut self, now: u64, kind: DmaKind, lm: u64, sm: u64, bytes: u64, tag: u8) -> u64 {
        match kind {
            DmaKind::Get => {
                let done = self.mem.dma_get(now, sm, bytes, tag);
                self.drain_events_into_tracker();
                self.backing.copy(lm, sm, bytes);
                if let Some(dir) = &mut self.dir {
                    let old = dir.buf_index(lm).and_then(|i| dir.mapped_chunk(i));
                    dir.update_get(lm, sm, done)
                        .unwrap_or_else(|e| panic!("dma-get: {e}"));
                    if let Some(t) = &mut self.tracker {
                        if let Some(old_chunk) = old {
                            t.on_unmap(old_chunk);
                        }
                        t.on_map(sm);
                    }
                }
                done
            }
            DmaKind::Put => {
                // The writeback semantically precedes its invalidation
                // bus requests.
                if let Some(t) = &mut self.tracker {
                    t.on_writeback(sm & !(self.dir.as_ref().map(|d| d.offset_mask()).unwrap_or(0)));
                }
                let done = self.mem.dma_put(now, sm, bytes, tag);
                self.drain_events_into_tracker();
                self.backing.copy(sm, lm, bytes);
                done
            }
        }
    }

    fn dma_synch(&mut self, now: u64, tag: u8) -> u64 {
        self.mem.dma_synch(now, tag)
    }

    fn dir_configure(&mut self, buf_size: u64) {
        if let Some(dir) = &mut self.dir {
            dir.configure(buf_size)
                .unwrap_or_else(|e| panic!("dir.cfg: {e}"));
        }
        if let Some(t) = &mut self.tracker {
            t.set_chunk_size(buf_size);
        }
    }

    fn fetch_latency(&mut self, now: u64, pc_addr: u64) -> u64 {
        self.mem.inst_fetch(now, pc_addr)
    }

    fn next_mem_event_at(&self, now: u64) -> Option<u64> {
        self.mem.next_event_at(now)
    }

    fn stall_diagnostics(&self, now: u64) -> PortDiagnostics {
        PortDiagnostics {
            core: self.mem.core_id(),
            mshr_in_flight: self.mem.mshr.in_flight(now),
            dma_tags: self.mem.dmac.in_flight_tags(now),
        }
    }
}
