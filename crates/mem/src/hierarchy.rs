//! The memory system: per-core L1I/L1D/L2 + TLB + prefetcher + LM + DMAC
//! in front of a **shared L3 + DRAM backside**.
//!
//! This is the component the simulated core talks to. It reproduces the
//! architecture of the paper's Figure 1 and Table 1:
//!
//! * **Demand accesses** to system memory consult the TLB, train the
//!   prefetcher, and walk L1D → L2 → L3 → DRAM with MSHR merging, LRU
//!   fills and write-back cascades. The L1D is write-through (Table 1), so
//!   store hits forward the write to L2.
//! * **Local-memory accesses** bypass the TLB and the whole hierarchy with
//!   a fixed 2-cycle latency.
//! * **DMA transfers** are coherent with the caches: each `dma-get` bus
//!   request snoops the hierarchy for a newer copy, and each `dma-put` bus
//!   request invalidates matching lines (paper §2.1), exactly the
//!   accounting Table 3 includes in its per-level access counts.
//!
//! The L3 and the DRAM channel live in [`SharedBackside`], which one or
//! more per-core [`MemSystem`] tiles share (the paper's §3 multicore
//! integration: everything above the L3 — and the whole LM/directory
//! apparatus — is strictly per core, while the last-level cache and
//! memory channel are chip-wide resources). The backside arbitrates a
//! single L3 port, attributes every access to the requesting core, and
//! keeps per-core contention statistics (bus waits, DRAM traffic).
//! Single-core systems embed a private one-core backside, preserving the
//! original behavior.

use crate::cache::{AccessKind, Cache, CacheConfig, CacheStats, WritePolicy};
use crate::dma::{DmaConfig, DmaOp, Dmac};
use crate::lm::{LmConfig, LocalMem};
use crate::mshr::{MshrFile, MshrOutcome};
use crate::prefetch::{PrefetchConfig, StreamPrefetcher};
use crate::tlb::{Tlb, TlbConfig};
use std::cell::RefCell;
use std::rc::Rc;

/// Which component served an access (for AMAT and replay accounting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// L1 data (or instruction) cache.
    L1,
    /// Unified L2.
    L2,
    /// Unified (shared) L3.
    L3,
    /// Main memory.
    Dram,
    /// Local memory (scratchpad).
    Lm,
    /// Store-to-load forwarding inside the LSQ (set by the core).
    Forward,
    /// Non-cacheable MMIO (DMAC registers).
    Mmio,
}

/// A residency change in the data-cache hierarchy, streamed to the
/// coherence tracker when event collection is enabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheEvent {
    /// Line-aligned address.
    pub line: u64,
    /// True for a line placement, false for an eviction/invalidation.
    pub fill: bool,
}

/// Result of a data access.
#[derive(Clone, Copy, Debug)]
pub struct AccessResponse {
    /// Total latency in cycles, including any TLB penalty.
    pub latency: u64,
    /// The component that served the access.
    pub served: Level,
    /// TLB miss penalty included in `latency` (0 on TLB hit or LM access).
    pub tlb_penalty: u64,
}

/// DRAM timing configuration.
#[derive(Clone, Debug)]
pub struct DramConfig {
    /// Access latency in cycles.
    pub latency: u64,
    /// Minimum gap between line transfers on the channel (bandwidth).
    pub gap: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            latency: 200,
            gap: 12,
        }
    }
}

/// DRAM statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Line reads.
    pub reads: u64,
    /// Line writes (posted).
    pub writes: u64,
}

struct Dram {
    cfg: DramConfig,
    busy_until: u64,
    stats: DramStats,
}

impl Dram {
    fn read(&mut self, now: u64) -> u64 {
        self.stats.reads += 1;
        let start = now.max(self.busy_until);
        self.busy_until = start + self.cfg.gap;
        (start - now) + self.cfg.latency
    }

    fn write_posted(&mut self, now: u64) {
        self.stats.writes += 1;
        let start = now.max(self.busy_until);
        self.busy_until = start + self.cfg.gap;
    }
}

/// Full memory-system configuration.
#[derive(Clone, Debug)]
pub struct MemConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Unified L3 (shared across cores in a multi-core machine).
    pub l3: CacheConfig,
    /// Number of L1D MSHR entries.
    pub mshr_entries: usize,
    /// Prefetcher configuration.
    pub prefetch: PrefetchConfig,
    /// TLB configuration.
    pub tlb: TlbConfig,
    /// DRAM configuration.
    pub dram: DramConfig,
    /// Occupancy of the shared L3 port per request, in cycles. 0 models
    /// an ideally-ported L3 (the single-core configuration); multi-core
    /// machines raise it to model backside bus contention.
    pub l3_port_gap: u64,
    /// Local memory (absent in the cache-based system).
    pub lm: Option<LmConfig>,
    /// DMA controller configuration.
    pub dma: DmaConfig,
}

impl MemConfig {
    /// The hybrid memory system of Table 1: 32 KB L1D + 32 KB LM.
    ///
    /// One deviation from Table 1 is documented in DESIGN.md: the paper's
    /// 24-way 256 KB L2 implies a non-power-of-two set count, so we model
    /// a 16-way L2 of the same capacity.
    pub fn hybrid() -> Self {
        MemConfig {
            l1i: CacheConfig {
                name: "L1I",
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: 2,
                write_policy: WritePolicy::WriteThrough,
            },
            l1d: CacheConfig {
                name: "L1D",
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: 2,
                write_policy: WritePolicy::WriteThrough,
            },
            l2: CacheConfig {
                name: "L2",
                size_bytes: 256 * 1024,
                ways: 16,
                line_bytes: 64,
                latency: 15,
                write_policy: WritePolicy::WriteBack,
            },
            l3: CacheConfig {
                name: "L3",
                size_bytes: 4 * 1024 * 1024,
                ways: 32,
                line_bytes: 64,
                latency: 40,
                write_policy: WritePolicy::WriteBack,
            },
            mshr_entries: 48,
            prefetch: PrefetchConfig::default(),
            tlb: TlbConfig::default(),
            dram: DramConfig::default(),
            l3_port_gap: 0,
            lm: Some(LmConfig::default()),
            dma: DmaConfig::default(),
        }
    }

    /// The cache-based comparison system of §4.3: no LM, and for fairness
    /// the L1D capacity is doubled to 64 KB (32 KB L1 + 32 KB LM in the
    /// hybrid system).
    pub fn cache_based() -> Self {
        let mut cfg = Self::hybrid();
        cfg.l1d.size_bytes = 64 * 1024;
        cfg.lm = None;
        cfg
    }
}

/// Per-core share of the shared backside's activity: what this core's
/// requests did to the L3, the DRAM channel and the arbitrated bus.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BacksideCoreStats {
    /// This core's L3 activity (same accounting as a private L3 would
    /// report; summing over cores reproduces the shared array's totals).
    pub l3: CacheStats,
    /// DRAM lines moved on behalf of this core.
    pub dram: DramStats,
    /// Arbitrated backside requests issued by this core.
    pub bus_requests: u64,
    /// Cycles this core's requests spent waiting for the L3 port
    /// (0 whenever the machine is uncontended or `l3_port_gap` is 0).
    pub bus_wait_cycles: u64,
}

/// Core-id tag position inside backside line addresses. SM addresses are
/// below the LM window (`< 2^46`), so tagging keeps per-core private
/// lines distinct in the shared arrays — the address-space separation a
/// real machine gets from physical allocation.
const CORE_TAG_SHIFT: u32 = 48;

/// The chip-wide memory backside: one shared L3 and one DRAM channel,
/// arbitrated among `n` per-core [`MemSystem`] tiles.
///
/// All per-core tiles of one machine hold an `Rc<RefCell<...>>` to the
/// same backside; the lock-step multi-core driver ticks cores in a
/// rotating (round-robin) order, so port conflicts resolve fairly.
/// Every method takes the requesting core's id and attributes activity
/// to its [`BacksideCoreStats`].
pub struct SharedBackside {
    /// The shared last-level cache (aggregate statistics; per-core shares
    /// live in [`BacksideCoreStats`]).
    pub l3: Cache,
    dram: Dram,
    l3_port_gap: u64,
    l3_busy_until: u64,
    per_core: Vec<BacksideCoreStats>,
    /// Per-core residency-event queues (coherence tracking); `None`
    /// entries collect nothing.
    events: Vec<Option<Vec<CacheEvent>>>,
}

impl SharedBackside {
    /// Builds a backside for `n_cores` tiles from the shared slice of a
    /// memory configuration.
    pub fn new(cfg: &MemConfig, n_cores: usize) -> Self {
        assert!(n_cores >= 1, "backside needs at least one core");
        SharedBackside {
            l3: Cache::new(cfg.l3.clone()),
            dram: Dram {
                cfg: cfg.dram.clone(),
                busy_until: 0,
                stats: DramStats::default(),
            },
            l3_port_gap: cfg.l3_port_gap,
            l3_busy_until: 0,
            per_core: vec![BacksideCoreStats::default(); n_cores],
            events: (0..n_cores).map(|_| None).collect(),
        }
    }

    /// Number of cores sharing this backside.
    pub fn n_cores(&self) -> usize {
        self.per_core.len()
    }

    /// This core's share of the backside activity.
    pub fn core_stats(&self, core: usize) -> BacksideCoreStats {
        self.per_core[core]
    }

    /// Aggregate DRAM statistics (all cores).
    pub fn dram_total_stats(&self) -> DramStats {
        self.dram.stats
    }

    #[inline]
    fn tag(core: usize, line: u64) -> u64 {
        debug_assert!(line < 1 << CORE_TAG_SHIFT, "address overflows the core tag");
        line | (core as u64) << CORE_TAG_SHIFT
    }

    #[inline]
    fn untag(tagged: u64) -> (usize, u64) {
        (
            (tagged >> CORE_TAG_SHIFT) as usize,
            tagged & ((1 << CORE_TAG_SHIFT) - 1),
        )
    }

    fn push_event(&mut self, core: usize, line: u64, fill: bool) {
        if let Some(q) = &mut self.events[core] {
            q.push(CacheEvent { line, fill });
        }
    }

    fn push_victim_event(&mut self, tagged: u64) {
        let (owner, line) = Self::untag(tagged);
        self.push_event(owner, line, false);
    }

    /// Enables residency-event collection for one core.
    pub fn enable_events(&mut self, core: usize) {
        self.events[core] = Some(Vec::new());
    }

    /// Drains the events queued for one core.
    pub fn take_events(&mut self, core: usize) -> Vec<CacheEvent> {
        match &mut self.events[core] {
            Some(q) => std::mem::take(q),
            None => Vec::new(),
        }
    }

    /// Arbitrates the shared L3 port: the request starts once the port is
    /// free, and the wait is charged to the requesting core.
    fn arbitrate(&mut self, core: usize, now: u64) -> u64 {
        self.per_core[core].bus_requests += 1;
        if self.l3_port_gap == 0 {
            return now; // ideally-ported L3: no occupancy, no waits
        }
        let start = now.max(self.l3_busy_until);
        self.l3_busy_until = start + self.l3_port_gap;
        self.per_core[core].bus_wait_cycles += start - now;
        start
    }

    /// An L3 lookup (and, on miss, the DRAM walk) for `line_addr` on
    /// behalf of `core`. `now` is the cycle the request reaches the L3
    /// (after the L2 latency). Returns the latency beyond the L2 and the
    /// serving level.
    pub fn access(
        &mut self,
        core: usize,
        now: u64,
        line_addr: u64,
        kind: AccessKind,
    ) -> (u64, Level) {
        let a = Self::tag(core, line_addr);
        let start = self.arbitrate(core, now);
        let wait = start - now;
        let l3_latency = self.l3.cfg.latency;
        let hit = self.l3.access(a, kind);
        {
            let s = &mut self.per_core[core].l3;
            match (kind, hit) {
                (AccessKind::Read, true) => s.read_hits += 1,
                (AccessKind::Read, false) => s.read_misses += 1,
                (AccessKind::Write, true) => s.write_hits += 1,
                (AccessKind::Write, false) => s.write_misses += 1,
                (AccessKind::Prefetch, true) => s.prefetch_hits += 1,
                (AccessKind::Prefetch, false) => {}
            }
        }
        if hit {
            return (wait + l3_latency, Level::L3);
        }
        let dram_latency = self.dram.read(start + l3_latency);
        self.per_core[core].dram.reads += 1;
        let prefetched = kind == AccessKind::Prefetch;
        if let Some(ev) = self.l3.fill(a, false, prefetched) {
            self.push_victim_event(ev.addr);
            if ev.dirty {
                self.dram.write_posted(start);
                let s = &mut self.per_core[core];
                s.dram.writes += 1;
                s.l3.writebacks_out += 1;
            }
        }
        {
            let s = &mut self.per_core[core].l3;
            s.fills += 1;
            if prefetched {
                s.prefetch_fills += 1;
            }
        }
        self.push_event(core, line_addr, true);
        (wait + l3_latency + dram_latency, Level::Dram)
    }

    /// Accepts a dirty line written back by a core's L2 (eviction
    /// cascade); dirty L3 victims continue to DRAM.
    pub fn accept_writeback(&mut self, core: usize, now: u64, line_addr: u64) {
        let a = Self::tag(core, line_addr);
        let had = self.l3.probe(a);
        if let Some(ev) = self.l3.writeback_fill(a) {
            self.push_victim_event(ev.addr);
            if ev.dirty {
                self.dram.write_posted(now);
                let s = &mut self.per_core[core];
                s.dram.writes += 1;
                s.l3.writebacks_out += 1;
            }
        }
        let s = &mut self.per_core[core].l3;
        s.writebacks_in += 1;
        if !had {
            // The write-back allocated a line (the shared array counts
            // this as a fill inside `writeback_fill`).
            s.fills += 1;
            self.push_event(core, line_addr, true);
        }
    }

    /// A write-through store that missed the core's L2: updates the L3
    /// copy when resident, otherwise posts the write to DRAM.
    pub fn writethrough(&mut self, core: usize, now: u64, line_addr: u64) {
        let a = Self::tag(core, line_addr);
        self.per_core[core].l3.writethrough_writes += 1;
        if !self.l3.writethrough_from_above(a) {
            self.dram.write_posted(now);
            self.per_core[core].dram.writes += 1;
        }
    }

    /// A `dma-get` bus-request snoop that missed the core's L1/L2.
    pub fn snoop(&mut self, core: usize, line_addr: u64) -> bool {
        self.per_core[core].l3.snoops += 1;
        self.l3.snoop(Self::tag(core, line_addr))
    }

    /// A `dma-put` bus-request invalidation. Returns whether the line was
    /// resident.
    pub fn invalidate(&mut self, core: usize, line_addr: u64) -> bool {
        self.per_core[core].l3.invalidations += 1;
        let present = self.l3.invalidate(Self::tag(core, line_addr)).is_some();
        if present {
            self.push_event(core, line_addr, false);
        }
        present
    }

    /// Counts a DRAM line read with no timing (DMA transfers are timed by
    /// the DMAC; the channel accounting still belongs here).
    pub fn note_dram_read(&mut self, core: usize) {
        self.dram.stats.reads += 1;
        self.per_core[core].dram.reads += 1;
    }

    /// Counts a DRAM line write with no timing (DMA write-back traffic).
    pub fn note_dram_write(&mut self, core: usize) {
        self.dram.stats.writes += 1;
        self.per_core[core].dram.writes += 1;
    }

    /// Whether `line_addr` (a core-local address) is resident in the
    /// shared L3 on behalf of `core`.
    pub fn probe(&self, core: usize, line_addr: u64) -> bool {
        self.l3.probe(Self::tag(core, line_addr))
    }

    /// The earliest backside resource release strictly after `now` — the
    /// shared L3 port or the DRAM channel freeing up — if any. Part of
    /// the memory-side event horizon: cycle-skipping cores never jump
    /// past it, so arbitration-relevant backside state is observed at the
    /// cycle it changes.
    pub fn next_event_after(&self, now: u64) -> Option<u64> {
        [self.l3_busy_until, self.dram.busy_until]
            .into_iter()
            .filter(|&t| t > now)
            .min()
    }
}

/// The per-core memory tile plus its handle on the shared backside.
pub struct MemSystem {
    /// Configuration (geometry reported by Table 1 binaries).
    pub cfg: MemConfig,
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified L2.
    pub l2: Cache,
    /// L1D miss-status holding registers.
    pub mshr: MshrFile,
    /// IP-based stream prefetcher.
    pub prefetcher: StreamPrefetcher,
    /// Data TLB (bypassed by LM accesses).
    pub tlb: Tlb,
    /// Local memory, when configured.
    pub lm: Option<LocalMem>,
    /// DMA controller.
    pub dmac: Dmac,
    /// Residency event stream for the coherence tracker (`None`
    /// disables collection; benchmarks keep it off).
    pub events: Option<Vec<CacheEvent>>,
    backside: Rc<RefCell<SharedBackside>>,
    core_id: usize,
}

impl MemSystem {
    /// Builds a single-core memory system with a private backside.
    pub fn new(cfg: MemConfig) -> Self {
        let backside = Rc::new(RefCell::new(SharedBackside::new(&cfg, 1)));
        Self::with_backside(cfg, backside, 0)
    }

    /// Builds one core's tile in front of a shared backside.
    ///
    /// Panics if `core_id` is out of range for the backside.
    pub fn with_backside(
        cfg: MemConfig,
        backside: Rc<RefCell<SharedBackside>>,
        core_id: usize,
    ) -> Self {
        assert!(
            core_id < backside.borrow().n_cores(),
            "core_id {core_id} out of range for the shared backside"
        );
        MemSystem {
            l1i: Cache::new(cfg.l1i.clone()),
            l1d: Cache::new(cfg.l1d.clone()),
            l2: Cache::new(cfg.l2.clone()),
            mshr: MshrFile::new(cfg.mshr_entries),
            prefetcher: StreamPrefetcher::new(cfg.prefetch.clone()),
            tlb: Tlb::new(cfg.tlb.clone()),
            lm: cfg.lm.clone().map(LocalMem::new),
            dmac: Dmac::new(cfg.dma.clone()),
            events: None,
            backside,
            core_id,
            cfg,
        }
    }

    /// The shared backside this tile sits in front of.
    pub fn shared_backside(&self) -> Rc<RefCell<SharedBackside>> {
        Rc::clone(&self.backside)
    }

    /// This tile's core id within the shared backside.
    pub fn core_id(&self) -> usize {
        self.core_id
    }

    /// Enables residency-event collection (coherence-tracker runs).
    pub fn enable_events(&mut self) {
        self.events = Some(Vec::new());
        self.backside.borrow_mut().enable_events(self.core_id);
    }

    /// Drains collected residency events (this core's tile plus its share
    /// of backside events).
    pub fn drain_events(&mut self) -> Vec<CacheEvent> {
        self.pull_backside_events();
        match &mut self.events {
            Some(v) => std::mem::take(v),
            None => Vec::new(),
        }
    }

    /// Appends this core's pending backside events to the local stream,
    /// preserving the order relative to L1/L2 events.
    fn pull_backside_events(&mut self) {
        if let Some(v) = &mut self.events {
            let mut incoming = self.backside.borrow_mut().take_events(self.core_id);
            v.append(&mut incoming);
        }
    }

    #[inline]
    fn ev(&mut self, line: u64, fill: bool) {
        if let Some(v) = &mut self.events {
            v.push(CacheEvent { line, fill });
        }
    }

    /// DRAM traffic moved on behalf of this core.
    pub fn dram_stats(&self) -> DramStats {
        self.backside.borrow().core_stats(self.core_id).dram
    }

    /// This core's share of the shared-L3 activity.
    pub fn l3_stats(&self) -> CacheStats {
        self.backside.borrow().core_stats(self.core_id).l3
    }

    /// This core's backside contention statistics.
    pub fn backside_stats(&self) -> BacksideCoreStats {
        self.backside.borrow().core_stats(self.core_id)
    }

    /// Whether this core's `addr` is resident in the shared L3.
    pub fn l3_probe(&self, addr: u64) -> bool {
        let line = self.l2.line_addr(addr);
        self.backside.borrow().probe(self.core_id, line)
    }

    /// A local-memory access: fixed latency, no TLB, no cache activity.
    ///
    /// Panics if the system has no LM (the machine must not route LM
    /// accesses here in cache-based mode).
    pub fn lm_access(&mut self, write: bool) -> AccessResponse {
        let lm = self.lm.as_mut().expect("lm_access on a system without LM");
        AccessResponse {
            latency: lm.access(write),
            served: Level::Lm,
            tlb_penalty: 0,
        }
    }

    /// A demand access to system memory from instruction at `pc`.
    pub fn data_access(&mut self, now: u64, pc: u64, addr: u64, write: bool) -> AccessResponse {
        let tlb_penalty = self.tlb.access(addr);
        let now = now + tlb_penalty;

        // Train the prefetcher and issue its fills before the demand
        // access so a just-prefetched line does not count as a demand hit
        // for the line that triggered it.
        let line_bytes = self.cfg.l1d.line_bytes;
        let targets = self.prefetcher.observe(pc, addr, line_bytes);
        for t in targets {
            self.prefetch_line(now, t);
        }

        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        if self.l1d.access(addr, kind) {
            if write {
                self.writethrough_below(now, addr);
            }
            // The line may have been placed by a miss whose fetch is still
            // in flight; such accesses wait on the MSHR entry (secondary
            // miss merge).
            let line_addr = self.l1d.line_addr(addr);
            let latency = match self.mshr.pending_ready(line_addr, now) {
                Some(ready) => (ready - now).max(self.cfg.l1d.latency),
                None => self.cfg.l1d.latency,
            };
            return AccessResponse {
                latency: latency + tlb_penalty,
                served: Level::L1,
                tlb_penalty,
            };
        }

        // L1 miss: allocate or merge in the MSHR file.
        let line_addr = self.l1d.line_addr(addr);
        let (latency, served) = match self.mshr.lookup_or_allocate(line_addr, now) {
            MshrOutcome::Merged { ready_at } => {
                ((ready_at - now).max(self.cfg.l1d.latency), Level::L1)
            }
            MshrOutcome::Allocated { idx, start_at } => {
                let (below, served) = self.walk_l2(start_at, line_addr, kind);
                let total = (start_at - now) + self.cfg.l1d.latency + below;
                self.mshr.set_ready(idx, now + total);
                // Place the line in L1 (write-through L1 victims are
                // always clean).
                if let Some(ev) = self.l1d.fill(line_addr, false, false) {
                    self.ev(ev.addr, false);
                }
                self.ev(line_addr, true);
                (total, served)
            }
        };
        if write {
            // Write-allocate + write-through: after the fill, the write
            // updates L1 and is forwarded below.
            self.writethrough_below(now, addr);
        }
        AccessResponse {
            latency: latency + tlb_penalty,
            served,
            tlb_penalty,
        }
    }

    /// Propagates a write-through store below L1. The walk above
    /// guarantees L2 normally holds the line; when it does not, the write
    /// keeps descending into the shared backside (and is posted to DRAM
    /// at the bottom).
    fn writethrough_below(&mut self, now: u64, addr: u64) {
        let a2 = self.l2.line_addr(addr);
        if self.l2.writethrough_from_above(a2) {
            return;
        }
        self.backside
            .borrow_mut()
            .writethrough(self.core_id, now, a2);
    }

    /// Walks L2 and then the shared L3 → DRAM backside for a missing L1
    /// line. Returns the latency beyond L1 and the serving level.
    fn walk_l2(&mut self, now: u64, line_addr: u64, kind: AccessKind) -> (u64, Level) {
        if self.l2.access(line_addr, kind) {
            return (self.cfg.l2.latency, Level::L2);
        }
        let (below, served) = self.backside.borrow_mut().access(
            self.core_id,
            now + self.cfg.l2.latency,
            line_addr,
            kind,
        );
        self.pull_backside_events();
        // Fill L2; dirty victims cascade into the backside.
        if let Some(ev) = self.l2.fill(line_addr, false, kind == AccessKind::Prefetch) {
            self.ev(ev.addr, false);
            if ev.dirty {
                self.backside
                    .borrow_mut()
                    .accept_writeback(self.core_id, now, ev.addr);
                self.pull_backside_events();
            }
        }
        self.ev(line_addr, true);
        (self.cfg.l2.latency + below, served)
    }

    /// Issues one prefetch to `line` (fills L1, L2 and L3 as in Table 1).
    ///
    /// The fill is tracked in the MSHR file with its real completion
    /// time, so demand accesses that catch up with an in-flight prefetch
    /// wait for the remaining latency (prefetch *timeliness* matters:
    /// simple loops can outrun the prefetcher, §4.3).
    fn prefetch_line(&mut self, now: u64, line: u64) {
        if self.l1d.access(line, AccessKind::Prefetch) {
            return; // already resident: counted as a prefetch hit
        }
        // Bring the line in below (counts L2/L3 activity), then fill
        // upward flagged as prefetched.
        let (latency, _) = self.walk_l2(now, line, AccessKind::Prefetch);
        if let Some(ev) = self.l1d.fill(line, false, true) {
            self.ev(ev.addr, false);
        }
        self.ev(line, true);
        // Record the in-flight window so demand accesses that catch up
        // with this prefetch wait for it.
        if let crate::mshr::MshrOutcome::Allocated { idx, start_at } =
            self.mshr.lookup_or_allocate(line, now)
        {
            self.mshr.set_ready(idx, start_at + latency);
        }
    }

    /// Instruction fetch of the line containing `addr`.
    pub fn inst_fetch(&mut self, now: u64, addr: u64) -> u64 {
        if self.l1i.access(addr, AccessKind::Read) {
            return self.cfg.l1i.latency;
        }
        let line = self.l1i.line_addr(addr);
        let (below, _) = self.walk_l2(now, line, AccessKind::Read);
        self.l1i.fill(line, false, false);
        self.cfg.l1i.latency + below
    }

    /// Executes the bus side of a `dma-get`: snoops the hierarchy for
    /// every line of `[sm_addr, sm_addr+bytes)` (paper §2.1: "the bus
    /// requests generated by a dma-get look for the data in the caches")
    /// and returns the command completion cycle.
    pub fn dma_get(&mut self, now: u64, sm_addr: u64, bytes: u64, tag: u8) -> u64 {
        let line = self.cfg.l1d.line_bytes;
        let mut a = sm_addr & !(line - 1);
        while a < sm_addr + bytes {
            // Snoop top-down; stop at the first level holding the line.
            if !self.l1d.snoop(a) && !self.l2.snoop(a) {
                let mut bs = self.backside.borrow_mut();
                if !bs.snoop(self.core_id, a) {
                    bs.note_dram_read(self.core_id);
                }
            }
            a += line;
        }
        if let Some(lm) = self.lm.as_mut() {
            lm.note_dma_in(bytes);
        }
        self.dmac.issue(DmaOp::Get, bytes, tag, now)
    }

    /// Executes the bus side of a `dma-put`: copies to main memory and
    /// invalidates every matching cache line in the whole hierarchy
    /// (paper §2.1). Returns the command completion cycle.
    pub fn dma_put(&mut self, now: u64, sm_addr: u64, bytes: u64, tag: u8) -> u64 {
        let line = self.cfg.l1d.line_bytes;
        let mut a = sm_addr & !(line - 1);
        while a < sm_addr + bytes {
            if self.l1d.invalidate(a).is_some() {
                self.ev(a, false);
            }
            if self.l2.invalidate(a).is_some() {
                self.ev(a, false);
            }
            {
                let mut bs = self.backside.borrow_mut();
                bs.invalidate(self.core_id, a);
                bs.note_dram_write(self.core_id);
            }
            a += line;
        }
        self.pull_backside_events();
        if let Some(lm) = self.lm.as_mut() {
            lm.note_dma_out(bytes);
        }
        self.dmac.issue(DmaOp::Put, bytes, tag, now)
    }

    /// `dma-synch`: the cycle at which the wait for `tag` ends.
    pub fn dma_synch(&mut self, now: u64, tag: u8) -> u64 {
        self.dmac.synch(tag, now)
    }

    /// The pending-work horizon of this tile's memory side: the earliest
    /// cycle strictly after `now` at which an outstanding MSHR fill
    /// completes, the DMA engine frees up or lands a transfer, or a
    /// shared backside resource (L3 port, DRAM channel) becomes free —
    /// `None` when nothing is pending. The machine forwards this through
    /// `MemoryPort::next_mem_event_at` so a cycle-skipping core never
    /// jumps past a backside event that could change arbitration.
    pub fn next_event_at(&self, now: u64) -> Option<u64> {
        [
            self.mshr.next_ready_after(now),
            self.dmac.next_event_after(now),
            self.backside.borrow().next_event_after(now),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Total LM activity for the Table 3 "LM Accesses" column: CPU
    /// accesses plus DMA line transfers.
    pub fn lm_total_accesses(&self) -> u64 {
        match &self.lm {
            Some(lm) => {
                let line = self.cfg.l1d.line_bytes;
                lm.stats.cpu_accesses()
                    + (lm.stats.dma_bytes_in + lm.stats.dma_bytes_out).div_ceil(line)
            }
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system(prefetch: bool) -> MemSystem {
        let mut cfg = MemConfig::hybrid();
        cfg.prefetch.enabled = prefetch;
        MemSystem::new(cfg)
    }

    #[test]
    fn cold_miss_walks_to_dram_then_hits() {
        let mut m = small_system(false);
        let r = m.data_access(0, 0x40, 0x1000_0000, false);
        assert_eq!(r.served, Level::Dram);
        // 2 (L1) + 15 (L2) + 40 (L3) + 200 (DRAM) + 30 (TLB miss)
        assert_eq!(r.latency, 2 + 15 + 40 + 200 + 30);
        assert_eq!(r.tlb_penalty, 30);
        let r2 = m.data_access(300, 0x40, 0x1000_0000, false);
        assert_eq!(r2.served, Level::L1);
        assert_eq!(r2.latency, 2);
    }

    #[test]
    fn l2_and_l3_service_levels() {
        let mut m = small_system(false);
        m.data_access(0, 0x40, 0x1000_0000, false); // to DRAM, fills all
                                                    // Evict from tiny L1 by filling its set; L1 32KB/8w/64B = 64 sets,
                                                    // set stride = 64*64 = 4096.
        for i in 1..=8u64 {
            m.data_access(1000 * i, 0x40, 0x1000_0000 + i * 4096, false);
        }
        let r = m.data_access(100_000, 0x40, 0x1000_0000, false);
        assert_eq!(r.served, Level::L2, "line must still be in L2");
        assert_eq!(r.latency, 2 + 15);
    }

    #[test]
    fn mshr_merges_same_line() {
        let mut m = small_system(false);
        let r1 = m.data_access(0, 0x40, 0x1000_0000, false);
        assert_eq!(r1.served, Level::Dram);
        // Reset TLB effect by touching the page already.
        // Second access to the same line while "in flight" at cycle 10.
        let r2 = m.data_access(10, 0x44, 0x1000_0008, false);
        assert_eq!(r2.served, Level::L1, "merged miss serves from L1 fill");
        assert!(r2.latency < r1.latency);
        assert_eq!(m.mshr.stats.merges, 1);
        // DRAM was read exactly once.
        assert_eq!(m.dram_stats().reads, 1);
    }

    #[test]
    fn write_through_l1_forwards_to_l2() {
        let mut m = small_system(false);
        m.data_access(0, 0x40, 0x1000_0000, false); // fill
        let before = m.l2.stats.writethrough_writes;
        let r = m.data_access(300, 0x44, 0x1000_0000, true); // store hit
        assert_eq!(r.served, Level::L1);
        assert_eq!(m.l2.stats.writethrough_writes, before + 1);
    }

    #[test]
    fn store_miss_allocates_then_forwards() {
        let mut m = small_system(false);
        let r = m.data_access(0, 0x40, 0x2000_0000, true);
        assert_eq!(r.served, Level::Dram);
        assert!(m.l1d.probe(0x2000_0000), "write-allocate fills L1");
        assert_eq!(m.l2.stats.writethrough_writes, 1);
        // L2 line is dirty now; evicting it must cascade a write-back.
    }

    #[test]
    fn lm_access_bypasses_everything() {
        let mut m = small_system(false);
        let r = m.lm_access(false);
        assert_eq!(r.served, Level::Lm);
        assert_eq!(r.latency, 2);
        assert_eq!(r.tlb_penalty, 0);
        assert_eq!(m.tlb.lookups(), 0);
        assert_eq!(m.l1d.stats.demand_accesses(), 0);
    }

    #[test]
    fn prefetcher_fills_ahead() {
        let mut m = small_system(true);
        // Stream with stride 64 (one line per access): after training,
        // later accesses must hit on prefetched lines.
        let mut dram_before = 0;
        for i in 0..64u64 {
            let r = m.data_access(i * 1000, 0x40, 0x1000_0000 + i * 64, false);
            if i == 16 {
                dram_before = m.dram_stats().reads;
            }
            if i > 20 {
                assert_eq!(
                    r.served,
                    Level::L1,
                    "stream must hit after training (i={i})"
                );
            }
        }
        assert!(m.dram_stats().reads > dram_before, "prefetches read DRAM");
        assert!(m.l1d.prefetch_useful > 0);
    }

    #[test]
    fn dma_get_snoops_and_put_invalidates() {
        let mut m = small_system(false);
        // Load a line so caches hold it.
        m.data_access(0, 0x40, 0x1000_0000, false);
        let l1_snoops = m.l1d.stats.snoops;
        m.dma_get(1000, 0x1000_0000, 128, 0);
        assert_eq!(m.l1d.stats.snoops, l1_snoops + 2, "two lines snooped");
        // dma-put invalidates everywhere.
        assert!(m.l1d.probe(0x1000_0000));
        m.dma_put(2000, 0x1000_0000, 64, 0);
        assert!(!m.l1d.probe(0x1000_0000));
        assert!(!m.l2.probe(0x1000_0000));
        assert!(!m.l3_probe(0x1000_0000));
        assert_eq!(m.l1d.stats.invalidations, 1);
    }

    #[test]
    fn dma_synch_waits_for_tagged_transfers() {
        let mut m = small_system(false);
        let done = m.dma_get(0, 0x1000_0000, 4096, 3);
        assert!(done > 0);
        assert_eq!(m.dma_synch(10, 3), done);
        assert_eq!(m.dma_synch(done + 5, 3), done + 5);
    }

    #[test]
    fn inst_fetch_caches_lines() {
        let mut m = small_system(false);
        let cold = m.inst_fetch(0, 0x0);
        assert!(cold > 2);
        let warm = m.inst_fetch(300, 0x8);
        assert_eq!(warm, 2, "same I-line hits");
    }

    #[test]
    fn lm_total_accesses_combines_cpu_and_dma() {
        let mut m = small_system(false);
        m.lm_access(true);
        m.lm_access(false);
        m.dma_get(0, 0x1000_0000, 128, 0);
        assert_eq!(m.lm_total_accesses(), 2 + 2);
    }

    #[test]
    fn cache_based_config_has_no_lm() {
        let cfg = MemConfig::cache_based();
        assert!(cfg.lm.is_none());
        assert_eq!(cfg.l1d.size_bytes, 64 * 1024);
        let m = MemSystem::new(cfg);
        assert!(m.lm.is_none());
    }

    #[test]
    #[should_panic(expected = "without LM")]
    fn lm_access_without_lm_panics() {
        let mut m = MemSystem::new(MemConfig::cache_based());
        m.lm_access(false);
    }

    // ------------------------------------------------- shared backside

    /// Two tiles in front of one backside, as a multi-core machine
    /// builds them.
    fn shared_pair(l3_port_gap: u64) -> (MemSystem, MemSystem) {
        let mut cfg = MemConfig::hybrid();
        cfg.prefetch.enabled = false;
        cfg.l3_port_gap = l3_port_gap;
        let backside = Rc::new(RefCell::new(SharedBackside::new(&cfg, 2)));
        let a = MemSystem::with_backside(cfg.clone(), Rc::clone(&backside), 0);
        let b = MemSystem::with_backside(cfg, backside, 1);
        (a, b)
    }

    #[test]
    fn same_address_on_two_cores_stays_private_in_shared_l3() {
        let (mut a, mut b) = shared_pair(0);
        a.data_access(0, 0x40, 0x1000_0000, false);
        // Core 1 reading the same (core-local) address must not hit core
        // 0's line: private data is tagged per core in the shared array.
        let r = b.data_access(10_000, 0x40, 0x1000_0000, false);
        assert_eq!(r.served, Level::Dram, "no false sharing across cores");
        assert!(a.l3_probe(0x1000_0000));
        assert!(b.l3_probe(0x1000_0000));
        assert_eq!(a.dram_stats().reads, 1);
        assert_eq!(b.dram_stats().reads, 1);
    }

    #[test]
    fn l3_port_contention_charges_waits_to_the_second_core() {
        let (mut a, mut b) = shared_pair(8);
        // Both cores miss to DRAM at the same cycle: the port serializes
        // them and the second core records the wait.
        a.data_access(0, 0x40, 0x1000_0000, false);
        b.data_access(0, 0x40, 0x1000_0000, false);
        let wait_a = a.backside_stats().bus_wait_cycles;
        let wait_b = b.backside_stats().bus_wait_cycles;
        assert_eq!(wait_a, 0, "first requester never waits");
        assert!(
            wait_b >= 8,
            "second requester waits for the port, got {wait_b}"
        );
        assert_eq!(a.backside_stats().bus_requests, 1);
        assert_eq!(b.backside_stats().bus_requests, 1);
    }

    #[test]
    fn uncontended_port_is_free_even_when_shared() {
        let (mut a, mut b) = shared_pair(8);
        a.data_access(0, 0x40, 0x1000_0000, false);
        // Far apart in time: no wait.
        b.data_access(100_000, 0x40, 0x2000_0000, false);
        assert_eq!(b.backside_stats().bus_wait_cycles, 0);
    }

    #[test]
    fn per_core_l3_stats_sum_to_shared_totals() {
        let (mut a, mut b) = shared_pair(0);
        for i in 0..32u64 {
            a.data_access(i * 500, 0x40, 0x1000_0000 + i * 64, false);
            b.data_access(i * 500 + 7, 0x44, 0x3000_0000 + i * 128, false);
        }
        // Write traffic at a 128 KB stride from both cores lands in one
        // L2 set *and* one (shared) L3 set: dirty L2 victims cascade
        // into the L3 as write-backs, and the other core's pressure
        // evicts some of them from the L3 first, so `accept_writeback`
        // exercises both its resident and its line-allocating paths.
        for i in 0..50u64 {
            a.data_access(20_000 + i * 600, 0x48, 0x5000_0000 + i * 0x20000, true);
            b.data_access(20_000 + i * 600 + 7, 0x4c, 0x6000_0000 + i * 0x20000, true);
        }
        assert!(
            a.l3_stats().writebacks_in > 0 && b.l3_stats().writebacks_in > 0,
            "the write pattern must actually cascade write-backs into the L3"
        );
        let backside = a.shared_backside();
        let total = backside.borrow().l3.stats;
        let mut sum = a.l3_stats();
        sum.merge(&b.l3_stats());
        assert_eq!(sum, total, "per-core shares must partition the totals");
        let dram_total = backside.borrow().dram_total_stats();
        assert_eq!(
            a.dram_stats().reads + b.dram_stats().reads,
            dram_total.reads
        );
    }

    #[test]
    fn shared_dram_channel_queues_across_cores() {
        let (mut a, mut b) = shared_pair(0);
        // Same-cycle DRAM misses share the channel: the second transfer
        // queues behind the first (gap = 12 by default).
        let ra = a.data_access(0, 0x40, 0x1000_0000, false);
        let rb = b.data_access(0, 0x40, 0x1000_0000, false);
        assert_eq!(ra.served, Level::Dram);
        assert_eq!(rb.served, Level::Dram);
        assert!(
            rb.latency >= ra.latency + 12,
            "second DRAM read must queue behind the first ({} vs {})",
            rb.latency,
            ra.latency
        );
    }

    #[test]
    fn single_core_system_reports_zero_waits() {
        let mut m = small_system(false);
        for i in 0..16u64 {
            m.data_access(i * 10, 0x40, 0x1000_0000 + i * 64, false);
        }
        assert_eq!(m.backside_stats().bus_wait_cycles, 0);
    }
}
