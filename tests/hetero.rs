//! Heterogeneous-chip integration tests: mixed hybrid/cache-based
//! tiles, per-tile LM budgets and weighted shards on one machine.
//!
//! The acceptance scenario of the hetero refactor: a 2-hybrid /
//! 2-cache-based 4-core chip runs the NAS kernels to completion under
//! both coherence modes, with every backside counter still partitioned
//! exactly across the per-core shares — the invariant the homogeneous
//! machine has pinned since the banked backside landed, re-proven for
//! tiles that differ.

use hsim::machine::MultiMachine;
use hsim::prelude::*;
use hsim_workloads::nas;

/// 2 hybrid + 2 cache-based tiles under one coherence mode.
fn mixed_cfgs(cm: CoherenceMode) -> Vec<MachineConfig> {
    [
        SysMode::HybridCoherent,
        SysMode::HybridCoherent,
        SysMode::CacheBased,
        SysMode::CacheBased,
    ]
    .iter()
    .map(|&m| MachineConfig::for_mode(m).with_coherence(cm))
    .collect()
}

/// Shards `kernel` by `weights`, compiles each shard for its tile, and
/// returns the finished machine (for backside inspection) plus the
/// report.
fn run_hetero_machine(
    kernel: &hsim_compiler::Kernel,
    cfgs: &[MachineConfig],
    weights: &[u64],
) -> (MultiMachine, MultiRunReport) {
    let shards = kernel.shard_weighted(weights).expect("kernel must shard");
    let compiled: Vec<_> = shards
        .into_iter()
        .zip(cfgs)
        .map(|(s, cfg)| {
            let ck = compile_for_tile(&s, cfg);
            (ck, s)
        })
        .collect();
    let mut m = MultiMachine::for_kernels_hetero(cfgs.to_vec(), &compiled);
    m.run().expect("all tiles halt");
    let cks: Vec<_> = compiled.iter().map(|(ck, _)| ck.clone()).collect();
    let report = MultiRunReport::collect(&m, &cks);
    (m, report)
}

#[test]
fn mixed_chip_runs_nas_kernels_with_exact_stat_partitioning() {
    // The acceptance criterion: CG, FT and IS complete on the mixed
    // chip under Replicate AND Mesi, and for every backside counter the
    // per-core shares sum to the chip totals exactly.
    for kernel in [
        nas::cg(Scale::Test),
        nas::ft(Scale::Test),
        nas::is(Scale::Test),
    ] {
        for cm in [CoherenceMode::Replicate, CoherenceMode::Mesi] {
            let cfgs = mixed_cfgs(cm);
            let (m, report) = run_hetero_machine(&kernel, &cfgs, &[1, 1, 1, 1]);
            let what = format!("{} {:?}", kernel.name, cm);
            assert!(report.makespan > 0, "{what}: must run to completion");
            assert_eq!(report.n_cores(), 4);
            assert!(report.is_mixed_chip());

            // Exact partitioning: sum per-core shares, compare against
            // the backside aggregates, counter by counter.
            let bs = m.backside();
            let bs = bs.borrow();
            let shares: Vec<_> = m
                .tiles
                .iter()
                .map(|t| t.world.mem.backside_stats())
                .collect();
            let mut l3 = hsim::mem::CacheStats::default();
            let mut coh = hsim::mem::CoherenceStats::default();
            let mut dram = hsim::mem::DramStats::default();
            for s in &shares {
                l3.merge(&s.l3);
                coh.merge(&s.coh);
                dram.merge(&s.dram);
            }
            assert_eq!(l3, bs.l3_total_stats(), "{what}: L3 shares");
            assert_eq!(coh, bs.coherence_total_stats(), "{what}: coherence shares");
            assert_eq!(dram, bs.dram_total_stats(), "{what}: DRAM shares");

            // Tile shapes: hybrid tiles have an LM and a directory,
            // cache-based tiles neither.
            for (i, tile) in m.tiles.iter().enumerate() {
                let hybrid = i < 2;
                assert_eq!(tile.world.mem.lm.is_some(), hybrid, "{what}: tile {i} LM");
                assert_eq!(tile.world.dir.is_some(), hybrid, "{what}: tile {i} dir");
            }
        }
    }
}

#[test]
fn mixed_chip_shares_read_only_tables_across_modes_under_mesi() {
    // CG's gathered table is read-only and replicated whole into every
    // shard; with even shards the layouts agree even though the tiles
    // compile for different SysModes (the data layout is
    // mode-independent). Under Mesi the chip must serve it from shared
    // lines — hybrid and cache-based tiles alike — and read less DRAM
    // than under Replicate.
    let kernel = nas::cg(Scale::Test);
    let (_, rep) = run_hetero_machine(&kernel, &mixed_cfgs(CoherenceMode::Replicate), &[1; 4]);
    let (_, mesi) = run_hetero_machine(&kernel, &mixed_cfgs(CoherenceMode::Mesi), &[1; 4]);
    assert_eq!(rep.replication_fallbacks, 0, "even shards must not diverge");
    assert_eq!(mesi.replication_fallbacks, 0);
    assert_eq!(rep.total_shared_hits(), 0);
    assert!(mesi.total_shared_hits() > 0, "the mixed chip must share");
    assert!(
        mesi.total_dram_reads() < rep.total_dram_reads(),
        "sharing must cut DRAM reads ({} vs {})",
        mesi.total_dram_reads(),
        rep.total_dram_reads()
    );
    // Architectural work is mode-invariant on the mixed chip too.
    assert_eq!(rep.total_committed(), mesi.total_committed());
    // Both tile kinds participate: at least one hybrid and one
    // cache-based tile score shared hits.
    let hits = |r: &MultiRunReport, mode: SysMode| {
        r.per_core
            .iter()
            .filter(|c| c.mode == mode)
            .map(|c| c.coh_shared_hits)
            .sum::<u64>()
    };
    assert!(
        hits(&mesi, SysMode::HybridCoherent) > 0,
        "hybrid tiles share"
    );
    assert!(hits(&mesi, SysMode::CacheBased) > 0, "cache tiles share");
}

#[test]
fn weighted_shards_speed_up_a_mixed_chip() {
    // Matching iteration counts to tile strength is what weighted
    // sharding exists for: on the 2-hybrid/2-cache chip, handing the
    // hybrid tiles double shares must beat the even split's makespan
    // (the cache-based tiles stop being the long pole *and* stop
    // hammering the shared backside with their larger shards' misses).
    for kernel in [
        nas::cg(Scale::Test),
        nas::ft(Scale::Test),
        nas::is(Scale::Test),
    ] {
        let cfgs = mixed_cfgs(CoherenceMode::Replicate);
        let (_, even) = run_hetero_machine(&kernel, &cfgs, &[1, 1, 1, 1]);
        let (_, weighted) = run_hetero_machine(&kernel, &cfgs, &[2, 2, 1, 1]);
        assert!(
            weighted.makespan < even.makespan,
            "{}: 2:1 weights toward the hybrid tiles must beat the even \
             split ({} vs {})",
            kernel.name,
            weighted.makespan,
            even.makespan
        );
        // The rebalance shows up where it should: the cache-based
        // tiles' busy time drops with their smaller shards.
        let cache_max = |r: &MultiRunReport| {
            r.per_core
                .iter()
                .filter(|c| c.mode == SysMode::CacheBased)
                .map(|c| c.cycles)
                .max()
                .unwrap()
        };
        assert!(
            cache_max(&weighted) < cache_max(&even),
            "{}: the cache tiles must shed cycles",
            kernel.name
        );
    }
}

#[test]
fn small_lm_tiles_pay_more_dma_round_trips() {
    // Big/little LM asymmetry: two tiles compile their shards against a
    // quarter LM budget. Smaller buffers mean more DMA commands for the
    // same data — visible in the little tiles' reports — while the
    // all-default chip is reproduced bit for bit by the hetero path
    // (covered in skip_equivalence); here the asymmetric chip must
    // still complete and the little tiles must issue more DMA traffic
    // per iteration than the big ones.
    let kernel = nas::cg(Scale::Test);
    let mut cfgs = vec![MachineConfig::for_mode(SysMode::HybridCoherent); 4];
    for c in cfgs.iter_mut().skip(2) {
        c.mem.lm.as_mut().unwrap().size_bytes /= 4;
    }
    let (m, report) = run_hetero_machine(&kernel, &cfgs, &[1, 1, 1, 1]);
    assert!(report.makespan > 0);
    let dma_cmds: Vec<u64> = m
        .tiles
        .iter()
        .map(|t| t.world.mem.dmac.stats.gets + t.world.mem.dmac.stats.puts)
        .collect();
    assert!(
        dma_cmds[2] > dma_cmds[0],
        "a quarter-LM tile must issue more DMA commands ({dma_cmds:?})"
    );
    // Same architectural result notwithstanding: every tile halts and
    // commits its shard.
    for r in &report.per_core {
        assert!(r.committed > 0, "tile {} must commit work", r.core_id);
    }
}

#[test]
#[should_panic(expected = "backside slice")]
fn tiles_disagreeing_on_the_backside_are_rejected() {
    let kernel = nas::cg(Scale::Test);
    let mut cfgs = vec![MachineConfig::for_mode(SysMode::HybridCoherent); 2];
    cfgs[1].mem.l3_geometry.banks = 1; // one chip cannot have two L3 shapes
    let _ = run_hetero_machine(&kernel, &cfgs, &[1, 1]);
}
