//! Experiment drivers: one function per paper table/figure.
//!
//! The bench harness binaries (`hsim-bench`) print these results in the
//! paper's format; the integration tests assert the qualitative shapes
//! at small scale. Each driver compiles the workload for the modes it
//! compares, runs the machine(s), and returns structured rows.

use crate::machine::{Machine, MachineConfig, SysMode};
use crate::metrics::RunReport;
use hsim_compiler::{compile, interpret, Kernel};
use hsim_core::pipeline::SimError;
use hsim_workloads::{microbench, MicroMode, MicrobenchConfig};

/// Compiles `kernel` for `mode`, runs it, and reports.
pub fn run_kernel(kernel: &Kernel, mode: SysMode, track: bool) -> Result<RunReport, SimError> {
    let ck = compile(kernel, mode.codegen());
    let mut cfg = MachineConfig::for_mode(mode);
    cfg.track_coherence = track;
    let mut m = Machine::for_kernel(cfg, &ck, kernel);
    m.run()?;
    Ok(RunReport::collect(&m, &ck))
}

/// Runs `kernel` in `mode` and also checks the final memory image
/// against the reference interpreter. Returns the report and the number
/// of mismatching array elements.
pub fn run_kernel_verified(
    kernel: &Kernel,
    mode: SysMode,
    track: bool,
) -> Result<(RunReport, usize), SimError> {
    let ck = compile(kernel, mode.codegen());
    let mut cfg = MachineConfig::for_mode(mode);
    cfg.track_coherence = track;
    let mut m = Machine::for_kernel(cfg, &ck, kernel);
    m.run()?;
    let report = RunReport::collect(&m, &ck);
    let want = interpret(kernel).expect("kernel must interpret");
    let mut mismatches = 0;
    for (id, expect) in want.iter().enumerate() {
        let got = m.read_array(&ck, kernel, id);
        mismatches += got
            .iter()
            .zip(expect)
            .filter(|(g, w)| g != w)
            .count();
    }
    Ok((report, mismatches))
}

/// One point of Figure 7.
#[derive(Clone, Debug)]
pub struct Fig7Point {
    /// Microbenchmark mode.
    pub mode: MicroMode,
    /// Percentage of guarded references.
    pub pct: u32,
    /// Work-phase execution-time ratio against the Baseline mode.
    ///
    /// The work phase isolates the cost of the guards and double stores,
    /// which is what the paper's microbenchmark measures; the control
    /// phase additionally differs because a buffer that is only written
    /// through guarded stores is mapped read-only and skips its
    /// `dma-put`s (see EXPERIMENTS.md).
    pub overhead: f64,
    /// Instruction-count ratio against the Baseline mode.
    pub inst_ratio: f64,
}

/// Figure 7: microbenchmark overhead as the share of guarded references
/// grows, for the RD / WR / RD+WR modes. `n` is the iteration count;
/// `step` the sweep step in percent (multiple of 10).
pub fn fig7(n: u64, step: u32) -> Result<Vec<Fig7Point>, SimError> {
    let base_kernel = microbench(&MicrobenchConfig {
        mode: MicroMode::Baseline,
        guarded_pct: 0,
        n,
    });
    let base = run_kernel(&base_kernel, SysMode::HybridCoherent, false)?;
    let base_work = base.phase(hsim_isa::Phase::Work).max(1) as f64;
    let mut out = Vec::new();
    for mode in [MicroMode::Rd, MicroMode::Wr, MicroMode::RdWr] {
        let mut pct = 0;
        while pct <= 100 {
            let k = microbench(&MicrobenchConfig {
                mode,
                guarded_pct: pct,
                n,
            });
            let r = run_kernel(&k, SysMode::HybridCoherent, false)?;
            out.push(Fig7Point {
                mode,
                pct,
                overhead: r.phase(hsim_isa::Phase::Work) as f64 / base_work,
                inst_ratio: r.committed as f64 / base.committed as f64,
            });
            pct += step.max(10);
        }
    }
    Ok(out)
}

/// One row of Figure 8: coherence-protocol overhead on a real benchmark.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Benchmark name.
    pub name: String,
    /// Execution-time overhead vs the oracle baseline (ratio, 1.0 = no
    /// overhead).
    pub time_ratio: f64,
    /// Energy overhead vs the oracle baseline.
    pub energy_ratio: f64,
    /// Reports for deeper inspection (coherent, oracle).
    pub coherent: RunReport,
    /// The oracle baseline report.
    pub oracle: RunReport,
}

/// Figure 8: hybrid-coherent vs hybrid-oracle on the given kernels.
pub fn fig8(kernels: &[Kernel]) -> Result<Vec<Fig8Row>, SimError> {
    kernels
        .iter()
        .map(|k| {
            let coherent = run_kernel(k, SysMode::HybridCoherent, false)?;
            let oracle = run_kernel(k, SysMode::HybridOracle, false)?;
            Ok(Fig8Row {
                name: k.name.clone(),
                time_ratio: coherent.cycles as f64 / oracle.cycles as f64,
                energy_ratio: coherent.energy_total() / oracle.energy_total(),
                coherent,
                oracle,
            })
        })
        .collect()
}

/// One row of Figures 9 and 10 plus Table 3: hybrid-coherent vs
/// cache-based.
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// Benchmark name.
    pub name: String,
    /// Speedup of the hybrid system (cache cycles / hybrid cycles).
    pub speedup: f64,
    /// Hybrid execution time normalized to cache-based (Figure 9 bar).
    pub time_norm: f64,
    /// Normalized phase split of the hybrid bar `[other, control,
    /// synch, work]`.
    pub phases_norm: [f64; 4],
    /// Hybrid energy normalized to cache-based (Figure 10 bar).
    pub energy_norm: f64,
    /// Hybrid run report.
    pub hybrid: RunReport,
    /// Cache-based run report.
    pub cache: RunReport,
}

/// Figures 9/10 + Table 3: runs both systems on each kernel.
pub fn compare_systems(kernels: &[Kernel]) -> Result<Vec<ComparisonRow>, SimError> {
    kernels
        .iter()
        .map(|k| {
            let hybrid = run_kernel(k, SysMode::HybridCoherent, false)?;
            let cache = run_kernel(k, SysMode::CacheBased, false)?;
            let denom = cache.cycles.max(1) as f64;
            Ok(ComparisonRow {
                name: k.name.clone(),
                speedup: cache.cycles as f64 / hybrid.cycles.max(1) as f64,
                time_norm: hybrid.cycles as f64 / denom,
                phases_norm: [
                    hybrid.phase_cycles[0] as f64 / denom,
                    hybrid.phase_cycles[1] as f64 / denom,
                    hybrid.phase_cycles[2] as f64 / denom,
                    hybrid.phase_cycles[3] as f64 / denom,
                ],
                energy_norm: hybrid.energy_total() / cache.energy_total(),
                hybrid,
                cache,
            })
        })
        .collect()
}

/// Geometric-mean helper used when averaging ratios across benchmarks.
pub fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = xs.fold((0.0, 0), |(s, n), x| (s + x.ln(), n + 1));
    if n == 0 {
        1.0
    } else {
        (sum / n as f64).exp()
    }
}
