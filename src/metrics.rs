//! Run reports: the measurements every experiment consumes.

use crate::machine::{Machine, SysMode};
use hsim_compiler::CompiledKernel;
use hsim_core::CoreStats;
use hsim_energy::{Activity, EnergyBreakdown, EnergyModel};
use hsim_isa::Phase;

/// Everything measured in one run — the union of what Table 3 and
/// Figures 7–10 need.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Workload name.
    pub name: String,
    /// System mode.
    pub mode: SysMode,
    /// Total cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub committed: u64,
    /// Cycles per phase `[other, control, synch, work]`.
    pub phase_cycles: [u64; 4],
    /// Average memory access time over timed loads.
    pub amat: f64,
    /// L1D demand hit ratio (%).
    pub l1d_hit_ratio: f64,
    /// Total L1D accesses (Table 3 accounting).
    pub l1_accesses: u64,
    /// Total L2 accesses.
    pub l2_accesses: u64,
    /// Total L3 accesses.
    pub l3_accesses: u64,
    /// Total LM accesses (CPU + DMA blocks).
    pub lm_accesses: u64,
    /// Directory accesses (lookups + updates; coherent mode only).
    pub dir_accesses: u64,
    /// Static guarded/total reference counts of the compiled kernel.
    pub guarded_refs: usize,
    /// Static total reference count.
    pub total_refs: usize,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Coherence violations recorded (tracking runs only).
    pub violations: usize,
    /// Full core statistics.
    pub core: CoreStats,
}

impl RunReport {
    /// Collects a report from a finished machine.
    pub fn collect(m: &Machine, ck: &CompiledKernel) -> RunReport {
        let core = m.core.stats.clone();
        let w = &m.world;
        let coherent = matches!(m.cfg.mode, SysMode::HybridCoherent);
        let dir_accesses = match (&w.dir, coherent) {
            (Some(d), true) => d.stats.lookups + d.stats.updates,
            _ => 0,
        };
        let energy = EnergyModel::new().evaluate(&activity(m));
        RunReport {
            name: ck.name.clone(),
            mode: m.cfg.mode,
            cycles: core.cycles,
            committed: core.committed,
            phase_cycles: core.phase_cycles,
            amat: core.amat(),
            l1d_hit_ratio: w.mem.l1d.stats.hit_ratio(),
            l1_accesses: w.mem.l1d.stats.total_accesses(),
            l2_accesses: w.mem.l2.stats.total_accesses(),
            l3_accesses: w.mem.l3.stats.total_accesses(),
            lm_accesses: w.mem.lm_total_accesses(),
            dir_accesses,
            guarded_refs: ck.guarded_refs(),
            total_refs: ck.total_refs(),
            energy,
            violations: m.violations(),
            core,
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.committed as f64 / self.cycles.max(1) as f64
    }

    /// Cycles in a phase.
    pub fn phase(&self, p: Phase) -> u64 {
        self.phase_cycles[hsim_core::stats::phase_index(p)]
    }

    /// Total on-chip energy (nJ).
    pub fn energy_total(&self) -> f64 {
        self.energy.total()
    }
}

/// Converts a finished machine's counters into the energy model's
/// activity vector.
pub fn activity(m: &Machine) -> Activity {
    let c = &m.core.stats;
    let w = &m.world;
    let mem = &w.mem;
    let coherent = matches!(m.cfg.mode, SysMode::HybridCoherent);
    let (dir_lookups, dir_updates) = match (&w.dir, coherent) {
        (Some(d), true) => (d.stats.lookups, d.stats.updates),
        _ => (0, 0),
    };
    let line = mem.cfg.l1d.line_bytes;
    let lm = mem.lm.as_ref();
    let dma = &mem.dmac.stats;
    let bus_lines = mem.l1d.stats.fills
        + mem.l1i.stats.fills
        + mem.l2.stats.fills
        + mem.l3.stats.fills
        + mem.l1d.stats.writebacks_out
        + mem.l2.stats.writebacks_out
        + mem.l3.stats.writebacks_out;
    Activity {
        cycles: c.cycles,
        fetched: c.fetched,
        dispatched: c.dispatched,
        issued: c.issued,
        replayed: c.replay_issues,
        committed: c.committed,
        fp_ops: c.fp_ops,
        memops: c.loads + c.stores,
        bpred_events: m.core.bp.lookups + m.core.bp.updates,
        btb_lookups: m.core.btb.lookups,
        l1_accesses: mem.l1d.stats.total_accesses() + mem.l1i.stats.total_accesses(),
        l2_accesses: mem.l2.stats.total_accesses(),
        l3_accesses: mem.l3.stats.total_accesses(),
        bus_lines,
        lm_accesses: lm.map(|l| l.stats.cpu_accesses()).unwrap_or(0),
        lm_dma_blocks: lm
            .map(|l| (l.stats.dma_bytes_in + l.stats.dma_bytes_out).div_ceil(line))
            .unwrap_or(0),
        tlb_lookups: mem.tlb.lookups(),
        prefetch_obs: mem.prefetcher.stats.observations,
        dir_lookups,
        dir_updates,
        dma_blocks: (dma.bytes_get + dma.bytes_put).div_ceil(line),
        dram_lines: mem.dram_stats().reads + mem.dram_stats().writes,
        has_lm: lm.is_some(),
    }
}
