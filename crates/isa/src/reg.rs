//! Architectural register names.
//!
//! The ISA exposes 32 integer registers (`r0`–`r31`) and 32 floating-point
//! registers (`f0`–`f31`). There is no hard-wired zero register; the
//! compiler reserves `r0` as a conventional scratch register instead. The
//! simulated core renames both files onto 256-entry physical register files
//! (Table 1 of the paper).

use std::fmt;

/// Number of architectural integer registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of architectural floating-point registers.
pub const NUM_FP_REGS: usize = 32;

/// An architectural integer register (`r0`–`r31`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// An architectural floating-point register (`f0`–`f31`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FReg(pub u8);

impl Reg {
    /// Creates `r{n}`, panicking if `n` is out of range.
    #[inline]
    pub fn new(n: usize) -> Self {
        assert!(n < NUM_INT_REGS, "integer register r{n} out of range");
        Reg(n as u8)
    }

    /// The register index as a usize, suitable for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl FReg {
    /// Creates `f{n}`, panicking if `n` is out of range.
    #[inline]
    pub fn new(n: usize) -> Self {
        assert!(n < NUM_FP_REGS, "fp register f{n} out of range");
        FReg(n as u8)
    }

    /// The register index as a usize, suitable for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Debug for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_display() {
        assert_eq!(Reg::new(7).to_string(), "r7");
        assert_eq!(FReg::new(31).to_string(), "f31");
    }

    #[test]
    fn reg_index_round_trip() {
        for n in 0..NUM_INT_REGS {
            assert_eq!(Reg::new(n).index(), n);
        }
        for n in 0..NUM_FP_REGS {
            assert_eq!(FReg::new(n).index(), n);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn freg_out_of_range_panics() {
        let _ = FReg::new(32);
    }
}
