//! Ablations of the design choices DESIGN.md §5 calls out:
//!
//! * store collapsing off (every double store pays two cache accesses);
//! * +1 cycle directory lookup (vs the paper's in-AGU-cycle argument);
//! * unbounded prefetcher history table (no collisions);
//! * serialized (non-pipelined) DMA engine — approximated by raising the
//!   per-command first-data latency.
//!
//! ```text
//! cargo run --release -p hsim-bench --bin ablate [--test-scale]
//! ```

use hsim::machine::{Machine, MachineConfig, SysMode};
use hsim::metrics::RunReport;
use hsim::prelude::*;
use hsim_bench::scale_from_args;
use hsim_workloads::nas;

fn run_with(
    kernel: &hsim_compiler::Kernel,
    mode: SysMode,
    f: impl Fn(&mut MachineConfig),
) -> RunReport {
    let ck = compile(kernel, mode.codegen());
    let mut cfg = MachineConfig::for_mode(mode);
    f(&mut cfg);
    let mut m = Machine::for_kernel(cfg, &ck, kernel);
    m.run().expect("run failed");
    RunReport::collect(&m, &ck)
}

fn main() {
    let scale = scale_from_args();
    println!("ABLATIONS (cycles, relative to the default configuration)\n");

    // 1. Directory lookup latency: the paper argues the 32-entry CAM fits
    // in the AGU cycle. Charge +1 and +2 cycles on IS (the most
    // directory-intensive kernel).
    let is = nas::is(scale);
    let base = run_with(&is, SysMode::HybridCoherent, |_| {});
    for extra in [1u64, 2] {
        let r = run_with(&is, SysMode::HybridCoherent, |c| {
            c.dir_lookup_extra_cycles = extra
        });
        println!(
            "IS, +{extra} cycle directory lookup:  {:+.2}% time (paper assumes 0: in-cycle CAM)",
            (r.cycles as f64 / base.cycles as f64 - 1.0) * 100.0
        );
    }

    // 2. Prefetcher history-table size on SP (497 streams).
    let sp = nas::sp(scale);
    let sp_cache = run_with(&sp, SysMode::CacheBased, |_| {});
    let sp_huge = run_with(&sp, SysMode::CacheBased, |c| {
        c.mem.prefetch.table_entries = 4096
    });
    println!(
        "SP cache-based, 4096-entry prefetch table: {:+.2}% time (collisions removed)",
        (sp_huge.cycles as f64 / sp_cache.cycles as f64 - 1.0) * 100.0
    );

    // 3. Prefetcher disabled entirely (both systems, MG).
    let mg = nas::mg(scale);
    let mg_cache = run_with(&mg, SysMode::CacheBased, |_| {});
    let mg_nopf = run_with(&mg, SysMode::CacheBased, |c| c.mem.prefetch.enabled = false);
    println!(
        "MG cache-based, prefetcher off:            {:+.2}% time",
        (mg_nopf.cycles as f64 / mg_cache.cycles as f64 - 1.0) * 100.0
    );

    // 4. DMA pipelining: serialize commands by folding the first-data
    // latency into every transfer (SP is the most DMA-intensive).
    let sp_hyb = run_with(&sp, SysMode::HybridCoherent, |_| {});
    let sp_slow = run_with(&sp, SysMode::HybridCoherent, |c| {
        c.mem.dma.setup_latency += c.mem.dma.first_data_latency;
    });
    println!(
        "SP hybrid, serialized DMA commands:        {:+.2}% time",
        (sp_slow.cycles as f64 / sp_hyb.cycles as f64 - 1.0) * 100.0
    );

    // 5. Store collapsing: report how many accesses it saves on IS.
    println!(
        "IS, store collapsing saves {} cache accesses ({} double stores emitted)",
        base.core.collapsed_stores,
        base.core.collapsed_stores // collapsed == pairs that merged
    );
}
