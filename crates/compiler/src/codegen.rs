//! Phases 2–3 of the compiler support: the tiling transformation
//! (Figure 2) and assembly emission (Figure 3).
//!
//! ## Transformed-code shape (hybrid modes)
//!
//! Each loop is tiled over buffer-size-aligned *windows* of its LM-mapped
//! arrays. Per tile the generated code runs the paper's three phases:
//!
//! ```text
//! dir.cfg <buf_size>                  ; configure the directory masks
//! control:  dma-get every mapped window        (tile 0)
//! synch:    dma-synch
//! work:     main part  — all mapped refs access the LM
//!           tail part  — the last `span` iterations, where refs with a
//!                        positive offset may cross into the next window;
//!                        those refs use *guarded* accesses and let the
//!                        directory route them (LM while in-window, SM
//!                        once past it) — the paper's own mechanism
//!                        reused for window-boundary correctness
//! control:  dma-put dirty windows, advance, dma-get next windows
//! synch:    dma-synch   … repeat …
//! ```
//!
//! ## Reference lowering
//!
//! * regular (mapped)          → plain load/store on the LM buffer
//! * regular (unmapped)/local  → plain load/store on system memory
//! * irregular                 → plain SM access through the indirect
//!   index
//! * potentially incoherent    → **guarded** access with the SM address;
//!   writes additionally emit the plain-store half of the **double
//!   store** (Figure 3 lines 19–20), sharing the address register so the
//!   LSQ can collapse the pair when the directory lookup misses
//!
//! `CacheBased` mode skips tiling entirely and lowers every reference to
//! plain SM accesses — the §4.3 comparison system.

use crate::classify::{classify_loop, LoopPlan, RefClass};
use crate::ir::{Elem, Expr, Index, Kernel, LoopNest, RefId};
use crate::layout::Layout;
use hsim_isa::inst::{AluOp, Cond, FpuOp, Phase};
use hsim_isa::memmap::{LM_BASE, LM_SIZE};
use hsim_isa::reg::{FReg, Reg};
use hsim_isa::{Program, ProgramBuilder, Route, Width};
use std::collections::HashMap;

/// Code-generation target mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodegenMode {
    /// The proposal: LM + directory + guarded instructions + double
    /// stores.
    HybridCoherent,
    /// The incoherent oracle-compiler baseline of Figure 8: LM, no
    /// directory hardware, oracle-routed accesses, single stores.
    HybridOracle,
    /// The §4.3 cache-based system: no LM at all.
    CacheBased,
}

impl CodegenMode {
    /// The route used for potentially incoherent accesses in this mode.
    fn pot_inc_route(self) -> Route {
        match self {
            CodegenMode::HybridCoherent => Route::Guarded,
            CodegenMode::HybridOracle => Route::Oracle,
            CodegenMode::CacheBased => Route::Plain,
        }
    }

    /// Whether this mode tiles loops onto the LM.
    fn uses_lm(self) -> bool {
        !matches!(self, CodegenMode::CacheBased)
    }

    /// Whether potentially incoherent writes need the double store.
    fn double_store(self) -> bool {
        matches!(self, CodegenMode::HybridCoherent)
    }
}

/// A compiled kernel: the program plus everything the machine and the
/// experiment harness need to load and account for it.
#[derive(Clone)]
pub struct CompiledKernel {
    /// The generated program.
    pub program: Program,
    /// Array placement.
    pub layout: Layout,
    /// Per-loop classification plans.
    pub plans: Vec<LoopPlan>,
    /// The mode this kernel was compiled for.
    pub mode: CodegenMode,
    /// Kernel name.
    pub name: String,
}

impl CompiledKernel {
    /// Static count of potentially incoherent references across loops.
    pub fn guarded_refs(&self) -> usize {
        self.plans.iter().map(|p| p.guarded_refs()).sum()
    }

    /// Static count of all references across loops.
    pub fn total_refs(&self) -> usize {
        self.plans.iter().map(|p| p.classes.len()).sum()
    }
}

// Register conventions (see module docs of the emitter below).
const R_IDX: Reg = Reg(0); // j*8 within the work loop
const R_SCRATCH1: Reg = Reg(1); // indirect index values
const R_J: Reg = Reg(2); // work loop variable
const R_JEND: Reg = Reg(3); // iterations this tile
const R_MAIN_END: Reg = Reg(4); // main-part bound
/// Holds constant zero within compiled loops (absolute-addressing base).
const R_ZERO: Reg = Reg(5);
const R_ADDR1: Reg = Reg(6); // materialized bases
const R_ADDR2: Reg = Reg(7); // statement-cached target address
const ARRAY_REGS_FIRST: u8 = 8;
const ARRAY_REGS_LAST: u8 = 19; // r8..r19: array base registers
const TEMP_FIRST: u8 = 20;
const TEMP_LAST: u8 = 25; // r20..r25: int expression temps
const R_TILE_BYTES: Reg = Reg(26); // t * buf_size
const R_TILE_ELEMS: Reg = Reg(27); // t * chunk_elems
const R_N: Reg = Reg(28); // loop trip count
const R_DMA_A: Reg = Reg(29);
const R_DMA_B: Reg = Reg(30);
const R_DMA_C: Reg = Reg(31);

/// What an array base register holds. System-memory addresses need no
/// registers at all: the array's SM base is folded into the memory
/// instruction's displacement (x86-style large-displacement addressing),
/// so only LM buffer bases compete for registers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum BaseKind {
    /// LM buffer base of a mapped array (constant within a loop).
    LmBuf,
}

/// Per-loop allocation of array base registers, with li-materialization
/// fallback when r8..r19 run out.
struct BaseAlloc {
    map: HashMap<(usize, BaseKind), Reg>,
    next: u8,
}

impl BaseAlloc {
    fn new() -> Self {
        BaseAlloc {
            map: HashMap::new(),
            next: ARRAY_REGS_FIRST,
        }
    }

    fn reserve(&mut self, array: usize, kind: BaseKind) {
        if self.map.contains_key(&(array, kind)) || self.next > ARRAY_REGS_LAST {
            return;
        }
        self.map.insert((array, kind), Reg(self.next));
        self.next += 1;
    }

    fn get(&self, array: usize, kind: BaseKind) -> Option<Reg> {
        self.map.get(&(array, kind)).copied()
    }

    /// All (array, kind) -> reg assignments, for prologue initialization.
    fn assignments(&self) -> Vec<(usize, BaseKind, Reg)> {
        let mut v: Vec<_> = self.map.iter().map(|((a, k), r)| (*a, *k, *r)).collect();
        v.sort_by_key(|(_, _, r)| r.0);
        v
    }
}

struct LoopEmitter<'a> {
    b: &'a mut ProgramBuilder,
    kernel: &'a Kernel,
    l: &'a LoopNest,
    plan: &'a LoopPlan,
    layout: &'a Layout,
    mode: CodegenMode,
    bases: BaseAlloc,
    /// Cached address register for the current statement's target.
    stmt_addr: Option<RefId>,
    int_temp: u8,
    fp_temp: u8,
}

/// Compiles a kernel for the given mode, tiling against the full
/// [`LM_SIZE`] local memory.
pub fn compile(kernel: &Kernel, mode: CodegenMode) -> CompiledKernel {
    compile_with_lm(kernel, mode, LM_SIZE)
}

/// Compiles a kernel for the given mode against an explicit local-memory
/// budget of `lm_bytes` (≤ [`LM_SIZE`], the architectural LM window).
///
/// This is how heterogeneous machines compile per-tile code: a tile
/// with a smaller scratchpad gets smaller DMA buffers (more round trips
/// per array), while the emitted addresses stay inside the shared LM
/// window, so shards compiled at different budgets coexist on one chip.
/// `compile(k, m)` is exactly `compile_with_lm(k, m, LM_SIZE)`. The
/// budget is ignored by modes without an LM (`CodegenMode::uses_lm`).
pub fn compile_with_lm(kernel: &Kernel, mode: CodegenMode, lm_bytes: u64) -> CompiledKernel {
    kernel.validate().expect("invalid kernel");
    let layout = Layout::new(kernel);
    let (lm_size, max_bufs) = if mode.uses_lm() {
        assert!(
            (64..=LM_SIZE).contains(&lm_bytes),
            "LM budget must be in [64, {LM_SIZE}], got {lm_bytes}"
        );
        (lm_bytes, 32)
    } else {
        (0, 0)
    };
    let plans: Vec<LoopPlan> = kernel
        .loops
        .iter()
        .map(|l| classify_loop(kernel, l, lm_size, max_bufs))
        .collect();

    let mut b = ProgramBuilder::new();
    for (l, plan) in kernel.loops.iter().zip(&plans) {
        if l.n == 0 {
            continue;
        }
        let mut em = LoopEmitter {
            kernel,
            l,
            plan,
            layout: &layout,
            mode,
            bases: BaseAlloc::new(),
            stmt_addr: None,
            int_temp: TEMP_FIRST,
            fp_temp: 0,
            b: &mut b,
        };
        if mode.uses_lm() && !plan.lm_arrays.is_empty() {
            em.emit_tiled();
        } else {
            em.emit_flat();
        }
    }
    b.phase(Phase::Other);
    b.halt();

    CompiledKernel {
        program: b.build(),
        layout,
        plans,
        mode,
        name: kernel.name.clone(),
    }
}

impl<'a> LoopEmitter<'a> {
    // ------------------------------------------------------------ helpers

    fn lm_buf_base(&self, array: usize) -> u64 {
        let k = self.plan.buffer_of(array).expect("array not mapped") as u64;
        LM_BASE + k * self.plan.buf_size
    }

    fn sm_base(&self, array: usize) -> u64 {
        self.layout.arrays[array].base
    }

    /// Returns a register holding the LM buffer base, materializing into
    /// `R_ADDR1` when no array register was allocated.
    fn lm_base_reg(&mut self, array: usize) -> Reg {
        if let Some(r) = self.bases.get(array, BaseKind::LmBuf) {
            return r;
        }
        let base = self.lm_buf_base(array);
        self.b.li(R_ADDR1, base as i64);
        R_ADDR1
    }

    fn alloc_int_temp(&mut self) -> Reg {
        assert!(self.int_temp <= TEMP_LAST, "int expression too deep");
        let r = Reg(self.int_temp);
        self.int_temp += 1;
        r
    }

    fn free_int_temp(&mut self) {
        self.int_temp -= 1;
    }

    fn alloc_fp_temp(&mut self) -> FReg {
        assert!(self.fp_temp < 16, "fp expression too deep");
        let r = FReg(self.fp_temp);
        self.fp_temp += 1;
        r
    }

    fn free_fp_temp(&mut self) {
        self.fp_temp -= 1;
    }

    // -------------------------------------------------------- addressing

    /// Emits the address computation for reference `r` and returns
    /// `(base, index, displacement, route)` for the memory instruction.
    /// `tail` selects the window-crossing lowering of the work loop's
    /// tail part.
    ///
    /// System-memory addressing needs no base register: the array's SM
    /// base is a compile-time constant folded into the displacement, and
    /// the window advance is carried by `R_TILE_BYTES` (zero in flat
    /// loops). A strided SM access is thus
    /// `disp(sm_base + d*8)(R_TILE_BYTES + R_IDX)` — one instruction,
    /// exactly like the paper's x86 `a(,esi,4)` addressing.
    fn ref_addressing(&mut self, r: RefId, tail: bool) -> (Reg, Option<Reg>, i64, Route) {
        let mr = self.l.refs[r];
        let class = self.plan.classes[r];
        let pot_route = self.mode.pot_inc_route();
        match (class, mr.index) {
            (RefClass::Regular, Index::Affine { offset, .. }) => {
                if tail && offset > 0 {
                    // May cross the window: guarded access on the SM
                    // address; the directory routes it (see module docs).
                    let route = if self.mode == CodegenMode::HybridOracle {
                        Route::Oracle
                    } else {
                        Route::Guarded
                    };
                    let disp = self.sm_base(mr.array) as i64 + offset * 8;
                    (R_TILE_BYTES, Some(R_IDX), disp, route)
                } else {
                    let base = self.lm_base_reg(mr.array);
                    (base, Some(R_IDX), offset * 8, Route::Plain)
                }
            }
            (
                RefClass::RegularUnmapped | RefClass::PotentiallyIncoherent,
                Index::Affine { offset, .. },
            ) => {
                let route = if class == RefClass::PotentiallyIncoherent {
                    pot_route
                } else {
                    Route::Plain
                };
                let disp = self.sm_base(mr.array) as i64 + offset * 8;
                (R_TILE_BYTES, Some(R_IDX), disp, route)
            }
            (RefClass::Local, Index::Affine { offset, .. }) => {
                let disp = self.sm_base(mr.array) as i64 + offset * 8;
                (R_ZERO, None, disp, Route::Plain)
            }
            (class, Index::Indirect { idx_ref, offset }) => {
                // Load the index value, scale it, and use it against the
                // array's SM base (in the displacement).
                let (ib, ii, id, ir) = self.ref_addressing(idx_ref, tail);
                self.b.load_x_opt(R_SCRATCH1, ib, ii, id, Width::D, ir);
                self.b.alui(AluOp::Sll, R_SCRATCH1, R_SCRATCH1, 3);
                let route = if class == RefClass::PotentiallyIncoherent {
                    pot_route
                } else {
                    Route::Plain
                };
                let disp = self.sm_base(mr.array) as i64 + offset * 8;
                (R_SCRATCH1, None, disp, route)
            }
            (c, i) => unreachable!("class {c:?} with index {i:?}"),
        }
    }

    // ------------------------------------------------------- expressions

    /// Evaluates an integer expression into a temp register.
    fn eval_int(&mut self, e: &Expr, tail: bool) -> Reg {
        match e {
            Expr::ConstI(v) => {
                let t = self.alloc_int_temp();
                self.b.li(t, *v);
                t
            }
            Expr::Ivar => {
                // i = tile_elem_base + j (flat mode: R_TILE_ELEMS is 0).
                let t = self.alloc_int_temp();
                self.b.add(t, R_TILE_ELEMS, R_J);
                t
            }
            Expr::Ref(r) => {
                let t = self.alloc_int_temp();
                self.emit_load_into(*r, tail, Some(t), None);
                t
            }
            Expr::Add(a, x) => self.int_binop(AluOp::Add, a, x, tail),
            Expr::Sub(a, x) => self.int_binop(AluOp::Sub, a, x, tail),
            Expr::Mul(a, x) => self.int_binop(AluOp::Mul, a, x, tail),
            Expr::ConstF(_) | Expr::CvtIF(_) => unreachable!("fp expr in int context"),
        }
    }

    fn int_binop(&mut self, op: AluOp, a: &Expr, b: &Expr, tail: bool) -> Reg {
        let ra = self.eval_int(a, tail);
        let rb = self.eval_int(b, tail);
        self.b.alu(op, ra, ra, rb);
        self.free_int_temp();
        ra
    }

    /// Evaluates an FP expression into a temp register.
    fn eval_fp(&mut self, e: &Expr, tail: bool) -> FReg {
        match e {
            Expr::ConstF(v) => {
                let t = self.alloc_fp_temp();
                let bits = self.alloc_int_temp();
                self.b.li(bits, v.to_bits() as i64);
                self.b.push(hsim_isa::Inst::MovIF { fd: t, rs: bits });
                self.free_int_temp();
                t
            }
            Expr::Ref(r) => {
                let t = self.alloc_fp_temp();
                self.emit_load_into(*r, tail, None, Some(t));
                t
            }
            Expr::Add(a, x) => self.fp_binop(FpuOp::FAdd, a, x, tail),
            Expr::Sub(a, x) => self.fp_binop(FpuOp::FSub, a, x, tail),
            Expr::Mul(a, x) => self.fp_binop(FpuOp::FMul, a, x, tail),
            Expr::CvtIF(a) => {
                let ri = self.eval_int(a, tail);
                let t = self.alloc_fp_temp();
                self.b.push(hsim_isa::Inst::CvtIF { fd: t, rs: ri });
                self.free_int_temp();
                t
            }
            Expr::ConstI(_) | Expr::Ivar => unreachable!("int expr in fp context"),
        }
    }

    fn fp_binop(&mut self, op: FpuOp, a: &Expr, b: &Expr, tail: bool) -> FReg {
        let ra = self.eval_fp(a, tail);
        let rb = self.eval_fp(b, tail);
        self.b.fpu(op, ra, ra, rb);
        self.free_fp_temp();
        ra
    }

    /// Emits the load of reference `r` into an int or FP register. Uses
    /// the statement's cached target address when `r` is the statement
    /// target (the `x += …` pattern of Figure 3).
    fn emit_load_into(&mut self, r: RefId, tail: bool, rd: Option<Reg>, fd: Option<FReg>) {
        let (base, index, disp, route) = if self.stmt_addr == Some(r) {
            (R_ADDR2, None, 0, self.route_of(r, tail))
        } else {
            self.ref_addressing(r, tail)
        };
        match (rd, fd) {
            (Some(rd), None) => self.b.load_x_opt(rd, base, index, disp, Width::D, route),
            (None, Some(fd)) => self.b.fload_x_opt(fd, base, index, disp, route),
            _ => unreachable!(),
        }
    }

    fn route_of(&self, r: RefId, tail: bool) -> Route {
        match self.plan.classes[r] {
            RefClass::PotentiallyIncoherent => self.mode.pot_inc_route(),
            RefClass::Regular => {
                if tail {
                    if let Index::Affine { offset, .. } = self.l.refs[r].index {
                        if offset > 0 {
                            return if self.mode == CodegenMode::HybridOracle {
                                Route::Oracle
                            } else {
                                Route::Guarded
                            };
                        }
                    }
                }
                Route::Plain
            }
            _ => Route::Plain,
        }
    }

    // --------------------------------------------------------- statements

    fn emit_stmt(&mut self, s: &crate::ir::Stmt, tail: bool) {
        let target = s.target;
        let is_fp = self.kernel.ref_elem(self.l, target) == Elem::F64;
        // Pre-compute the target address into R_ADDR2 when the value
        // expression reads the same reference (read-modify-write), so the
        // load and both stores of a double store share one address.
        let mut reads_target = false;
        s.value.clone().walk_refs(&mut |r| {
            if r == target {
                reads_target = true;
            }
        });
        // Read-modify-write statements and indirect targets compute the
        // address once into R_ADDR2 (Figure 3 shares the address between
        // gld/gst/st). Affine double-store targets need no shared
        // register: both stores carry identical base+index+displacement
        // operands and the LSQ collapse matches on the final address.
        let needs_shared_addr = reads_target
            || matches!(self.l.refs[target].index, Index::Indirect { .. })
                && self.plan.double_stores.contains(&target)
                && self.mode.double_store();
        let (base, index, disp, route) = if needs_shared_addr {
            let (b_, i_, d_, r_) = self.ref_addressing(target, tail);
            match i_ {
                Some(ix) => self.b.add(R_ADDR2, b_, ix),
                None => self.b.mv(R_ADDR2, b_),
            }
            if d_ != 0 {
                self.b.addi(R_ADDR2, R_ADDR2, d_);
            }
            self.stmt_addr = Some(target);
            (R_ADDR2, None, 0, r_)
        } else {
            (Reg(0), None, 0, Route::Plain) // placeholder; recomputed below
        };

        if is_fp {
            let v = self.eval_fp(&s.value, tail);
            let (base, index, disp, route) = if needs_shared_addr {
                (base, index, disp, route)
            } else {
                self.ref_addressing(target, tail)
            };
            self.b.fstore_x_opt(v, base, index, disp, route);
            if route == Route::Guarded
                && self.plan.double_stores.contains(&target)
                && self.mode.double_store()
            {
                self.b.fstore_x_opt(v, base, index, disp, Route::Plain);
            }
            self.free_fp_temp();
        } else {
            let v = self.eval_int(&s.value, tail);
            let (base, index, disp, route) = if needs_shared_addr {
                (base, index, disp, route)
            } else {
                self.ref_addressing(target, tail)
            };
            self.b.store_x_opt(v, base, index, disp, Width::D, route);
            if route == Route::Guarded
                && self.plan.double_stores.contains(&target)
                && self.mode.double_store()
            {
                self.b
                    .store_x_opt(v, base, index, disp, Width::D, Route::Plain);
            }
            self.free_int_temp();
        }
        self.stmt_addr = None;
        debug_assert_eq!(self.int_temp, TEMP_FIRST, "int temp leak");
        debug_assert_eq!(self.fp_temp, 0, "fp temp leak");
    }

    fn emit_body(&mut self, tail: bool) {
        // j*8 for indexed addressing.
        self.b.alui(AluOp::Sll, R_IDX, R_J, 3);
        for s in &self.l.stmts.clone() {
            self.emit_stmt(s, tail);
        }
    }

    // -------------------------------------------------------- loop shapes

    /// Flat (untiled) emission: cache-based mode, or loops without any
    /// mapped array.
    fn emit_flat(&mut self) {
        self.reserve_base_regs();
        self.b.phase(Phase::Work);
        self.b.li(R_TILE_ELEMS, 0);
        self.b.li(R_TILE_BYTES, 0);
        self.b.li(R_N, self.l.n as i64);
        self.init_base_regs();
        self.b.li(R_J, 0);
        let top = self.b.new_label();
        self.b.bind(top);
        self.emit_body(false);
        self.b.addi(R_J, R_J, 1);
        self.b.branch(Cond::Lt, R_J, R_N, top);
        self.b.phase(Phase::Other);
    }

    /// Tiled three-phase emission (Figure 2).
    fn emit_tiled(&mut self) {
        let plan = self.plan;
        let buf = plan.buf_size as i64;
        let chunk = plan.chunk_elems as i64;
        let span = plan.tail_span as i64;

        self.reserve_base_regs();

        // Prologue: configure the directory, initialize cursors and base
        // registers, map the first windows.
        self.b.phase(Phase::Control);
        self.b.li(R_DMA_A, buf);
        self.b.dir_cfg(R_DMA_A);
        self.b.li(R_TILE_BYTES, 0);
        self.b.li(R_TILE_ELEMS, 0);
        self.b.li(R_N, self.l.n as i64);
        self.init_base_regs();
        self.emit_gets();
        self.b.phase(Phase::Synch);
        self.b.dma_synch(0);

        let tile_top = self.b.new_named_label("tile");
        let exit = self.b.new_named_label("exit");
        self.b.bind(tile_top);
        self.b.phase(Phase::Work);

        // j_end = min(chunk, n - tile_elems)
        self.b.li(R_JEND, chunk);
        self.b.alu(AluOp::Sub, R_SCRATCH1, R_N, R_TILE_ELEMS);
        let keep_chunk = self.b.new_label();
        self.b.branch(Cond::Ge, R_SCRATCH1, R_JEND, keep_chunk);
        self.b.mv(R_JEND, R_SCRATCH1);
        self.b.bind(keep_chunk);

        // main_end = max(0, j_end - span)
        if span > 0 {
            self.b.addi(R_MAIN_END, R_JEND, -span);
            let pos = self.b.new_label();
            self.b.branch(Cond::Ge, R_MAIN_END, R_ZERO, pos);
            self.b.mv(R_MAIN_END, R_ZERO);
            self.b.bind(pos);
        } else {
            self.b.mv(R_MAIN_END, R_JEND);
        }

        // Main part.
        self.b.li(R_J, 0);
        let main_done = self.b.new_label();
        self.b.branch(Cond::Ge, R_J, R_MAIN_END, main_done);
        let main_top = self.b.new_label();
        self.b.bind(main_top);
        self.emit_body(false);
        self.b.addi(R_J, R_J, 1);
        self.b.branch(Cond::Lt, R_J, R_MAIN_END, main_top);
        self.b.bind(main_done);

        // Tail part (window-crossing iterations).
        if span > 0 {
            let tail_done = self.b.new_label();
            self.b.branch(Cond::Ge, R_J, R_JEND, tail_done);
            let tail_top = self.b.new_label();
            self.b.bind(tail_top);
            self.emit_body(true);
            self.b.addi(R_J, R_J, 1);
            self.b.branch(Cond::Lt, R_J, R_JEND, tail_top);
            self.b.bind(tail_done);
        }

        // Control: write back dirty windows, advance, map next windows.
        self.b.phase(Phase::Control);
        self.emit_puts();
        self.b.addi(R_TILE_BYTES, R_TILE_BYTES, buf);
        self.b.addi(R_TILE_ELEMS, R_TILE_ELEMS, chunk);
        self.b.branch(Cond::Ge, R_TILE_ELEMS, R_N, exit);
        self.emit_gets();
        self.b.phase(Phase::Synch);
        self.b.dma_synch(0);
        self.b.jump(tile_top);
        self.b.bind(exit);
        self.b.phase(Phase::Other);
    }

    /// Reserves LM-buffer base registers (SM addressing needs none).
    fn reserve_base_regs(&mut self) {
        let mapped = self.plan.lm_arrays.clone();
        for a in &mapped {
            self.bases.reserve(*a, BaseKind::LmBuf);
        }
    }

    fn init_base_regs(&mut self) {
        self.b.li(R_ZERO, 0);
        for (array, _, reg) in self.bases.assignments() {
            let v = self.lm_buf_base(array) as i64;
            self.b.li(reg, v);
        }
    }

    /// `dma-get` of the current window of every mapped array.
    fn emit_gets(&mut self) {
        for a in self.plan.lm_arrays.clone() {
            self.b.li(R_DMA_A, self.lm_buf_base(a) as i64);
            self.b.li(R_DMA_B, self.sm_base(a) as i64);
            self.b.add(R_DMA_B, R_DMA_B, R_TILE_BYTES);
            self.b.li(R_DMA_C, self.plan.buf_size as i64);
            self.b.dma_get(R_DMA_A, R_DMA_B, R_DMA_C, 0);
        }
    }

    /// `dma-put` of the just-computed window of every dirty array.
    /// Read-only windows are not written back — the optimization that
    /// makes the double store necessary (§3.1).
    fn emit_puts(&mut self) {
        for a in self.plan.lm_arrays.clone() {
            if !self.plan.dirty_arrays.contains(&a) {
                continue;
            }
            self.b.li(R_DMA_A, self.lm_buf_base(a) as i64);
            self.b.li(R_DMA_B, self.sm_base(a) as i64);
            self.b.add(R_DMA_B, R_DMA_B, R_TILE_BYTES);
            self.b.li(R_DMA_C, self.plan.buf_size as i64);
            self.b.dma_put(R_DMA_A, R_DMA_B, R_DMA_C, 0);
        }
    }
}

impl Expr {
    fn walk_refs(&self, f: &mut impl FnMut(RefId)) {
        match self {
            Expr::Ref(r) => f(*r),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.walk_refs(f);
                b.walk_refs(f);
            }
            Expr::CvtIF(a) => a.walk_refs(f),
            _ => {}
        }
    }
}

/// Small builder extensions: loads/stores with an optional index.
trait BuilderExt {
    fn load_x_opt(&mut self, rd: Reg, base: Reg, index: Option<Reg>, off: i64, w: Width, r: Route);
    fn store_x_opt(&mut self, rs: Reg, base: Reg, index: Option<Reg>, off: i64, w: Width, r: Route);
    fn fload_x_opt(&mut self, fd: FReg, base: Reg, index: Option<Reg>, off: i64, r: Route);
    fn fstore_x_opt(&mut self, fs: FReg, base: Reg, index: Option<Reg>, off: i64, r: Route);
}

impl BuilderExt for ProgramBuilder {
    fn load_x_opt(&mut self, rd: Reg, base: Reg, index: Option<Reg>, off: i64, w: Width, r: Route) {
        match index {
            Some(ix) => self.load_x(rd, base, ix, off, w, r),
            None => self.load(rd, base, off, w, r),
        }
    }

    fn store_x_opt(
        &mut self,
        rs: Reg,
        base: Reg,
        index: Option<Reg>,
        off: i64,
        w: Width,
        r: Route,
    ) {
        match index {
            Some(ix) => self.store_x(rs, base, ix, off, w, r),
            None => self.store(rs, base, off, w, r),
        }
    }

    fn fload_x_opt(&mut self, fd: FReg, base: Reg, index: Option<Reg>, off: i64, r: Route) {
        match index {
            Some(ix) => self.fload_x(fd, base, ix, off, r),
            None => self.fload(fd, base, off, r),
        }
    }

    fn fstore_x_opt(&mut self, fs: FReg, base: Reg, index: Option<Reg>, off: i64, r: Route) {
        match index {
            Some(ix) => self.fstore_x(fs, base, ix, off, r),
            None => self.fstore(fs, base, off, r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::KernelBuilder;
    use hsim_isa::Inst;

    fn figure3_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("fig3");
        let a = kb.array_i64("a", 4096);
        let b = kb.array_i64("b", 4096);
        let c = kb.array_i64("c", 2048);
        let idx = kb.array_i64_init("idx", &(0..4096).map(|i| i % 2048).collect::<Vec<_>>());
        let ptr = kb.array_i64("ptr_target", 4096);
        kb.begin_loop(4096);
        let ra = kb.ref_affine(a, 1, 0);
        let rb = kb.ref_affine(b, 1, 0);
        let ridx = kb.ref_affine(idx, 1, 0);
        let rc = kb.ref_indirect(c, ridx, 0);
        let rp = kb.ref_indirect(ptr, ridx, 0);
        kb.stmt(ra, Expr::Ref(rb));
        kb.stmt(rc, Expr::ConstI(0));
        kb.stmt(rp, Expr::add(Expr::Ref(rp), Expr::ConstI(1)));
        kb.alias_mut().may_alias(ptr, a);
        kb.end_loop();
        kb.build().unwrap()
    }

    #[test]
    fn coherent_mode_emits_guards_and_double_store() {
        let ck = compile(&figure3_kernel(), CodegenMode::HybridCoherent);
        let p = &ck.program;
        assert!(p.count_route(Route::Guarded) >= 2, "gld + gst expected");
        assert_eq!(p.count_route(Route::Oracle), 0);
        // Double store: a guarded store immediately followed by a plain
        // store with identical operands (Figure 3 lines 19-20).
        let mut found = false;
        for w in p.insts.windows(2) {
            if let (
                Inst::Store {
                    rs: r1,
                    base: b1,
                    index: i1,
                    offset: o1,
                    route: Route::Guarded,
                    ..
                },
                Inst::Store {
                    rs: r2,
                    base: b2,
                    index: i2,
                    offset: o2,
                    route: Route::Plain,
                    ..
                },
            ) = (&w[0], &w[1])
            {
                if r1 == r2 && b1 == b2 && i1 == i2 && o1 == o2 {
                    found = true;
                }
            }
        }
        assert!(
            found,
            "double store pattern missing:\n{}",
            hsim_isa::asm::disassemble(p)
        );
    }

    #[test]
    fn oracle_mode_uses_single_oracle_stores() {
        let ck = compile(&figure3_kernel(), CodegenMode::HybridOracle);
        let p = &ck.program;
        assert_eq!(p.count_route(Route::Guarded), 0);
        assert!(p.count_route(Route::Oracle) >= 2);
        // No double store in oracle mode: count plain stores adjacent to
        // oracle stores with same operands.
        for w in p.insts.windows(2) {
            if let (
                Inst::Store {
                    route: Route::Oracle,
                    base: b1,
                    index: i1,
                    offset: o1,
                    ..
                },
                Inst::Store {
                    route: Route::Plain,
                    base: b2,
                    index: i2,
                    offset: o2,
                    ..
                },
            ) = (&w[0], &w[1])
            {
                assert!(
                    !(b1 == b2 && i1 == i2 && o1 == o2),
                    "oracle mode must not emit double stores"
                );
            }
        }
    }

    #[test]
    fn cache_mode_has_no_lm_artifacts() {
        let ck = compile(&figure3_kernel(), CodegenMode::CacheBased);
        let p = &ck.program;
        assert_eq!(p.count_route(Route::Guarded), 0);
        assert_eq!(p.count_route(Route::Oracle), 0);
        assert_eq!(p.count(|i| i.is_dma()), 0);
        assert_eq!(p.count(|i| matches!(i, Inst::DirCfg { .. })), 0);
    }

    #[test]
    fn tiled_code_has_dma_structure() {
        let ck = compile(&figure3_kernel(), CodegenMode::HybridCoherent);
        let p = &ck.program;
        let gets = p.count(|i| matches!(i, Inst::DmaGet { .. }));
        let puts = p.count(|i| matches!(i, Inst::DmaPut { .. }));
        let synchs = p.count(|i| matches!(i, Inst::DmaSynch { .. }));
        // 4 mapped arrays (a, b, idx + ... exactly the strided ones): one
        // get per mapped array in prologue + one in steady state; puts
        // only for dirty a.
        assert!(gets >= 2, "gets={gets}");
        assert_eq!(puts, 1, "only `a` is dirty");
        assert_eq!(synchs, 2);
        assert_eq!(p.count(|i| matches!(i, Inst::DirCfg { .. })), 1);
        // Phase markers present.
        for ph in [Phase::Control, Phase::Synch, Phase::Work] {
            assert!(p.count(|i| matches!(i, Inst::PhaseMark { phase } if *phase == ph)) > 0);
        }
    }

    #[test]
    fn static_ref_counts() {
        let ck = compile(&figure3_kernel(), CodegenMode::HybridCoherent);
        assert_eq!(ck.total_refs(), 5);
        assert_eq!(ck.guarded_refs(), 1);
    }

    #[test]
    fn tail_span_kernels_emit_guarded_tail() {
        // a[i+1] = a[i]: offset 1 regular ref -> tail part with guarded
        // crossing accesses.
        let mut kb = KernelBuilder::new("chain");
        let a = kb.array_i64("a", 8193);
        kb.begin_loop(8192);
        let r0 = kb.ref_affine(a, 1, 0);
        let r1 = kb.ref_affine(a, 1, 1);
        kb.stmt(r1, Expr::add(Expr::Ref(r0), Expr::ConstI(1)));
        kb.end_loop();
        let k = kb.build().unwrap();
        let ck = compile(&k, CodegenMode::HybridCoherent);
        assert!(ck.plans[0].tail_span == 1);
        assert!(
            ck.program.count_route(Route::Guarded) > 0,
            "tail uses guards"
        );
    }

    #[test]
    fn empty_loop_skipped() {
        let mut kb = KernelBuilder::new("empty");
        let a = kb.array_i64("a", 16);
        kb.begin_loop(0);
        let ra = kb.ref_affine(a, 1, 0);
        kb.stmt(ra, Expr::ConstI(1));
        kb.end_loop();
        let k = kb.build().unwrap();
        let ck = compile(&k, CodegenMode::HybridCoherent);
        // Just the trailing phase marker + halt.
        assert!(ck.program.len() <= 2);
    }

    #[test]
    fn disassembly_shows_paper_mnemonics() {
        let ck = compile(&figure3_kernel(), CodegenMode::HybridCoherent);
        let asm = hsim_isa::asm::disassemble(&ck.program);
        assert!(asm.contains("gld.d"), "guarded load mnemonic");
        assert!(asm.contains("gst.d"), "guarded store mnemonic");
        assert!(asm.contains("dma.get"));
        assert!(asm.contains("dma.synch"));
        assert!(asm.contains("phase work"));
    }
}
