//! Regenerates Table 1: the simulated core and memory configuration.
//!
//! ```text
//! cargo run -p hsim-bench --bin table1
//! ```

use hsim_core::CoreConfig;
use hsim_mem::MemConfig;

fn main() {
    let core = CoreConfig::default();
    let mem = MemConfig::hybrid();

    println!("TABLE 1: simulator configuration parameters");
    println!("(paper values in parentheses where they differ — see DESIGN.md)");
    println!();
    let rows: Vec<(String, String)> = vec![
        (
            "Pipeline".into(),
            format!("Out-of-order, {} instructions wide", core.fetch_width),
        ),
        (
            "Branch predictor".into(),
            format!(
                "Hybrid {}K selector, {}K G-share, {}K Bimodal",
                core.selector_entries / 1024,
                core.gshare_entries / 1024,
                core.bimodal_entries / 1024
            ),
        ),
        (
            "".into(),
            format!(
                "{}K BTB {}-way, RAS {} entries",
                core.btb_entries / 1024,
                core.btb_ways,
                core.ras_entries
            ),
        ),
        (
            "Functional units".into(),
            format!(
                "{} INT ALUs, {} FP ALUs, {} load/store units",
                core.int_alus, core.fp_alus, core.ls_units
            ),
        ),
        (
            "Register file".into(),
            format!(
                "{} INT registers, {} FP registers",
                core.int_phys_regs, core.fp_phys_regs
            ),
        ),
        (
            "Window".into(),
            format!(
                "{}-entry ROB, {} load / {} store queue entries",
                core.rob_size, core.lsq_loads, core.lsq_stores
            ),
        ),
        ("L1 I-cache".into(), cache_line(&mem.l1i)),
        ("L1 D-cache".into(), cache_line(&mem.l1d)),
        ("L2 cache".into(), format!("{} (paper: 24-way)", cache_line(&mem.l2))),
        ("L3 cache".into(), cache_line(&mem.l3)),
        (
            "Prefetcher".into(),
            format!(
                "IP-based stream prefetcher to L1, L2 and L3 ({}-entry table, degree {}, distance {})",
                mem.prefetch.table_entries, mem.prefetch.degree, mem.prefetch.distance
            ),
        ),
        (
            "Local memory".into(),
            format!(
                "{} KB, {} cycles latency",
                mem.lm.as_ref().unwrap().size_bytes / 1024,
                mem.lm.as_ref().unwrap().latency
            ),
        ),
        (
            "Directory".into(),
            "32-entry CAM, lookup folded into the AGU cycle".into(),
        ),
        (
            "DMA controller".into(),
            format!(
                "pipelined, {} B/cycle, {}-cycle setup, {}-cycle first data",
                mem.dma.bytes_per_cycle, mem.dma.setup_latency, mem.dma.first_data_latency
            ),
        ),
        (
            "DRAM".into(),
            format!("{} cycles latency, {}-cycle line gap", mem.dram.latency, mem.dram.gap),
        ),
    ];
    for (name, desc) in rows {
        println!("{:18} {}", name, desc);
    }
}

fn cache_line(c: &hsim_mem::CacheConfig) -> String {
    format!(
        "{} KB, {}-way set-associative, {:?}, {} cycles latency",
        c.size_bytes / 1024,
        c.ways,
        c.write_policy,
        c.latency
    )
}
