//! A real N-core machine: per-core tiles (pipeline, L1/L2, TLB, LM,
//! DMAC, coherence directory) in front of one **shared L3 + DRAM
//! backside**, ticked in lock step with round-robin bus arbitration.
//!
//! The protocol is strictly per-core (§3): LMs hold private data only
//! and the hybrid-coherence hardware never interacts with inter-core
//! cache coherence. This example shards one NAS kernel into disjoint
//! iteration slices, runs all cores as *one* machine, and reports what
//! the single-core story cannot show: per-core shared-L3/DRAM
//! contention and the parallel makespan — then runs the same machine
//! again under `CoherenceMode::Mesi`, where the L3-bank directory
//! slices serve CG's read-only gathered table from shared lines
//! instead of per-core replicas.
//!
//! ```text
//! cargo run --release --example multicore
//! ```

use hsim::prelude::*;
use hsim_compiler::compile;
use hsim_workloads::nas;

fn main() {
    let cores = 4;
    let kernel = nas::cg(Scale::Test);
    println!(
        "one {cores}-core machine on disjoint shards of {} (shared L3 + DRAM, per-core LM + directory):",
        kernel.name
    );

    let shards = kernel.shard(cores).expect("CG shards cleanly");
    let compiled: Vec<_> = shards
        .iter()
        .map(|s| (compile(s, SysMode::HybridCoherent.codegen()), s.clone()))
        .collect();
    // Pin the first run to per-core replication (the §3 baseline),
    // whatever HSIM_COHERENCE says, so the contrast below is stable.
    let mut cfg =
        MachineConfig::for_mode(SysMode::HybridCoherent).with_coherence(CoherenceMode::Replicate);
    cfg.track_coherence = true;
    let mut machine = MultiMachine::for_kernels(cfg, &compiled);
    machine.run().expect("all cores halt");

    let cks: Vec<_> = compiled.iter().map(|(ck, _)| ck.clone()).collect();
    let report = MultiRunReport::collect(&machine, &cks);
    for r in &report.per_core {
        println!(
            "  core {}: {:>8} cycles, {:>6} directory accesses, {:>5} bus-wait cycles, \
             {:>4} DRAM lines, {} violations",
            r.core_id,
            r.cycles,
            r.dir_accesses,
            r.bus_wait_cycles,
            r.dram_reads + r.dram_writes,
            r.violations
        );
    }
    println!(
        "parallel makespan: {} cycles; aggregate IPC {:.2}; total shared-backside waits: {} cycles; \
         coherence violations: {}",
        report.makespan,
        report.aggregate_ipc(),
        report.total_bus_wait_cycles(),
        report.total_violations()
    );
    println!(
        "under Replicate, no inter-core coherence traffic exists: each directory only ever \
         observes its own core, and the only cross-core coupling is timing through the shared \
         L3/DRAM backside."
    );

    // The same machine with the MESI directory at the L3 banks: the
    // sharder's read-only gathered table (CG's x) is served from shared
    // lines, so the chip fetches it from DRAM once instead of once per
    // core. The per-tile hybrid protocol is untouched (§3): still zero
    // violations with the tracker on.
    let mut mesi_cfg =
        MachineConfig::for_mode(SysMode::HybridCoherent).with_coherence(CoherenceMode::Mesi);
    mesi_cfg.track_coherence = true;
    let mut mesi_machine = MultiMachine::for_kernels(mesi_cfg, &compiled);
    mesi_machine.run().expect("all cores halt");
    let mesi = MultiRunReport::collect(&mesi_machine, &cks);
    println!(
        "\nsame shards under CoherenceMode::Mesi: makespan {} cycles ({} under Replicate), \
         DRAM reads {} (vs {}), {} shared-line hits, {} invalidations, {} interventions, \
         coherence violations: {}",
        mesi.makespan,
        report.makespan,
        mesi.total_dram_reads(),
        report.total_dram_reads(),
        mesi.total_shared_hits(),
        mesi.total_invalidations(),
        mesi.total_interventions(),
        mesi.total_violations()
    );
}
