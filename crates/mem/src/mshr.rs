//! Miss-status holding registers.
//!
//! The MSHR file bounds the number of outstanding misses and merges
//! secondary misses to an in-flight line: a second load to a line that is
//! already being fetched completes when the primary miss does, without
//! re-walking the lower levels of the hierarchy (and without re-counting
//! accesses there).
//!
//! ## Invariants
//!
//! * **Horizon monotonicity** — [`MshrFile::next_ready_after`] is the
//!   MSHR contribution to the memory-side event horizon: the earliest
//!   in-flight fill completion strictly after `now`. Entries change
//!   only inside `lookup_or_allocate`/`set_ready` calls made by a
//!   ticking core, so between calls the horizon can only move forward
//!   and the event-horizon cycle skipper may sleep until it.
//!   Provisional entries (allocated, completion not yet known) are
//!   excluded — their fill time is computed and recorded within the
//!   same access call, before any skip decision can observe the file.
//! * **Throttling** — an allocation against a full file starts only
//!   when the earliest in-flight entry retires (`full_stall_cycles`),
//!   so the stream of fetches the file injects into the shared
//!   backside is paced by backside completions, never ahead of them.

/// One in-flight miss.
#[derive(Clone, Copy, Debug)]
struct Entry {
    line_addr: u64,
    ready_at: u64,
    valid: bool,
    /// The fill's backside walk included an inter-core coherence
    /// intervention (M-state recall), lengthening it; merges against
    /// this entry are stalled by another core's dirty data.
    intervention: bool,
}

/// Statistics of the MSHR file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MshrStats {
    /// Primary misses that allocated an entry.
    pub allocations: u64,
    /// Secondary misses merged into an in-flight entry.
    pub merges: u64,
    /// Cycles lost waiting for a free entry.
    pub full_stall_cycles: u64,
    /// Of the merges, those that waited on a fill lengthened by an
    /// inter-core M-state intervention (`CoherenceMode::Mesi` only): the
    /// per-core cost of sharing a line another core is writing.
    pub intervention_stalls: u64,
}

/// A file of miss-status holding registers.
pub struct MshrFile {
    entries: Vec<Entry>,
    /// Statistics.
    pub stats: MshrStats,
}

/// The outcome of presenting a miss to the MSHR file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrOutcome {
    /// The line is already in flight; the access completes at the given
    /// cycle without going below.
    Merged {
        /// Completion cycle of the in-flight fetch.
        ready_at: u64,
    },
    /// A new entry was allocated; the caller must fetch from below and
    /// then call [`MshrFile::set_ready`]. `start_at` is delayed past `now`
    /// when the file was full.
    Allocated {
        /// Index of the allocated entry.
        idx: usize,
        /// Cycle at which the fetch can begin.
        start_at: u64,
    },
}

impl MshrFile {
    /// Creates a file with `n` entries.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        MshrFile {
            entries: vec![
                Entry {
                    line_addr: 0,
                    ready_at: 0,
                    valid: false,
                    intervention: false,
                };
                n
            ],
            stats: MshrStats::default(),
        }
    }

    /// Number of entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of entries still in flight at `now`.
    pub fn in_flight(&self, now: u64) -> usize {
        self.entries
            .iter()
            .filter(|e| e.valid && e.ready_at > now)
            .count()
    }

    /// Checks whether `line_addr` is still being fetched at `now`. Counts
    /// a merge and returns the completion cycle when it is. Used by the
    /// hierarchy for accesses that *hit* on a line whose fill is still in
    /// flight (the timing model places lines at miss time).
    pub fn pending_ready(&mut self, line_addr: u64, now: u64) -> Option<u64> {
        for e in &self.entries {
            if e.valid && e.line_addr == line_addr && e.ready_at != u64::MAX && e.ready_at > now {
                self.stats.merges += 1;
                if e.intervention {
                    self.stats.intervention_stalls += 1;
                }
                return Some(e.ready_at);
            }
        }
        None
    }

    /// Presents a miss on `line_addr` at cycle `now`.
    pub fn lookup_or_allocate(&mut self, line_addr: u64, now: u64) -> MshrOutcome {
        // Merge with an in-flight fetch of the same line.
        for e in &self.entries {
            if e.valid && e.line_addr == line_addr && e.ready_at > now {
                self.stats.merges += 1;
                if e.intervention {
                    self.stats.intervention_stalls += 1;
                }
                return MshrOutcome::Merged {
                    ready_at: e.ready_at,
                };
            }
        }
        // Find a free (invalid or completed) entry, else wait for the
        // earliest completion.
        let mut free: Option<usize> = None;
        let mut earliest = u64::MAX;
        for (i, e) in self.entries.iter().enumerate() {
            if !e.valid || e.ready_at <= now {
                free = Some(i);
                break;
            }
            earliest = earliest.min(e.ready_at);
        }
        let (idx, start_at) = match free {
            Some(i) => (i, now),
            None => {
                self.stats.full_stall_cycles += earliest - now;
                // The entry completing earliest is reused.
                let idx = self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.ready_at)
                    .map(|(i, _)| i)
                    .unwrap();
                (idx, earliest)
            }
        };
        self.stats.allocations += 1;
        self.entries[idx] = Entry {
            line_addr,
            ready_at: u64::MAX, // provisional until set_ready
            valid: true,
            intervention: false,
        };
        MshrOutcome::Allocated { idx, start_at }
    }

    /// The earliest in-flight fill completion strictly after `now`, if
    /// any — the MSHR contribution to the memory-side event horizon the
    /// cycle skipper must not jump past.
    pub fn next_ready_after(&self, now: u64) -> Option<u64> {
        self.entries
            .iter()
            .filter(|e| e.valid && e.ready_at != u64::MAX && e.ready_at > now)
            .map(|e| e.ready_at)
            .min()
    }

    /// Records the completion cycle of an allocated fetch.
    pub fn set_ready(&mut self, idx: usize, ready_at: u64) {
        debug_assert!(self.entries[idx].valid);
        self.entries[idx].ready_at = ready_at;
    }

    /// Flags an allocated entry's fill as lengthened by an inter-core
    /// M-state intervention; later merges against it count as
    /// [`MshrStats::intervention_stalls`].
    pub fn note_intervention(&mut self, idx: usize) {
        debug_assert!(self.entries[idx].valid);
        self.entries[idx].intervention = true;
    }

    /// Clears all entries (statistics are kept).
    pub fn reset(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_merge() {
        let mut m = MshrFile::new(4);
        let o = m.lookup_or_allocate(0x1000, 10);
        let idx = match o {
            MshrOutcome::Allocated { idx, start_at } => {
                assert_eq!(start_at, 10);
                idx
            }
            other => panic!("{other:?}"),
        };
        m.set_ready(idx, 100);
        // A second miss to the same line merges.
        assert_eq!(
            m.lookup_or_allocate(0x1000, 20),
            MshrOutcome::Merged { ready_at: 100 }
        );
        assert_eq!(m.stats.merges, 1);
        // After completion, the same line allocates again.
        match m.lookup_or_allocate(0x1000, 150) {
            MshrOutcome::Allocated { .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn different_lines_do_not_merge() {
        let mut m = MshrFile::new(4);
        if let MshrOutcome::Allocated { idx, .. } = m.lookup_or_allocate(0x1000, 0) {
            m.set_ready(idx, 100);
        }
        match m.lookup_or_allocate(0x2000, 0) {
            MshrOutcome::Allocated { .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn full_file_delays_start() {
        let mut m = MshrFile::new(2);
        for (i, line) in [0x1000u64, 0x2000].iter().enumerate() {
            if let MshrOutcome::Allocated { idx, .. } = m.lookup_or_allocate(*line, 0) {
                m.set_ready(idx, 50 + i as u64 * 10); // ready at 50, 60
            } else {
                panic!();
            }
        }
        // Third miss at cycle 10 must wait for the cycle-50 completion.
        match m.lookup_or_allocate(0x3000, 10) {
            MshrOutcome::Allocated { start_at, .. } => assert_eq!(start_at, 50),
            other => panic!("{other:?}"),
        }
        assert_eq!(m.stats.full_stall_cycles, 40);
    }

    #[test]
    fn in_flight_counting() {
        let mut m = MshrFile::new(4);
        if let MshrOutcome::Allocated { idx, .. } = m.lookup_or_allocate(0x1000, 0) {
            m.set_ready(idx, 100);
        }
        assert_eq!(m.in_flight(10), 1);
        assert_eq!(m.in_flight(100), 0);
    }

    #[test]
    fn merges_on_intervention_fills_count_as_intervention_stalls() {
        let mut m = MshrFile::new(4);
        let idx = match m.lookup_or_allocate(0x1000, 0) {
            MshrOutcome::Allocated { idx, .. } => idx,
            other => panic!("{other:?}"),
        };
        m.set_ready(idx, 300);
        m.note_intervention(idx);
        assert_eq!(
            m.lookup_or_allocate(0x1000, 10),
            MshrOutcome::Merged { ready_at: 300 }
        );
        assert_eq!(m.pending_ready(0x1000, 20), Some(300));
        assert_eq!(m.stats.merges, 2);
        assert_eq!(m.stats.intervention_stalls, 2);
        // Re-allocation clears the flag.
        match m.lookup_or_allocate(0x1000, 400) {
            MshrOutcome::Allocated { idx, .. } => m.set_ready(idx, 500),
            other => panic!("{other:?}"),
        }
        m.pending_ready(0x1000, 450);
        assert_eq!(m.stats.intervention_stalls, 2, "clean fill must not count");
    }

    #[test]
    fn reset_clears_entries() {
        let mut m = MshrFile::new(2);
        if let MshrOutcome::Allocated { idx, .. } = m.lookup_or_allocate(0x1000, 0) {
            m.set_ready(idx, 1000);
        }
        m.reset();
        assert_eq!(m.in_flight(1), 0);
        assert_eq!(m.stats.allocations, 1, "stats preserved");
    }
}
