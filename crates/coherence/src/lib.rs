//! # hsim-coherence — the paper's hardware/software coherence protocol
//!
//! This crate models the hardware contribution of *"Hardware-Software
//! Coherence Protocol for the Coexistence of Caches and Local Memories"*
//! (SC 2012) and the machinery to check its correctness argument:
//!
//! * [`directory`] — the per-core **coherence directory** (Figure 4): a
//!   32-entry CAM mapping system-memory base addresses to local-memory
//!   buffers, configured through Base/Offset mask registers, updated by
//!   every `dma-get`, looked up during address generation of guarded
//!   memory instructions, with a presence bit per entry for double
//!   buffering.
//! * [`state`] — the data-replication state machine of Figure 6
//!   (MM / LM / CM / LM-CM) with its legal transitions.
//! * [`tracker`] — a runtime checker that replays the machine's memory
//!   and DMA events through the state machine and asserts the paper's
//!   §3.4 invariants: replicated copies are either identical or the LM
//!   copy is the newest, and every access is served by a memory holding a
//!   valid copy.
//! * [`mesi`] — the hand-written **inter-core** MESI transition set from
//!   PR 4, kept as the refactor-equivalence *reference* for the
//!   table-driven family below (and still the event vocabulary both
//!   speak). Deliberately type-disjoint from the intra-tile machinery
//!   above: the paper's §3 claim that the hybrid protocol "does not
//!   interact with the inter-core cache coherence protocol" is pinned by
//!   the `protocols_do_not_interact` tests — for every family member.
//! * [`protocol`] — the inter-core protocol family as *data*:
//!   [`ProtocolTable`]s of guarded-action rows for
//!   [`CoherenceProtocol`] `{ Msi, Mesi, Moesi, Mesif }`, plus
//!   [`DirLine`], the sharer/owner bookkeeping the shared-L3 directory
//!   slices step generically.
//! * [`protocol_explorer`] — an exhaustive small-model (1 line, 2–4
//!   cores) enumeration of each table's reachable
//!   state × sharer-set × owner space, asserting SWMR, data-value and
//!   stuck-freedom, with shortest-counterexample traces on violation.
//!
//! The directory is deliberately independent of the pipeline model so it
//! can be exhaustively unit- and property-tested in isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod directory;
pub mod mesi;
pub mod protocol;
pub mod protocol_explorer;
pub mod state;
pub mod tracker;

pub use directory::{DirConfig, DirError, DirHit, DirStats, Directory};
pub use mesi::{MesiAction, MesiEvent, MesiState};
pub use protocol::{
    Action, CoherenceProtocol, DirLine, Guard, GuardCtx, LineState, Obligations, ProtocolTable,
    Rule, StepOutcome,
};
pub use protocol_explorer::{explore, replay, Exploration, ModelEvent, Violation};
pub use state::{DataEvent, DataState, TransitionError};
pub use tracker::{AccessSide, CoherenceViolation, Tracker};
