//! The scaling experiment: speedup-vs-cores curves per NAS kernel with
//! bus-wait breakdowns (the ROADMAP "scaling sweeps as figures" item,
//! promoted from the Criterion `scaling` bench into a first-class
//! experiment).
//!
//! For every kernel × core-count point the driver shards the kernel,
//! runs one simulated machine, and reports the makespan, the speedup
//! against the kernel's own 1-core run, and where the lost scaling went
//! (L3 bank-port waits, bank conflicts, DRAM row locality). Results are
//! printed as a table and written to `BENCH_scaling.json`.
//!
//! ```text
//! cargo run --release -p hsim-bench --bin scaling [--test-scale|--smoke]
//! ```
//!
//! `--smoke` runs a minimal grid (test scale, two kernels, 1/2/4
//! cores): the CI guard. The coherence mode follows `HSIM_COHERENCE`
//! (the CI matrix runs both).

use hsim::prelude::*;
use hsim_bench::{jstr, kernels, scale_from_args, SweepJson, Table};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke {
        Scale::Test
    } else {
        scale_from_args()
    };
    let mut kernels = kernels(scale);
    let core_counts: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    if smoke {
        kernels.retain(|k| k.name == "CG" || k.name == "EP");
    }

    let cfg = MachineConfig::for_mode(SysMode::HybridCoherent);
    let rows = scaling_sweep(&kernels, core_counts, &cfg, Parallelism::HostThreads)
        .expect("scaling sweep failed");

    println!(
        "SCALING: speedup vs cores per kernel ({scale:?} scale, {:?} coherence)",
        cfg.mem.coherence.mode
    );
    println!();
    let t = Table::new(&[6, 5, 10, 7, 8, 9, 9, 8, 9]);
    t.row(
        &[
            "kernel", "cores", "makespan", "speedup", "ipc", "buswait", "bankcfl", "rowhit%",
            "dramR",
        ]
        .map(String::from),
    );
    t.sep();
    for r in &rows {
        t.row(&[
            r.kernel.clone(),
            format!("{}", r.cores),
            format!("{}", r.makespan),
            format!("{:.2}", r.speedup),
            format!("{:.2}", r.aggregate_ipc),
            format!("{}", r.bus_wait_cycles),
            format!("{}", r.bank_conflicts),
            format!("{:.1}", r.dram_row_hit_rate),
            format!("{}", r.dram_reads),
        ]);
    }
    println!();

    // Basic sanity: the 1-core point of every curve is exactly 1.0 by
    // construction, and the grid actually varies. Strict monotonicity
    // only holds below the memory-bandwidth knee (DRAM-bound kernels
    // like CG and IS degrade at high core counts on the single
    // channel); the `figshapes` guard asserts the rising-curve shape on
    // the grid where it must hold.
    for r in rows.iter().filter(|r| r.cores == 1) {
        assert!(
            (r.speedup - 1.0).abs() < 1e-12,
            "{}: 1-core speedup must be 1.0",
            r.kernel
        );
    }
    assert!(
        rows.iter().any(|r| r.speedup > 1.2),
        "someone must actually scale"
    );

    let mut json = SweepJson::new(scale).meta("mode", jstr("HybridCoherent"));
    json.begin_rows("rows");
    for r in &rows {
        json.row(&[
            ("kernel", jstr(&r.kernel)),
            ("cores", format!("{}", r.cores)),
            ("makespan", format!("{}", r.makespan)),
            ("speedup", format!("{:.3}", r.speedup)),
            ("committed", format!("{}", r.committed)),
            ("aggregate_ipc", format!("{:.3}", r.aggregate_ipc)),
            ("bus_wait_cycles", format!("{}", r.bus_wait_cycles)),
            ("bank_conflicts", format!("{}", r.bank_conflicts)),
            ("dram_row_hit_rate", format!("{:.2}", r.dram_row_hit_rate)),
            ("dram_reads", format!("{}", r.dram_reads)),
        ]);
    }
    json.write("BENCH_scaling.json");
}
