//! Experiment drivers: one function per paper table/figure, plus the
//! communication-workload and request-serving drivers.
//!
//! The bench harness binaries (`hsim-bench`) print these results in the
//! paper's format; the integration tests assert the qualitative shapes
//! at small scale. Each driver compiles the workload for the modes it
//! compares, runs the machine(s), and returns structured rows.
//!
//! **Running kernels.** [`RunSpec`] is the single entry point for
//! simulating kernels: a builder that covers every machine shape —
//! single core, sharded homogeneous multicore, heterogeneous tiles with
//! weighted shards, per-core kernel sets (communication workloads),
//! clustered machines — plus verification against the reference
//! interpreter and host-time profiling. The legacy `run_kernel_*`
//! functions survive as thin `#[deprecated]` wrappers, pinned
//! bit-identical to the builder by a regression test.
//!
//! **Sweeps.** Every sweep driver takes a [`Parallelism`] knob:
//! `Serial` runs the independent simulation points sequentially,
//! `HostThreads` fans them across host threads with [`parallel_map`] —
//! same results either way (each point is deterministic and
//! self-contained), a fraction of the wall-clock on multi-core hosts.
//! This host threading is unrelated to the *simulated* multicore: one
//! sweep point may itself be an N-core [`MultiMachine`].

use crate::cluster::{
    cross_cluster_fallbacks, run_clusters, ClusterConfig, ClusterError, ClusterRunReport,
};
use crate::machine::{Machine, MachineConfig, MultiMachine, SysMode};
use crate::metrics::{LatencyHistogram, MultiRunReport, RequestServingReport, RunReport};
use hsim_compiler::{compile, compile_with_lm, interpret, CompiledKernel, Kernel, ShardError};
use hsim_core::config::CoherenceMode;
use hsim_core::pipeline::SimError;
use hsim_workloads::comm as commw;
use hsim_workloads::{microbench, MicroMode, MicrobenchConfig, Scale};

/// Runs `f` over `items` on a pool of host threads (scoped; no
/// dependencies beyond `std`) and returns the outputs in input order.
///
/// The worker count is `min(available_parallelism, items)`; on a
/// single-CPU host this degenerates to the sequential loop. Ordering and
/// results are independent of the schedule because every job is
/// self-contained.
pub fn parallel_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let jobs: Vec<std::sync::Mutex<Option<I>>> = items
        .into_iter()
        .map(|i| std::sync::Mutex::new(Some(i)))
        .collect();
    let slots: Vec<std::sync::Mutex<Option<O>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i].lock().unwrap().take().expect("job claimed once");
                *slots[i].lock().unwrap() = Some(f(job));
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// How a sweep driver executes its independent simulation points. The
/// results are identical either way — every point is deterministic and
/// self-contained — so this is purely a wall-clock knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Points run sequentially on the calling thread.
    #[default]
    Serial,
    /// Points fan out across host threads via [`parallel_map`]
    /// (`min(available_parallelism, points)` workers).
    HostThreads,
}

impl Parallelism {
    /// Maps `f` over `items` under this execution policy, preserving
    /// input order.
    pub fn map<I, O, F>(self, items: Vec<I>, f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        match self {
            Parallelism::Serial => items.into_iter().map(f).collect(),
            Parallelism::HostThreads => parallel_map(items, f),
        }
    }
}

/// What one [`RunSpec::run`] produced. Exactly one of `single`,
/// `multi`, `clusters` is populated, matching the machine shape the
/// spec requested; `profile` and `verify_mismatches` accompany them
/// when profiling/verification was enabled.
#[derive(Debug)]
pub struct RunOutcome {
    /// The report of a single-machine run ([`RunSpec::new`] without
    /// [`RunSpec::cores`]).
    pub single: Option<RunReport>,
    /// The report of a flat multicore run (sharded, heterogeneous or
    /// per-core kernel sets).
    pub multi: Option<MultiRunReport>,
    /// The report of a clustered run ([`RunSpec::clustered`]).
    pub clusters: Option<ClusterRunReport>,
    /// Host-time attribution when [`RunSpec::profiled`] was set.
    pub profile: Option<hsim_core::HostProfile>,
    /// Mismatching array elements against the reference interpreter
    /// when [`RunSpec::verified`] was set (0 = clean).
    pub verify_mismatches: Option<usize>,
}

impl RunOutcome {
    /// The single-machine report; panics if the spec built a multicore
    /// or clustered machine.
    pub fn into_single(self) -> RunReport {
        self.single
            .expect("this RunSpec built a single-core machine")
    }

    /// The flat-multicore report; panics if the spec built a
    /// single-core or clustered machine.
    pub fn into_multi(self) -> MultiRunReport {
        self.multi
            .expect("this RunSpec built a flat multicore machine")
    }

    /// The clustered report; panics unless the spec was clustered.
    pub fn into_clusters(self) -> ClusterRunReport {
        self.clusters
            .expect("this RunSpec built a clustered machine")
    }
}

/// The one way to run kernels: a builder covering every machine shape
/// the simulator supports.
///
/// ```
/// use hsim::prelude::*;
///
/// let mut kb = KernelBuilder::new("axpy");
/// let a = kb.array_f64("a", 1024);
/// kb.begin_loop(1024);
/// let ra = kb.ref_affine(a, 1, 0);
/// kb.stmt(ra, Expr::add(Expr::Ref(ra), Expr::ConstF(1.0)));
/// kb.end_loop();
/// let kernel = kb.build().unwrap();
///
/// // Single core, default hybrid-coherent machine.
/// let r = RunSpec::new(&kernel).run().unwrap().into_single();
/// assert!(r.cycles > 0);
///
/// // The same kernel sharded across 2 cores of one machine.
/// let m = RunSpec::new(&kernel).cores(2).run().unwrap().into_multi();
/// assert_eq!(m.n_cores(), 2);
/// ```
///
/// Machine shapes, by builder calls:
///
/// | calls | machine |
/// |---|---|
/// | `new(k)` | one [`Machine`] |
/// | `new(k).cores(n)` | `k` sharded over an n-core [`MultiMachine`] (note: `cores(1)` still builds the 1-core *multicore* machine — shared-L3 port arbitration included — exactly like the legacy `run_kernel_multi(k, 1, ..)`) |
/// | `new(k).hetero(cfgs)` | weighted shards on per-tile configurations |
/// | `many(&kernels)` | one kernel **per core** (communication workloads) |
/// | `...clustered(topo)` | epoch-synchronized clusters |
///
/// Configuration: [`RunSpec::mode`]/[`RunSpec::track`] adjust the
/// default machine; [`RunSpec::config`] replaces it wholesale
/// (`track` still applies afterwards). [`RunSpec::profiled`] attributes
/// host time; [`RunSpec::verified`] checks the final memory image
/// against the reference interpreter (single-machine shapes only).
#[derive(Clone)]
pub struct RunSpec<'a> {
    single: Option<&'a Kernel>,
    many: Option<&'a [Kernel]>,
    cores: Option<usize>,
    mode: SysMode,
    track: Option<bool>,
    cfg: Option<MachineConfig>,
    hetero: Option<Vec<MachineConfig>>,
    weights: Option<Vec<u64>>,
    cluster: Option<ClusterConfig>,
    profiled: bool,
    verified: bool,
}

impl<'a> RunSpec<'a> {
    /// A spec running `kernel` — on one core until [`RunSpec::cores`] /
    /// [`RunSpec::hetero`] / [`RunSpec::clustered`] reshape it.
    pub fn new(kernel: &'a Kernel) -> Self {
        RunSpec {
            single: Some(kernel),
            many: None,
            cores: None,
            mode: SysMode::HybridCoherent,
            track: None,
            cfg: None,
            hetero: None,
            weights: None,
            cluster: None,
            profiled: false,
            verified: false,
        }
    }

    /// A spec running one kernel **per core**: `kernels[i]` on tile
    /// `i`. This is the communication-workload shape — the kernels may
    /// deliberately overlap on `mark_comm`ed arrays, which are
    /// registered as directory-tracked shared ranges (diverging comm
    /// layouts are a hard [`ShardError::CommLayoutDiverged`]).
    pub fn many(kernels: &'a [Kernel]) -> Self {
        let mut s = RunSpec::new(&kernels[0]);
        s.single = None;
        s.many = Some(kernels);
        s
    }

    /// Shards the kernel across `n` cores of one [`MultiMachine`].
    /// `cores(1)` builds the 1-core multicore machine (shared-L3 port
    /// arbitration included), *not* the plain single machine — the
    /// distinction the scaling baselines rely on.
    pub fn cores(mut self, n: usize) -> Self {
        self.cores = Some(n);
        self
    }

    /// Selects the [`SysMode`] of the default machine configuration
    /// (ignored after [`RunSpec::config`]).
    pub fn mode(mut self, mode: SysMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enables/disables the runtime coherence tracker (applies on top
    /// of [`RunSpec::config`] too).
    pub fn track(mut self, track: bool) -> Self {
        self.track = Some(track);
        self
    }

    /// Replaces the machine configuration wholesale (all tiles on
    /// homogeneous shapes).
    pub fn config(mut self, cfg: MachineConfig) -> Self {
        self.cfg = Some(cfg);
        self
    }

    /// Per-tile machine configurations: with [`RunSpec::new`] the
    /// kernel is shard-weighted across `cfgs.len()` tiles (see
    /// [`RunSpec::weights`]); with [`RunSpec::many`] tile `i` runs
    /// `kernels[i]` under `cfgs[i]`.
    pub fn hetero(mut self, cfgs: Vec<MachineConfig>) -> Self {
        self.hetero = Some(cfgs);
        self
    }

    /// Per-tile iteration weights for the heterogeneous sharded shape
    /// (defaults to even shares). One weight per tile.
    pub fn weights(mut self, weights: &[u64]) -> Self {
        self.weights = Some(weights.to_vec());
        self
    }

    /// Runs on a clustered machine: the kernel is sharded two-level
    /// across `cluster.topology` (or, with [`RunSpec::many`], kernel
    /// `i` runs on core `i % cores_per_cluster` of cluster
    /// `i / cores_per_cluster`), each cluster owning its backside
    /// slice, epoch-synchronized ([`crate::cluster::run_clusters`]).
    pub fn clustered(mut self, cluster: &ClusterConfig) -> Self {
        self.cluster = Some(cluster.clone());
        self
    }

    /// Attributes host time to scheduler phases
    /// ([`hsim_core::HostProfile`]); simulated results are
    /// bit-identical to the unprofiled run. Not supported on clustered
    /// shapes.
    pub fn profiled(mut self) -> Self {
        self.profiled = true;
        self
    }

    /// Also checks the final memory image against the reference
    /// interpreter ([`RunOutcome::verify_mismatches`]). Single-machine
    /// shapes only.
    pub fn verified(mut self) -> Self {
        self.verified = true;
        self
    }

    fn effective_cfg(&self) -> MachineConfig {
        let mut cfg = self
            .cfg
            .clone()
            .unwrap_or_else(|| MachineConfig::for_mode(self.mode));
        if let Some(track) = self.track {
            cfg.track_coherence = track;
        }
        cfg
    }

    /// Builds the machine the spec describes, runs it, and returns the
    /// outcome. Sharding failures (including diverging comm-array
    /// layouts) surface as [`MultiRunError::Shard`].
    pub fn run(self) -> Result<RunOutcome, MultiRunError> {
        let cfg = self.effective_cfg();
        let mut out = RunOutcome {
            single: None,
            multi: None,
            clusters: None,
            profile: None,
            verify_mismatches: None,
        };
        if self.cluster.is_some() {
            assert!(
                !self.profiled && !self.verified,
                "profiled/verified clustered runs are not supported"
            );
            out.clusters = Some(self.run_clustered_shape(&cfg)?);
            return Ok(out);
        }
        if let Some(kernels) = self.many {
            assert!(
                self.weights.is_none(),
                "weights shard a single kernel; RunSpec::many runs one kernel per core"
            );
            assert!(!self.verified, "verification covers single-machine shapes");
            let cfgs = self
                .hetero
                .clone()
                .unwrap_or_else(|| vec![cfg.clone(); kernels.len()]);
            assert_eq!(cfgs.len(), kernels.len(), "one configuration per kernel");
            let compiled: Vec<(CompiledKernel, Kernel)> = kernels
                .iter()
                .zip(&cfgs)
                .map(|(k, c)| (compile_for_tile(k, c), k.clone()))
                .collect();
            let mut m = MultiMachine::try_for_kernels_hetero(cfgs, &compiled)?;
            out.profile = run_multi(&mut m, self.profiled)?;
            let cks: Vec<_> = compiled.into_iter().map(|(ck, _)| ck).collect();
            out.multi = Some(MultiRunReport::collect(&m, &cks));
            return Ok(out);
        }
        let kernel = self.single.expect("RunSpec always holds kernels");
        if self.hetero.is_some() || self.weights.is_some() {
            assert!(!self.verified, "verification covers single-machine shapes");
            let cfgs = self
                .hetero
                .clone()
                .unwrap_or_else(|| vec![cfg.clone(); self.weights.as_ref().unwrap().len()]);
            let weights = self.weights.clone().unwrap_or_else(|| vec![1; cfgs.len()]);
            assert_eq!(cfgs.len(), weights.len(), "one weight per tile");
            let shards = kernel.shard_weighted(&weights)?;
            let compiled: Vec<(CompiledKernel, Kernel)> = shards
                .into_iter()
                .zip(&cfgs)
                .map(|(s, c)| {
                    let ck = compile_for_tile(&s, c);
                    (ck, s)
                })
                .collect();
            let mut m = MultiMachine::try_for_kernels_hetero(cfgs, &compiled)?;
            out.profile = run_multi(&mut m, self.profiled)?;
            let cks: Vec<_> = compiled.into_iter().map(|(ck, _)| ck).collect();
            out.multi = Some(MultiRunReport::collect(&m, &cks));
            return Ok(out);
        }
        if let Some(n) = self.cores {
            assert!(!self.verified, "verification covers single-machine shapes");
            let shards = kernel.shard(n)?;
            let compiled: Vec<_> = shards
                .iter()
                .map(|s| (compile(s, cfg.mode.codegen()), s.clone()))
                .collect();
            let mut m = MultiMachine::try_for_kernels_hetero(vec![cfg; n], &compiled)?;
            out.profile = run_multi(&mut m, self.profiled)?;
            let cks: Vec<_> = compiled.into_iter().map(|(ck, _)| ck).collect();
            out.multi = Some(MultiRunReport::collect(&m, &cks));
            return Ok(out);
        }
        // Single machine.
        let ck = compile(kernel, cfg.mode.codegen());
        let mut m = Machine::for_kernel(cfg, &ck, kernel);
        if self.profiled {
            let mut prof = hsim_core::HostProfile::default();
            m.run_profiled(&mut prof).map_err(MultiRunError::Sim)?;
            out.profile = Some(prof);
        } else {
            m.run().map_err(MultiRunError::Sim)?;
        }
        let report = RunReport::collect(&m, &ck);
        if self.verified {
            let want = interpret(kernel).expect("kernel must interpret");
            let mut mismatches = 0;
            for (id, expect) in want.iter().enumerate() {
                let got = m.read_array(&ck, kernel, id);
                mismatches += got.iter().zip(expect).filter(|(g, w)| g != w).count();
            }
            out.verify_mismatches = Some(mismatches);
        }
        out.single = Some(report);
        Ok(out)
    }

    fn run_clustered_shape(&self, cfg: &MachineConfig) -> Result<ClusterRunReport, MultiRunError> {
        let cluster = self.cluster.as_ref().expect("clustered shape");
        let topo = cluster.topology;
        let (shards, fallbacks): (Vec<Vec<(CompiledKernel, Kernel)>>, u64) = match self.many {
            None => {
                let kernel = self.single.expect("RunSpec always holds kernels");
                let sliced = kernel.shard_clustered(topo.clusters, topo.cores_per_cluster)?;
                let shards = sliced
                    .into_iter()
                    .map(|superslice| {
                        superslice
                            .into_iter()
                            .map(|s| (compile(&s, cfg.mode.codegen()), s))
                            .collect()
                    })
                    .collect();
                (shards, cross_cluster_fallbacks(kernel, topo.clusters))
            }
            Some(kernels) => {
                // One kernel per core, grouped cluster-major. Comm sets
                // are built with cluster-local pairs, so there is
                // nothing to replicate across clusters: another
                // cluster's comm arrays are declared (layout agreement)
                // but never touched.
                assert_eq!(
                    kernels.len(),
                    topo.clusters * topo.cores_per_cluster,
                    "one kernel per core of the clustered machine"
                );
                let shards = kernels
                    .chunks(topo.cores_per_cluster)
                    .map(|chunk| {
                        chunk
                            .iter()
                            .map(|k| (compile_for_tile(k, cfg), k.clone()))
                            .collect()
                    })
                    .collect();
                (shards, 0)
            }
        };
        Ok(run_clusters(cfg, cluster, &shards, fallbacks)?)
    }
}

/// Advances a built multicore machine to completion, profiled or not.
fn run_multi(
    m: &mut MultiMachine,
    profiled: bool,
) -> Result<Option<hsim_core::HostProfile>, MultiRunError> {
    if profiled {
        let mut prof = hsim_core::HostProfile::default();
        m.run_profiled(&mut prof).map_err(MultiRunError::Sim)?;
        Ok(Some(prof))
    } else {
        m.run().map_err(MultiRunError::Sim)?;
        Ok(None)
    }
}

/// Unwraps the only error a non-sharded, non-clustered run can hit.
fn expect_sim(e: MultiRunError) -> SimError {
    match e {
        MultiRunError::Sim(e) => e,
        other => unreachable!("this run can only fail in simulation: {other}"),
    }
}

/// Compiles `kernel` for `mode`, runs it, and reports.
#[deprecated(note = "use RunSpec::new(kernel).mode(mode).track(track).run()")]
pub fn run_kernel(kernel: &Kernel, mode: SysMode, track: bool) -> Result<RunReport, SimError> {
    RunSpec::new(kernel)
        .mode(mode)
        .track(track)
        .run()
        .map(RunOutcome::into_single)
        .map_err(expect_sim)
}

/// The configurable sibling of [`run_kernel`]: compiles `kernel` for
/// `cfg.mode` and runs it on a machine built from `cfg`.
#[deprecated(note = "use RunSpec::new(kernel).config(cfg).run()")]
pub fn run_kernel_with(kernel: &Kernel, cfg: MachineConfig) -> Result<RunReport, SimError> {
    RunSpec::new(kernel)
        .config(cfg)
        .run()
        .map(RunOutcome::into_single)
        .map_err(expect_sim)
}

/// Runs `kernel` in `mode` and also checks the final memory image
/// against the reference interpreter. Returns the report and the number
/// of mismatching array elements.
#[deprecated(note = "use RunSpec::new(kernel).mode(mode).track(track).verified().run()")]
pub fn run_kernel_verified(
    kernel: &Kernel,
    mode: SysMode,
    track: bool,
) -> Result<(RunReport, usize), SimError> {
    let out = RunSpec::new(kernel)
        .mode(mode)
        .track(track)
        .verified()
        .run()
        .map_err(expect_sim)?;
    let mismatches = out.verify_mismatches.expect("verified run");
    Ok((out.into_single(), mismatches))
}

/// Shards `kernel` across `n_cores` simulated cores and runs them as one
/// lock-step machine on a shared L3/DRAM backside (see
/// [`MultiMachine`]).
#[deprecated(note = "use RunSpec::new(kernel).cores(n).mode(mode).track(track).run()")]
pub fn run_kernel_multi(
    kernel: &Kernel,
    n_cores: usize,
    mode: SysMode,
    track: bool,
) -> Result<MultiRunReport, MultiRunError> {
    RunSpec::new(kernel)
        .cores(n_cores)
        .mode(mode)
        .track(track)
        .run()
        .map(RunOutcome::into_multi)
}

/// The configurable sibling of [`run_kernel_multi`]: shards `kernel`
/// across `n_cores` tiles built from `cfg` (compiling for `cfg.mode`).
#[deprecated(note = "use RunSpec::new(kernel).cores(n).config(cfg).run()")]
pub fn run_kernel_multi_with(
    kernel: &Kernel,
    n_cores: usize,
    cfg: MachineConfig,
) -> Result<MultiRunReport, MultiRunError> {
    RunSpec::new(kernel)
        .cores(n_cores)
        .config(cfg)
        .run()
        .map(RunOutcome::into_multi)
}

/// [`run_kernel_with`] with host-time attribution (see
/// [`RunSpec::profiled`]). The simulated results are bit-identical to
/// the unprofiled run.
#[deprecated(note = "use RunSpec::new(kernel).config(cfg).profiled().run()")]
pub fn run_kernel_profiled(
    kernel: &Kernel,
    cfg: MachineConfig,
) -> Result<(RunReport, hsim_core::HostProfile), SimError> {
    let out = RunSpec::new(kernel)
        .config(cfg)
        .profiled()
        .run()
        .map_err(expect_sim)?;
    let prof = out.profile.expect("profiled run");
    Ok((out.into_single(), prof))
}

/// [`run_kernel_multi_with`] with host-time attribution; phases are
/// accumulated across all tiles of the multicore scheduler.
#[deprecated(note = "use RunSpec::new(kernel).cores(n).config(cfg).profiled().run()")]
pub fn run_kernel_multi_profiled(
    kernel: &Kernel,
    n_cores: usize,
    cfg: MachineConfig,
) -> Result<(MultiRunReport, hsim_core::HostProfile), MultiRunError> {
    let out = RunSpec::new(kernel)
        .cores(n_cores)
        .config(cfg)
        .profiled()
        .run()?;
    let prof = out.profile.expect("profiled run");
    Ok((out.into_multi(), prof))
}

/// Shards `kernel` two-level across a clustered machine and runs it
/// with the epoch-synchronized cluster driver (see
/// [`RunSpec::clustered`]).
#[deprecated(note = "use RunSpec::new(kernel).clustered(cluster).config(cfg).run()")]
pub fn run_kernel_clustered(
    kernel: &Kernel,
    cluster: &ClusterConfig,
    cfg: MachineConfig,
) -> Result<ClusterRunReport, MultiRunError> {
    RunSpec::new(kernel)
        .clustered(cluster)
        .config(cfg)
        .run()
        .map(RunOutcome::into_clusters)
}

/// The heterogeneous sibling of [`run_kernel_multi_with`]: shards
/// `kernel` across `cfgs.len()` tiles, tile `i` built from `cfgs[i]`
/// with a share of the iterations proportional to `weights[i]`.
#[deprecated(note = "use RunSpec::new(kernel).hetero(cfgs).weights(weights).run()")]
pub fn run_kernel_multi_hetero(
    kernel: &Kernel,
    cfgs: &[MachineConfig],
    weights: &[u64],
) -> Result<MultiRunReport, MultiRunError> {
    assert_eq!(cfgs.len(), weights.len(), "one weight per tile");
    RunSpec::new(kernel)
        .hetero(cfgs.to_vec())
        .weights(weights)
        .run()
        .map(RunOutcome::into_multi)
}

/// Compiles one shard for one tile of a heterogeneous machine: for the
/// tile's `SysMode`, against the tile's own LM budget when it has a
/// local memory (`compile_with_lm`), plainly otherwise. The single
/// compile policy shared by every heterogeneous and per-core-kernel
/// machine [`RunSpec`] builds — change it here and every such machine
/// follows.
pub fn compile_for_tile(shard: &Kernel, cfg: &MachineConfig) -> CompiledKernel {
    match cfg.mem.lm.as_ref() {
        Some(lm) => compile_with_lm(shard, cfg.mode.codegen(), lm.size_bytes),
        None => compile(shard, cfg.mode.codegen()),
    }
}

/// What can go wrong in a sharded multicore run: the split itself, the
/// simulation of one of the cores, or — for clustered runs — a
/// host-level cluster failure (contained panic, epoch watchdog, or a
/// cluster's own simulation error) with the surviving clusters'
/// partial reports attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiRunError {
    /// The kernel could not be sharded, or a communication array's
    /// layouts diverged across the per-core kernels
    /// ([`ShardError::CommLayoutDiverged`]).
    Shard(ShardError),
    /// A core's simulation failed.
    Sim(SimError),
    /// A clustered run degraded: one or more clusters failed (see
    /// [`ClusterError`] for causes and the completed clusters' reports).
    Cluster(ClusterError),
}

impl std::fmt::Display for MultiRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiRunError::Shard(e) => write!(f, "shard: {e}"),
            MultiRunError::Sim(e) => write!(f, "simulation: {e}"),
            MultiRunError::Cluster(e) => write!(f, "clusters: {e}"),
        }
    }
}

impl std::error::Error for MultiRunError {}

impl From<ShardError> for MultiRunError {
    fn from(e: ShardError) -> Self {
        MultiRunError::Shard(e)
    }
}

impl From<SimError> for MultiRunError {
    fn from(e: SimError) -> Self {
        MultiRunError::Sim(e)
    }
}

impl From<ClusterError> for MultiRunError {
    fn from(e: ClusterError) -> Self {
        MultiRunError::Cluster(e)
    }
}

/// One point of Figure 7.
#[derive(Clone, Debug)]
pub struct Fig7Point {
    /// Microbenchmark mode.
    pub mode: MicroMode,
    /// Percentage of guarded references.
    pub pct: u32,
    /// Work-phase execution-time ratio against the Baseline mode.
    ///
    /// The work phase isolates the cost of the guards and double stores,
    /// which is what the paper's microbenchmark measures; the control
    /// phase additionally differs because a buffer that is only written
    /// through guarded stores is mapped read-only and skips its
    /// `dma-put`s (see EXPERIMENTS.md).
    pub overhead: f64,
    /// Instruction-count ratio against the Baseline mode.
    pub inst_ratio: f64,
}

/// The (mode, pct) grid of the Figure 7 sweep.
fn fig7_points(step: u32) -> Vec<(MicroMode, u32)> {
    let mut points = Vec::new();
    for mode in [MicroMode::Rd, MicroMode::Wr, MicroMode::RdWr] {
        let mut pct = 0;
        while pct <= 100 {
            points.push((mode, pct));
            pct += step.max(10);
        }
    }
    points
}

/// Runs one Figure 7 sweep point against the baseline run.
fn fig7_point(n: u64, mode: MicroMode, pct: u32, base: &RunReport) -> Result<Fig7Point, SimError> {
    let k = microbench(&MicrobenchConfig {
        mode,
        guarded_pct: pct,
        n,
    });
    let r = RunSpec::new(&k)
        .run()
        .map(RunOutcome::into_single)
        .map_err(expect_sim)?;
    let base_work = base.phase(hsim_isa::Phase::Work).max(1) as f64;
    Ok(Fig7Point {
        mode,
        pct,
        overhead: r.phase(hsim_isa::Phase::Work) as f64 / base_work,
        inst_ratio: r.committed as f64 / base.committed as f64,
    })
}

/// The Baseline-mode run every Figure 7 point normalizes against.
fn fig7_baseline(n: u64) -> Result<RunReport, SimError> {
    let base_kernel = microbench(&MicrobenchConfig {
        mode: MicroMode::Baseline,
        guarded_pct: 0,
        n,
    });
    RunSpec::new(&base_kernel)
        .run()
        .map(RunOutcome::into_single)
        .map_err(expect_sim)
}

/// Figure 7: microbenchmark overhead as the share of guarded references
/// grows, for the RD / WR / RD+WR modes. `n` is the iteration count;
/// `step` the sweep step in percent (multiple of 10). The baseline runs
/// first (every point normalizes against it), then every (mode, pct)
/// point is an independent job under `par`.
pub fn fig7(n: u64, step: u32, par: Parallelism) -> Result<Vec<Fig7Point>, SimError> {
    let base = fig7_baseline(n)?;
    par.map(fig7_points(step), |(mode, pct)| {
        fig7_point(n, mode, pct, &base)
    })
    .into_iter()
    .collect()
}

/// One row of Figure 8: coherence-protocol overhead on a real benchmark.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Benchmark name.
    pub name: String,
    /// Execution-time overhead vs the oracle baseline (ratio, 1.0 = no
    /// overhead).
    pub time_ratio: f64,
    /// Energy overhead vs the oracle baseline.
    pub energy_ratio: f64,
    /// Reports for deeper inspection (coherent, oracle).
    pub coherent: RunReport,
    /// The oracle baseline report.
    pub oracle: RunReport,
}

/// Runs one benchmark on the coherent and oracle machines.
fn fig8_row(k: &Kernel) -> Result<Fig8Row, SimError> {
    let run = |mode: SysMode| {
        RunSpec::new(k)
            .mode(mode)
            .run()
            .map(RunOutcome::into_single)
            .map_err(expect_sim)
    };
    let coherent = run(SysMode::HybridCoherent)?;
    let oracle = run(SysMode::HybridOracle)?;
    Ok(Fig8Row {
        name: k.name.clone(),
        time_ratio: coherent.cycles as f64 / oracle.cycles as f64,
        energy_ratio: coherent.energy_total() / oracle.energy_total(),
        coherent,
        oracle,
    })
}

/// Figure 8: hybrid-coherent vs hybrid-oracle on the given kernels, one
/// job per benchmark under `par`.
pub fn fig8(kernels: &[Kernel], par: Parallelism) -> Result<Vec<Fig8Row>, SimError> {
    par.map(kernels.iter().collect(), fig8_row)
        .into_iter()
        .collect()
}

/// One row of Figures 9 and 10 plus Table 3: hybrid-coherent vs
/// cache-based.
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// Benchmark name.
    pub name: String,
    /// Speedup of the hybrid system (cache cycles / hybrid cycles).
    pub speedup: f64,
    /// Hybrid execution time normalized to cache-based (Figure 9 bar).
    pub time_norm: f64,
    /// Normalized phase split of the hybrid bar `[other, control,
    /// synch, work]`.
    pub phases_norm: [f64; 4],
    /// Hybrid energy normalized to cache-based (Figure 10 bar).
    pub energy_norm: f64,
    /// Hybrid run report.
    pub hybrid: RunReport,
    /// Cache-based run report.
    pub cache: RunReport,
}

/// Runs one benchmark on the hybrid-coherent and cache-based machines.
fn comparison_row(k: &Kernel) -> Result<ComparisonRow, SimError> {
    let run = |mode: SysMode| {
        RunSpec::new(k)
            .mode(mode)
            .run()
            .map(RunOutcome::into_single)
            .map_err(expect_sim)
    };
    let hybrid = run(SysMode::HybridCoherent)?;
    let cache = run(SysMode::CacheBased)?;
    let denom = cache.cycles.max(1) as f64;
    Ok(ComparisonRow {
        name: k.name.clone(),
        speedup: cache.cycles as f64 / hybrid.cycles.max(1) as f64,
        time_norm: hybrid.cycles as f64 / denom,
        phases_norm: [
            hybrid.phase_cycles[0] as f64 / denom,
            hybrid.phase_cycles[1] as f64 / denom,
            hybrid.phase_cycles[2] as f64 / denom,
            hybrid.phase_cycles[3] as f64 / denom,
        ],
        energy_norm: hybrid.energy_total() / cache.energy_total(),
        hybrid,
        cache,
    })
}

/// Figures 9/10 + Table 3: runs both systems on each kernel, one job
/// per benchmark under `par`.
pub fn compare_systems(
    kernels: &[Kernel],
    par: Parallelism,
) -> Result<Vec<ComparisonRow>, SimError> {
    par.map(kernels.iter().collect(), comparison_row)
        .into_iter()
        .collect()
}

/// One row of the backside-sensitivity sweep: how one kernel at one
/// core count exercises the banked L3 and the DRAM row buffers.
/// Counters are machine totals (summed over the per-core shares, which
/// partition them exactly).
#[derive(Clone, Debug)]
pub struct BacksideSweepRow {
    /// Kernel name.
    pub kernel: String,
    /// Simulated core count.
    pub cores: usize,
    /// Parallel makespan in cycles.
    pub makespan: u64,
    /// DRAM accesses that hit an open row.
    pub dram_row_hits: u64,
    /// DRAM accesses to a bank with no open row.
    pub dram_row_misses: u64,
    /// DRAM accesses that closed another row first.
    pub dram_row_conflicts: u64,
    /// Row-buffer hit rate in percent (100.0 with no row activity).
    pub dram_row_hit_rate: f64,
    /// Requests that found their L3 bank's port busy.
    pub bank_conflicts: u64,
    /// Cycles spent waiting on L3 bank ports.
    pub bus_wait_cycles: u64,
    /// Posted DRAM writes that found the write queue full.
    pub dram_queue_stalls: u64,
}

/// Runs one sweep point; `None` when the kernel does not shard to
/// `cores` (indirect indexing), which the sweep skips like the scaling
/// bench does.
fn backside_point(
    kernel: &Kernel,
    cores: usize,
    mode: SysMode,
) -> Result<Option<BacksideSweepRow>, SimError> {
    let cfg = MachineConfig::for_mode(mode);
    let (per_core, makespan) = if cores == 1 {
        let r = RunSpec::new(kernel)
            .config(cfg)
            .run()
            .map(RunOutcome::into_single)
            .map_err(expect_sim)?;
        let makespan = r.cycles;
        (vec![r], makespan)
    } else {
        match RunSpec::new(kernel).cores(cores).config(cfg).run() {
            Ok(out) => {
                let m = out.into_multi();
                let makespan = m.makespan;
                (m.per_core, makespan)
            }
            Err(MultiRunError::Shard(_)) => return Ok(None),
            Err(MultiRunError::Sim(e)) => return Err(e),
            Err(MultiRunError::Cluster(_)) => {
                unreachable!("flat multicore runs produce no cluster errors")
            }
        }
    };
    let sum = |f: fn(&RunReport) -> u64| per_core.iter().map(f).sum::<u64>();
    // Route the hit-rate computation through `DramStats` so the sweep
    // shares one definition (including the empty-denominator
    // convention) with the report accessors.
    let rows = hsim_mem::DramStats {
        row_hits: sum(|r| r.dram_row_hits),
        row_misses: sum(|r| r.dram_row_misses),
        row_conflicts: sum(|r| r.dram_row_conflicts),
        ..Default::default()
    };
    Ok(Some(BacksideSweepRow {
        kernel: kernel.name.clone(),
        cores,
        makespan,
        dram_row_hits: rows.row_hits,
        dram_row_misses: rows.row_misses,
        dram_row_conflicts: rows.row_conflicts,
        dram_row_hit_rate: rows.row_hit_rate(),
        bank_conflicts: sum(|r| r.l3_bank_conflicts),
        bus_wait_cycles: sum(|r| r.bus_wait_cycles),
        dram_queue_stalls: sum(|r| r.dram_queue_stalls),
    }))
}

/// Backside-sensitivity sweep: row-buffer locality and L3 bank
/// contention for every kernel × core-count point, on the default
/// (banked, row-aware) backside. Points a kernel cannot shard to are
/// skipped; one job per point under `par`.
pub fn backside_sweep(
    kernels: &[Kernel],
    core_counts: &[usize],
    mode: SysMode,
    par: Parallelism,
) -> Result<Vec<BacksideSweepRow>, SimError> {
    let points: Vec<(&Kernel, usize)> = kernels
        .iter()
        .flat_map(|k| core_counts.iter().map(move |&c| (k, c)))
        .collect();
    let results = par.map(points, |(k, cores)| backside_point(k, cores, mode));
    let mut rows = Vec::new();
    for r in results {
        if let Some(row) = r? {
            rows.push(row);
        }
    }
    Ok(rows)
}

/// One point of the scaling experiment: one kernel sharded over one
/// core count, with the speedup against its own 1-core run and the
/// bus-wait breakdown of where the scaling went.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Kernel name.
    pub kernel: String,
    /// Simulated core count.
    pub cores: usize,
    /// Parallel makespan in cycles.
    pub makespan: u64,
    /// Speedup against the same kernel's 1-core makespan.
    pub speedup: f64,
    /// Total committed instructions over all cores.
    pub committed: u64,
    /// Aggregate IPC (total committed over the makespan).
    pub aggregate_ipc: f64,
    /// Total cycles cores spent waiting on L3 bank ports — the
    /// contention share of the lost scaling.
    pub bus_wait_cycles: u64,
    /// Requests that found their L3 bank's port busy.
    pub bank_conflicts: u64,
    /// Machine-wide DRAM row-buffer hit rate in percent.
    pub dram_row_hit_rate: f64,
    /// Total DRAM line reads (replication traffic shows up here).
    pub dram_reads: u64,
}

/// Runs the scaling sweep for one kernel: its 1-core run (the speedup
/// denominator) followed by every requested core count. Core counts a
/// kernel cannot shard to are skipped, like the backside sweep does.
fn scaling_rows_for(
    kernel: &Kernel,
    core_counts: &[usize],
    cfg: &MachineConfig,
) -> Result<Vec<ScalingRow>, SimError> {
    let run = |cores: usize| -> Result<Option<MultiRunReport>, SimError> {
        match RunSpec::new(kernel).cores(cores).config(cfg.clone()).run() {
            Ok(out) => Ok(Some(out.into_multi())),
            Err(MultiRunError::Shard(_)) => Ok(None),
            Err(MultiRunError::Sim(e)) => Err(e),
            Err(MultiRunError::Cluster(_)) => {
                unreachable!("flat multicore runs produce no cluster errors")
            }
        }
    };
    let Some(base) = run(1)? else {
        return Ok(Vec::new());
    };
    let mut rows = Vec::new();
    for &cores in core_counts {
        let m = if cores == 1 {
            base.clone()
        } else {
            match run(cores)? {
                Some(m) => m,
                None => continue,
            }
        };
        rows.push(ScalingRow {
            kernel: kernel.name.clone(),
            cores,
            makespan: m.makespan,
            speedup: base.makespan as f64 / m.makespan.max(1) as f64,
            committed: m.total_committed(),
            aggregate_ipc: m.aggregate_ipc(),
            bus_wait_cycles: m.total_bus_wait_cycles(),
            bank_conflicts: m.total_bank_conflicts(),
            dram_row_hit_rate: m.dram_row_hit_rate(),
            dram_reads: m.total_dram_reads(),
        });
    }
    Ok(rows)
}

/// The scaling experiment (promoted from the `scaling` bench):
/// speedup-vs-cores curves per kernel with bus-wait breakdowns, on
/// machines built from `cfg`. Rows are grouped by kernel, core counts
/// ascending within a group when `core_counts` is ascending. One job
/// per kernel under `par` (each job runs that kernel's whole curve,
/// since every point normalizes against the kernel's own 1-core run).
pub fn scaling_sweep(
    kernels: &[Kernel],
    core_counts: &[usize],
    cfg: &MachineConfig,
    par: Parallelism,
) -> Result<Vec<ScalingRow>, SimError> {
    let per_kernel = par.map(kernels.iter().collect(), |k| {
        scaling_rows_for(k, core_counts, cfg)
    });
    let mut rows = Vec::new();
    for r in per_kernel {
        rows.extend(r?);
    }
    Ok(rows)
}

/// One point of the coherence-mode comparison: the same sharded kernel
/// at the same core count under `Replicate` and under `Mesi`, side by
/// side.
#[derive(Clone, Debug)]
pub struct CoherenceSweepRow {
    /// Kernel name.
    pub kernel: String,
    /// Simulated core count.
    pub cores: usize,
    /// Makespan under `CoherenceMode::Replicate`.
    pub makespan_replicate: u64,
    /// Makespan under `CoherenceMode::Mesi`.
    pub makespan_mesi: u64,
    /// Total DRAM line reads under `Replicate` (shared tables are
    /// fetched once per core).
    pub dram_reads_replicate: u64,
    /// Total DRAM line reads under `Mesi` (shared tables are fetched
    /// once per chip, directory permitting).
    pub dram_reads_mesi: u64,
    /// Shared-line L3 hits the directory served (Mesi run).
    pub shared_hits: u64,
    /// Invalidation messages sent (Mesi run).
    pub invalidations: u64,
    /// M-state interventions (Mesi run).
    pub interventions: u64,
    /// Total committed instructions (identical in both runs — the modes
    /// may only change timing, never architectural work).
    pub committed: u64,
    /// Shared-marked arrays that fell back to per-core replication
    /// because the shards' layouts diverged: under `Mesi` those arrays
    /// were *not* served from shared lines (0 on even shards).
    pub replication_fallbacks: u64,
    /// Shared-marked arrays that would fall back to per-cluster
    /// replication if this kernel were split across a 2-cluster
    /// machine ([`cross_cluster_fallbacks`]): cross-cluster sharing is
    /// never silently free, so the sweep surfaces the cost a clustered
    /// run of the same kernel would pay.
    pub cluster_fallbacks: u64,
}

/// Runs one coherence-comparison point; `None` when the kernel does not
/// shard to `cores`.
fn coherence_point(
    kernel: &Kernel,
    cores: usize,
    mode: SysMode,
) -> Result<Option<CoherenceSweepRow>, MultiRunError> {
    let run = |cm: CoherenceMode| {
        RunSpec::new(kernel)
            .cores(cores)
            .config(MachineConfig::for_mode(mode).with_coherence(cm))
            .run()
            .map(RunOutcome::into_multi)
    };
    let rep = match run(CoherenceMode::Replicate) {
        Ok(m) => m,
        Err(MultiRunError::Shard(_)) => return Ok(None),
        Err(e) => return Err(e),
    };
    let mesi = run(CoherenceMode::Mesi)?;
    assert_eq!(
        rep.total_committed(),
        mesi.total_committed(),
        "{} x{cores}: coherence modes must not change committed work",
        kernel.name
    );
    Ok(Some(CoherenceSweepRow {
        kernel: kernel.name.clone(),
        cores,
        makespan_replicate: rep.makespan,
        makespan_mesi: mesi.makespan,
        dram_reads_replicate: rep.total_dram_reads(),
        dram_reads_mesi: mesi.total_dram_reads(),
        shared_hits: mesi.total_shared_hits(),
        invalidations: mesi.total_invalidations(),
        interventions: mesi.total_interventions(),
        committed: rep.total_committed(),
        replication_fallbacks: mesi.replication_fallbacks,
        cluster_fallbacks: cross_cluster_fallbacks(kernel, 2),
    }))
}

/// The coherence-mode comparison: every kernel × core-count point run
/// under `Replicate` and `Mesi` on otherwise identical machines. Points
/// a kernel cannot shard to are skipped; one job per point under `par`.
pub fn coherence_sweep(
    kernels: &[Kernel],
    core_counts: &[usize],
    mode: SysMode,
    par: Parallelism,
) -> Result<Vec<CoherenceSweepRow>, MultiRunError> {
    let points: Vec<(&Kernel, usize)> = kernels
        .iter()
        .flat_map(|k| core_counts.iter().map(move |&c| (k, c)))
        .collect();
    let results = par.map(points, |(k, cores)| coherence_point(k, cores, mode));
    let mut rows = Vec::new();
    for r in results {
        if let Some(row) = r? {
            rows.push(row);
        }
    }
    Ok(rows)
}

/// One point of the protocol-family comparison: one kernel at one core
/// count under one inter-core protocol (or the `Replicate` baseline),
/// with the directory-side aggregates that separate the family members.
#[derive(Clone, Debug)]
pub struct ProtocolSweepRow {
    /// Kernel name.
    pub kernel: String,
    /// Simulated core count.
    pub cores: usize,
    /// Coherence-mode name (`"replicate"`, `"msi"`, `"mesi"`, `"moesi"`,
    /// `"mesif"`).
    pub protocol: String,
    /// Makespan of the run.
    pub makespan: u64,
    /// Total DRAM line reads: MSI re-reads memory on dirty recalls, so
    /// it upper-bounds MESI, which upper-bounds MOESI (dirty sharing
    /// skips the round-trip entirely).
    pub dram_reads: u64,
    /// Shared-line L3 hits the directory served (0 under `Replicate`).
    pub shared_hits: u64,
    /// Invalidation messages sent (0 under `Replicate`).
    pub invalidations: u64,
    /// Dirty-owner interventions (0 under `Replicate`).
    pub interventions: u64,
    /// Total committed instructions (identical across modes — protocols
    /// may only change timing, never architectural work).
    pub committed: u64,
}

/// Runs one kernel × core-count point under every [`CoherenceMode`];
/// `None` when the kernel does not shard to `cores`. Asserts that no
/// protocol changes the committed-instruction count.
fn protocol_point(
    kernel: &Kernel,
    cores: usize,
    mode: SysMode,
) -> Result<Option<Vec<ProtocolSweepRow>>, MultiRunError> {
    let mut rows = Vec::new();
    let mut committed = None;
    for cm in CoherenceMode::ALL {
        let report = match RunSpec::new(kernel)
            .cores(cores)
            .config(MachineConfig::for_mode(mode).with_coherence(cm))
            .run()
            .map(RunOutcome::into_multi)
        {
            Ok(m) => m,
            Err(MultiRunError::Shard(_)) => return Ok(None),
            Err(e) => return Err(e),
        };
        match committed {
            None => committed = Some(report.total_committed()),
            Some(c) => assert_eq!(
                c,
                report.total_committed(),
                "{} x{cores}: {} changed committed work",
                kernel.name,
                cm.name()
            ),
        }
        rows.push(ProtocolSweepRow {
            kernel: kernel.name.clone(),
            cores,
            protocol: cm.name().to_string(),
            makespan: report.makespan,
            dram_reads: report.total_dram_reads(),
            shared_hits: report.total_shared_hits(),
            invalidations: report.total_invalidations(),
            interventions: report.total_interventions(),
            committed: report.total_committed(),
        });
    }
    Ok(Some(rows))
}

/// The protocol-family comparison: every kernel × core-count point run
/// under the `Replicate` baseline and all four directory protocols on
/// otherwise identical machines. Points a kernel cannot shard to are
/// skipped; one job per point under `par`.
pub fn protocol_sweep(
    kernels: &[Kernel],
    core_counts: &[usize],
    mode: SysMode,
    par: Parallelism,
) -> Result<Vec<ProtocolSweepRow>, MultiRunError> {
    let points: Vec<(&Kernel, usize)> = kernels
        .iter()
        .flat_map(|k| core_counts.iter().map(move |&c| (k, c)))
        .collect();
    let results = par.map(points, |(k, cores)| protocol_point(k, cores, mode));
    let mut rows = Vec::new();
    for r in results {
        if let Some(point) = r? {
            rows.extend(point);
        }
    }
    Ok(rows)
}

/// One point of the heterogeneous-chip sweep: one kernel on one mixed
/// machine shape — a hybrid:cache tile ratio, an LM-size asymmetry, or
/// a weighted-shard split — with the chip-level aggregates the
/// homogeneous sweeps report.
#[derive(Clone, Debug)]
pub struct HeteroSweepRow {
    /// Kernel name.
    pub kernel: String,
    /// Human-readable machine shape, e.g. `"3H+1C"` (3 hybrid + 1
    /// cache-based tile), `"4H lm/4x2"` (all hybrid, two tiles at a
    /// quarter LM budget) or `"2H+2C w2:1"` (weighted shards).
    pub label: String,
    /// Simulated core count.
    pub cores: usize,
    /// Tiles running a hybrid (LM + directory) memory system.
    pub hybrid_tiles: usize,
    /// Hybrid tiles configured below the default LM budget.
    pub small_lm_tiles: usize,
    /// Per-tile shard weights (all 1 for even splits).
    pub weights: Vec<u64>,
    /// Parallel makespan in cycles.
    pub makespan: u64,
    /// Total committed instructions over all cores.
    pub committed: u64,
    /// Total DRAM line reads.
    pub dram_reads: u64,
    /// Total cycles cores spent waiting on L3 bank ports.
    pub bus_wait_cycles: u64,
    /// Shared-line L3 hits the directory served (0 under `Replicate`).
    pub shared_hits: u64,
    /// Shared-marked arrays that fell back to per-core replication
    /// because the weighted shards' layouts diverged.
    pub replication_fallbacks: u64,
}

/// One machine shape of the hetero sweep: a display label, the
/// per-tile configurations, and the per-tile shard weights.
type HeteroShape = (String, Vec<MachineConfig>, Vec<u64>);

/// The machine shapes [`hetero_sweep`] visits at one core count: every
/// hybrid:cache ratio with even shards, an all-hybrid chip with half
/// the tiles at a quarter LM budget, and a weighted mixed chip whose
/// hybrid tiles take double iteration shares. Default-configured tiles
/// inherit the `HSIM_COHERENCE` environment mode like every other
/// sweep.
fn hetero_shapes(cores: usize) -> Vec<HeteroShape> {
    let hybrid = || MachineConfig::for_mode(SysMode::HybridCoherent);
    let cache = || MachineConfig::for_mode(SysMode::CacheBased);
    let mixed = |h: usize| -> Vec<MachineConfig> {
        (0..cores)
            .map(|i| if i < h { hybrid() } else { cache() })
            .collect()
    };
    let mut shapes = Vec::new();
    for h in (0..=cores).rev() {
        shapes.push((format!("{h}H+{}C", cores - h), mixed(h), vec![1; cores]));
    }
    if cores >= 2 {
        // LM-size asymmetry: big/little hybrid tiles. The little tiles
        // compile their shards against the smaller budget, so they pay
        // more DMA round trips per array.
        let small = cores / 2;
        let cfgs: Vec<MachineConfig> = (0..cores)
            .map(|i| {
                let mut c = hybrid();
                if i >= cores - small {
                    let lm = c.mem.lm.as_mut().expect("hybrid tiles have an LM");
                    lm.size_bytes /= 4;
                }
                c
            })
            .collect();
        shapes.push((format!("{cores}H lm/4x{small}"), cfgs, vec![1; cores]));
        // Weighted shards on a mixed chip: hybrid tiles are faster, so
        // they take double shares; the uneven slices can diverge the
        // shard layouts, exercising the replication-fallback
        // accounting.
        let h = cores - small;
        let weights: Vec<u64> = (0..cores).map(|i| u64::from(i < h) + 1).collect();
        shapes.push((format!("{h}H+{small}C w2:1"), mixed(h), weights));
    }
    shapes
}

/// Runs one hetero point; `None` when the kernel does not shard to the
/// shape (indirect indexing, or a weight starving a shard).
fn hetero_point(
    kernel: &Kernel,
    label: &str,
    cfgs: &[MachineConfig],
    weights: &[u64],
) -> Result<Option<HeteroSweepRow>, SimError> {
    let m = match RunSpec::new(kernel)
        .hetero(cfgs.to_vec())
        .weights(weights)
        .run()
        .map(RunOutcome::into_multi)
    {
        Ok(m) => m,
        Err(MultiRunError::Shard(_)) => return Ok(None),
        Err(MultiRunError::Sim(e)) => return Err(e),
        Err(MultiRunError::Cluster(_)) => {
            unreachable!("flat multicore runs produce no cluster errors")
        }
    };
    let default_lm = hsim_mem::LmConfig::default().size_bytes;
    Ok(Some(HeteroSweepRow {
        kernel: kernel.name.clone(),
        label: label.to_string(),
        cores: cfgs.len(),
        hybrid_tiles: cfgs
            .iter()
            .filter(|c| !matches!(c.mode, SysMode::CacheBased))
            .count(),
        small_lm_tiles: cfgs
            .iter()
            .filter(|c| c.mem.lm.as_ref().is_some_and(|l| l.size_bytes < default_lm))
            .count(),
        weights: weights.to_vec(),
        makespan: m.makespan,
        committed: m.total_committed(),
        dram_reads: m.total_dram_reads(),
        bus_wait_cycles: m.total_bus_wait_cycles(),
        shared_hits: m.total_shared_hits(),
        replication_fallbacks: m.replication_fallbacks,
    }))
}

/// The heterogeneous-chip sweep: every kernel × machine shape (see
/// `hetero_shapes`) at one core count. The all-hybrid shape (`"4H+0C"`)
/// is built from default configurations, so it reproduces the
/// homogeneous sharded machine bit for bit — the anchor the mixed
/// shapes are compared against. Shapes a kernel cannot shard to are
/// skipped; one job per (kernel, shape) point under `par`.
pub fn hetero_sweep(
    kernels: &[Kernel],
    cores: usize,
    par: Parallelism,
) -> Result<Vec<HeteroSweepRow>, SimError> {
    let shapes = hetero_shapes(cores);
    let points: Vec<(&Kernel, &HeteroShape)> = kernels
        .iter()
        .flat_map(|k| shapes.iter().map(move |s| (k, s)))
        .collect();
    let results = par.map(points, |(k, (label, cfgs, weights))| {
        hetero_point(k, label, cfgs, weights)
    });
    let mut rows = Vec::new();
    for r in results {
        if let Some(row) = r? {
            rows.push(row);
        }
    }
    Ok(rows)
}

/// One row of the communication-workload sweep: one workload family at
/// one core count on one system × inter-core protocol, with the
/// per-hand-off cost and the directory traffic that produced it.
#[derive(Clone, Debug)]
pub struct CommSweepRow {
    /// Workload family (`"pingpong"`, `"queue"`, `"lock"`,
    /// `"barrier"`).
    pub workload: String,
    /// Simulated core count (pair workloads use `cores/2` pairs).
    pub cores: usize,
    /// System mode of every tile.
    pub mode: SysMode,
    /// Inter-core protocol name (`"replicate"`, `"msi"`, ...).
    pub protocol: String,
    /// Modeled hand-offs per core (the normalization denominator).
    pub rounds: u64,
    /// Parallel makespan in cycles.
    pub makespan: u64,
    /// Cycles per hand-off: `makespan / rounds` — the round-trip
    /// headline the hybrid LM+DMA path should win.
    pub round_cycles: f64,
    /// Total DRAM line reads (dirty hand-offs recalled through DRAM
    /// show up here — the MSI-vs-MOESI/MESIF separator).
    pub dram_reads: u64,
    /// Shared-line L3 hits the directory served.
    pub shared_hits: u64,
    /// Invalidation messages sent (flag/line ping-pong).
    pub invalidations: u64,
    /// Dirty-owner interventions (payload hand-offs).
    pub interventions: u64,
    /// Dirty lines recalled out of an owner's upper levels.
    pub dirty_recalls: u64,
    /// Total committed instructions (protocol-invariant).
    pub committed: u64,
}

/// Builds one comm workload family by name at one core count.
fn comm_workload(scale: Scale, cores: usize, name: &str) -> commw::CommWorkload {
    match name {
        "pingpong" => commw::ping_pong(scale, cores),
        "queue" => commw::queue(scale, cores, 64),
        "lock" => commw::lock(scale, cores),
        "barrier" => commw::barrier(scale, cores),
        other => unreachable!("unknown comm workload {other}"),
    }
}

/// Runs one comm sweep point.
fn comm_point(
    scale: Scale,
    name: &str,
    cores: usize,
    mode: SysMode,
    cm: CoherenceMode,
) -> Result<CommSweepRow, MultiRunError> {
    let w = comm_workload(scale, cores, name);
    let m = RunSpec::many(&w.kernels)
        .config(MachineConfig::for_mode(mode).with_coherence(cm))
        .run()
        .map(RunOutcome::into_multi)?;
    Ok(CommSweepRow {
        workload: w.name.clone(),
        cores,
        mode,
        protocol: cm.name().to_string(),
        rounds: w.rounds,
        makespan: m.makespan,
        round_cycles: m.makespan as f64 / w.rounds.max(1) as f64,
        dram_reads: m.total_dram_reads(),
        shared_hits: m.total_shared_hits(),
        invalidations: m.total_invalidations(),
        interventions: m.total_interventions(),
        dirty_recalls: m.total_dirty_recalls(),
        committed: m.total_committed(),
    })
}

/// The communication-workload sweep: every family
/// (ping-pong/queue/lock/barrier) × core count on hybrid-coherent and
/// cache-based chips under the environment's inter-core protocol, plus
/// the full protocol family on the cache-based queue (the dirty
/// hand-off point where MSI/MESI/MOESI/MESIF separate). Core counts
/// must be even (pair workloads). One job per point under `par`.
pub fn comm_sweep(
    scale: Scale,
    core_counts: &[usize],
    par: Parallelism,
) -> Result<Vec<CommSweepRow>, MultiRunError> {
    let env_cm = MachineConfig::for_mode(SysMode::HybridCoherent)
        .mem
        .coherence
        .mode;
    let mut points: Vec<(&'static str, usize, SysMode, CoherenceMode)> = Vec::new();
    for &cores in core_counts {
        for name in ["pingpong", "queue", "lock", "barrier"] {
            for mode in [SysMode::HybridCoherent, SysMode::CacheBased] {
                points.push((name, cores, mode, env_cm));
            }
        }
        for cm in CoherenceMode::ALL {
            if cm != env_cm {
                points.push(("queue", cores, SysMode::CacheBased, cm));
            }
        }
    }
    par.map(points, |(name, cores, mode, cm)| {
        comm_point(scale, name, cores, mode, cm)
    })
    .into_iter()
    .collect()
}

fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// The request-serving macro-workload: `cores` server tiles gather from
/// one shared read-mostly table ([`hsim_workloads::comm::request_serving`]),
/// then a **deterministic open-loop arrival process** replays the
/// measured per-core service times against seeded inter-arrival gaps:
///
/// 1. The machine run measures each core's mean service time per
///    request (`core cycles / requests`, backside contention included).
/// 2. Arrivals are drawn open-loop (they never wait for completions)
///    from a seeded xorshift64 stream, uniform in `[1, 2·gap]` where
///    `gap` is set so the offered load is `load_permille`/1000 of the
///    measured chip capacity.
/// 3. Requests dispatch round-robin to per-core FIFOs; completion is
///    `max(arrival, core free) + service`, and `completion − arrival`
///    is the recorded sojourn latency.
///
/// Everything after the machine run is integer math on a seeded
/// stream: the same seed gives a byte-identical
/// [`RequestServingReport::render`] (pinned by proptest).
pub fn request_serving(
    scale: Scale,
    cores: usize,
    mode: SysMode,
    seed: u64,
    load_permille: u64,
) -> Result<RequestServingReport, MultiRunError> {
    let w = commw::request_serving(scale, cores);
    let m = RunSpec::many(&w.kernels)
        .config(MachineConfig::for_mode(mode))
        .run()
        .map(RunOutcome::into_multi)?;
    let service: Vec<u64> = m
        .per_core
        .iter()
        .map(|r| (r.cycles / w.requests_per_core).max(1))
        .collect();
    let avg_service = (service.iter().sum::<u64>() / service.len().max(1) as u64).max(1);
    let mean_gap = (avg_service * 1000 / (load_permille.max(1) * cores as u64)).max(1);
    let requests = w.requests_per_core * cores as u64;
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    if state == 0 {
        state = 1;
    }
    let mut latency = LatencyHistogram::new();
    let mut free = vec![0u64; cores];
    let mut arrival = 0u64;
    let mut first_arrival = None;
    let mut last_completion = 0u64;
    for i in 0..requests {
        arrival += 1 + xorshift64(&mut state) % (2 * mean_gap);
        if first_arrival.is_none() {
            first_arrival = Some(arrival);
        }
        let c = (i % cores as u64) as usize;
        let start = arrival.max(free[c]);
        let done = start + service[c];
        free[c] = done;
        last_completion = last_completion.max(done);
        latency.record(done - arrival);
    }
    Ok(RequestServingReport {
        name: "serve".into(),
        mode,
        cores,
        seed,
        requests,
        service_cycles: avg_service,
        mean_interarrival: mean_gap,
        span_cycles: last_completion - first_arrival.unwrap_or(0),
        latency,
    })
}

/// [`request_serving`] on hybrid-coherent and cache-based chips at
/// every requested core count, one job per point under `par`.
pub fn request_serving_sweep(
    scale: Scale,
    core_counts: &[usize],
    seed: u64,
    load_permille: u64,
    par: Parallelism,
) -> Result<Vec<RequestServingReport>, MultiRunError> {
    let points: Vec<(usize, SysMode)> = core_counts
        .iter()
        .flat_map(|&c| [SysMode::HybridCoherent, SysMode::CacheBased].map(|m| (c, m)))
        .collect();
    par.map(points, |(cores, mode)| {
        request_serving(scale, cores, mode, seed, load_permille)
    })
    .into_iter()
    .collect()
}

/// Geometric-mean helper used when averaging ratios across benchmarks.
pub fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = xs.fold((0.0, 0), |(s, n), x| (s + x.ln(), n + 1));
    if n == 0 {
        1.0
    } else {
        (sum / n as f64).exp()
    }
}
