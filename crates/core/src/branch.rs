//! Branch prediction: hybrid (selector + gshare + bimodal) direction
//! predictor, branch target buffer, and return address stack — the
//! Table 1 front end.

/// A table of 2-bit saturating counters.
#[derive(Clone)]
struct Counters {
    table: Vec<u8>,
    mask: usize,
}

impl Counters {
    fn new(entries: usize, init: u8) -> Self {
        let n = entries.next_power_of_two();
        Counters {
            table: vec![init; n],
            mask: n - 1,
        }
    }

    #[inline]
    fn get(&self, idx: usize) -> u8 {
        self.table[idx & self.mask]
    }

    #[inline]
    fn update(&mut self, idx: usize, up: bool) {
        let c = &mut self.table[idx & self.mask];
        if up {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// Hybrid direction predictor: a selector of 2-bit counters chooses
/// between a gshare and a bimodal component per branch (Table 1: "Hybrid
/// 4K selector, 4K G-share, 4K Bimodal").
pub struct BranchPredictor {
    gshare: Counters,
    bimodal: Counters,
    selector: Counters,
    ghist_mask: u64,
    /// Speculative global history (updated at fetch with predictions).
    spec_ghist: u64,
    /// Architectural global history (updated at dispatch with outcomes).
    arch_ghist: u64,
    /// Statistics: direction lookups.
    pub lookups: u64,
    /// Statistics: direction updates.
    pub updates: u64,
}

impl BranchPredictor {
    /// Builds the predictor.
    pub fn new(
        gshare_entries: usize,
        bimodal_entries: usize,
        selector_entries: usize,
        ghist_bits: u32,
    ) -> Self {
        BranchPredictor {
            gshare: Counters::new(gshare_entries, 1),
            bimodal: Counters::new(bimodal_entries, 1),
            selector: Counters::new(selector_entries, 2),
            ghist_mask: (1u64 << ghist_bits) - 1,
            spec_ghist: 0,
            arch_ghist: 0,
            lookups: 0,
            updates: 0,
        }
    }

    #[inline]
    fn gshare_idx(&self, pc: u64, hist: u64) -> usize {
        (pc ^ hist) as usize
    }

    /// Predicts the direction of the conditional branch at `pc` using the
    /// speculative history, and shifts the prediction into that history.
    pub fn predict(&mut self, pc: u64) -> bool {
        self.lookups += 1;
        let g = self
            .gshare
            .get(self.gshare_idx(pc, self.spec_ghist & self.ghist_mask))
            >= 2;
        let b = self.bimodal.get(pc as usize) >= 2;
        let use_gshare = self.selector.get(pc as usize) >= 2;
        let taken = if use_gshare { g } else { b };
        self.spec_ghist = (self.spec_ghist << 1) | taken as u64;
        taken
    }

    /// Trains all components with the actual outcome (called at dispatch,
    /// when the functional direction is known) and advances the
    /// architectural history.
    pub fn update(&mut self, pc: u64, taken: bool) {
        self.updates += 1;
        let gidx = self.gshare_idx(pc, self.arch_ghist & self.ghist_mask);
        let g_correct = (self.gshare.get(gidx) >= 2) == taken;
        let b_correct = (self.bimodal.get(pc as usize) >= 2) == taken;
        if g_correct != b_correct {
            self.selector.update(pc as usize, g_correct);
        }
        self.gshare.update(gidx, taken);
        self.bimodal.update(pc as usize, taken);
        self.arch_ghist = (self.arch_ghist << 1) | taken as u64;
    }

    /// Repairs the speculative history after a misprediction: the
    /// front end restarts from the architectural history.
    pub fn repair(&mut self) {
        self.spec_ghist = self.arch_ghist;
    }
}

/// A set-associative branch target buffer.
pub struct Btb {
    tags: Vec<u64>,
    lru: Vec<u64>,
    ways: usize,
    set_mask: u64,
    clock: u64,
    /// Statistics: lookups.
    pub lookups: u64,
    /// Statistics: misses.
    pub misses: u64,
}

impl Btb {
    /// Builds a BTB with `entries` total entries and `ways` associativity.
    pub fn new(entries: usize, ways: usize) -> Self {
        let sets = (entries / ways).next_power_of_two();
        Btb {
            tags: vec![u64::MAX; sets * ways],
            lru: vec![0; sets * ways],
            ways,
            set_mask: sets as u64 - 1,
            clock: 0,
            lookups: 0,
            misses: 0,
        }
    }

    /// Looks up `pc`; on a miss the entry is allocated. Returns whether
    /// the target was present (a miss costs a fetch bubble for taken
    /// branches).
    pub fn lookup_allocate(&mut self, pc: u64) -> bool {
        self.clock += 1;
        self.lookups += 1;
        let base = ((pc & self.set_mask) as usize) * self.ways;
        for w in 0..self.ways {
            if self.tags[base + w] == pc {
                self.lru[base + w] = self.clock;
                return true;
            }
        }
        self.misses += 1;
        // Allocate the LRU way.
        let victim = (0..self.ways)
            .map(|w| base + w)
            .min_by_key(|&i| self.lru[i])
            .unwrap();
        self.tags[victim] = pc;
        self.lru[victim] = self.clock;
        false
    }
}

/// Return address stack (Table 1: 32 entries), with overflow wrap.
pub struct Ras {
    stack: Vec<u64>,
    top: usize,
    count: usize,
}

impl Ras {
    /// Builds an empty RAS of `entries` slots.
    pub fn new(entries: usize) -> Self {
        Ras {
            stack: vec![0; entries.max(1)],
            top: 0,
            count: 0,
        }
    }

    /// Pushes a return address (overwrites the oldest on overflow).
    pub fn push(&mut self, addr: u64) {
        self.top = (self.top + 1) % self.stack.len();
        self.stack[self.top] = addr;
        self.count = (self.count + 1).min(self.stack.len());
    }

    /// Pops the predicted return address; `None` when empty.
    pub fn pop(&mut self) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let v = self.stack[self.top];
        self.top = (self.top + self.stack.len() - 1) % self.stack.len();
        self.count -= 1;
        Some(v)
    }

    /// Number of live entries.
    pub fn depth(&self) -> usize {
        self.count
    }

    /// Restores the RAS from an architectural call-stack snapshot (the
    /// most recent `entries` frames) after a misprediction.
    pub fn restore_from(&mut self, arch_stack: &[u64]) {
        self.top = 0;
        self.count = 0;
        let skip = arch_stack.len().saturating_sub(self.stack.len());
        for &a in &arch_stack[skip..] {
            self.push(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_learns_always_taken() {
        let mut p = BranchPredictor::new(4096, 4096, 4096, 12);
        let pc = 0x40;
        for _ in 0..8 {
            let t = p.predict(pc);
            p.update(pc, true);
            if !t {
                p.repair();
            }
        }
        assert!(p.predict(pc), "must have learned taken");
        p.update(pc, true);
    }

    #[test]
    fn predictor_learns_alternating_pattern_via_gshare() {
        let mut p = BranchPredictor::new(4096, 4096, 4096, 12);
        let pc = 0x80;
        let mut correct = 0;
        let mut total = 0;
        for i in 0..400u32 {
            let actual = i % 2 == 0;
            let predicted = p.predict(pc);
            p.update(pc, actual);
            if predicted != actual {
                p.repair();
            } else if i >= 200 {
                correct += 1;
            }
            if i >= 200 {
                total += 1;
            }
        }
        assert!(
            correct * 10 >= total * 9,
            "gshare must capture period-2 pattern: {correct}/{total}"
        );
    }

    #[test]
    fn loop_exit_mispredicts_once_per_loop() {
        // A 100-iteration loop branch: bimodal learns "taken"; the exit
        // mispredicts. Accuracy over many loops must exceed 95%.
        let mut p = BranchPredictor::new(4096, 4096, 4096, 12);
        let pc = 0x11;
        let mut wrong = 0;
        let mut total = 0;
        for _ in 0..20 {
            for i in 0..100 {
                let actual = i != 99;
                let predicted = p.predict(pc);
                p.update(pc, actual);
                if predicted != actual {
                    p.repair();
                    wrong += 1;
                }
                total += 1;
            }
        }
        assert!(wrong <= total / 20 + 20, "wrong={wrong}/{total}");
    }

    #[test]
    fn btb_allocates_and_hits() {
        let mut b = Btb::new(16, 4);
        assert!(!b.lookup_allocate(0x100));
        assert!(b.lookup_allocate(0x100));
        assert_eq!(b.misses, 1);
        assert_eq!(b.lookups, 2);
    }

    #[test]
    fn btb_capacity_eviction() {
        let mut b = Btb::new(8, 2); // 4 sets x 2 ways
                                    // Three PCs mapping to set 0: 0, 4, 8 (set = pc & 3).
        b.lookup_allocate(0);
        b.lookup_allocate(4);
        b.lookup_allocate(8); // evicts pc 0
        assert!(!b.lookup_allocate(0), "evicted entry misses");
        assert!(b.lookup_allocate(8));
    }

    #[test]
    fn ras_push_pop_lifo() {
        let mut r = Ras::new(4);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn ras_overflow_wraps() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn ras_restore_from_arch_stack() {
        let mut r = Ras::new(4);
        r.push(99); // speculative garbage
        r.restore_from(&[10, 20, 30]);
        assert_eq!(r.pop(), Some(30));
        assert_eq!(r.pop(), Some(20));
        assert_eq!(r.pop(), Some(10));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn ras_restore_truncates_to_capacity() {
        let mut r = Ras::new(2);
        r.restore_from(&[1, 2, 3, 4]);
        assert_eq!(r.pop(), Some(4));
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), None);
    }
}
