//! Data layout: placing kernel arrays in the SM address space.
//!
//! The directory's masked CAM lookup (Figure 4) requires `dma-get` source
//! chunks to be buffer-size aligned. The compiler therefore aligns every
//! array to the largest possible buffer size (the whole LM) and pads each
//! array with one maximal window, so the last tile's full-window transfer
//! never touches a neighbouring array. See DESIGN.md §5.

use crate::ir::Kernel;
use hsim_isa::memmap::{Addr, DATA_BASE, LM_SIZE};

/// Placement of one array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrayLayout {
    /// Base SM address (aligned to the LM size).
    pub base: Addr,
    /// Payload size in bytes (`len * 8`).
    pub bytes: u64,
}

/// The layout of a kernel's data segment.
#[derive(Clone, Debug, Default)]
pub struct Layout {
    /// Per-array placements, indexed by `ArrayId`.
    pub arrays: Vec<ArrayLayout>,
    /// First free address after the data segment.
    pub end: Addr,
}

impl Layout {
    /// Computes the layout for a kernel starting at the default data
    /// base.
    pub fn new(kernel: &Kernel) -> Self {
        Self::at(kernel, DATA_BASE)
    }

    /// Computes the layout starting at `base`.
    pub fn at(kernel: &Kernel, base: Addr) -> Self {
        let align = LM_SIZE; // largest possible buffer size
        let mut cursor = round_up(base, align);
        let mut arrays = Vec::with_capacity(kernel.arrays.len());
        for a in &kernel.arrays {
            let bytes = a.len * 8;
            arrays.push(ArrayLayout {
                base: cursor,
                bytes,
            });
            // Payload + one max-window guard, window-aligned.
            cursor = round_up(cursor + bytes + align, align);
        }
        Layout {
            arrays,
            end: cursor,
        }
    }

    /// SM address of element `idx` of `array`.
    #[inline]
    pub fn elem_addr(&self, array: usize, idx: u64) -> Addr {
        self.arrays[array].base + idx * 8
    }
}

fn round_up(x: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (x + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::KernelBuilder;

    #[test]
    fn arrays_are_window_aligned_and_guarded() {
        let mut kb = KernelBuilder::new("l");
        kb.array_f64("x", 1000);
        kb.array_f64("y", 1);
        kb.array_i64("z", 100_000);
        let k = kb.build().unwrap();
        let l = Layout::new(&k);
        for (i, a) in l.arrays.iter().enumerate() {
            assert_eq!(a.base % LM_SIZE, 0, "array {i} misaligned");
        }
        // Guard padding: next array starts at least one window after the
        // payload ends.
        for w in l.arrays.windows(2) {
            assert!(w[1].base >= w[0].base + w[0].bytes + LM_SIZE);
        }
        assert!(l.end > l.arrays[2].base);
    }

    #[test]
    fn elem_addressing() {
        let mut kb = KernelBuilder::new("l");
        kb.array_f64("x", 16);
        let k = kb.build().unwrap();
        let l = Layout::new(&k);
        assert_eq!(l.elem_addr(0, 0), l.arrays[0].base);
        assert_eq!(l.elem_addr(0, 3), l.arrays[0].base + 24);
    }

    #[test]
    fn custom_base_respected() {
        let mut kb = KernelBuilder::new("l");
        kb.array_f64("x", 16);
        let k = kb.build().unwrap();
        let l = Layout::at(&k, 0x5000_0000);
        assert!(l.arrays[0].base >= 0x5000_0000);
        assert_eq!(l.arrays[0].base % LM_SIZE, 0);
    }
}
