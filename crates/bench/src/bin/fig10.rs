//! Regenerates Figure 10: energy-consumption reduction of the coherent
//! hybrid memory system vs the cache-based system, with the CPU / caches
//! / LM / others component split.
//!
//! ```text
//! cargo run --release -p hsim-bench --bin fig10 [--test-scale]
//! ```

use hsim::prelude::*;
use hsim_bench::{kernels, scale_from_args, Table};

fn main() {
    let rows = compare_systems(&kernels(scale_from_args()), Parallelism::Serial)
        .expect("simulation failed");
    println!("FIGURE 10: energy normalized to the cache-based system");
    println!("(component split of the hybrid bar; paper reports 12%-41% savings, avg 27%)");
    println!();
    let t = Table::new(&[4, 8, 8, 8, 8, 8, 12]);
    t.row(&["", "total", "cpu", "caches", "lm", "others", "saving"].map(String::from));
    t.sep();
    let mut sum = 0.0;
    for r in &rows {
        let ct = r.cache.energy_total();
        let e = &r.hybrid.energy;
        sum += r.energy_norm;
        t.row(&[
            r.name.clone(),
            format!("{:.3}", r.energy_norm),
            format!("{:.3}", e.cpu / ct),
            format!("{:.3}", e.caches / ct),
            format!("{:.3}", e.lm / ct),
            format!("{:.3}", e.others / ct),
            format!("{:.1}%", (1.0 - r.energy_norm) * 100.0),
        ]);
    }
    t.sep();
    println!(
        "average saving: {:.1}% (paper: 27%)",
        (1.0 - sum / rows.len() as f64) * 100.0
    );
    println!();
    println!("Cache-based component split, for reference:");
    for r in &rows {
        let ct = r.cache.energy_total();
        let e = &r.cache.energy;
        println!(
            "  {:4} cpu={:.3} caches={:.3} others={:.3}",
            r.name,
            e.cpu / ct,
            e.caches / ct,
            e.others / ct
        );
    }
}
