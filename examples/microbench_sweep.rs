//! The Figure 7 sweep as a runnable example: prints the overhead of the
//! RD / WR / RD+WR microbenchmark modes for every guarded-reference
//! percentage, as a small ASCII chart.
//!
//! ```text
//! cargo run --release --example microbench_sweep
//! ```

use hsim::prelude::*;

fn main() {
    let pts = fig7(16 * 1024, 10, Parallelism::Serial).expect("simulation");
    println!("Figure 7 — overhead vs %% guarded (x = RD, o = WR, * = RD/WR)\n");
    let ymax = pts.iter().map(|p| p.overhead).fold(1.0, f64::max) * 1.05;
    for row in (0..12).rev() {
        let lo = 0.95 + (ymax - 0.95) * row as f64 / 12.0;
        let hi = 0.95 + (ymax - 0.95) * (row + 1) as f64 / 12.0;
        let mut line = format!("{:5.2} |", lo);
        for pct in (0..=100).step_by(10) {
            let mut ch = ' ';
            for p in pts.iter().filter(|p| p.pct == pct) {
                if p.overhead >= lo && p.overhead < hi {
                    ch = match p.mode {
                        MicroMode::Rd => 'x',
                        MicroMode::Wr => {
                            if ch == '*' {
                                '*'
                            } else {
                                'o'
                            }
                        }
                        MicroMode::RdWr => '*',
                        MicroMode::Baseline => ch,
                    };
                }
            }
            line.push_str(&format!("  {ch}  "));
        }
        println!("{line}");
    }
    println!("      +{}", "-".repeat(5 * 11));
    print!("       ");
    for pct in (0..=100).step_by(10) {
        print!("{:^5}", pct);
    }
    println!("\n                         %% of guarded references");
}
