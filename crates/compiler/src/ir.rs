//! The loop-nest intermediate representation.
//!
//! A [`Kernel`] is a sequence of counted loops over arrays of `i64` or
//! `f64` elements. Memory references are explicit ([`MemRef`]) and
//! indexed either affinely in the loop variable (`a[i + d]`, with an
//! optional zero scale for loop-invariant scalars) or *indirectly*
//! through the value of another reference (`c[idx[i]]`, `ptr[a[i]]`) —
//! the unpredictable access patterns of §2.2. This is rich enough to
//! express the paper's Figure 2/3 running example, the Table 2
//! microbenchmark and the six NAS-signature kernels, while keeping
//! classification and tiling analyzable.

use crate::alias::AliasOracle;
use std::collections::HashSet;

/// Index of an array within a kernel.
pub type ArrayId = usize;
/// Index of a memory reference within a loop.
pub type RefId = usize;

/// Element type of an array. Both are 8 bytes wide.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Elem {
    /// 64-bit signed integer.
    I64,
    /// IEEE double.
    F64,
}

impl Elem {
    /// Element size in bytes.
    pub const BYTES: u64 = 8;
}

/// An array declaration.
#[derive(Clone, Debug)]
pub struct ArrayDecl {
    /// Name (for reports and error messages).
    pub name: String,
    /// Element type.
    pub elem: Elem,
    /// Length in elements.
    pub len: u64,
    /// Set by [`Kernel::shard`] on **read-only** arrays it replicates
    /// whole into every shard (gathered tables): each core's copy holds
    /// the same values at the same addresses, so a machine running the
    /// shards may serve the array from shared cache lines instead of
    /// per-core replicas (`CoherenceMode::Mesi`). Written
    /// replicated-whole arrays (scalar accumulators, scattered
    /// histograms) stay private — they are per-core state a
    /// parallelizing compiler would privatize. Always `false` on
    /// unsharded kernels and on sliced arrays.
    pub shared: bool,
    /// Set by [`KernelBuilder::mark_comm`] on **communication** arrays:
    /// flags, queue slots, locks, barrier words and shared tables that
    /// several cores' kernels deliberately access at the *same*
    /// addresses. Unlike [`ArrayDecl::shared`] (derived by the sharder,
    /// read-only by construction), a comm array may be written — the
    /// whole point is to drive the inter-core protocol's invalidation
    /// and intervention paths — so a machine must either serve it from
    /// directory-tracked shared lines or refuse the run: a comm array
    /// whose layouts diverge across the participating kernels is a hard
    /// [`ShardError::CommLayoutDiverged`], never a silent replication
    /// fallback (a wrong-timing run masquerading as communication).
    pub comm: bool,
}

/// How a reference indexes its array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Index {
    /// Element index `scale*i + offset` with `scale ∈ {0, 1}`:
    /// `scale = 1` is a strided (regular) access, `scale = 0` a
    /// loop-invariant scalar access.
    Affine {
        /// 0 (scalar) or 1 (unit stride).
        scale: i64,
        /// Constant element offset.
        offset: i64,
    },
    /// Element index `value(idx_ref) + offset`: an unpredictable access
    /// through the value of another (affine, integer) reference.
    Indirect {
        /// The reference producing the index value (must be `I64` and
        /// affine).
        idx_ref: RefId,
        /// Constant element offset.
        offset: i64,
    },
}

/// A memory reference within a loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRef {
    /// The accessed array.
    pub array: ArrayId,
    /// The index expression.
    pub index: Index,
}

/// Expressions evaluated in the loop body. Typed: integer and FP
/// expressions are distinct; [`Expr::CvtIF`] bridges them.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer constant.
    ConstI(i64),
    /// FP constant.
    ConstF(f64),
    /// The loop variable (integer).
    Ivar,
    /// The value of a memory reference (type = its array's element type).
    Ref(RefId),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Integer-to-double conversion.
    CvtIF(Box<Expr>),
}

impl Expr {
    /// Convenience constructor: `a + b`.
    #[allow(clippy::should_implement_trait)] // builder sugar, not arithmetic on Expr values
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `a - b`.
    #[allow(clippy::should_implement_trait)] // builder sugar, not arithmetic on Expr values
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `a * b`.
    #[allow(clippy::should_implement_trait)] // builder sugar, not arithmetic on Expr values
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `(f64) a`.
    pub fn cvt(a: Expr) -> Expr {
        Expr::CvtIF(Box::new(a))
    }

    fn for_each_ref(&self, f: &mut impl FnMut(RefId)) {
        match self {
            Expr::Ref(r) => f(*r),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.for_each_ref(f);
                b.for_each_ref(f);
            }
            Expr::CvtIF(a) => a.for_each_ref(f),
            _ => {}
        }
    }
}

/// One statement: store `value` into the `target` reference.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    /// The written reference.
    pub target: RefId,
    /// The value expression.
    pub value: Expr,
}

/// A counted loop (`for i in 0..n`) with its references and statements.
#[derive(Clone, Debug, Default)]
pub struct LoopNest {
    /// Trip count.
    pub n: u64,
    /// All memory references of the loop body.
    pub refs: Vec<MemRef>,
    /// The statements, executed in order each iteration.
    pub stmts: Vec<Stmt>,
    /// References the compiler must treat as potentially incoherent even
    /// if affine (models the Table 2 microbenchmark's assumption that a
    /// reference "is potentially incoherent").
    pub forced_incoherent: HashSet<RefId>,
    /// Arrays the compiler must not map to the LM in this loop (workload
    /// knob for arrays that are only touched through unpredictable
    /// references in the modeled original program).
    pub unmapped_arrays: HashSet<ArrayId>,
}

impl LoopNest {
    /// References written by some statement.
    pub fn written_refs(&self) -> HashSet<RefId> {
        self.stmts.iter().map(|s| s.target).collect()
    }

    /// References read (in any expression, including as indirect
    /// indexes).
    pub fn read_refs(&self) -> HashSet<RefId> {
        let mut out = HashSet::new();
        for s in &self.stmts {
            s.value.for_each_ref(&mut |r| {
                out.insert(r);
            });
        }
        for r in &self.refs {
            if let Index::Indirect { idx_ref, .. } = r.index {
                out.insert(idx_ref);
            }
        }
        out
    }
}

/// A whole kernel: arrays, loops, initial data and the alias oracle.
#[derive(Clone, Debug, Default)]
pub struct Kernel {
    /// Kernel name.
    pub name: String,
    /// Array declarations.
    pub arrays: Vec<ArrayDecl>,
    /// The loops, executed in order.
    pub loops: Vec<LoopNest>,
    /// What the compiler's alias analysis can prove (per array pair).
    pub alias: AliasOracle,
    /// Initial contents per array, as raw 64-bit element bits. Shorter
    /// vectors are zero-extended to the array length.
    pub init: Vec<Vec<u64>>,
}

/// Validation errors for kernels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IrError {
    /// A reference names a missing array.
    BadArray(RefId),
    /// A statement or index uses a missing reference.
    BadRef(usize),
    /// Indirect index through a non-affine or non-integer reference.
    BadIndirect(RefId),
    /// Affine scale other than 0 or 1.
    BadScale(RefId),
    /// A `scale=1` reference can step outside its array.
    OutOfBounds(RefId),
    /// Expression/type mismatch in a statement.
    TypeMismatch(usize),
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::BadArray(r) => write!(f, "ref {r} names a missing array"),
            IrError::BadRef(s) => write!(f, "statement/index {s} uses a missing ref"),
            IrError::BadIndirect(r) => {
                write!(f, "ref {r}: indirect index must be an affine i64 ref")
            }
            IrError::BadScale(r) => write!(f, "ref {r}: affine scale must be 0 or 1"),
            IrError::OutOfBounds(r) => write!(f, "ref {r} can step outside its array"),
            IrError::TypeMismatch(s) => write!(f, "statement {s}: type mismatch"),
        }
    }
}

impl std::error::Error for IrError {}

impl Kernel {
    /// Element type of a reference within a loop.
    pub fn ref_elem(&self, l: &LoopNest, r: RefId) -> Elem {
        self.arrays[l.refs[r].array].elem
    }

    /// Structural + type validation.
    pub fn validate(&self) -> Result<(), IrError> {
        for l in &self.loops {
            for (rid, r) in l.refs.iter().enumerate() {
                if r.array >= self.arrays.len() {
                    return Err(IrError::BadArray(rid));
                }
                match r.index {
                    Index::Affine { scale, offset } => {
                        if scale != 0 && scale != 1 {
                            return Err(IrError::BadScale(rid));
                        }
                        let len = self.arrays[r.array].len as i64;
                        if scale == 0 {
                            if offset < 0 || offset >= len {
                                return Err(IrError::OutOfBounds(rid));
                            }
                        } else if offset < 0 || l.n as i64 - 1 + offset >= len {
                            return Err(IrError::OutOfBounds(rid));
                        }
                    }
                    Index::Indirect { idx_ref, .. } => {
                        if idx_ref >= l.refs.len() {
                            return Err(IrError::BadRef(rid));
                        }
                        let idx = &l.refs[idx_ref];
                        let affine = matches!(idx.index, Index::Affine { .. });
                        if !affine || self.arrays[idx.array].elem != Elem::I64 {
                            return Err(IrError::BadIndirect(rid));
                        }
                    }
                }
            }
            for (sid, s) in l.stmts.iter().enumerate() {
                if s.target >= l.refs.len() {
                    return Err(IrError::BadRef(sid));
                }
                let want = self.ref_elem(l, s.target);
                let got = self.expr_type(l, &s.value, sid)?;
                if want != got {
                    return Err(IrError::TypeMismatch(sid));
                }
            }
        }
        Ok(())
    }

    fn expr_type(&self, l: &LoopNest, e: &Expr, sid: usize) -> Result<Elem, IrError> {
        Ok(match e {
            Expr::ConstI(_) | Expr::Ivar => Elem::I64,
            Expr::ConstF(_) => Elem::F64,
            Expr::Ref(r) => {
                if *r >= l.refs.len() {
                    return Err(IrError::BadRef(sid));
                }
                self.ref_elem(l, *r)
            }
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                let ta = self.expr_type(l, a, sid)?;
                let tb = self.expr_type(l, b, sid)?;
                if ta != tb {
                    return Err(IrError::TypeMismatch(sid));
                }
                ta
            }
            Expr::CvtIF(a) => {
                if self.expr_type(l, a, sid)? != Elem::I64 {
                    return Err(IrError::TypeMismatch(sid));
                }
                Elem::F64
            }
        })
    }
}

/// Why a kernel cannot be sharded across cores.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// The kernel has no loops to split.
    NoLoops,
    /// The loops have different trip counts, so one iteration split does
    /// not apply to all of them.
    UnevenLoops,
    /// More shards requested than loop iterations available.
    TooManyShards {
        /// Iterations available.
        iterations: u64,
        /// Shards requested.
        shards: usize,
    },
    /// An array is indexed both by the loop variable (so its elements
    /// belong to iteration slices) and in an iteration-independent way
    /// (scalar access or as an indirection target), so no slicing can
    /// keep both views consistent. Carries the offending array's name
    /// and one rendered example of each conflicting index expression so
    /// the message points at the exact references to fix.
    MixedIndexing {
        /// The offending array.
        array: ArrayId,
        /// Its name.
        name: String,
        /// An iteration-indexed reference to it, e.g. `a[i + 2]`.
        iter_ref: String,
        /// An iteration-independent reference to it, e.g. `a[idx[i]]`
        /// or `a[3]`.
        fixed_ref: String,
    },
    /// A communication array ([`ArrayDecl::comm`]) is not laid out at
    /// the same address range by every participating kernel, so the
    /// cores would not actually be communicating through one set of
    /// lines. Replicating it per core — the fallback read-only shared
    /// tables get — would silently turn the communication pattern into
    /// private traffic, so the run is refused instead.
    CommLayoutDiverged {
        /// The offending array's name.
        name: String,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::NoLoops => write!(f, "kernel has no loops to shard"),
            ShardError::UnevenLoops => {
                write!(
                    f,
                    "loops have different trip counts; cannot shard uniformly"
                )
            }
            ShardError::TooManyShards { iterations, shards } => {
                write!(
                    f,
                    "cannot split {iterations} iterations into {shards} shards"
                )
            }
            ShardError::MixedIndexing {
                name,
                iter_ref,
                fixed_ref,
                ..
            } => {
                write!(
                    f,
                    "array \"{name}\" cannot be sharded: it is indexed by the \
                     loop variable as {iter_ref} but also \
                     iteration-independently as {fixed_ref}; slicing it breaks \
                     the second view and replicating it whole breaks the first"
                )
            }
            ShardError::CommLayoutDiverged { name } => {
                write!(
                    f,
                    "communication array \"{name}\" is laid out at diverging \
                     addresses across the per-core kernels; the cores would \
                     not share one set of lines, and replicating a written \
                     comm array would silently break the communication \
                     pattern — declare identical array lists (same order and \
                     lengths) in every participating kernel"
                )
            }
        }
    }
}

impl std::error::Error for ShardError {}

impl Kernel {
    /// Renders a reference as source-like text (`a[i + 2]`, `a[3]`,
    /// `a[idx[i]]`) for error messages. `l` is the loop holding the
    /// reference; only indirect indexes consult it (to resolve the
    /// index-producing reference).
    fn render_ref(&self, r: &MemRef, l: &LoopNest) -> String {
        let name = &self.arrays[r.array].name;
        match r.index {
            Index::Affine { scale: 0, offset } => format!("{name}[{offset}]"),
            Index::Affine { offset: 0, .. } => format!("{name}[i]"),
            Index::Affine { offset, .. } if offset < 0 => format!("{name}[i - {}]", -offset),
            Index::Affine { offset, .. } => format!("{name}[i + {offset}]"),
            Index::Indirect { idx_ref, offset } => {
                let inner = self.render_ref(&l.refs[idx_ref], l);
                match offset {
                    0 => format!("{name}[{inner}]"),
                    o if o < 0 => format!("{name}[{inner} - {}]", -o),
                    o => format!("{name}[{inner} + {o}]"),
                }
            }
        }
    }

    /// Splits the kernel into `n` disjoint iteration slices — the
    /// paper's multicore evaluation model, where each core runs the same
    /// loop nest over its private share of the data (§3: the protocol
    /// hardware is per-core and LMs hold private data only).
    ///
    /// Arrays indexed by the loop variable (`a[i + d]`, any `d`) are
    /// *sliced*: shard `s` receives the elements its iterations touch,
    /// plus a `max(d)`-element halo so offset reads stay in bounds —
    /// the shards' written working sets are disjoint. Arrays accessed
    /// only iteration-independently — scalars and indirection targets —
    /// are replicated whole into each shard (private per-core copies;
    /// gathered tables must stay fully indexable). An array accessed
    /// *both* ways admits no consistent slicing and makes the kernel
    /// unshardable ([`ShardError::MixedIndexing`]); silently replicating
    /// it would desynchronize its indices from the sliced arrays'.
    ///
    /// Every produced shard is a self-contained, validated [`Kernel`]:
    /// running shard `s` on its own machine computes exactly the
    /// original kernel's iterations `[start_s, start_s + n_s)` (for
    /// loop-carried halo reads, against the original initial data, as
    /// in any ghost-cell decomposition).
    pub fn shard(&self, n: usize) -> Result<Vec<Kernel>, ShardError> {
        assert!(n >= 1, "shard count must be positive");
        self.shard_weighted(&vec![1u64; n])
    }

    /// [`Kernel::shard`] with per-shard weights: shard `s` receives a
    /// share of the iterations proportional to `weights[s]`, so
    /// iteration counts can be matched to tile strength on a
    /// heterogeneous machine (a 2:1 weight gives one core twice the
    /// iterations of another). The split uses the largest-remainder
    /// method with ties broken toward lower shard indices, so uniform
    /// weights (`[1, 1, .., 1]`) reproduce [`Kernel::shard`] exactly —
    /// shard by shard, byte for byte (pinned by a proptest).
    ///
    /// Every shard must end up with at least one iteration; a weight
    /// small enough (or zero) to starve its shard is rejected as
    /// [`ShardError::TooManyShards`]. Note that *uneven* shards slice
    /// streamed arrays to different lengths, which can place later
    /// arrays at diverging addresses across the shards' layouts; a
    /// machine sharing read-only tables across cores then falls back to
    /// per-core replication for the diverged arrays (see
    /// `MultiMachine::replication_fallbacks`).
    pub fn shard_weighted(&self, weights: &[u64]) -> Result<Vec<Kernel>, ShardError> {
        assert!(!weights.is_empty(), "need at least one shard weight");
        let n = weights.len();
        let Some(first) = self.loops.first() else {
            return Err(ShardError::NoLoops);
        };
        let iterations = first.n;
        // Uneven loops are unshardable no matter the weights: report
        // that before any starvation diagnosis (same precedence the
        // unweighted `shard` always had).
        if self.loops.iter().any(|l| l.n != iterations) {
            return Err(ShardError::UnevenLoops);
        }
        // 128-bit intermediates: `iterations * weight` must not wrap
        // for any u64 weights (the sum is widened for the same reason).
        let total: u128 = weights.iter().map(|&w| w as u128).sum();
        if total == 0 {
            return Err(ShardError::TooManyShards {
                iterations,
                shards: n,
            });
        }
        // Largest-remainder apportionment: floor shares first, then one
        // extra iteration each to the shards with the largest remainder
        // (ties toward lower indices — exactly `shard`'s "first `extra`
        // shards get one more" rule under uniform weights).
        let share = |w: u64| iterations as u128 * w as u128;
        let mut lens: Vec<u64> = weights.iter().map(|&w| (share(w) / total) as u64).collect();
        let assigned: u64 = lens.iter().sum();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(share(weights[i]) % total), i));
        for &i in order.iter().take((iterations - assigned) as usize) {
            lens[i] += 1;
        }
        if lens.contains(&0) {
            return Err(ShardError::TooManyShards {
                iterations,
                shards: n,
            });
        }
        self.shard_slices(&lens)
    }

    /// Two-level sharding for a clustered machine: splits the kernel
    /// into `clusters` superslices, then each superslice into `per`
    /// per-core shards, returning one `Vec<Kernel>` per cluster. Every
    /// superslice is itself a valid kernel, so halos nest correctly:
    /// cluster `c`'s cores jointly compute exactly the iterations of
    /// superslice `c`, and concatenating all clusters reproduces the
    /// flat `shard(clusters * per)` coverage of the original iteration
    /// space (slice boundaries differ — the two-level split rounds at
    /// cluster granularity first).
    pub fn shard_clustered(
        &self,
        clusters: usize,
        per: usize,
    ) -> Result<Vec<Vec<Kernel>>, ShardError> {
        assert!(clusters >= 1, "cluster count must be positive");
        assert!(per >= 1, "cores per cluster must be positive");
        self.shard(clusters)?
            .iter()
            .map(|superslice| superslice.shard(per))
            .collect()
    }

    /// Splits the kernel into the given iteration slices (`lens[s]`
    /// iterations for shard `s`, in order). The shared back end of
    /// [`Kernel::shard`] and [`Kernel::shard_weighted`].
    fn shard_slices(&self, lens: &[u64]) -> Result<Vec<Kernel>, ShardError> {
        let n = lens.len();
        // The caller (`shard_weighted`) has already rejected empty and
        // uneven loop nests and computed a covering split.
        debug_assert_eq!(
            lens.iter().sum::<u64>(),
            self.loops.first().map_or(0, |l| l.n),
            "caller must validate the split"
        );

        // Classify every array: iteration-indexed (sliced, tracking the
        // widest offset as its halo) and/or iteration-independent
        // (replicated whole). Both at once is unshardable; one example
        // reference per view is remembered so the rejection can name
        // the exact expressions in conflict.
        let mut iter_halo: Vec<Option<u64>> = vec![None; self.arrays.len()];
        let mut iter_site: Vec<Option<MemRef>> = vec![None; self.arrays.len()];
        let mut fixed_site: Vec<Option<(usize, MemRef)>> = vec![None; self.arrays.len()];
        for (li, l) in self.loops.iter().enumerate() {
            for r in &l.refs {
                match r.index {
                    Index::Affine { scale: 1, offset } => {
                        // `validate()` guarantees offset >= 0 here.
                        let halo = iter_halo[r.array].get_or_insert(0);
                        *halo = (*halo).max(offset as u64);
                        iter_site[r.array].get_or_insert(*r);
                    }
                    Index::Affine { .. } | Index::Indirect { .. } => {
                        fixed_site[r.array].get_or_insert((li, *r));
                    }
                }
            }
            // Indirection *index* streams are the referencing side; the
            // target array was already marked fixed above.
        }
        for (array, halo) in iter_halo.iter().enumerate() {
            if halo.is_some() {
                if let Some((li, fixed)) = &fixed_site[array] {
                    let iter = iter_site[array].expect("halo implies an iteration-indexed ref");
                    return Err(ShardError::MixedIndexing {
                        array,
                        name: self.arrays[array].name.clone(),
                        iter_ref: self.render_ref(&iter, &self.loops[*li]),
                        fixed_ref: self.render_ref(fixed, &self.loops[*li]),
                    });
                }
            }
        }

        // Arrays any statement writes: never marked shared. A written
        // replicated-whole array (scalar accumulator, scattered
        // histogram) is per-core state a parallelizing compiler would
        // privatize; sharing its one line across shards would ping-pong
        // under an invalidation protocol on every iteration.
        let mut written = vec![false; self.arrays.len()];
        for l in &self.loops {
            for r in l.written_refs() {
                written[l.refs[r].array] = true;
            }
        }

        let mut start = 0u64;
        let mut shards = Vec::with_capacity(n);
        for (s, &len) in lens.iter().enumerate() {
            let end = start + len;
            let mut k = self.clone();
            k.name = format!("{}#{}/{}", self.name, s, n);
            for l in &mut k.loops {
                l.n = len;
            }
            for (id, decl) in k.arrays.iter_mut().enumerate() {
                let Some(halo) = iter_halo[id] else {
                    // Replicated whole: every shard gets the same values
                    // at (layout permitting) the same addresses. When it
                    // is also read-only and there is more than one
                    // shard, mark it so the machine can serve it from
                    // shared lines under `CoherenceMode::Mesi` instead
                    // of per-core replicas.
                    decl.shared = n > 1 && !written[id];
                    continue;
                };
                // Slice the declaration and its (possibly zero-extended)
                // initial data to this shard's iteration window plus the
                // halo its widest offset reference reaches into.
                decl.len = len + halo;
                let src = &self.init[id];
                k.init[id] = (start..end + halo)
                    .map(|i| src.get(i as usize).copied().unwrap_or(0))
                    .collect();
            }
            debug_assert!(k.validate().is_ok(), "shard must stay well-formed");
            shards.push(k);
            start = end;
        }
        Ok(shards)
    }
}

/// Fluent builder for kernels.
///
/// ```
/// use hsim_compiler::{KernelBuilder, Expr, Index, Elem};
///
/// let mut kb = KernelBuilder::new("axpy");
/// let x = kb.array_f64("x", 1024);
/// let y = kb.array_f64("y", 1024);
/// kb.begin_loop(1024);
/// let rx = kb.ref_affine(x, 1, 0);
/// let ry = kb.ref_affine(y, 1, 0);
/// kb.stmt(ry, Expr::add(Expr::Ref(ry), Expr::mul(Expr::ConstF(2.0), Expr::Ref(rx))));
/// kb.end_loop();
/// let k = kb.build().unwrap();
/// assert_eq!(k.loops.len(), 1);
/// ```
#[derive(Default)]
pub struct KernelBuilder {
    kernel: Kernel,
    cur: Option<LoopNest>,
}

impl KernelBuilder {
    /// Starts a kernel.
    pub fn new(name: &str) -> Self {
        KernelBuilder {
            kernel: Kernel {
                name: name.to_string(),
                ..Kernel::default()
            },
            cur: None,
        }
    }

    /// Declares an `f64` array initialized to zero.
    pub fn array_f64(&mut self, name: &str, len: u64) -> ArrayId {
        self.push_array(name, Elem::F64, len, Vec::new())
    }

    /// Declares an `i64` array initialized to zero.
    pub fn array_i64(&mut self, name: &str, len: u64) -> ArrayId {
        self.push_array(name, Elem::I64, len, Vec::new())
    }

    /// Declares an `f64` array with initial values.
    pub fn array_f64_init(&mut self, name: &str, data: &[f64]) -> ArrayId {
        let bits = data.iter().map(|v| v.to_bits()).collect();
        self.push_array(name, Elem::F64, data.len() as u64, bits)
    }

    /// Declares an `i64` array with initial values.
    pub fn array_i64_init(&mut self, name: &str, data: &[i64]) -> ArrayId {
        let bits = data.iter().map(|v| *v as u64).collect();
        self.push_array(name, Elem::I64, data.len() as u64, bits)
    }

    fn push_array(&mut self, name: &str, elem: Elem, len: u64, init: Vec<u64>) -> ArrayId {
        self.kernel.arrays.push(ArrayDecl {
            name: name.to_string(),
            elem,
            len,
            shared: false,
            comm: false,
        });
        self.kernel.init.push(init);
        self.kernel.arrays.len() - 1
    }

    /// Opens a loop of `n` iterations. Panics if one is already open.
    pub fn begin_loop(&mut self, n: u64) {
        assert!(self.cur.is_none(), "loop already open");
        self.cur = Some(LoopNest {
            n,
            ..LoopNest::default()
        });
    }

    fn cur(&mut self) -> &mut LoopNest {
        self.cur.as_mut().expect("no open loop")
    }

    /// Adds an affine reference `array[scale*i + offset]`.
    pub fn ref_affine(&mut self, array: ArrayId, scale: i64, offset: i64) -> RefId {
        let l = self.cur();
        l.refs.push(MemRef {
            array,
            index: Index::Affine { scale, offset },
        });
        l.refs.len() - 1
    }

    /// Adds an indirect reference `array[value(idx_ref) + offset]`.
    pub fn ref_indirect(&mut self, array: ArrayId, idx_ref: RefId, offset: i64) -> RefId {
        let l = self.cur();
        l.refs.push(MemRef {
            array,
            index: Index::Indirect { idx_ref, offset },
        });
        l.refs.len() - 1
    }

    /// Forces a reference to be treated as potentially incoherent
    /// (Table 2 microbenchmark modes).
    pub fn force_incoherent(&mut self, r: RefId) {
        self.cur().forced_incoherent.insert(r);
    }

    /// Forbids mapping an array to the LM in the open loop.
    pub fn no_map(&mut self, a: ArrayId) {
        self.cur().unmapped_arrays.insert(a);
    }

    /// Marks an array as a cross-core **communication** array (see
    /// [`ArrayDecl::comm`]): flags, queue slots, locks, barrier words
    /// or shared tables that several cores' kernels deliberately access
    /// at the *same* addresses. Unlike the sharder-derived
    /// [`ArrayDecl::shared`] flag, a comm array may be written; a
    /// machine refuses to run kernels whose comm-array layouts diverge
    /// ([`ShardError::CommLayoutDiverged`]) instead of silently
    /// replicating them. Array-level, so it may be called outside a
    /// loop.
    pub fn mark_comm(&mut self, a: ArrayId) {
        self.kernel.arrays[a].comm = true;
    }

    /// Adds a statement `target = value`.
    pub fn stmt(&mut self, target: RefId, value: Expr) {
        self.cur().stmts.push(Stmt { target, value });
    }

    /// Closes the open loop.
    pub fn end_loop(&mut self) {
        let l = self.cur.take().expect("no open loop");
        self.kernel.loops.push(l);
    }

    /// Access to the alias oracle being built.
    pub fn alias_mut(&mut self) -> &mut AliasOracle {
        &mut self.kernel.alias
    }

    /// Validates and returns the kernel.
    pub fn build(self) -> Result<Kernel, IrError> {
        assert!(self.cur.is_none(), "unclosed loop");
        self.kernel.validate()?;
        Ok(self.kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure2_kernel() -> Kernel {
        // The paper's running example:
        //   for i { a[i] = b[i]; c[idx[i]] = 0; ptr[pidx[i]] += 1 }
        // with ptr modeled as an array the compiler cannot disambiguate
        // from a.
        let mut kb = KernelBuilder::new("fig2");
        let a = kb.array_i64("a", 1024);
        let b = kb.array_i64("b", 1024);
        let c = kb.array_i64("c", 512);
        let idx = kb.array_i64("idx", 1024);
        kb.begin_loop(1024);
        let ra = kb.ref_affine(a, 1, 0);
        let rb = kb.ref_affine(b, 1, 0);
        let ridx = kb.ref_affine(idx, 1, 0);
        let rc = kb.ref_indirect(c, ridx, 0);
        let rptr = kb.ref_indirect(a, ridx, 0);
        kb.stmt(ra, Expr::Ref(rb));
        kb.stmt(rc, Expr::ConstI(0));
        kb.stmt(rptr, Expr::add(Expr::Ref(rptr), Expr::ConstI(1)));
        kb.end_loop();
        kb.build().unwrap()
    }

    #[test]
    fn builder_produces_valid_kernel() {
        let k = figure2_kernel();
        assert_eq!(k.arrays.len(), 4);
        assert_eq!(k.loops[0].refs.len(), 5);
        assert_eq!(k.loops[0].stmts.len(), 3);
    }

    #[test]
    fn written_and_read_refs() {
        let k = figure2_kernel();
        let l = &k.loops[0];
        let w = l.written_refs();
        assert!(w.contains(&0) && w.contains(&3) && w.contains(&4));
        let r = l.read_refs();
        assert!(r.contains(&1), "b is read");
        assert!(r.contains(&2), "idx is read (as an index)");
        assert!(r.contains(&4), "ptr target read for +=");
    }

    #[test]
    fn out_of_bounds_affine_rejected() {
        let mut kb = KernelBuilder::new("bad");
        let a = kb.array_i64("a", 10);
        kb.begin_loop(10);
        let ra = kb.ref_affine(a, 1, 1); // i+1 reaches 10: out of range
        kb.stmt(ra, Expr::ConstI(0));
        kb.end_loop();
        assert_eq!(kb.build().unwrap_err(), IrError::OutOfBounds(0));
    }

    #[test]
    fn bounds_with_padding_accepted() {
        let mut kb = KernelBuilder::new("ok");
        let a = kb.array_i64("a", 11);
        kb.begin_loop(10);
        let ra = kb.ref_affine(a, 1, 1);
        kb.stmt(ra, Expr::ConstI(0));
        kb.end_loop();
        assert!(kb.build().is_ok());
    }

    #[test]
    fn scalar_scale_zero_bounds() {
        let mut kb = KernelBuilder::new("s");
        let a = kb.array_i64("a", 4);
        kb.begin_loop(100);
        let r = kb.ref_affine(a, 0, 3);
        kb.stmt(r, Expr::ConstI(1));
        kb.end_loop();
        assert!(kb.build().is_ok());

        let mut kb = KernelBuilder::new("s2");
        let a = kb.array_i64("a", 4);
        kb.begin_loop(100);
        let r = kb.ref_affine(a, 0, 4);
        kb.stmt(r, Expr::ConstI(1));
        kb.end_loop();
        assert_eq!(kb.build().unwrap_err(), IrError::OutOfBounds(0));
    }

    #[test]
    fn indirect_through_f64_rejected() {
        let mut kb = KernelBuilder::new("bad");
        let a = kb.array_f64("a", 16);
        let c = kb.array_i64("c", 16);
        kb.begin_loop(16);
        let ra = kb.ref_affine(a, 1, 0);
        let rc = kb.ref_indirect(c, ra, 0);
        kb.stmt(rc, Expr::ConstI(0));
        kb.end_loop();
        assert_eq!(kb.build().unwrap_err(), IrError::BadIndirect(1));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut kb = KernelBuilder::new("bad");
        let a = kb.array_f64("a", 16);
        kb.begin_loop(16);
        let ra = kb.ref_affine(a, 1, 0);
        kb.stmt(ra, Expr::ConstI(1)); // int into f64 array
        kb.end_loop();
        assert_eq!(kb.build().unwrap_err(), IrError::TypeMismatch(0));
    }

    #[test]
    fn cvt_bridges_types() {
        let mut kb = KernelBuilder::new("ok");
        let a = kb.array_f64("a", 16);
        kb.begin_loop(16);
        let ra = kb.ref_affine(a, 1, 0);
        kb.stmt(ra, Expr::cvt(Expr::Ivar));
        kb.end_loop();
        assert!(kb.build().is_ok());
    }

    #[test]
    fn bad_scale_rejected() {
        let mut kb = KernelBuilder::new("bad");
        let a = kb.array_i64("a", 1000);
        kb.begin_loop(10);
        let ra = kb.ref_affine(a, 2, 0);
        kb.stmt(ra, Expr::ConstI(0));
        kb.end_loop();
        assert_eq!(kb.build().unwrap_err(), IrError::BadScale(0));
    }

    #[test]
    fn shard_slices_streamed_arrays_and_keeps_tables_whole() {
        let mut kb = KernelBuilder::new("K");
        let a = kb.array_i64_init("a", &(0..10).collect::<Vec<i64>>());
        let idx = kb.array_i64_init("idx", &[0, 1, 2, 0, 1, 2, 0, 1, 2, 0]);
        let table = kb.array_i64_init("table", &[7, 8, 9]);
        kb.begin_loop(10);
        let ra = kb.ref_affine(a, 1, 0);
        let ridx = kb.ref_affine(idx, 1, 0);
        let rt = kb.ref_indirect(table, ridx, 0);
        kb.stmt(ra, Expr::add(Expr::Ref(ra), Expr::Ref(rt)));
        kb.end_loop();
        let k = kb.build().unwrap();

        let shards = k.shard(3).unwrap();
        assert_eq!(shards.len(), 3);
        // 10 = 4 + 3 + 3.
        assert_eq!(
            shards.iter().map(|s| s.loops[0].n).collect::<Vec<_>>(),
            [4, 3, 3]
        );
        // Streamed arrays are sliced disjointly...
        assert_eq!(shards[0].init[a], vec![0, 1, 2, 3]);
        assert_eq!(shards[1].init[a], vec![4, 5, 6]);
        assert_eq!(shards[2].init[a], vec![7, 8, 9]);
        assert_eq!(shards[1].arrays[a].len, 3);
        // ...including the index stream...
        assert_eq!(shards[2].init[idx], vec![1, 2, 0]);
        // ...while the gathered table stays whole in every shard, and —
        // being read-only — is marked cross-core shared; the sliced and
        // written arrays are not.
        for s in &shards {
            assert_eq!(s.arrays[table].len, 3);
            assert_eq!(s.init[table], vec![7, 8, 9]);
            assert!(s.arrays[table].shared, "read-only table is shared");
            assert!(!s.arrays[a].shared, "sliced arrays stay private");
            assert!(!s.arrays[idx].shared, "sliced arrays stay private");
            assert!(s.validate().is_ok());
        }
        assert_eq!(shards[0].name, "K#0/3");
        // Unsharded kernels mark nothing.
        assert!(k.arrays.iter().all(|d| !d.shared));
        assert!(k.shard(1).unwrap()[0].arrays.iter().all(|d| !d.shared));
    }

    #[test]
    fn shard_keeps_written_replicated_arrays_private() {
        // A scalar accumulator is replicated whole into every shard but
        // *written* — it must not be marked shared (per-core state a
        // parallelizing compiler privatizes; sharing its line would
        // ping-pong under an invalidation protocol).
        let mut kb = KernelBuilder::new("K");
        let a = kb.array_i64_init("a", &(0..8).collect::<Vec<i64>>());
        let acc = kb.array_i64_init("acc", &[0]);
        let table = kb.array_i64_init("t", &[3, 4]);
        let idx = kb.array_i64_init("idx", &[0, 1, 0, 1, 0, 1, 0, 1]);
        kb.begin_loop(8);
        let ra = kb.ref_affine(a, 1, 0);
        let racc = kb.ref_affine(acc, 0, 0);
        let ridx = kb.ref_affine(idx, 1, 0);
        let rt = kb.ref_indirect(table, ridx, 0);
        kb.stmt(racc, Expr::add(Expr::Ref(racc), Expr::Ref(ra)));
        kb.stmt(ra, Expr::add(Expr::Ref(ra), Expr::Ref(rt)));
        kb.end_loop();
        let shards = kb.build().unwrap().shard(2).unwrap();
        for s in &shards {
            assert!(!s.arrays[acc].shared, "written accumulator is private");
            assert!(s.arrays[table].shared, "read-only gather target shared");
        }
    }

    #[test]
    fn shard_slices_offset_arrays_with_a_halo() {
        let mut kb = KernelBuilder::new("K");
        let a = kb.array_i64_init("a", &(0..12).collect::<Vec<i64>>());
        let s = kb.array_i64_init("s", &[5]);
        kb.begin_loop(10);
        let r0 = kb.ref_affine(a, 1, 0);
        let r1 = kb.ref_affine(a, 1, 2); // widest offset -> 2-element halo
        let rs = kb.ref_affine(s, 0, 0);
        kb.stmt(r0, Expr::add(Expr::Ref(r1), Expr::Ref(rs)));
        kb.end_loop();
        let k = kb.build().unwrap();
        let shards = k.shard(2).unwrap();
        for sh in &shards {
            assert_eq!(sh.arrays[a].len, 7, "5-iteration slice + 2-element halo");
            assert_eq!(sh.arrays[s].len, 1, "scalar array replicated whole");
            assert_eq!(sh.loops[0].n, 5);
            assert!(sh.validate().is_ok());
        }
        // The halo keeps offset reads index-consistent: shard 1 starts at
        // original element 5.
        assert_eq!(shards[1].init[a], vec![5, 6, 7, 8, 9, 10, 11]);
    }

    #[test]
    fn shard_decomposition_is_faithful_with_offsets() {
        // a[i] = b[i+2] + s: running the shards standalone and
        // concatenating their `a` slices must reproduce the full run —
        // the index-shift class of bug (sliced `a` against whole `b`)
        // would break this.
        let mut kb = KernelBuilder::new("K");
        let a = kb.array_i64("a", 10);
        let b = kb.array_i64_init("b", &(100..112).collect::<Vec<i64>>());
        let s = kb.array_i64_init("s", &[7]);
        kb.begin_loop(10);
        let ra = kb.ref_affine(a, 1, 0);
        let rb = kb.ref_affine(b, 1, 2);
        let rs = kb.ref_affine(s, 0, 0);
        kb.stmt(ra, Expr::add(Expr::Ref(rb), Expr::Ref(rs)));
        kb.end_loop();
        let k = kb.build().unwrap();

        let full = crate::interp::interpret(&k).unwrap();
        let mut stitched = Vec::new();
        for sh in k.shard(3).unwrap() {
            let out = crate::interp::interpret(&sh).unwrap();
            let slice_len = sh.loops[0].n as usize;
            stitched.extend_from_slice(&out[a][..slice_len]);
        }
        assert_eq!(stitched, full[a], "sharded run diverged from the full run");
    }

    #[test]
    fn shard_rejects_mixed_iteration_and_fixed_indexing() {
        // arrays[0] is streamed (a[i]) *and* scattered into through an
        // index array: slicing it breaks the indirect view, replicating
        // it whole breaks the streamed view — must refuse.
        let mut kb = KernelBuilder::new("K");
        let a = kb.array_i64_init("a", &(0..8).collect::<Vec<i64>>());
        let idx = kb.array_i64_init("idx", &[0, 1, 2, 3, 4, 5, 6, 7]);
        kb.begin_loop(8);
        let ra = kb.ref_affine(a, 1, 0);
        let ridx = kb.ref_affine(idx, 1, 0);
        let rg = kb.ref_indirect(a, ridx, 0);
        kb.stmt(ra, Expr::add(Expr::Ref(ra), Expr::Ref(rg)));
        kb.end_loop();
        let k = kb.build().unwrap();
        let err = k.shard(2).unwrap_err();
        match &err {
            ShardError::MixedIndexing { array, .. } => assert_eq!(*array, a),
            other => panic!("wrong error: {other:?}"),
        }
        assert!(
            k.shard(1).is_err(),
            "even one shard needs consistent indexing"
        );
    }

    #[test]
    fn mixed_indexing_message_names_array_and_both_expressions() {
        // A stream `vals[i + 1]` gathered into through `vals[idx[i]]`:
        // the rejection must spell out the array name and both index
        // expressions, not just "unshardable".
        let mut kb = KernelBuilder::new("K");
        let vals = kb.array_i64_init("vals", &(0..9).collect::<Vec<i64>>());
        let idx = kb.array_i64_init("idx", &[0, 1, 2, 3, 4, 5, 6, 7]);
        kb.begin_loop(8);
        let rv = kb.ref_affine(vals, 1, 1);
        let ridx = kb.ref_affine(idx, 1, 0);
        let rg = kb.ref_indirect(vals, ridx, 0);
        kb.stmt(rv, Expr::add(Expr::Ref(rv), Expr::Ref(rg)));
        kb.end_loop();
        let k = kb.build().unwrap();
        let err = k.shard(2).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("\"vals\""), "must name the array: {msg}");
        assert!(
            msg.contains("vals[i + 1]"),
            "must show the iteration-indexed expression: {msg}"
        );
        assert!(
            msg.contains("vals[idx[i]]"),
            "must show the iteration-independent expression: {msg}"
        );
        // Scalar (fixed-offset) conflicts render as plain subscripts.
        let mut kb = KernelBuilder::new("K2");
        let s = kb.array_i64_init("s", &[1, 2, 3, 4]);
        kb.begin_loop(4);
        let r0 = kb.ref_affine(s, 1, 0);
        let rs = kb.ref_affine(s, 0, 3);
        kb.stmt(r0, Expr::add(Expr::Ref(r0), Expr::Ref(rs)));
        kb.end_loop();
        let msg = kb.build().unwrap().shard(2).unwrap_err().to_string();
        assert!(msg.contains("s[i]") && msg.contains("s[3]"), "{msg}");
    }

    /// `a[i] += t[idx[i]]` over `n` iterations: shardable, with a
    /// gathered (replicated-whole, read-only) table.
    fn gather_kernel(n: u64) -> Kernel {
        let mut kb = KernelBuilder::new("G");
        let a = kb.array_i64_init("a", &(0..n as i64).collect::<Vec<i64>>());
        let idx = kb.array_i64_init("idx", &(0..n as i64).map(|i| i % 3).collect::<Vec<i64>>());
        let table = kb.array_i64_init("t", &[7, 8, 9]);
        kb.begin_loop(n);
        let ra = kb.ref_affine(a, 1, 0);
        let ridx = kb.ref_affine(idx, 1, 0);
        let rt = kb.ref_indirect(table, ridx, 0);
        kb.stmt(ra, Expr::add(Expr::Ref(ra), Expr::Ref(rt)));
        kb.end_loop();
        kb.build().unwrap()
    }

    #[test]
    fn weighted_shards_split_proportionally() {
        let k = gather_kernel(12);
        let shards = k.shard_weighted(&[2, 1, 1]).unwrap();
        assert_eq!(
            shards.iter().map(|s| s.loops[0].n).collect::<Vec<_>>(),
            [6, 3, 3]
        );
        // Slices stay disjoint and in order.
        assert_eq!(shards[0].init[0], (0..6).collect::<Vec<u64>>());
        assert_eq!(shards[1].init[0], (6..9).collect::<Vec<u64>>());
        assert_eq!(shards[2].init[0], (9..12).collect::<Vec<u64>>());
        // The gathered table stays whole and shared in every shard.
        for s in &shards {
            assert!(s.arrays[2].shared);
            assert!(s.validate().is_ok());
        }
    }

    #[test]
    fn weighted_remainders_go_to_the_largest_fractions() {
        // 10 iterations at weights [3, 1]: ideal shares 7.5 / 2.5; the
        // single remainder iteration goes to the larger fraction — both
        // are 0.5, so the tie breaks toward the lower index.
        let k = gather_kernel(10);
        let lens: Vec<u64> = k
            .shard_weighted(&[3, 1])
            .unwrap()
            .iter()
            .map(|s| s.loops[0].n)
            .collect();
        assert_eq!(lens, [8, 2]);
        // Unequal fractions: 10 @ [5, 2]: ideal 50/7 ≈ 7.14, 20/7 ≈
        // 2.86 — the remainder iteration belongs to shard 1.
        let lens: Vec<u64> = k
            .shard_weighted(&[5, 2])
            .unwrap()
            .iter()
            .map(|s| s.loops[0].n)
            .collect();
        assert_eq!(lens, [7, 3]);
    }

    #[test]
    fn uniform_weights_reproduce_plain_shard() {
        for n in [1usize, 2, 3, 5] {
            let k = gather_kernel(11);
            let plain = k.shard(n).unwrap();
            let weighted = k.shard_weighted(&vec![1; n]).unwrap();
            assert_eq!(plain.len(), weighted.len());
            for (p, w) in plain.iter().zip(&weighted) {
                assert_eq!(p.name, w.name);
                assert_eq!(p.loops[0].n, w.loops[0].n);
                assert_eq!(p.init, w.init);
            }
        }
    }

    #[test]
    fn starved_weighted_shards_are_rejected() {
        let k = gather_kernel(8);
        // A zero weight starves its shard outright.
        assert_eq!(
            k.shard_weighted(&[1, 0]).unwrap_err(),
            ShardError::TooManyShards {
                iterations: 8,
                shards: 2
            }
        );
        // So does a weight too small for its proportional share to
        // round up to one iteration.
        assert_eq!(
            k.shard_weighted(&[100, 1, 1]).unwrap_err(),
            ShardError::TooManyShards {
                iterations: 8,
                shards: 3
            }
        );
        // All-zero weights have no proportions at all.
        assert!(k.shard_weighted(&[0, 0]).is_err());
    }

    #[test]
    fn uneven_loops_outrank_starvation_in_weighted_errors() {
        // Two loops with different trip counts: unshardable however
        // the weights fall — even when the weights would also starve a
        // shard, the structural error wins (the precedence `shard`
        // always had).
        let mut kb = KernelBuilder::new("uneven");
        let a = kb.array_i64("a", 8);
        kb.begin_loop(4);
        let ra = kb.ref_affine(a, 1, 0);
        kb.stmt(ra, Expr::Ivar);
        kb.end_loop();
        kb.begin_loop(8);
        let ra = kb.ref_affine(a, 1, 0);
        kb.stmt(ra, Expr::Ivar);
        kb.end_loop();
        let k = kb.build().unwrap();
        assert_eq!(k.shard(5).unwrap_err(), ShardError::UnevenLoops);
        assert_eq!(
            k.shard_weighted(&[100, 1, 1]).unwrap_err(),
            ShardError::UnevenLoops
        );
    }

    #[test]
    fn extreme_weights_do_not_overflow() {
        // u64::MAX weights must not wrap the apportionment arithmetic:
        // the starved shard is reported as an error, never a panic or a
        // silently wrong split.
        let k = gather_kernel(12);
        assert_eq!(
            k.shard_weighted(&[u64::MAX, 1]).unwrap_err(),
            ShardError::TooManyShards {
                iterations: 12,
                shards: 2
            }
        );
        // Equal extreme weights still split evenly.
        let lens: Vec<u64> = k
            .shard_weighted(&[u64::MAX, u64::MAX])
            .unwrap()
            .iter()
            .map(|s| s.loops[0].n)
            .collect();
        assert_eq!(lens, [6, 6]);
    }

    #[test]
    fn shard_error_cases() {
        let empty = Kernel::default();
        assert_eq!(empty.shard(2).unwrap_err(), ShardError::NoLoops);

        let mut kb = KernelBuilder::new("tiny");
        let a = kb.array_i64("a", 2);
        kb.begin_loop(2);
        let ra = kb.ref_affine(a, 1, 0);
        kb.stmt(ra, Expr::Ivar);
        kb.end_loop();
        let k = kb.build().unwrap();
        assert_eq!(
            k.shard(5).unwrap_err(),
            ShardError::TooManyShards {
                iterations: 2,
                shards: 5
            }
        );
        assert_eq!(k.shard(1).unwrap().len(), 1);
    }
}
