//! Core activity statistics.

use hsim_isa::Phase;
use hsim_mem::Level;

/// Per-run statistics of the core pipeline. Everything the energy model
/// and the experiment harness need is counted here.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Idle cycles fast-forwarded in bulk by the event-horizon scheduler
    /// (included in `cycles`; 0 when `CoreConfig::lockstep` is set).
    pub skipped_cycles: u64,
    /// Instructions fetched into the fetch queue.
    pub fetched: u64,
    /// Instructions dispatched (renamed + functionally executed).
    pub dispatched: u64,
    /// Instructions issued to functional units.
    pub issued: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed conditional branches.
    pub branches: u64,
    /// Committed FP operations.
    pub fp_ops: u64,
    /// Committed guarded memory instructions.
    pub guarded: u64,
    /// Committed oracle-routed memory instructions.
    pub oracle_routed: u64,
    /// Mispredictions (direction, target or return address).
    pub mispredicts: u64,
    /// Fetch bubbles caused by BTB misses on predicted-taken branches.
    pub btb_bubbles: u64,
    /// Loads served by store-to-load forwarding.
    pub lsq_forwards: u64,
    /// Stores whose cache access was collapsed with the preceding
    /// same-address store at commit (the double-store optimization).
    pub collapsed_stores: u64,
    /// Issue slots re-executed after load misses (energy model input).
    pub replay_issues: u64,
    /// Guarded accesses that stalled on an unset presence bit.
    pub presence_stalls: u64,
    /// Sum of load latencies (for AMAT) over `loads_timed`.
    pub load_latency_sum: u64,
    /// Loads with a timed memory access (excludes forwarded loads).
    pub loads_timed: u64,
    /// Loads served per level: [L1, L2, L3, DRAM, LM, forward].
    pub served: [u64; 6],
    /// Cycles attributed per execution phase, indexed by [`phase_index`].
    pub phase_cycles: [u64; 4],
    /// Cycles dispatch stalled on a full ROB.
    pub rob_full_stalls: u64,
    /// Cycles fetch was stalled (redirects, I-cache misses).
    pub fetch_stall_cycles: u64,
}

/// Dense index for [`Phase`] used by `phase_cycles`.
pub fn phase_index(p: Phase) -> usize {
    match p {
        Phase::Other => 0,
        Phase::Control => 1,
        Phase::Synch => 2,
        Phase::Work => 3,
    }
}

/// Dense index for serving [`Level`] used by `served`.
pub fn level_index(l: Level) -> usize {
    match l {
        Level::L1 => 0,
        Level::L2 => 1,
        Level::L3 => 2,
        Level::Dram => 3,
        Level::Lm => 4,
        Level::Forward | Level::Mmio => 5,
    }
}

impl CoreStats {
    /// Average memory access time over timed loads, in cycles.
    pub fn amat(&self) -> f64 {
        if self.loads_timed == 0 {
            0.0
        } else {
            self.load_latency_sum as f64 / self.loads_timed as f64
        }
    }

    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Cycles spent in a phase.
    pub fn phase(&self, p: Phase) -> u64 {
        self.phase_cycles[phase_index(p)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = CoreStats::default();
        assert_eq!(s.amat(), 0.0);
        assert_eq!(s.ipc(), 0.0);
        s.cycles = 100;
        s.committed = 250;
        s.load_latency_sum = 60;
        s.loads_timed = 20;
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.amat() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn phase_indices_are_dense_and_distinct() {
        let idxs: Vec<usize> = Phase::ALL.iter().map(|&p| phase_index(p)).collect();
        let mut sorted = idxs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        assert!(sorted.iter().all(|&i| i < 4));
    }

    #[test]
    fn level_indices_cover_array() {
        for l in [
            Level::L1,
            Level::L2,
            Level::L3,
            Level::Dram,
            Level::Lm,
            Level::Forward,
            Level::Mmio,
        ] {
            assert!(level_index(l) < 6);
        }
    }
}
