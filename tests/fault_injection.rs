//! Fault injection and recovery: the robustness contracts.
//!
//! The fault plan ([`FaultConfig`]) must be a *pure timing
//! perturbation*, deterministic in its seed:
//!
//! 1. **Timing-only** — final memory images, committed instruction
//!    counts and coherence cleanliness are identical at any fault rate;
//!    injected DRAM errors, DMA timeouts and directory NACKs only move
//!    cycles around.
//! 2. **Skip-invisible** — the event-horizon scheduler and the naive
//!    per-cycle loop agree on every observable *with faults injected*:
//!    every injected delay lands inside a backside horizon.
//! 3. **Zero-rate transparency** — `FaultConfig::none()` (with any
//!    seed) is bit-identical to a machine with no plan at all.
//! 4. **Deterministic** — equal seeds replay equal fault sequences,
//!    regardless of host threading (clustered runs included).
//!
//! Plus the host-level degradation contracts: an injected cluster-
//! thread panic terminates with a structured [`ClusterFailure::Panic`]
//! (never a barrier hang) carrying the surviving clusters' reports, and
//! the epoch watchdog bounds a wedged run.

use hsim::cluster::{ClusterConfig, ClusterTopology};
use hsim::compiler::compile;
use hsim::experiments::MultiRunError;
use hsim::machine::MultiMachine;
use hsim::prelude::*;
use hsim_workloads::nas;
use proptest::prelude::*;

/// Full-report equality, bit for bit: core stats (skip counters
/// included), every backside counter, the recovery counters and the
/// energy bits.
fn assert_reports_identical(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.core, b.core, "{what}: core stats");
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.skipped_cycles, b.skipped_cycles, "{what}: skipped");
    assert_eq!(a.committed, b.committed, "{what}: committed");
    assert_eq!(a.amat.to_bits(), b.amat.to_bits(), "{what}: AMAT");
    assert_eq!(a.l1_accesses, b.l1_accesses, "{what}: L1");
    assert_eq!(a.l2_accesses, b.l2_accesses, "{what}: L2");
    assert_eq!(a.l3_accesses, b.l3_accesses, "{what}: L3");
    assert_eq!(a.lm_accesses, b.lm_accesses, "{what}: LM");
    assert_eq!(a.bus_requests, b.bus_requests, "{what}: bus requests");
    assert_eq!(a.bus_wait_cycles, b.bus_wait_cycles, "{what}: bus waits");
    assert_eq!(a.dram_reads, b.dram_reads, "{what}: DRAM reads");
    assert_eq!(a.dram_writes, b.dram_writes, "{what}: DRAM writes");
    assert_eq!(a.dram_row_hits, b.dram_row_hits, "{what}: row hits");
    assert_eq!(a.ecc_retries, b.ecc_retries, "{what}: ECC retries");
    assert_eq!(a.dma_retries, b.dma_retries, "{what}: DMA retries");
    assert_eq!(a.dir_nacks, b.dir_nacks, "{what}: dir NACKs");
    assert_eq!(a.escalations, b.escalations, "{what}: escalations");
    assert_eq!(
        a.energy_total().to_bits(),
        b.energy_total().to_bits(),
        "{what}: energy"
    );
}

/// A random but well-formed kernel: 1-2 arrays, one loop with a mix of
/// strided read-modify-writes, scalar accumulates, indirect scatters
/// and copies — enough aliasing variety to exercise guarded accesses,
/// DMA traffic and the backside under faults.
fn arb_kernel() -> impl Strategy<Value = Kernel> {
    (
        2u64..300,                           // n
        1usize..3,                           // value arrays
        prop::collection::vec(0u8..4, 1..4), // statement shapes
        any::<u64>(),                        // data seed
    )
        .prop_map(|(n, n_arrays, shapes, seed)| {
            let mut kb = KernelBuilder::new("fault-prop");
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let arrays: Vec<_> = (0..n_arrays)
                .map(|k| {
                    let init: Vec<i64> = (0..n + 2).map(|_| (next() % 1000) as i64).collect();
                    kb.array_i64_init(&format!("a{k}"), &init)
                })
                .collect();
            let idx_init: Vec<i64> = (0..n).map(|_| (next() % n) as i64).collect();
            let idx = kb.array_i64_init("idx", &idx_init);
            let scal = kb.array_i64_init("s", &[3, 5]);
            kb.begin_loop(n);
            let ridx = kb.ref_affine(idx, 1, 0);
            for (si, shape) in shapes.iter().enumerate() {
                let a = arrays[si % arrays.len()];
                match shape {
                    0 => {
                        let r0 = kb.ref_affine(a, 1, 0);
                        let r1 = kb.ref_affine(a, 1, (si as i64 % 3).min(2));
                        kb.stmt(r1, Expr::add(Expr::Ref(r0), Expr::ConstI(1)));
                    }
                    1 => {
                        let r0 = kb.ref_affine(a, 1, 0);
                        let rs = kb.ref_affine(scal, 0, 0);
                        kb.stmt(rs, Expr::add(Expr::Ref(rs), Expr::Ref(r0)));
                    }
                    2 => {
                        let rg = kb.ref_indirect(arrays[0], ridx, 0);
                        kb.stmt(rg, Expr::add(Expr::Ref(rg), Expr::ConstI(2)));
                    }
                    _ => {
                        let r0 = kb.ref_affine(arrays[(si + 1) % arrays.len()], 1, 0);
                        let r1 = kb.ref_affine(a, 1, 0);
                        kb.stmt(r1, Expr::sub(Expr::Ref(r0), Expr::ConstI(1)));
                    }
                }
            }
            kb.end_loop();
            kb.build().expect("generated kernel must validate")
        })
}

/// Final array images, indexed `[shard][array][element]`.
type Images = Vec<Vec<Vec<u64>>>;

/// Shards `kernel` over `n` cores under a fault plan and coherence mode
/// and returns (final images, report); `None` when it does not shard.
fn run_multi(
    kernel: &Kernel,
    n: usize,
    fault: FaultConfig,
    cm: CoherenceMode,
) -> Option<(Images, MultiRunReport)> {
    let shards = kernel.shard(n).ok()?;
    let cfg = MachineConfig::for_mode(SysMode::HybridCoherent)
        .with_coherence(cm)
        .with_faults(fault);
    let compiled: Vec<_> = shards
        .iter()
        .map(|s| (compile(s, cfg.mode.codegen()), s.clone()))
        .collect();
    let mut m = MultiMachine::for_kernels(cfg, &compiled);
    m.run().expect("fault runs must still complete");
    let images = m
        .tiles
        .iter()
        .zip(&compiled)
        .map(|(tile, (ck, shard))| {
            (0..shard.arrays.len())
                .map(|id| tile.read_array(ck, shard, id))
                .collect()
        })
        .collect();
    let cks: Vec<_> = compiled.iter().map(|(ck, _)| ck.clone()).collect();
    let report = MultiRunReport::collect(&m, &cks);
    Some((images, report))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Contract 2: cycle skipping stays invisible with faults injected —
    /// every injected delay registers in the event horizons, so the
    /// skipping and lockstep machines agree on every observable,
    /// recovery counters included.
    #[test]
    fn cycle_skipping_is_invisible_under_faults(
        kernel in arb_kernel(),
        seed in any::<u64>(),
        rate_pct in 0u32..61,
    ) {
        let fault = FaultConfig::uniform(seed, rate_pct as f64 / 100.0);
        let cfg = MachineConfig::for_mode(SysMode::HybridCoherent).with_faults(fault);
        let skip = RunSpec::new(&kernel).config(cfg.clone()).run().map(RunOutcome::into_single).unwrap();
        let lock = RunSpec::new(&kernel).config(cfg.with_lockstep()).run().map(RunOutcome::into_single).unwrap();
        prop_assert_eq!(lock.skipped_cycles, 0);
        let mut a = skip.core.clone();
        a.skipped_cycles = 0;
        prop_assert_eq!(&a, &lock.core, "core stats diverged under faults");
        prop_assert_eq!(skip.cycles, lock.cycles);
        prop_assert_eq!(skip.bus_wait_cycles, lock.bus_wait_cycles);
        prop_assert_eq!(skip.dram_reads, lock.dram_reads);
        prop_assert_eq!(skip.ecc_retries, lock.ecc_retries);
        prop_assert_eq!(skip.dma_retries, lock.dma_retries);
        prop_assert_eq!(skip.dir_nacks, lock.dir_nacks);
        prop_assert_eq!(skip.escalations, lock.escalations);
    }

    /// Contract 1: the fault rate never changes architectural state —
    /// final memory images and committed instruction counts match the
    /// fault-free run at any rate, under every coherence mode (the
    /// `Replicate` baseline and all four directory protocols).
    #[test]
    fn fault_rate_never_changes_architectural_state(
        kernel in arb_kernel(),
        seed in any::<u64>(),
        rate_pct in 1u32..61,
        mode_idx in 0usize..CoherenceMode::ALL.len(),
    ) {
        let cm = CoherenceMode::ALL[mode_idx];
        let Some((clean_img, clean)) = run_multi(&kernel, 2, FaultConfig::none(), cm) else {
            return Ok(());
        };
        let fault = FaultConfig::uniform(seed, rate_pct as f64 / 100.0);
        let (fault_img, faulted) =
            run_multi(&kernel, 2, fault, cm).expect("shardability cannot depend on faults");
        prop_assert_eq!(clean_img, fault_img, "memory images diverged under faults");
        prop_assert_eq!(
            clean.total_committed(),
            faulted.total_committed(),
            "committed work diverged under faults"
        );
    }

    /// Contract 4, clustered: under a fault plan, the threaded cluster
    /// driver is bit-identical to the serial oracle for any topology —
    /// fault draws depend on simulated order only, never on host
    /// scheduling.
    #[test]
    fn clustered_fault_runs_are_host_schedule_invariant(
        kernel in arb_kernel(),
        clusters in 1usize..3,
        per in 1usize..3,
        seed in any::<u64>(),
        rate_pct in 1u32..51,
    ) {
        let topo = ClusterTopology::new(clusters, per);
        let fault = FaultConfig::uniform(seed, rate_pct as f64 / 100.0);
        let run = |serial: bool| {
            let mut cluster = ClusterConfig::new(topo);
            if serial {
                cluster = cluster.serial();
            }
            let cfg = MachineConfig::for_mode(SysMode::HybridCoherent)
                .with_faults(fault.clone());
            match RunSpec::new(&kernel).clustered(&cluster).config(cfg).run().map(RunOutcome::into_clusters) {
                Ok(r) => Some(r),
                Err(MultiRunError::Shard(_)) => None,
                Err(e) => panic!("fault run failed: {e}"),
            }
        };
        let Some(serial) = run(true) else { return Ok(()); };
        let threaded = run(false).expect("shardability cannot depend on threading");
        prop_assert_eq!(serial.makespan, threaded.makespan, "makespan");
        prop_assert_eq!(serial.epochs, threaded.epochs, "epochs");
        prop_assert_eq!(serial.total_ecc_retries(), threaded.total_ecc_retries());
        prop_assert_eq!(serial.total_dma_retries(), threaded.total_dma_retries());
        prop_assert_eq!(serial.total_dir_nacks(), threaded.total_dir_nacks());
        prop_assert_eq!(serial.total_escalations(), threaded.total_escalations());
        for (ca, cb) in serial.per_cluster.iter().zip(&threaded.per_cluster) {
            for (ra, rb) in ca.per_core.iter().zip(&cb.per_core) {
                prop_assert_eq!(&ra.core, &rb.core, "core stats diverged across drivers");
                prop_assert_eq!(ra.ecc_retries, rb.ecc_retries);
                prop_assert_eq!(ra.dma_retries, rb.dma_retries);
                prop_assert_eq!(ra.dir_nacks, rb.dir_nacks);
            }
        }
    }
}

/// Contract 3: a zero-rate plan — regardless of its seed — is
/// bit-identical to the no-plan default, every observable included.
#[test]
fn zero_rate_plan_is_bit_identical_to_no_plan() {
    for kernel in nas::all_nas(Scale::Test).iter().take(3) {
        let base = MachineConfig::for_mode(SysMode::HybridCoherent);
        let plain = RunSpec::new(kernel)
            .config(base.clone())
            .run()
            .map(RunOutcome::into_single)
            .expect("plain run");
        let seeded_zero = base.with_faults(FaultConfig {
            seed: 0xDEAD_BEEF,
            ..FaultConfig::none()
        });
        let zeroed = RunSpec::new(kernel)
            .config(seeded_zero)
            .run()
            .map(RunOutcome::into_single)
            .expect("zero-rate run");
        assert_reports_identical(&plain, &zeroed, &kernel.name);
        assert_eq!(zeroed.ecc_retries, 0, "{}: no injections", kernel.name);
        assert_eq!(zeroed.dma_retries, 0, "{}: no injections", kernel.name);
        assert_eq!(zeroed.dir_nacks, 0, "{}: no injections", kernel.name);
        assert_eq!(zeroed.escalations, 0, "{}: no injections", kernel.name);
    }
}

/// Contract 4, flat: equal seeds replay equal fault sequences — two
/// runs of the same plan are bit-identical, and a different seed moves
/// timing without touching architectural counters.
#[test]
fn fault_runs_are_deterministic_per_seed() {
    let kernel = &nas::all_nas(Scale::Test)[0];
    let cfg = |seed: u64| {
        MachineConfig::for_mode(SysMode::HybridCoherent)
            .with_faults(FaultConfig::uniform(seed, 0.3))
    };
    let a = RunSpec::new(kernel)
        .config(cfg(7))
        .run()
        .map(RunOutcome::into_single)
        .expect("run a");
    let b = RunSpec::new(kernel)
        .config(cfg(7))
        .run()
        .map(RunOutcome::into_single)
        .expect("run b");
    assert_reports_identical(&a, &b, "same seed");
    assert!(
        a.ecc_retries + a.dma_retries + a.dir_nacks > 0,
        "rate 0.3 must inject something"
    );
    let c = RunSpec::new(kernel)
        .config(cfg(8))
        .run()
        .map(RunOutcome::into_single)
        .expect("run c");
    assert_eq!(a.committed, c.committed, "seed is timing-only");
}

/// Saturated injection: at rate 1.0 every retry loop runs to its cap,
/// the DMA site escalates (counted, structured), and the run still
/// completes with the same architectural results — no livelock at the
/// pathological corner.
#[test]
fn saturated_fault_rate_recovers_and_escalates_without_hanging() {
    let kernel = &nas::all_nas(Scale::Test)[0];
    let clean = RunSpec::new(kernel)
        .config(MachineConfig::for_mode(SysMode::HybridCoherent))
        .run()
        .map(RunOutcome::into_single)
        .expect("clean run");
    let hot = RunSpec::new(kernel)
        .config(
            MachineConfig::for_mode(SysMode::HybridCoherent)
                .with_faults(FaultConfig::uniform(3, 1.0)),
        )
        .run()
        .map(RunOutcome::into_single)
        .expect("saturated run must terminate");
    assert_eq!(
        hot.committed, clean.committed,
        "architectural work identical"
    );
    assert!(hot.ecc_retries > 0, "every DRAM read pays ECC replays");
    assert!(
        hot.escalations > 0,
        "rate 1.0 DMA always exhausts its budget"
    );
    assert!(
        hot.cycles >= clean.cycles,
        "injected delays can only lengthen the run"
    );
}

/// The acceptance test for host-level degradation: an injected
/// cluster-thread panic terminates the run with a structured
/// [`ClusterFailure::Panic`] naming the cluster — no barrier hang — and
/// the surviving cluster's completed report rides along. The serial
/// oracle fails identically (ClusterError equality is failure-based).
#[test]
fn injected_cluster_panic_degrades_gracefully() {
    let kernel = nas::all_nas(Scale::Test)
        .into_iter()
        .find(|k| k.shard(2).is_ok())
        .expect("some NAS kernel shards 2 ways");
    let topo = ClusterTopology::new(2, 1);
    let mut errors = Vec::new();
    for serial in [false, true] {
        let mut cluster = ClusterConfig::new(topo);
        cluster.inject_panic = Some(0);
        if serial {
            cluster = cluster.serial();
        }
        let cfg = MachineConfig::for_mode(SysMode::HybridCoherent);
        let err = RunSpec::new(&kernel)
            .clustered(&cluster)
            .config(cfg)
            .run()
            .map(RunOutcome::into_clusters)
            .expect_err("a panicking cluster must fail the run");
        let MultiRunError::Cluster(e) = err else {
            panic!("expected a structured cluster error, got {err}");
        };
        assert_eq!(e.failures.len(), 1, "exactly the injected cluster fails");
        let (c, cause) = &e.failures[0];
        assert_eq!(*c, 0, "the injected cluster is named");
        let ClusterFailure::Panic(msg) = cause else {
            panic!("expected a contained panic, got {cause}");
        };
        assert!(msg.contains("injected"), "panic payload survives: {msg}");
        assert_eq!(e.completed.len(), 1, "the surviving cluster completed");
        let (survivor, report) = &e.completed[0];
        assert_eq!(*survivor, 1);
        assert!(
            report.total_committed() > 0,
            "partial results carry real work"
        );
        assert!(
            e.to_string().contains("cluster 0"),
            "display names the cluster"
        );
        errors.push(e);
    }
    assert_eq!(errors[0], errors[1], "threaded and serial fail identically");
}

/// The epoch watchdog bounds a run that outlives its epoch budget:
/// instead of barriering forever, still-running clusters fail with
/// [`ClusterFailure::Watchdog`] and the run terminates structurally.
#[test]
fn epoch_watchdog_bounds_the_run() {
    let kernel = nas::all_nas(Scale::Test)
        .into_iter()
        .find(|k| k.shard(2).is_ok())
        .expect("some NAS kernel shards 2 ways");
    let topo = ClusterTopology::new(2, 1);
    for serial in [false, true] {
        let mut cluster = ClusterConfig::new(topo);
        cluster.max_epochs = Some(1);
        if serial {
            cluster = cluster.serial();
        }
        let cfg = MachineConfig::for_mode(SysMode::HybridCoherent);
        match RunSpec::new(&kernel)
            .clustered(&cluster)
            .config(cfg)
            .run()
            .map(RunOutcome::into_clusters)
        {
            // NAS Test kernels run well past one 500-cycle epoch, so the
            // watchdog must fire; tolerate a kernel that halts inside the
            // first epoch anyway rather than encode its runtime here.
            Ok(r) => assert_eq!(r.epochs, 1, "completed within the bound"),
            Err(MultiRunError::Cluster(e)) => {
                assert!(!e.failures.is_empty());
                for (c, cause) in &e.failures {
                    assert!(
                        matches!(cause, ClusterFailure::Watchdog { epochs: 1 }),
                        "cluster {c}: expected the watchdog, got {cause}"
                    );
                }
            }
            Err(e) => panic!("expected a structured cluster error, got {e}"),
        }
    }
}
