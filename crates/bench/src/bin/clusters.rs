//! Hierarchical-cluster sweep: channels × clusters × cores per cluster.
//!
//! For every NAS kernel and each (clusters, cores_per_cluster,
//! dram_channels) point, runs the epoch-synchronized cluster machine
//! twice — serially (the lock-step oracle, `ClusterConfig::serial`) and
//! with one host thread per cluster — asserts the two runs are
//! **bit-identical** (makespan, committed work, skipped cycles, DRAM
//! traffic, epoch count), and reports both wall-clocks. The simulated
//! side of the sweep shows where extra DRAM channels un-saturate the
//! bandwidth-bound kernels (CG, FT); the host side shows the threading
//! speedup, which tracks `host_parallelism` (on a single-CPU host the
//! threaded run degenerates to ~1x — the sweep records the host's
//! parallelism so the artifact is interpretable either way).
//!
//! Cross-cluster shared arrays fall back to per-cluster replication in
//! v1; the `clufall` column counts them — cross-cluster sharing is
//! never silently free. Results go to `BENCH_clusters.json`.
//!
//! ```text
//! cargo run --release -p hsim-bench --bin clusters [--test-scale|--smoke]
//! ```
//!
//! `--smoke` runs a minimal grid (test scale, CG + FT, 1x2/2x1/2x2
//! topologies, 1/2 channels): the CI guard.

use hsim::cluster::{ClusterConfig, ClusterTopology};
use hsim::prelude::*;
use hsim_bench::{jstr, kernels, scale_from_args, SweepJson, Table};
use std::time::Instant;

struct Row {
    kernel: String,
    clusters: usize,
    cores_per_cluster: usize,
    channels: usize,
    makespan: u64,
    epochs: u64,
    committed: u64,
    skipped_cycles: u64,
    dram_reads: u64,
    cluster_fallbacks: u64,
    host_secs_serial: f64,
    host_secs_threaded: f64,
}

impl Row {
    fn thread_speedup(&self) -> f64 {
        self.host_secs_serial / self.host_secs_threaded.max(1e-9)
    }
}

/// Repetitions per configuration; the minimum wall-clock is reported
/// (deterministic runs, so the minimum is the cleanest host-cost
/// estimate).
const REPS: usize = 3;

fn config_for(channels: usize) -> MachineConfig {
    let mut cfg = MachineConfig::for_mode(SysMode::HybridCoherent);
    cfg.mem.dram_channels = channels;
    cfg
}

/// Runs one point `REPS` times in the given threading mode and returns
/// (report of the last run, best host seconds), or `None` when the
/// kernel does not shard to this topology.
fn run_point(
    kernel: &hsim_compiler::Kernel,
    topo: ClusterTopology,
    channels: usize,
    serial: bool,
) -> Option<(hsim::ClusterRunReport, f64)> {
    let mut cluster = ClusterConfig::new(topo);
    if serial {
        cluster = cluster.serial();
    }
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let report = match RunSpec::new(kernel)
            .clustered(&cluster)
            .config(config_for(channels))
            .run()
        {
            Ok(out) => out.into_clusters(),
            Err(MultiRunError::Shard(_)) => return None,
            Err(e) => panic!("simulation failed: {e}"),
        };
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(report);
    }
    Some((last.expect("REPS >= 1"), best))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke {
        Scale::Test
    } else {
        scale_from_args()
    };
    let mut kernels = kernels(scale);
    let topologies: &[(usize, usize)] = if smoke {
        &[(1, 2), (2, 1), (2, 2)]
    } else {
        &[(1, 4), (2, 2), (2, 4), (4, 2), (4, 4)]
    };
    let channel_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    if smoke {
        // The two bandwidth-bound kernels (the channel-scaling cases).
        kernels.retain(|k| k.name == "CG" || k.name == "FT");
    }
    let host_parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut rows = Vec::new();
    for kernel in &kernels {
        for &(clusters, per) in topologies {
            let topo = ClusterTopology::new(clusters, per);
            for &channels in channel_counts {
                let Some((serial_report, host_secs_serial)) =
                    run_point(kernel, topo, channels, true)
                else {
                    println!(
                        "note: {} does not shard to {}x{}; skipped",
                        kernel.name, clusters, per
                    );
                    continue;
                };
                let (threaded, host_secs_threaded) = run_point(kernel, topo, channels, false)
                    .expect("shardability cannot depend on threading");

                // The acceptance invariant: the threaded run is
                // bit-identical to the serial oracle, skip counters
                // included.
                assert_eq!(
                    serial_report.makespan, threaded.makespan,
                    "{} {}x{} ch{}: threading changed the makespan",
                    kernel.name, clusters, per, channels
                );
                assert_eq!(serial_report.epochs, threaded.epochs);
                assert_eq!(serial_report.total_committed(), threaded.total_committed());
                assert_eq!(
                    serial_report.total_skipped_cycles(),
                    threaded.total_skipped_cycles()
                );
                assert_eq!(
                    serial_report.total_dram_reads(),
                    threaded.total_dram_reads()
                );

                rows.push(Row {
                    kernel: kernel.name.clone(),
                    clusters,
                    cores_per_cluster: per,
                    channels,
                    makespan: threaded.makespan,
                    epochs: threaded.epochs,
                    committed: threaded.total_committed(),
                    skipped_cycles: threaded.total_skipped_cycles(),
                    dram_reads: threaded.total_dram_reads(),
                    cluster_fallbacks: threaded.cross_cluster_fallbacks,
                    host_secs_serial,
                    host_secs_threaded,
                });
            }
        }
    }

    println!("CLUSTERS: channels x clusters x cores sweep ({scale:?} scale)");
    println!(
        "(threaded runs asserted bit-identical to the serial oracle; \
         host parallelism = {host_parallelism})"
    );
    println!();
    let t = Table::new(&[6, 5, 5, 3, 10, 7, 9, 8, 9, 9, 8]);
    t.row(
        &[
            "kernel", "clus", "cores", "ch", "makespan", "epochs", "dramR", "clufall", "ser(s)",
            "thr(s)", "speedup",
        ]
        .map(String::from),
    );
    t.sep();
    for r in &rows {
        t.row(&[
            r.kernel.clone(),
            format!("{}", r.clusters),
            format!("{}", r.cores_per_cluster),
            format!("{}", r.channels),
            format!("{}", r.makespan),
            format!("{}", r.epochs),
            format!("{}", r.dram_reads),
            format!("{}", r.cluster_fallbacks),
            format!("{:.3}", r.host_secs_serial),
            format!("{:.3}", r.host_secs_threaded),
            format!("{:.2}x", r.thread_speedup()),
        ]);
    }
    println!();
    let cluster_fallbacks: u64 = rows.iter().map(|r| r.cluster_fallbacks).sum();
    if cluster_fallbacks > 0 {
        println!(
            "note: clufall counts shared-marked array(s) replicated per \
             cluster because their sharers span clusters (v1 fallback) — \
             cross-cluster sharing is counted, never silently free."
        );
        println!();
    }

    // Channel scaling: for the bandwidth-bound kernels, report where the
    // second channel stops helping (the un-saturation point).
    for name in ["CG", "FT"] {
        let points: Vec<&Row> = rows
            .iter()
            .filter(|r| r.kernel == name && r.clusters * r.cores_per_cluster >= 4)
            .collect();
        for w in points.windows(2) {
            if w[0].kernel == w[1].kernel
                && w[0].clusters == w[1].clusters
                && w[0].cores_per_cluster == w[1].cores_per_cluster
                && w[1].channels > w[0].channels
            {
                let gain = w[0].makespan as f64 / w[1].makespan.max(1) as f64;
                println!(
                    "{} {}x{}: {} -> {} channels shrinks makespan {:.3}x",
                    name, w[0].clusters, w[0].cores_per_cluster, w[0].channels, w[1].channels, gain
                );
            }
        }
    }

    let mut json = SweepJson::new(scale)
        .meta("mode", jstr("HybridCoherent"))
        .meta("host_parallelism", host_parallelism);
    json.begin_rows("rows");
    for r in &rows {
        json.row(&[
            ("kernel", jstr(&r.kernel)),
            ("clusters", format!("{}", r.clusters)),
            ("cores_per_cluster", format!("{}", r.cores_per_cluster)),
            ("dram_channels", format!("{}", r.channels)),
            ("makespan", format!("{}", r.makespan)),
            ("epochs", format!("{}", r.epochs)),
            ("committed", format!("{}", r.committed)),
            ("skipped_cycles", format!("{}", r.skipped_cycles)),
            ("dram_reads", format!("{}", r.dram_reads)),
            (
                "cross_cluster_fallbacks",
                format!("{}", r.cluster_fallbacks),
            ),
            ("host_seconds_serial", format!("{:.4}", r.host_secs_serial)),
            (
                "host_seconds_threaded",
                format!("{:.4}", r.host_secs_threaded),
            ),
            ("thread_speedup", format!("{:.3}", r.thread_speedup())),
        ]);
    }
    json.write("BENCH_clusters.json");
}
