//! DMA controller (DMAC) timing model.
//!
//! The DMAC offers the three operations of §2.1: `dma-get` (SM → LM),
//! `dma-put` (LM → SM) and `dma-synch` (wait for tagged transfers).
//! Software triggers them with memory instructions; the machine routes the
//! ISA's DMA pseudo-instructions here. Transfers are **coherent with the
//! system memory**: every bus request of a `dma-get` snoops the cache
//! hierarchy for the line, and every `dma-put` bus request invalidates
//! matching cache lines — the hierarchy performs those lookups; this type
//! models command timing and tag bookkeeping.
//!
//! Timing model: a single engine processes transfers in issue order and
//! is *pipelined*: each command pays a programming/setup latency and a
//! first-data latency (DRAM access), but the engine accepts the next
//! command as soon as the previous one finishes streaming, so the
//! first-data latencies of back-to-back transfers overlap — the behavior
//! of a command-queue DMA engine like the Cell's MFC.
//!
//! ## Invariants
//!
//! * **Horizon monotonicity** — [`Dmac::next_event_after`] reports the
//!   earliest engine-free or tag-landing event strictly after `now`.
//!   All engine state changes happen synchronously inside
//!   `issue`/`synch` calls, so between calls the horizon only moves
//!   forward; the event-horizon cycle skipper sleeps until it (a
//!   `dma-synch` wake-up is exactly such an event).
//! * **Channel accounting stays with the backside** — the DMAC times
//!   its own streaming; the DRAM *line counts* its transfers move are
//!   attributed per core by the shared backside (`note_dram_read` /
//!   `note_dram_write`), so DMA traffic partitions the channel totals
//!   like demand traffic does. DMA lines are deliberately not
//!   row-classified: block transfers stream whole rows, and their
//!   bandwidth cost is already modeled here.

/// DMA transfer direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmaOp {
    /// SM → LM (`dma-get`).
    Get,
    /// LM → SM (`dma-put`).
    Put,
}

/// Number of synchronization tags supported (the ISA encodes tags 0–7).
pub const NUM_TAGS: usize = 8;

/// DMAC configuration.
#[derive(Clone, Debug)]
pub struct DmaConfig {
    /// Cycles to program one command via the MMIO registers.
    pub setup_latency: u64,
    /// First-data latency (memory access before streaming starts).
    pub first_data_latency: u64,
    /// Streaming bandwidth in bytes per cycle.
    pub bytes_per_cycle: u64,
}

impl Default for DmaConfig {
    fn default() -> Self {
        DmaConfig {
            setup_latency: 10,
            first_data_latency: 100,
            bytes_per_cycle: 32,
        }
    }
}

/// DMA activity counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct DmaStats {
    /// `dma-get` commands issued.
    pub gets: u64,
    /// `dma-put` commands issued.
    pub puts: u64,
    /// `dma-synch` commands executed.
    pub synchs: u64,
    /// Bytes moved SM → LM.
    pub bytes_get: u64,
    /// Bytes moved LM → SM.
    pub bytes_put: u64,
    /// Cycles the engine spent transferring.
    pub busy_cycles: u64,
}

/// The DMA controller.
pub struct Dmac {
    /// Configuration.
    pub cfg: DmaConfig,
    /// Completion cycle of the last transfer issued per tag.
    tag_done_at: [u64; NUM_TAGS],
    /// When the single transfer engine becomes free.
    engine_free_at: u64,
    /// Activity counters.
    pub stats: DmaStats,
}

impl Dmac {
    /// Builds an idle DMAC.
    pub fn new(cfg: DmaConfig) -> Self {
        Dmac {
            cfg,
            tag_done_at: [0; NUM_TAGS],
            engine_free_at: 0,
            stats: DmaStats::default(),
        }
    }

    /// Issues a transfer at cycle `now`; returns its completion cycle.
    ///
    /// The functional copy is performed immediately by the machine (DMA
    /// transfers are coherent, and the program must `dma-synch` before
    /// touching the data); this method provides the completion time used
    /// by `dma-synch` and by the directory presence bits.
    pub fn issue(&mut self, op: DmaOp, bytes: u64, tag: u8, now: u64) -> u64 {
        let start = (now + self.cfg.setup_latency).max(self.engine_free_at);
        let stream = bytes.div_ceil(self.cfg.bytes_per_cycle.max(1));
        let done = start + self.cfg.first_data_latency + stream;
        // Pipelined engine: streaming of the next command may overlap the
        // first-data latency of this one.
        self.engine_free_at = start + stream;
        self.stats.busy_cycles += stream;
        let t = &mut self.tag_done_at[tag as usize % NUM_TAGS];
        *t = (*t).max(done);
        match op {
            DmaOp::Get => {
                self.stats.gets += 1;
                self.stats.bytes_get += bytes;
            }
            DmaOp::Put => {
                self.stats.puts += 1;
                self.stats.bytes_put += bytes;
            }
        }
        done
    }

    /// Cycle at which all transfers with `tag` issued so far complete.
    pub fn tag_done_at(&self, tag: u8) -> u64 {
        self.tag_done_at[tag as usize % NUM_TAGS]
    }

    /// Executes a `dma-synch` at `now`: returns the cycle when the wait
    /// ends (`now` if the tagged transfers already finished).
    pub fn synch(&mut self, tag: u8, now: u64) -> u64 {
        self.stats.synchs += 1;
        self.tag_done_at(tag).max(now)
    }

    /// True when every issued transfer has completed by `now`.
    pub fn idle_at(&self, now: u64) -> bool {
        self.engine_free_at <= now
    }

    /// The earliest DMA event strictly after `now` — the engine freeing
    /// up or a tagged transfer landing — if any: the DMAC contribution to
    /// the memory-side event horizon the cycle skipper must not jump
    /// past.
    pub fn next_event_after(&self, now: u64) -> Option<u64> {
        std::iter::once(self.engine_free_at)
            .chain(self.tag_done_at.iter().copied())
            .filter(|&t| t > now)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dmac() -> Dmac {
        Dmac::new(DmaConfig {
            setup_latency: 10,
            first_data_latency: 100,
            bytes_per_cycle: 16,
        })
    }

    #[test]
    fn single_transfer_timing() {
        let mut d = dmac();
        // 1024 bytes at 16 B/cycle = 64 cycles streaming.
        let done = d.issue(DmaOp::Get, 1024, 0, 0);
        assert_eq!(done, 10 + 100 + 64);
        assert_eq!(d.tag_done_at(0), done);
        assert_eq!(d.stats.gets, 1);
        assert_eq!(d.stats.bytes_get, 1024);
    }

    #[test]
    fn transfers_pipeline_on_engine() {
        let mut d = dmac();
        let a = d.issue(DmaOp::Get, 1024, 0, 0);
        let b = d.issue(DmaOp::Get, 1024, 0, 0);
        // The second transfer streams right after the first: it completes
        // one stream-time later, not one full latency later.
        assert_eq!(b, a + 64);
    }

    #[test]
    fn tags_track_independently() {
        let mut d = dmac();
        let a = d.issue(DmaOp::Get, 64, 0, 0);
        let b = d.issue(DmaOp::Put, 64, 1, 0);
        assert_eq!(d.tag_done_at(0), a);
        assert_eq!(d.tag_done_at(1), b);
        assert_eq!(d.synch(0, 0), a);
        assert_eq!(d.synch(1, 0), b);
        // Synch after completion returns `now`.
        assert_eq!(d.synch(0, b + 50), b + 50);
        assert_eq!(d.stats.synchs, 3);
    }

    #[test]
    fn idle_detection() {
        // "Idle" means the engine can accept a new command immediately;
        // with pipelining that happens once streaming ends, before the
        // in-flight data lands.
        let mut d = dmac();
        assert!(d.idle_at(0));
        let done = d.issue(DmaOp::Put, 256, 2, 5);
        let stream_end = 5 + 10 + 256u64.div_ceil(16);
        assert!(!d.idle_at(stream_end - 1));
        assert!(d.idle_at(stream_end));
        assert!(done > stream_end, "completion includes the data latency");
    }

    #[test]
    fn zero_byte_transfer_costs_setup_only() {
        let mut d = dmac();
        let done = d.issue(DmaOp::Get, 0, 0, 0);
        assert_eq!(done, 10 + 100);
    }
}
