//! Fault-injection sweep: fault rate × kernel degradation curves.
//!
//! For every NAS kernel and each uniform fault rate (all three sites —
//! DRAM ECC retries, DMA timeouts, directory NACKs — at the same
//! probability), runs a 4-core machine under a seeded [`FaultConfig`]
//! and reports the makespan degradation curve plus the recovery
//! counters. Two invariants are asserted at every point:
//!
//! - **Timing-only**: the committed-instruction total at every fault
//!   rate equals the fault-free total — faults perturb *when*, never
//!   *what*.
//! - **Determinism**: the run at each point is repeated with the same
//!   seed and every observable (makespan, skipped cycles, all four
//!   recovery counters) must be bit-identical; rate 0.0 must also
//!   bit-identically match a machine with no fault plan at all.
//!
//! Results go to `BENCH_faults.json`. Because the sweep is
//! deterministic end to end, CI additionally runs the binary twice with
//! the same seed and `cmp`s the two JSON artifacts byte for byte.
//!
//! ```text
//! cargo run --release -p hsim-bench --bin faults [--test-scale|--smoke]
//! ```
//!
//! `--smoke` runs a minimal grid (test scale, CG + IS, three rates):
//! the CI guard.

use hsim::experiments::MultiRunError;
use hsim::prelude::*;
use hsim_bench::{jstr, kernels, scale_from_args, SweepJson, Table};

/// Seed of every swept fault plan (CI replays the sweep with the same
/// seed and demands a byte-identical artifact).
const SEED: u64 = 0x5EED_FA17;

const CORES: usize = 4;

struct Row {
    kernel: String,
    rate: f64,
    makespan: u64,
    committed: u64,
    skipped_cycles: u64,
    ecc_retries: u64,
    dma_retries: u64,
    dir_nacks: u64,
    escalations: u64,
}

impl Row {
    fn degradation(&self, baseline: u64) -> f64 {
        self.makespan as f64 / baseline.max(1) as f64
    }
}

fn run_point(kernel: &hsim_compiler::Kernel, fault: FaultConfig) -> Option<MultiRunReport> {
    let cfg = MachineConfig::for_mode(SysMode::HybridCoherent).with_faults(fault);
    match RunSpec::new(kernel).cores(CORES).config(cfg).run() {
        Ok(out) => Some(out.into_multi()),
        Err(MultiRunError::Shard(_)) => None,
        Err(e) => panic!("simulation failed: {e}"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke {
        Scale::Test
    } else {
        scale_from_args()
    };
    let mut kernels = kernels(scale);
    let rates: &[f64] = if smoke {
        &[0.0, 0.01, 0.2]
    } else {
        &[0.0, 0.0001, 0.001, 0.01, 0.05, 0.2]
    };
    if smoke {
        // One bandwidth-bound kernel (DRAM/ECC pressure) and one
        // DMA-heavy kernel (timeout/backoff pressure).
        kernels.retain(|k| k.name == "CG" || k.name == "IS");
    }

    let mut rows = Vec::new();
    for kernel in &kernels {
        // The fault-free oracle: no plan object at all.
        let Some(clean) = run_point(kernel, FaultConfig::none()) else {
            println!(
                "note: {} does not shard to {CORES} cores; skipped",
                kernel.name
            );
            continue;
        };
        for &rate in rates {
            let fault = FaultConfig::uniform(SEED, rate);
            let report = run_point(kernel, fault.clone()).expect("shardability is fault-blind");
            let replay = run_point(kernel, fault).expect("shardability is fault-blind");

            // Determinism: same seed, same everything.
            assert_eq!(
                report.makespan, replay.makespan,
                "{} rate {rate}: replay changed the makespan",
                kernel.name
            );
            assert_eq!(report.total_skipped_cycles(), replay.total_skipped_cycles());
            assert_eq!(report.total_ecc_retries(), replay.total_ecc_retries());
            assert_eq!(report.total_dma_retries(), replay.total_dma_retries());
            assert_eq!(report.total_dir_nacks(), replay.total_dir_nacks());
            assert_eq!(report.total_escalations(), replay.total_escalations());

            // Timing-only: faults never change architectural progress.
            assert_eq!(
                report.total_committed(),
                clean.total_committed(),
                "{} rate {rate}: faults changed the committed-instruction total",
                kernel.name
            );
            if rate == 0.0 {
                // A zero-rate plan is bit-identical to no plan.
                assert_eq!(report.makespan, clean.makespan);
                assert_eq!(report.total_skipped_cycles(), clean.total_skipped_cycles());
                assert_eq!(report.total_ecc_retries(), 0);
            }

            rows.push(Row {
                kernel: kernel.name.clone(),
                rate,
                makespan: report.makespan,
                committed: report.total_committed(),
                skipped_cycles: report.total_skipped_cycles(),
                ecc_retries: report.total_ecc_retries(),
                dma_retries: report.total_dma_retries(),
                dir_nacks: report.total_dir_nacks(),
                escalations: report.total_escalations(),
            });
        }
    }

    println!("FAULTS: fault rate x kernel degradation sweep ({scale:?} scale)");
    println!(
        "(every point replayed with the same seed and asserted \
         bit-identical; committed totals asserted fault-invariant)"
    );
    println!();
    let t = Table::new(&[6, 7, 10, 9, 7, 7, 7, 5, 7]);
    t.row(
        &[
            "kernel", "rate", "makespan", "eccRetry", "dmaRtry", "dirNack", "escal", "degr",
            "skipped",
        ]
        .map(String::from),
    );
    t.sep();
    let mut baseline = 0u64;
    for r in &rows {
        if r.rate == 0.0 {
            baseline = r.makespan;
        }
        t.row(&[
            r.kernel.clone(),
            format!("{}", r.rate),
            format!("{}", r.makespan),
            format!("{}", r.ecc_retries),
            format!("{}", r.dma_retries),
            format!("{}", r.dir_nacks),
            format!("{}", r.escalations),
            format!("{:.3}x", r.degradation(baseline)),
            format!("{}", r.skipped_cycles),
        ]);
    }
    println!();
    println!(
        "note: degr is makespan relative to the kernel's rate-0 run; \
         escalations count DMA transfers that exhausted the retry \
         budget (completed, flagged) — recovery is paid in cycles, \
         never in lost work."
    );

    let mut json = SweepJson::new(scale)
        .meta("mode", jstr("HybridCoherent"))
        .meta("cores", CORES)
        .meta("seed", SEED);
    json.begin_rows("rows");
    for r in &rows {
        json.row(&[
            ("kernel", jstr(&r.kernel)),
            ("rate", format!("{}", r.rate)),
            ("makespan", format!("{}", r.makespan)),
            ("committed", format!("{}", r.committed)),
            ("skipped_cycles", format!("{}", r.skipped_cycles)),
            ("ecc_retries", format!("{}", r.ecc_retries)),
            ("dma_retries", format!("{}", r.dma_retries)),
            ("dir_nacks", format!("{}", r.dir_nacks)),
            ("escalations", format!("{}", r.escalations)),
        ]);
    }
    json.write("BENCH_faults.json");
}
