//! The simulated machine's virtual address map.
//!
//! The paper integrates the local memory by reserving a range of the
//! virtual address space that is direct-mapped to the LM's physical storage
//! (§2.1). A range check performed *before* any MMU action decides whether
//! an access is served by the LM (bypassing the TLB entirely) or by the
//! system memory (caches + DRAM). [`MemoryMap`] encapsulates that range
//! check plus the layout of the remaining segments.
//!
//! Layout (all regions are configurable; these are the defaults):
//!
//! ```text
//! 0x0000_0000_0000 .. +code     code segment (instructions, 8 B each)
//! 0x0000_1000_0000 .. +heap     data segment (arrays, workload data)
//! 0x7fff_0000_0000 .. +lm_size  local memory window  (TLB bypassed)
//! 0x7fff_f000_0000 .. +4 KiB    DMAC / directory MMIO registers
//! ```

/// A virtual/physical address in the simulated 64-bit machine.
pub type Addr = u64;

/// Default base of the code segment.
pub const CODE_BASE: Addr = 0x0000_0000_0000;
/// Default base of the data segment.
pub const DATA_BASE: Addr = 0x0000_1000_0000;
/// Default base of the local-memory window.
pub const LM_BASE: Addr = 0x7fff_0000_0000;
/// Default local-memory size: 32 KiB (Table 1).
pub const LM_SIZE: u64 = 32 * 1024;
/// Default base of the MMIO window holding the DMAC and directory registers.
pub const MMIO_BASE: Addr = 0x7fff_f000_0000;
/// Size of the MMIO window.
pub const MMIO_SIZE: u64 = 4096;
/// Byte size of one encoded instruction (used to map PCs to I-cache lines).
pub const INST_BYTES: u64 = 8;

/// Classification of a virtual address by the pre-MMU range check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// Served by the local memory; the MMU/TLB is bypassed.
    LocalMem,
    /// Non-cacheable MMIO registers (DMAC, directory configuration).
    Mmio,
    /// Everything else: system memory (cache hierarchy + DRAM).
    SysMem,
}

/// The address map of one simulated core.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemoryMap {
    /// Base virtual address of the local-memory window.
    pub lm_base: Addr,
    /// Size in bytes of the local memory.
    pub lm_size: u64,
    /// Base of the MMIO window.
    pub mmio_base: Addr,
    /// Size of the MMIO window.
    pub mmio_size: u64,
    /// Base of the code segment.
    pub code_base: Addr,
    /// Base of the data segment.
    pub data_base: Addr,
}

impl Default for MemoryMap {
    fn default() -> Self {
        MemoryMap {
            lm_base: LM_BASE,
            lm_size: LM_SIZE,
            mmio_base: MMIO_BASE,
            mmio_size: MMIO_SIZE,
            code_base: CODE_BASE,
            data_base: DATA_BASE,
        }
    }
}

impl MemoryMap {
    /// The pre-MMU range check of §2.1: classifies `addr` into the region
    /// that must serve it.
    #[inline]
    pub fn region(&self, addr: Addr) -> Region {
        if addr.wrapping_sub(self.lm_base) < self.lm_size {
            Region::LocalMem
        } else if addr.wrapping_sub(self.mmio_base) < self.mmio_size {
            Region::Mmio
        } else {
            Region::SysMem
        }
    }

    /// True when `addr` falls inside the local-memory window.
    #[inline]
    pub fn is_lm(&self, addr: Addr) -> bool {
        self.region(addr) == Region::LocalMem
    }

    /// Offset of `addr` within the LM, or `None` when outside the window.
    #[inline]
    pub fn lm_offset(&self, addr: Addr) -> Option<u64> {
        let off = addr.wrapping_sub(self.lm_base);
        (off < self.lm_size).then_some(off)
    }

    /// The virtual address of the `n`-th instruction of a program.
    #[inline]
    pub fn pc_addr(&self, pc: usize) -> Addr {
        self.code_base + pc as u64 * INST_BYTES
    }

    /// Checks that a `[addr, addr+len)` range lies entirely within the LM.
    pub fn lm_range_ok(&self, addr: Addr, len: u64) -> bool {
        match self.lm_offset(addr) {
            Some(off) => off + len <= self.lm_size,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_regions() {
        let m = MemoryMap::default();
        assert_eq!(m.region(DATA_BASE), Region::SysMem);
        assert_eq!(m.region(LM_BASE), Region::LocalMem);
        assert_eq!(m.region(LM_BASE + LM_SIZE - 1), Region::LocalMem);
        assert_eq!(m.region(LM_BASE + LM_SIZE), Region::SysMem);
        assert_eq!(m.region(MMIO_BASE), Region::Mmio);
        assert_eq!(m.region(MMIO_BASE + MMIO_SIZE), Region::SysMem);
        assert_eq!(m.region(0), Region::SysMem);
    }

    #[test]
    fn lm_offset_boundaries() {
        let m = MemoryMap::default();
        assert_eq!(m.lm_offset(LM_BASE), Some(0));
        assert_eq!(m.lm_offset(LM_BASE + 100), Some(100));
        assert_eq!(m.lm_offset(LM_BASE - 1), None);
        assert_eq!(m.lm_offset(LM_BASE + LM_SIZE), None);
    }

    #[test]
    fn lm_range_check() {
        let m = MemoryMap::default();
        assert!(m.lm_range_ok(LM_BASE, LM_SIZE));
        assert!(m.lm_range_ok(LM_BASE + 8, 16));
        assert!(!m.lm_range_ok(LM_BASE + 8, LM_SIZE));
        assert!(!m.lm_range_ok(DATA_BASE, 8));
    }

    #[test]
    fn pc_addresses_are_dense() {
        let m = MemoryMap::default();
        assert_eq!(m.pc_addr(0), CODE_BASE);
        assert_eq!(m.pc_addr(1) - m.pc_addr(0), INST_BYTES);
    }

    #[test]
    fn region_check_handles_wraparound() {
        // An address far below lm_base must not be classified LocalMem via
        // wrapping arithmetic.
        let m = MemoryMap::default();
        assert_eq!(m.region(1), Region::SysMem);
        assert_eq!(m.region(u64::MAX), Region::SysMem);
    }
}
