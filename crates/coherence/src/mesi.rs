//! The **inter-core** MESI protocol states, kept deliberately separate
//! from the paper's intra-tile hybrid protocol.
//!
//! The paper's §3 integration argument is that the hardware-software LM
//! coherence protocol "does not interact with the inter-core cache
//! coherence protocol": the LM, the per-core directory (Figure 4) and
//! the Figure 6 data-replication state machine are strictly per tile,
//! while whatever keeps *cacheable* data coherent between cores lives
//! below, at the shared last-level cache. This module supplies that
//! inter-core side — the line states a directory slice at an L3 bank
//! tracks — so the claim can be demonstrated against a real protocol
//! instead of against the absence of one.
//!
//! The two protocols are disjoint by construction and this module keeps
//! them disjoint by *type*:
//!
//! * the hybrid protocol steps [`DataState`](crate::state::DataState) on
//!   [`DataEvent`]s (LM maps, write-backs, cache residency of
//!   *chunks*);
//! * the inter-core protocol steps [`MesiState`] on [`MesiEvent`]s
//!   (loads, stores and evictions of *lines*, tagged local or remote).
//!
//! There is no event shared between the two machines and no transition
//! in either that inspects the other's state — the
//! `protocols_do_not_interact` test pins this by stepping both machines
//! through interleaved traffic and checking each against its own
//! single-protocol reference run.
//!
//! Since the table-driven protocol family landed
//! ([`protocol`](crate::protocol)), the production directory slices
//! step [`ProtocolTable`](crate::protocol::ProtocolTable)s instead of
//! [`MesiState::step`] directly. This hand-written machine survives as
//! the **refactor-equivalence reference**: the
//! `refactor_equivalence` proptest drives random event traces through
//! both and requires lockstep agreement on states and actions, and
//! [`MesiEvent`] remains the event vocabulary every family member
//! speaks.

use crate::state::DataEvent;
#[cfg(test)]
use crate::state::DataState;

/// MESI state of one cache line at its home directory slice.
///
/// The directory tracks lines of *shared* (cross-core visible) data at
/// the shared L3; per-core private lines never enter the directory (they
/// stay address-tagged per core, exactly the replication model the
/// `Replicate` coherence mode uses for everything).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum MesiState {
    /// Not present (no directory entry).
    #[default]
    Invalid,
    /// One core holds a clean copy; silent upgrade to Modified allowed.
    Exclusive,
    /// One or more cores hold clean copies.
    Shared,
    /// Exactly one core (the owner) holds a dirty copy.
    Modified,
}

/// Line events as seen by the home directory slice. `Local` means the
/// event comes from a core already recorded for the line (owner or
/// sharer); `Remote` means it comes from any other core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MesiEvent {
    /// A read by a core already holding the line.
    LocalRead,
    /// A write (read-for-ownership or write-through) by the holder.
    LocalWrite,
    /// A read by a core not holding the line.
    RemoteRead,
    /// A write by a core not holding the line.
    RemoteWrite,
    /// The line leaves the shared cache (capacity eviction or DMA
    /// invalidation): every copy above must be recalled.
    Evict,
}

/// Coherence work a transition obliges the home slice to perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MesiAction {
    /// Nothing beyond the state change.
    None,
    /// The previous owner's dirty data must be written back (M-state
    /// intervention or dirty eviction).
    Writeback,
    /// Every copy above the shared cache other than the requester's must
    /// be invalidated.
    InvalidateSharers,
    /// Both: recall the dirty copy *and* invalidate it (remote write to
    /// a Modified line, or eviction of one).
    WritebackAndInvalidate,
}

impl MesiState {
    /// Applies one event, returning the successor state and the action
    /// the home slice must charge for. Total: every `(state, event)`
    /// pair is defined (a directory serializes requests at the home
    /// node, so there are no illegal race inputs — unlike the hybrid
    /// machine, where an undefined transition is a protocol violation).
    pub fn step(self, event: MesiEvent) -> (MesiState, MesiAction) {
        use MesiAction as A;
        use MesiEvent::*;
        use MesiState::*;
        match (self, event) {
            (Invalid, LocalRead | RemoteRead) => (Exclusive, A::None),
            (Invalid, LocalWrite | RemoteWrite) => (Modified, A::None),
            (Invalid, Evict) => (Invalid, A::None),

            (Exclusive, LocalRead) => (Exclusive, A::None),
            // Silent E -> M upgrade: no bus traffic.
            (Exclusive, LocalWrite) => (Modified, A::None),
            (Exclusive, RemoteRead) => (Shared, A::None),
            (Exclusive, RemoteWrite) => (Modified, A::InvalidateSharers),
            (Exclusive, Evict) => (Invalid, A::InvalidateSharers),

            (Shared, LocalRead | RemoteRead) => (Shared, A::None),
            (Shared, LocalWrite | RemoteWrite) => (Modified, A::InvalidateSharers),
            (Shared, Evict) => (Invalid, A::InvalidateSharers),

            (Modified, LocalRead | LocalWrite) => (Modified, A::None),
            // M-state intervention: the owner's data is written back and
            // the reader joins in Shared.
            (Modified, RemoteRead) => (Shared, A::Writeback),
            (Modified, RemoteWrite) => (Modified, A::WritebackAndInvalidate),
            (Modified, Evict) => (Invalid, A::WritebackAndInvalidate),
        }
    }

    /// True when exactly one core may hold the line.
    pub fn is_exclusive(self) -> bool {
        matches!(self, MesiState::Exclusive | MesiState::Modified)
    }

    /// True when the shared cache's copy is stale against an owner.
    pub fn is_dirty(self) -> bool {
        self == MesiState::Modified
    }
}

/// Statically proves the two protocols share no event vocabulary: a
/// [`DataEvent`] is not a [`MesiEvent`] and cannot be fed to
/// [`MesiState::step`] (and vice versa). Exists so the non-interaction
/// argument is visible in the API, not only in tests.
pub fn protocols_are_type_disjoint(hybrid: DataEvent, inter_core: MesiEvent) -> (bool, bool) {
    // The only way to relate them is explicitly, as here; there is no
    // conversion in either direction.
    (
        matches!(
            hybrid,
            DataEvent::LmMap
                | DataEvent::LmUnmap
                | DataEvent::LmWriteback
                | DataEvent::CmAccess
                | DataEvent::CmEvict
        ),
        matches!(
            inter_core,
            MesiEvent::LocalRead
                | MesiEvent::LocalWrite
                | MesiEvent::RemoteRead
                | MesiEvent::RemoteWrite
                | MesiEvent::Evict
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use MesiAction as A;
    use MesiEvent::*;
    use MesiState::*;

    #[test]
    fn read_sharing_without_writeback() {
        // I -> E on first read, E -> S on a remote read, S stays S.
        let (s, a) = Invalid.step(RemoteRead);
        assert_eq!((s, a), (Exclusive, A::None));
        let (s, a) = s.step(RemoteRead);
        assert_eq!((s, a), (Shared, A::None));
        let (s, a) = s.step(LocalRead);
        assert_eq!((s, a), (Shared, A::None));
    }

    #[test]
    fn rfo_invalidates_sharers() {
        let (s, _) = Invalid.step(RemoteRead);
        let (s, _) = s.step(RemoteRead); // Shared
        let (s, a) = s.step(RemoteWrite);
        assert_eq!((s, a), (Modified, A::InvalidateSharers));
    }

    #[test]
    fn m_intervention_writes_back_and_downgrades() {
        let (s, _) = Invalid.step(LocalWrite);
        assert_eq!(s, Modified);
        let (s, a) = s.step(RemoteRead);
        assert_eq!((s, a), (Shared, A::Writeback));
    }

    #[test]
    fn silent_e_to_m_upgrade() {
        let (s, _) = Invalid.step(LocalRead);
        let (s, a) = s.step(LocalWrite);
        assert_eq!((s, a), (Modified, A::None));
    }

    #[test]
    fn eviction_recalls_every_copy() {
        for (start, want) in [
            (Exclusive, A::InvalidateSharers),
            (Shared, A::InvalidateSharers),
            (Modified, A::WritebackAndInvalidate),
        ] {
            let (s, a) = start.step(Evict);
            assert_eq!((s, a), (Invalid, want), "from {start:?}");
        }
    }

    #[test]
    fn every_pair_is_total() {
        for s in [Invalid, Exclusive, Shared, Modified] {
            for e in [LocalRead, LocalWrite, RemoteRead, RemoteWrite, Evict] {
                let _ = s.step(e); // must not panic: the match is total
            }
        }
    }

    /// The §3 non-interaction claim as a machine-checked invariant: the
    /// hybrid (Figure 6) machine and the inter-core MESI machine, driven
    /// by an interleaved event stream, each land exactly where a run
    /// seeing only its own events lands — neither protocol's transitions
    /// read or perturb the other's state.
    #[test]
    fn protocols_do_not_interact() {
        use crate::state::DataEvent as H;
        let hybrid_events = [
            H::LmMap,
            H::CmAccess,
            H::CmEvict,
            H::LmWriteback,
            H::LmUnmap,
        ];
        let mesi_events = [RemoteRead, RemoteRead, RemoteWrite, Evict, LocalRead];

        // Interleaved run.
        let mut hybrid = DataState::MM;
        let mut mesi = Invalid;
        for (h, m) in hybrid_events.iter().zip(&mesi_events) {
            hybrid = hybrid.step(*h).expect("legal hybrid sequence");
            mesi = mesi.step(*m).0;
        }

        // Isolated reference runs.
        let mut hybrid_alone = DataState::MM;
        for h in &hybrid_events {
            hybrid_alone = hybrid_alone.step(*h).expect("legal hybrid sequence");
        }
        let mut mesi_alone = Invalid;
        for m in &mesi_events {
            mesi_alone = mesi_alone.step(*m).0;
        }

        assert_eq!(
            hybrid, hybrid_alone,
            "MESI traffic must not move the hybrid machine"
        );
        assert_eq!(
            mesi, mesi_alone,
            "hybrid traffic must not move the MESI machine"
        );
        let (h_ok, m_ok) = protocols_are_type_disjoint(H::LmMap, LocalRead);
        assert!(h_ok && m_ok);
    }
}
