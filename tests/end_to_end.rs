//! End-to-end integration tests: the paper's correctness claims, checked
//! across the whole stack at test scale.
//!
//! Every NAS-signature kernel and every microbenchmark mode runs on all
//! three machines (hybrid coherent / hybrid oracle / cache-based) with
//! the coherence tracker on; the final memory image must match the
//! reference interpreter bit-for-bit and the tracker must record zero
//! violations.

use hsim::prelude::*;
use hsim_workloads::nas;

fn check_all_modes(k: &hsim_compiler::Kernel) {
    for mode in [
        SysMode::HybridCoherent,
        SysMode::HybridOracle,
        SysMode::CacheBased,
    ] {
        let (r, mismatches) = RunSpec::new(k)
            .mode(mode)
            .track(true)
            .verified()
            .run()
            .map(|out| {
                let m = out.verify_mismatches.expect("verified run");
                (out.into_single(), m)
            })
            .unwrap_or_else(|e| panic!("{} {mode:?}: {e}", k.name));
        assert_eq!(
            mismatches, 0,
            "{} {:?}: memory image diverged",
            k.name, mode
        );
        assert_eq!(
            r.violations, 0,
            "{} {:?}: coherence violations",
            k.name, mode
        );
        assert!(r.cycles > 0 && r.committed > 0);
    }
}

#[test]
fn cg_functional_equivalence() {
    check_all_modes(&nas::cg(Scale::Test));
}

#[test]
fn ep_functional_equivalence() {
    check_all_modes(&nas::ep(Scale::Test));
}

#[test]
fn ft_functional_equivalence() {
    check_all_modes(&nas::ft(Scale::Test));
}

#[test]
fn is_functional_equivalence() {
    check_all_modes(&nas::is(Scale::Test));
}

#[test]
fn mg_functional_equivalence() {
    check_all_modes(&nas::mg(Scale::Test));
}

#[test]
fn sp_functional_equivalence() {
    check_all_modes(&nas::sp(Scale::Test));
}

#[test]
fn microbench_all_modes_functional_equivalence() {
    for mode in [
        MicroMode::Baseline,
        MicroMode::Rd,
        MicroMode::Wr,
        MicroMode::RdWr,
    ] {
        for pct in [0, 50, 100] {
            let k = microbench(&MicrobenchConfig {
                mode,
                guarded_pct: pct,
                n: 3000, // not a multiple of the chunk: exercises partial tiles
            });
            check_all_modes(&k);
        }
    }
}

#[test]
fn guarded_counts_match_table3_signatures() {
    for (k, total, guarded) in [
        (nas::cg(Scale::Test), 7, 1),
        (nas::ep(Scale::Test), 20, 1),
        (nas::ft(Scale::Test), 34, 4),
        (nas::is(Scale::Test), 5, 2),
        (nas::mg(Scale::Test), 60, 1),
        (nas::sp(Scale::Test), 497, 0),
    ] {
        let ck = compile(&k, CodegenMode::HybridCoherent);
        assert_eq!(ck.total_refs(), total, "{}", k.name);
        assert_eq!(ck.guarded_refs(), guarded, "{}", k.name);
    }
}

#[test]
fn phase_cycles_sum_to_total() {
    let k = nas::cg(Scale::Test);
    let r = RunSpec::new(&k)
        .mode(SysMode::HybridCoherent)
        .track(false)
        .run()
        .map(RunOutcome::into_single)
        .unwrap();
    let sum: u64 = r.phase_cycles.iter().sum();
    assert_eq!(sum, r.cycles);
    // Tiled code must actually spend time in all three phases.
    assert!(r.phase(Phase::Work) > 0);
    assert!(r.phase(Phase::Control) > 0);
    assert!(r.phase(Phase::Synch) > 0);
}

#[test]
fn determinism_across_runs() {
    let k = nas::ft(Scale::Test);
    let a = RunSpec::new(&k)
        .mode(SysMode::HybridCoherent)
        .track(false)
        .run()
        .map(RunOutcome::into_single)
        .unwrap();
    let b = RunSpec::new(&k)
        .mode(SysMode::HybridCoherent)
        .track(false)
        .run()
        .map(RunOutcome::into_single)
        .unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.l1_accesses, b.l1_accesses);
    assert_eq!(a.dir_accesses, b.dir_accesses);
    assert_eq!(a.energy_total(), b.energy_total());
}

#[test]
fn oracle_mode_uses_no_directory() {
    let k = nas::is(Scale::Test);
    let coherent = RunSpec::new(&k)
        .mode(SysMode::HybridCoherent)
        .track(false)
        .run()
        .map(RunOutcome::into_single)
        .unwrap();
    let oracle = RunSpec::new(&k)
        .mode(SysMode::HybridOracle)
        .track(false)
        .run()
        .map(RunOutcome::into_single)
        .unwrap();
    assert!(
        coherent.dir_accesses > 0,
        "guards must access the directory"
    );
    assert_eq!(
        oracle.dir_accesses, 0,
        "the oracle has no directory hardware"
    );
    assert_eq!(oracle.energy.directory, 0.0);
    // The coherent machine executes the double stores: more instructions.
    assert!(coherent.committed > oracle.committed);
}

#[test]
fn mg_guarded_gathers_hit_the_directory() {
    // MG's gather indices stay inside the current window: Figure 5's
    // gld17H path. Lookups must mostly hit.
    let k = nas::mg(Scale::Test);
    let ck = compile(&k, CodegenMode::HybridCoherent);
    let cfg = hsim::MachineConfig::for_mode(SysMode::HybridCoherent);
    let mut m = hsim::Machine::for_kernel(cfg, &ck, &k);
    m.run().unwrap();
    let dir = m.world.dir.as_ref().unwrap();
    assert!(dir.stats.lookups > 0);
    // The window-local gathers always hit; the stencil's window-crossing
    // tail guards (offsets +1/+2 near the window boundary) account for
    // the misses — both Figure 5 paths (gld17H and gld17M) execute.
    assert!(
        dir.stats.hits * 10 >= dir.stats.lookups * 6,
        "expected mostly hits, got {}/{}",
        dir.stats.hits,
        dir.stats.lookups
    );
    assert!(dir.stats.hits < dir.stats.lookups, "tail guards must miss");
}

#[test]
fn cg_guarded_gathers_miss_the_directory() {
    // CG's gathered vector is never LM-mapped: Figure 5's gld17M path.
    let k = nas::cg(Scale::Test);
    let ck = compile(&k, CodegenMode::HybridCoherent);
    let cfg = hsim::MachineConfig::for_mode(SysMode::HybridCoherent);
    let mut m = hsim::Machine::for_kernel(cfg, &ck, &k);
    m.run().unwrap();
    let dir = m.world.dir.as_ref().unwrap();
    assert!(dir.stats.lookups > 0);
    assert_eq!(dir.stats.hits, 0, "x is never mapped: all lookups miss");
}

#[test]
fn double_stores_collapse_when_guard_misses() {
    // IS: both guarded stores target unmapped histograms, so the guarded
    // store falls through to the SM address of its paired plain store and
    // the LSQ collapses them.
    let k = nas::is(Scale::Test);
    let r = RunSpec::new(&k)
        .mode(SysMode::HybridCoherent)
        .track(false)
        .run()
        .map(RunOutcome::into_single)
        .unwrap();
    assert!(
        r.core.collapsed_stores > 0,
        "IS double stores must collapse at commit"
    );
}

#[test]
fn cache_based_machine_has_no_lm_activity() {
    let k = nas::cg(Scale::Test);
    let r = RunSpec::new(&k)
        .mode(SysMode::CacheBased)
        .track(false)
        .run()
        .map(RunOutcome::into_single)
        .unwrap();
    assert_eq!(r.lm_accesses, 0);
    assert_eq!(r.dir_accesses, 0);
    assert_eq!(r.energy.lm, 0.0);
    assert_eq!(r.core.served[4], 0, "no loads served by LM");
}
