//! Cycle-skipping equivalence: the event-horizon scheduler must be a
//! pure host-speed optimization. Every run here executes twice — once
//! with skipping (the default) and once with the `lockstep: true`
//! escape hatch — and every observable of the simulation must be
//! bit-identical: cycle counts, per-level hit counts, phase split,
//! backside bus waits, DRAM lines, energy, and the final memory image.
//!
//! The grids mirror the paper's row builders: the Figure 7
//! microbenchmark sweep, Figure 8's coherent-vs-oracle kernel runs, and
//! the Figure 9/10 hybrid-vs-cache comparison, on single-core and
//! 4-core machines in all three `SysMode`s.

use hsim::compiler::compile;
use hsim::prelude::*;
use hsim_workloads::nas;

/// Asserts that a skipping run and a lockstep run produced identical
/// reports (everything except the skip accounting itself).
fn assert_reports_equal(skip: &RunReport, lock: &RunReport, what: &str) {
    assert_eq!(lock.skipped_cycles, 0, "{what}: lockstep must not skip");
    assert_observables_equal(skip, lock, what);
}

/// The shared comparator: every observable of two runs — cycle counts,
/// per-level hits, phases, backside shares, energy — must match bit
/// for bit, with only the skip accounting itself left to the caller.
fn assert_observables_equal(skip: &RunReport, lock: &RunReport, what: &str) {
    assert_eq!(skip.cycles, lock.cycles, "{what}: cycles");
    assert_eq!(skip.committed, lock.committed, "{what}: committed");
    assert_eq!(skip.phase_cycles, lock.phase_cycles, "{what}: phases");
    assert_eq!(
        skip.amat.to_bits(),
        lock.amat.to_bits(),
        "{what}: AMAT ({} vs {})",
        skip.amat,
        lock.amat
    );
    assert_eq!(
        skip.l1d_hit_ratio.to_bits(),
        lock.l1d_hit_ratio.to_bits(),
        "{what}: L1D hit ratio"
    );
    assert_eq!(skip.l1_accesses, lock.l1_accesses, "{what}: L1 accesses");
    assert_eq!(skip.l2_accesses, lock.l2_accesses, "{what}: L2 accesses");
    assert_eq!(skip.l3_accesses, lock.l3_accesses, "{what}: L3 accesses");
    assert_eq!(skip.lm_accesses, lock.lm_accesses, "{what}: LM accesses");
    assert_eq!(skip.dir_accesses, lock.dir_accesses, "{what}: dir accesses");
    assert_eq!(skip.bus_requests, lock.bus_requests, "{what}: bus requests");
    assert_eq!(
        skip.bus_wait_cycles, lock.bus_wait_cycles,
        "{what}: bus waits"
    );
    assert_eq!(skip.dram_reads, lock.dram_reads, "{what}: DRAM reads");
    assert_eq!(skip.dram_writes, lock.dram_writes, "{what}: DRAM writes");
    assert_eq!(
        skip.coh_shared_hits, lock.coh_shared_hits,
        "{what}: shared hits"
    );
    assert_eq!(
        skip.coh_invalidations, lock.coh_invalidations,
        "{what}: invalidations"
    );
    assert_eq!(
        skip.coh_interventions, lock.coh_interventions,
        "{what}: interventions"
    );
    assert_eq!(
        skip.coh_intervention_stalls, lock.coh_intervention_stalls,
        "{what}: intervention stalls"
    );
    assert_eq!(
        skip.coh_dirty_recalls, lock.coh_dirty_recalls,
        "{what}: dirty recalls"
    );
    assert_eq!(
        skip.dram_intervention_drain_stalls, lock.dram_intervention_drain_stalls,
        "{what}: intervention drain stalls"
    );
    assert_eq!(skip.ecc_retries, lock.ecc_retries, "{what}: ECC retries");
    assert_eq!(skip.dma_retries, lock.dma_retries, "{what}: DMA retries");
    assert_eq!(skip.dir_nacks, lock.dir_nacks, "{what}: dir NACKs");
    assert_eq!(skip.escalations, lock.escalations, "{what}: escalations");
    assert_eq!(
        skip.energy_total().to_bits(),
        lock.energy_total().to_bits(),
        "{what}: energy"
    );
    // The full pipeline statistics, with the skip counters normalized
    // away on both sides (the only field allowed to differ; callers
    // that require it equal too assert that separately).
    let mut a = skip.core.clone();
    a.skipped_cycles = 0;
    let mut b = lock.core.clone();
    b.skipped_cycles = 0;
    assert_eq!(a, b, "{what}: core stats");
}

/// Runs `kernel` in `mode` both ways and checks the reports match.
/// Returns the skipping report for further assertions.
fn check_single(kernel: &hsim_compiler::Kernel, mode: SysMode) -> RunReport {
    let skip = RunSpec::new(kernel)
        .config(MachineConfig::for_mode(mode))
        .run()
        .map(RunOutcome::into_single)
        .expect("skip run");
    let lock = RunSpec::new(kernel)
        .config(MachineConfig::for_mode(mode).with_lockstep())
        .run()
        .map(RunOutcome::into_single)
        .expect("lockstep");
    assert_reports_equal(&skip, &lock, &format!("{} {:?}", kernel.name, mode));
    skip
}

#[test]
fn fig7_microbench_grid_is_identical() {
    // The Figure 7 row builder's inputs: every microbenchmark mode at a
    // few guard percentages, on the coherent machine.
    let mut any_skipped = false;
    for mode in [
        MicroMode::Baseline,
        MicroMode::Rd,
        MicroMode::Wr,
        MicroMode::RdWr,
    ] {
        for pct in [0, 50, 100] {
            let k = microbench(&MicrobenchConfig {
                mode,
                guarded_pct: pct,
                n: 2048,
            });
            let r = check_single(&k, SysMode::HybridCoherent);
            any_skipped |= r.skipped_cycles > 0;
        }
    }
    assert!(any_skipped, "the grid must actually exercise skipping");
}

#[test]
fn fig8_rows_are_identical_for_coherent_and_oracle() {
    for k in [nas::is(Scale::Test), nas::cg(Scale::Test)] {
        let coherent = check_single(&k, SysMode::HybridCoherent);
        check_single(&k, SysMode::HybridOracle);
        assert!(
            coherent.skipped_cycles > 0,
            "{}: DMA-phased kernels must have skippable dead time",
            k.name
        );
    }
}

#[test]
fn cache_based_rows_are_identical() {
    check_single(&nas::is(Scale::Test), SysMode::CacheBased);
}

#[test]
fn final_memory_images_match_lockstep() {
    let kernel = nas::is(Scale::Test);
    for mode in SysMode::ALL {
        let ck = compile(&kernel, mode.codegen());
        let mut skip = Machine::for_kernel(MachineConfig::for_mode(mode), &ck, &kernel);
        skip.run().expect("skip run");
        let mut lock =
            Machine::for_kernel(MachineConfig::for_mode(mode).with_lockstep(), &ck, &kernel);
        lock.run().expect("lockstep run");
        for id in 0..kernel.arrays.len() {
            assert_eq!(
                skip.read_array(&ck, &kernel, id),
                lock.read_array(&ck, &kernel, id),
                "{:?}: array {id} image diverged",
                mode
            );
        }
    }
}

#[test]
fn four_core_machines_are_identical_in_all_modes() {
    let kernel = nas::cg(Scale::Test);
    for mode in SysMode::ALL {
        let skip = RunSpec::new(&kernel)
            .cores(4)
            .config(MachineConfig::for_mode(mode))
            .run()
            .map(RunOutcome::into_multi)
            .expect("4-core skip run");
        let lock = RunSpec::new(&kernel)
            .cores(4)
            .config(MachineConfig::for_mode(mode).with_lockstep())
            .run()
            .map(RunOutcome::into_multi)
            .expect("4-core lockstep run");
        assert_eq!(skip.makespan, lock.makespan, "{mode:?}: makespan");
        assert_eq!(skip.n_cores(), lock.n_cores());
        assert_eq!(lock.total_skipped_cycles(), 0);
        for (s, l) in skip.per_core.iter().zip(&lock.per_core) {
            assert_reports_equal(s, l, &format!("cg x4 {:?} core {}", mode, s.core_id));
        }
        // Contention statistics must survive the jumped round-robin
        // rotation: both runs see the same arbitration order.
        assert_eq!(
            skip.total_bus_wait_cycles(),
            lock.total_bus_wait_cycles(),
            "{mode:?}: total bus waits"
        );
    }
}

#[test]
fn four_core_mesi_machines_skip_bit_identically() {
    // The directory's message charges, back-invalidation queues and
    // owner-attributed write-backs all live inside access calls, so the
    // event-horizon scheduler must stay bit-identical under
    // `CoherenceMode::Mesi` too — whatever the HSIM_COHERENCE
    // environment leg this suite runs in.
    let kernel = nas::cg(Scale::Test);
    let cfg = MachineConfig::for_mode(SysMode::HybridCoherent).with_coherence(CoherenceMode::Mesi);
    let skip = RunSpec::new(&kernel)
        .cores(4)
        .config(cfg.clone())
        .run()
        .map(RunOutcome::into_multi)
        .expect("mesi skip run");
    let lock = RunSpec::new(&kernel)
        .cores(4)
        .config(cfg.with_lockstep())
        .run()
        .map(RunOutcome::into_multi)
        .expect("mesi lockstep run");
    assert_eq!(skip.makespan, lock.makespan, "mesi: makespan");
    for (s, l) in skip.per_core.iter().zip(&lock.per_core) {
        assert_reports_equal(s, l, &format!("mesi cg x4 core {}", s.core_id));
    }
    assert!(
        skip.total_shared_hits() > 0,
        "the grid must actually exercise the directory"
    );
    assert!(
        skip.total_skipped_cycles() > 0,
        "the mesi run must still skip idle cycles"
    );
}

// ---------------------------------------------------- heterogeneous tiles
//
// The hetero constructors must be pure generalizations: N identical
// configurations produce the homogeneous machine bit for bit, and mixed
// chips stay bit-identical under cycle skipping.

#[test]
fn identical_config_hetero_machine_is_bit_identical_to_homogeneous() {
    let kernel = nas::cg(Scale::Test);
    for mode in SysMode::ALL {
        let homo = RunSpec::new(&kernel)
            .cores(4)
            .config(MachineConfig::for_mode(mode))
            .run()
            .map(RunOutcome::into_multi)
            .expect("homogeneous run");
        let cfgs = vec![MachineConfig::for_mode(mode); 4];
        let hetero = RunSpec::new(&kernel)
            .hetero(cfgs.to_vec())
            .weights(&[1, 1, 1, 1])
            .run()
            .map(RunOutcome::into_multi)
            .expect("hetero run");
        assert_eq!(homo.makespan, hetero.makespan, "{mode:?}: makespan");
        assert_eq!(hetero.replication_fallbacks, 0);
        for (h, e) in homo.per_core.iter().zip(&hetero.per_core) {
            // The strictest comparator in the suite: every observable
            // of every tile must match bit for bit — including the
            // skip accounting, since both runs use the same scheduler.
            assert_observables_equal(
                e,
                h,
                &format!("hetero-identity {:?} core {}", mode, h.core_id),
            );
            assert_eq!(h.skipped_cycles, e.skipped_cycles, "{mode:?}: skips");
            assert_eq!(h.core, e.core, "{mode:?}: full core stats");
        }
    }
}

#[test]
fn mixed_hybrid_cache_chip_skips_bit_identically() {
    // A 2-hybrid/2-cache-based chip: per-tile horizons differ wildly
    // (DMA-phased hybrid tiles skip; cache tiles grind), so this is the
    // sharpest test of the per-tile horizon heap under heterogeneity —
    // in both coherence modes.
    let kernel = nas::cg(Scale::Test);
    for cm in [CoherenceMode::Replicate, CoherenceMode::Mesi] {
        let cfgs = |lockstep: bool| -> Vec<MachineConfig> {
            [
                SysMode::HybridCoherent,
                SysMode::HybridCoherent,
                SysMode::CacheBased,
                SysMode::CacheBased,
            ]
            .iter()
            .map(|&m| {
                let c = MachineConfig::for_mode(m).with_coherence(cm);
                if lockstep {
                    c.with_lockstep()
                } else {
                    c
                }
            })
            .collect()
        };
        let w = [1u64, 1, 1, 1];
        let skip = RunSpec::new(&kernel)
            .hetero(cfgs(false).to_vec())
            .weights(&w)
            .run()
            .map(RunOutcome::into_multi)
            .expect("skip");
        let lock = RunSpec::new(&kernel)
            .hetero(cfgs(true).to_vec())
            .weights(&w)
            .run()
            .map(RunOutcome::into_multi)
            .expect("lockstep");
        assert_eq!(skip.makespan, lock.makespan, "{cm:?}: makespan");
        assert_eq!(lock.total_skipped_cycles(), 0);
        assert!(
            skip.total_skipped_cycles() > 0,
            "{cm:?}: the hybrid tiles must still skip idle cycles"
        );
        for (s, l) in skip.per_core.iter().zip(&lock.per_core) {
            assert_reports_equal(s, l, &format!("mixed chip {:?} core {}", cm, s.core_id));
        }
        assert!(skip.is_mixed_chip());
        assert_eq!(
            skip.mode_summary(),
            "2xHybrid coherent + 2xCache-based",
            "{cm:?}: mode census"
        );
    }
}

// --------------------------------------------------------- flat backside
//
// `MachineConfig::with_flat_backside` (one L3 bank, `flat_dram: true`)
// must reproduce the pre-banking backside bit for bit. The constants
// below are cycle counts recorded from the PR-2 tree (flat DRAM, single
// monolithic L3) immediately before the banked backside landed; these
// tests freeze the escape hatch against them.

/// PR-2 cycle counts for the Figure 7 grid (HybridCoherent, n = 2048).
const PR2_FIG7_CYCLES: &[(MicroMode, u32, u64)] = &[
    (MicroMode::Baseline, 0, 39703),
    (MicroMode::Baseline, 50, 39703),
    (MicroMode::Baseline, 100, 39703),
    (MicroMode::Rd, 0, 39703),
    (MicroMode::Rd, 50, 39703),
    (MicroMode::Rd, 100, 39709),
    (MicroMode::Wr, 0, 39703),
    (MicroMode::Wr, 50, 40096),
    (MicroMode::Wr, 100, 41579),
    (MicroMode::RdWr, 0, 39703),
    (MicroMode::RdWr, 50, 40096),
    (MicroMode::RdWr, 100, 41589),
];

#[test]
fn flat_backside_reproduces_pr2_fig7_grid_bit_identically() {
    for &(mode, pct, want) in PR2_FIG7_CYCLES {
        let k = microbench(&MicrobenchConfig {
            mode,
            guarded_pct: pct,
            n: 2048,
        });
        let cfg = MachineConfig::for_mode(SysMode::HybridCoherent).with_flat_backside();
        let r = RunSpec::new(&k)
            .config(cfg.clone())
            .run()
            .map(RunOutcome::into_single)
            .expect("flat run");
        assert_eq!(
            r.cycles, want,
            "({mode:?}, {pct}%): flat backside must reproduce PR-2 cycles"
        );
        // No row or bank activity may exist under the escape hatch.
        assert_eq!(
            r.dram_row_hits + r.dram_row_misses + r.dram_row_conflicts,
            0
        );
        assert_eq!(r.l3_bank_conflicts, 0);
        assert_eq!(r.dram_queue_stalls, 0);
        // And the escape hatch composes with the other one: lockstep
        // over the flat backside is the full PR-2 configuration.
        let lock = RunSpec::new(&k)
            .config(cfg.with_lockstep())
            .run()
            .map(RunOutcome::into_single)
            .expect("flat lockstep");
        assert_reports_equal(&r, &lock, &format!("flat {mode:?} {pct}%"));
    }
}

#[test]
fn flat_backside_reproduces_pr2_fig8_kernels_bit_identically() {
    // (kernel index, mode, PR-2 cycles) for the Figure 8 row builders.
    let want: &[(usize, SysMode, u64)] = &[
        (0, SysMode::HybridCoherent, 227183),
        (0, SysMode::HybridOracle, 210390),
        (1, SysMode::HybridCoherent, 168105),
        (1, SysMode::HybridOracle, 168105),
    ];
    let kernels = [nas::is(Scale::Test), nas::cg(Scale::Test)];
    for &(ki, mode, cycles) in want {
        let cfg = MachineConfig::for_mode(mode).with_flat_backside();
        let r = RunSpec::new(&kernels[ki])
            .config(cfg)
            .run()
            .map(RunOutcome::into_single)
            .expect("flat run");
        assert_eq!(
            r.cycles, cycles,
            "{} {mode:?}: flat backside must reproduce PR-2 cycles",
            kernels[ki].name
        );
    }
}

#[test]
fn flat_backside_reproduces_pr2_four_core_runs_bit_identically() {
    // PR-2 4-core CG runs: (mode, makespan, per-core cycles, total bus
    // waits).
    let want: &[(SysMode, u64, [u64; 4], u64)] = &[
        (
            SysMode::HybridCoherent,
            51303,
            [50933, 51274, 50921, 51303],
            2448,
        ),
        (
            SysMode::HybridOracle,
            51303,
            [50933, 51274, 50921, 51303],
            2448,
        ),
        (
            SysMode::CacheBased,
            86354,
            [85205, 85715, 86139, 86354],
            140600,
        ),
    ];
    let kernel = nas::cg(Scale::Test);
    for &(mode, makespan, per_core, bus_waits) in want {
        let cfg = MachineConfig::for_mode(mode).with_flat_backside();
        let r = RunSpec::new(&kernel)
            .cores(4)
            .config(cfg.clone())
            .run()
            .map(RunOutcome::into_multi)
            .expect("flat 4-core run");
        assert_eq!(r.makespan, makespan, "{mode:?}: makespan");
        let got: Vec<u64> = r.per_core.iter().map(|c| c.cycles).collect();
        assert_eq!(got, per_core, "{mode:?}: per-core cycles");
        assert_eq!(r.total_bus_wait_cycles(), bus_waits, "{mode:?}: bus waits");
        // The skipper must stay bit-identical over the flat backside
        // too (the PR-2 equivalence claim, re-proven post-banking).
        let lock = RunSpec::new(&kernel)
            .cores(4)
            .config(cfg.with_lockstep())
            .run()
            .map(RunOutcome::into_multi)
            .expect("flat lockstep");
        for (s, l) in r.per_core.iter().zip(&lock.per_core) {
            assert_reports_equal(s, l, &format!("flat cg x4 {:?} core {}", mode, s.core_id));
        }
    }
}

#[test]
fn banked_backside_runs_differ_from_flat_but_partition_stats() {
    // Sanity that the default (banked, row-aware) backside is actually
    // live: it must produce row-classified DRAM traffic, and per-core
    // shares must still partition the shared totals exactly.
    let kernel = nas::cg(Scale::Test);
    let r = RunSpec::new(&kernel)
        .cores(4)
        .config(MachineConfig::for_mode(SysMode::HybridCoherent))
        .run()
        .map(RunOutcome::into_multi)
        .expect("banked 4-core run");
    let classified: u64 = r
        .per_core
        .iter()
        .map(|c| c.dram_row_hits + c.dram_row_misses + c.dram_row_conflicts)
        .sum();
    assert!(classified > 0, "banked backside must classify rows");
    let timed_reads: u64 = r.per_core.iter().map(|c| c.dram_reads).sum();
    let drains: u64 = r.per_core.iter().map(|c| c.dram_queue_stalls).sum();
    assert!(
        classified <= timed_reads + drains,
        "row classification covers timed reads and drained writes only \
         (DMA lines are not classified)"
    );
}

#[test]
fn cycle_limit_fires_at_the_same_cycle() {
    // A machine that cannot finish within the budget must report the
    // limit after the same number of simulated cycles either way.
    let kernel = nas::cg(Scale::Test);
    let ck = compile(&kernel, SysMode::HybridCoherent.codegen());
    let run = |lockstep: bool| {
        let mut cfg = MachineConfig::for_mode(SysMode::HybridCoherent);
        cfg.core.max_cycles = 5_000;
        if lockstep {
            cfg = cfg.with_lockstep();
        }
        let mut m = Machine::for_kernel(cfg, &ck, &kernel);
        let err = m.run().expect_err("5k cycles cannot finish CG");
        (err, m.core.stats.cycles)
    };
    let (skip_err, skip_cycles) = run(false);
    let (lock_err, lock_cycles) = run(true);
    assert_eq!(skip_err, hsim::core::pipeline::SimError::CycleLimit);
    assert_eq!(skip_err, lock_err);
    assert_eq!(skip_cycles, lock_cycles, "limit must fire at one cycle");
}
