//! Protocol-family equivalence: every directory protocol
//! (`Msi`/`Mesi`/`Moesi`/`Mesif`) must satisfy the same host-speed and
//! architectural contracts the original `Mesi` backside was pinned to:
//!
//! 1. **skip == lockstep** — the event-horizon scheduler stays
//!    bit-identical under every protocol (the directory's message
//!    charges, recalls and owner-attributed write-backs all live inside
//!    access calls, whatever the table says);
//! 2. **threaded == serial clusters** — per-cluster directory slices
//!    keep host-parallel epoch execution invisible for every protocol;
//! 3. **fault equivalence** — a fault plan is a pure timing
//!    perturbation under every protocol: architectural state matches
//!    the fault-free run, and skipping stays invisible under faults;
//! 4. **architectural invariance** — all four protocols and the
//!    `Replicate` baseline commit the same final memory images and the
//!    same instruction counts; protocols only move cycles around.
//!
//! The suite runs identically under any `HSIM_COHERENCE` leg: every
//! configuration here pins its coherence mode explicitly.

use hsim::cluster::{ClusterConfig, ClusterTopology};
use hsim::compiler::compile;
use hsim::experiments::MultiRunError;
use hsim::machine::MultiMachine;
use hsim::prelude::*;
use hsim_workloads::nas;

/// Every observable of two per-core reports, with the skip counters
/// normalized away (callers that need them equal assert separately).
fn assert_cores_equal(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.committed, b.committed, "{what}: committed");
    assert_eq!(a.phase_cycles, b.phase_cycles, "{what}: phases");
    assert_eq!(a.l1_accesses, b.l1_accesses, "{what}: L1");
    assert_eq!(a.l2_accesses, b.l2_accesses, "{what}: L2");
    assert_eq!(a.l3_accesses, b.l3_accesses, "{what}: L3");
    assert_eq!(a.lm_accesses, b.lm_accesses, "{what}: LM");
    assert_eq!(a.bus_requests, b.bus_requests, "{what}: bus requests");
    assert_eq!(a.bus_wait_cycles, b.bus_wait_cycles, "{what}: bus waits");
    assert_eq!(a.dram_reads, b.dram_reads, "{what}: DRAM reads");
    assert_eq!(a.dram_writes, b.dram_writes, "{what}: DRAM writes");
    assert_eq!(a.coh_shared_hits, b.coh_shared_hits, "{what}: shared hits");
    assert_eq!(a.coh_invalidations, b.coh_invalidations, "{what}: invals");
    assert_eq!(a.coh_interventions, b.coh_interventions, "{what}: intervs");
    assert_eq!(
        a.coh_dirty_recalls, b.coh_dirty_recalls,
        "{what}: dirty recalls"
    );
    assert_eq!(a.ecc_retries, b.ecc_retries, "{what}: ECC retries");
    assert_eq!(a.dma_retries, b.dma_retries, "{what}: DMA retries");
    assert_eq!(
        a.energy_total().to_bits(),
        b.energy_total().to_bits(),
        "{what}: energy"
    );
    let mut sa = a.core.clone();
    sa.skipped_cycles = 0;
    let mut sb = b.core.clone();
    sb.skipped_cycles = 0;
    assert_eq!(sa, sb, "{what}: core stats");
}

#[test]
fn every_protocol_skips_bit_identically() {
    let kernel = nas::cg(Scale::Test);
    for cm in CoherenceMode::DIRECTORY {
        let cfg = MachineConfig::for_mode(SysMode::HybridCoherent).with_coherence(cm);
        let skip = RunSpec::new(&kernel)
            .cores(4)
            .config(cfg.clone())
            .run()
            .map(RunOutcome::into_multi)
            .expect("skip run");
        let lock = RunSpec::new(&kernel)
            .cores(4)
            .config(cfg.with_lockstep())
            .run()
            .map(RunOutcome::into_multi)
            .expect("lockstep run");
        assert_eq!(skip.makespan, lock.makespan, "{}: makespan", cm.name());
        assert_eq!(lock.total_skipped_cycles(), 0, "{}: lockstep", cm.name());
        assert!(
            skip.total_skipped_cycles() > 0,
            "{}: the run must still skip idle cycles",
            cm.name()
        );
        assert!(
            skip.total_shared_hits() > 0,
            "{}: CG x4 must actually exercise the directory",
            cm.name()
        );
        for (s, l) in skip.per_core.iter().zip(&lock.per_core) {
            assert_cores_equal(s, l, &format!("{} cg x4 core {}", cm.name(), s.core_id));
        }
    }
}

#[test]
fn every_protocol_keeps_threaded_clusters_equal_to_serial() {
    let kernel = nas::cg(Scale::Test);
    for cm in CoherenceMode::DIRECTORY {
        let run = |serial: bool| {
            let mut cluster = ClusterConfig::new(ClusterTopology::new(2, 2));
            if serial {
                cluster = cluster.serial();
            }
            let cfg = MachineConfig::for_mode(SysMode::HybridCoherent).with_coherence(cm);
            match RunSpec::new(&kernel)
                .clustered(&cluster)
                .config(cfg)
                .run()
                .map(RunOutcome::into_clusters)
            {
                Ok(r) => Some(r),
                Err(MultiRunError::Shard(_)) => None,
                Err(e) => panic!("{}: cluster run failed: {e}", cm.name()),
            }
        };
        let Some(serial) = run(true) else {
            panic!("CG must shard to a 2x2 topology");
        };
        let threaded = run(false).expect("shardability cannot depend on threading");
        assert_eq!(
            serial.makespan,
            threaded.makespan,
            "{}: makespan",
            cm.name()
        );
        assert_eq!(serial.epochs, threaded.epochs, "{}: epochs", cm.name());
        assert_eq!(
            serial.cross_cluster_fallbacks,
            threaded.cross_cluster_fallbacks,
            "{}: fallbacks",
            cm.name()
        );
        for (ca, cb) in serial.per_cluster.iter().zip(&threaded.per_cluster) {
            assert_eq!(ca.makespan, cb.makespan, "{}: cluster makespan", cm.name());
            for (ra, rb) in ca.per_core.iter().zip(&cb.per_core) {
                assert_eq!(
                    ra.core,
                    rb.core,
                    "{}: core stats diverged across drivers (incl. skips)",
                    cm.name()
                );
                assert_eq!(ra.coh_shared_hits, rb.coh_shared_hits, "{}", cm.name());
                assert_eq!(ra.coh_invalidations, rb.coh_invalidations, "{}", cm.name());
                assert_eq!(ra.coh_interventions, rb.coh_interventions, "{}", cm.name());
            }
        }
    }
}

#[test]
fn every_protocol_treats_faults_as_pure_timing() {
    let kernel = nas::cg(Scale::Test);
    for cm in CoherenceMode::DIRECTORY {
        let cfg = |fault: FaultConfig| {
            MachineConfig::for_mode(SysMode::HybridCoherent)
                .with_coherence(cm)
                .with_faults(fault)
        };
        let clean = RunSpec::new(&kernel)
            .cores(4)
            .config(cfg(FaultConfig::none()))
            .run()
            .map(RunOutcome::into_multi)
            .expect("clean run");
        let faulted = RunSpec::new(&kernel)
            .cores(4)
            .config(cfg(FaultConfig::uniform(7, 0.3)))
            .run()
            .map(RunOutcome::into_multi)
            .expect("faulted run");
        assert_eq!(
            clean.total_committed(),
            faulted.total_committed(),
            "{}: committed work diverged under faults",
            cm.name()
        );
        assert!(
            faulted.total_ecc_retries() + faulted.total_dma_retries() + faulted.total_dir_nacks()
                > 0,
            "{}: the plan must actually inject faults",
            cm.name()
        );
        // Skipping stays invisible under faults for every protocol.
        let skip = faulted;
        let lock = RunSpec::new(&kernel)
            .cores(4)
            .config(cfg(FaultConfig::uniform(7, 0.3)).with_lockstep())
            .run()
            .map(RunOutcome::into_multi)
            .expect("faulted lockstep run");
        assert_eq!(
            skip.makespan,
            lock.makespan,
            "{}: faulted makespan",
            cm.name()
        );
        for (s, l) in skip.per_core.iter().zip(&lock.per_core) {
            assert_cores_equal(
                s,
                l,
                &format!("{} faulted cg x4 core {}", cm.name(), s.core_id),
            );
        }
    }
}

#[test]
fn all_protocols_commit_identical_architectural_state() {
    // Final memory images and committed counts across the whole family,
    // against the `Replicate` baseline, on the sharded CG kernel whose
    // gathered table is the acceptance case for directory sharing.
    let kernel = nas::cg(Scale::Test);
    let images = |cm: CoherenceMode| -> (Vec<Vec<Vec<u64>>>, u64) {
        let shards = kernel.shard(4).expect("CG shards to 4");
        let cfg = MachineConfig::for_mode(SysMode::HybridCoherent).with_coherence(cm);
        let compiled: Vec<_> = shards
            .iter()
            .map(|s| (compile(s, cfg.mode.codegen()), s.clone()))
            .collect();
        let mut m = MultiMachine::for_kernels(cfg, &compiled);
        m.run().expect("run");
        let imgs = m
            .tiles
            .iter()
            .zip(&compiled)
            .map(|(tile, (ck, shard))| {
                (0..shard.arrays.len())
                    .map(|id| tile.read_array(ck, shard, id))
                    .collect()
            })
            .collect();
        let committed = m.tiles.iter().map(|t| t.core.stats.committed).sum();
        (imgs, committed)
    };
    let (base_img, base_committed) = images(CoherenceMode::Replicate);
    for cm in CoherenceMode::DIRECTORY {
        let (img, committed) = images(cm);
        assert_eq!(base_img, img, "{}: memory images diverged", cm.name());
        assert_eq!(
            base_committed,
            committed,
            "{}: committed work diverged",
            cm.name()
        );
    }
}

#[test]
fn family_members_differ_only_where_their_tables_say() {
    // The family's distinguishing statistics on CG x4: MSI's dirty
    // recalls re-read memory, so its DRAM reads dominate MESI's, which
    // dominate MOESI's (dirty sharing drops the round-trip); MESIF's
    // designated forwarder serves at least MESI's shared hits. CG's
    // shared table is read-mostly, so the orderings are non-strict.
    let kernel = nas::cg(Scale::Test);
    let run = |cm: CoherenceMode| {
        RunSpec::new(&kernel)
            .cores(4)
            .config(MachineConfig::for_mode(SysMode::HybridCoherent).with_coherence(cm))
            .run()
            .map(RunOutcome::into_multi)
            .expect("run")
    };
    let msi = run(CoherenceMode::Msi);
    let mesi = run(CoherenceMode::Mesi);
    let moesi = run(CoherenceMode::Moesi);
    let mesif = run(CoherenceMode::Mesif);
    assert!(
        msi.total_dram_reads() >= mesi.total_dram_reads(),
        "MSI must not read less DRAM than MESI ({} vs {})",
        msi.total_dram_reads(),
        mesi.total_dram_reads()
    );
    assert!(
        mesi.total_dram_reads() >= moesi.total_dram_reads(),
        "MOESI must not read more DRAM than MESI ({} vs {})",
        moesi.total_dram_reads(),
        mesi.total_dram_reads()
    );
    assert!(
        mesif.total_shared_hits() >= mesi.total_shared_hits(),
        "MESIF must not score fewer shared hits than MESI ({} vs {})",
        mesif.total_shared_hits(),
        mesi.total_shared_hits()
    );
    for (name, r) in [
        ("msi", &msi),
        ("mesi", &mesi),
        ("moesi", &moesi),
        ("mesif", &mesif),
    ] {
        assert!(
            r.total_shared_hits() > 0,
            "{name}: CG x4 must exercise the directory"
        );
    }
}
