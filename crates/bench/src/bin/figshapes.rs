//! Figure-shapes guard: asserts the monotonicity and ordering
//! invariants of the paper's figures (7, 8, 9) and of the scaling
//! curves on a small grid, then exits. CI runs this as its own job
//! (`--smoke`); a violated shape is a failed build, not a silently
//! drifting figure.
//!
//! ```text
//! cargo run --release -p hsim-bench --bin figshapes -- --smoke
//! ```
//!
//! The single-core figures are coherence-mode-invariant (an unsharded
//! kernel registers no shared ranges); the scaling curves are asserted
//! at shape level so the guard holds under both `HSIM_COHERENCE`
//! matrix legs.

use hsim::prelude::*;
use hsim_workloads::nas;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n: u64 = if smoke { 2 * 1024 } else { 4 * 1024 };
    let mut checked = 0usize;

    // ---------------------------------------------------------- fig 7
    // RD guards are free (the CAM lookup fits the AGU cycle); WR
    // overhead grows monotonically with the guarded share, driven by
    // the double store's extra instructions.
    let pts = fig7(n, 50, Parallelism::HostThreads).expect("fig7");
    for p in pts.iter().filter(|p| p.mode == MicroMode::Rd) {
        assert!(
            (p.overhead - 1.0).abs() < 0.05,
            "fig7 RD@{}%: overhead must be ~1.0, got {:.3}",
            p.pct,
            p.overhead
        );
        checked += 1;
    }
    let wr: Vec<_> = pts.iter().filter(|p| p.mode == MicroMode::Wr).collect();
    for w in wr.windows(2) {
        assert!(
            w[1].overhead >= w[0].overhead - 0.02,
            "fig7 WR: overhead must be monotone in the guarded share \
             ({:.3}@{}% -> {:.3}@{}%)",
            w[0].overhead,
            w[0].pct,
            w[1].overhead,
            w[1].pct
        );
        checked += 1;
    }
    assert!(
        wr.last().expect("WR points").overhead > wr[0].overhead + 0.05,
        "fig7 WR: the curve must actually rise"
    );
    assert!(
        wr.last().unwrap().inst_ratio > 1.10,
        "fig7 WR@100%: the double store must add instructions"
    );
    checked += 2;
    println!("fig7 shapes OK (RD flat, WR monotone rising)");

    // ---------------------------------------------------------- fig 8
    // Protocol overhead vs the oracle: never a speedup beyond noise,
    // and the double-store kernels (IS) sit above the read-only ones
    // (CG).
    let f8 = fig8(
        &[nas::is(Scale::Test), nas::cg(Scale::Test)],
        Parallelism::HostThreads,
    )
    .expect("fig8");
    let ratio = |name: &str| f8.iter().find(|r| r.name == name).unwrap().time_ratio;
    for r in &f8 {
        assert!(
            r.time_ratio > 0.999,
            "fig8 {}: the coherent machine cannot beat the oracle ({:.4})",
            r.name,
            r.time_ratio
        );
        checked += 1;
    }
    assert!(
        ratio("IS") >= ratio("CG"),
        "fig8: double-store IS ({:.4}) must pay at least read-only CG ({:.4})",
        ratio("IS"),
        ratio("CG")
    );
    checked += 1;
    println!("fig8 shapes OK (no oracle beating, IS >= CG overhead)");

    // ---------------------------------------------------------- fig 9
    // Hybrid vs cache-based: the stream/reuse kernels (MG, FT) must
    // favor the hybrid, compute-bound EP sits near parity below them.
    let f9 = compare_systems(
        &[
            nas::ep(Scale::Test),
            nas::ft(Scale::Test),
            nas::mg(Scale::Test),
        ],
        Parallelism::HostThreads,
    )
    .expect("fig9");
    let speedup = |name: &str| f9.iter().find(|r| r.name == name).unwrap().speedup;
    assert!(speedup("MG") > 1.1, "fig9 MG: {:.2}", speedup("MG"));
    assert!(speedup("FT") > 1.05, "fig9 FT: {:.2}", speedup("FT"));
    assert!(
        speedup("MG") > speedup("EP") && speedup("FT") > speedup("EP"),
        "fig9 ordering: memory-bound kernels ({:.2}, {:.2}) must beat EP ({:.2})",
        speedup("MG"),
        speedup("FT"),
        speedup("EP")
    );
    assert!(
        (0.75..1.3).contains(&speedup("EP")),
        "fig9 EP must sit near parity: {:.2}",
        speedup("EP")
    );
    checked += 4;
    println!("fig9 shapes OK (MG/FT favor hybrid, EP near parity)");

    // -------------------------------------------------------- scaling
    // Sharding a kernel over more cores must shrink the makespan
    // monotonically and keep the speedup curve rising; the shared
    // backside keeps it sublinear (speedup < cores).
    let cfg = MachineConfig::for_mode(SysMode::HybridCoherent);
    let curves = scaling_sweep(
        &[nas::cg(Scale::Test)],
        &[1, 2, 4],
        &cfg,
        Parallelism::HostThreads,
    )
    .expect("scaling");
    assert_eq!(curves.len(), 3, "CG must shard to every point");
    for w in curves.windows(2) {
        assert!(
            w[1].makespan < w[0].makespan,
            "scaling: makespan must shrink with cores ({}@x{} -> {}@x{})",
            w[0].makespan,
            w[0].cores,
            w[1].makespan,
            w[1].cores
        );
        assert!(
            w[1].speedup > w[0].speedup,
            "scaling: speedup must rise with cores"
        );
        checked += 2;
    }
    for r in &curves {
        assert!(
            r.speedup <= r.cores as f64 + 1e-9,
            "scaling x{}: speedup {:.2} cannot be superlinear here",
            r.cores,
            r.speedup
        );
        checked += 1;
    }
    let four = curves.last().unwrap();
    assert!(
        four.bus_wait_cycles >= curves[0].bus_wait_cycles,
        "scaling: contention must not shrink with more cores"
    );
    checked += 1;
    println!(
        "scaling shapes OK (CG x1/2/4 speedups {:.2}/{:.2}/{:.2}, {:?} coherence)",
        curves[0].speedup, curves[1].speedup, curves[2].speedup, cfg.mem.coherence.mode
    );

    // --------------------------------------------------------- hetero
    // Mixed hybrid/cache chips: the all-hybrid hetero machine is the
    // homogeneous machine exactly, and mixing in cache-based tiles
    // moves the makespan monotonically toward (and between) the
    // all-cache endpoint — the coexistence claim, as a curve.
    let cg = nas::cg(Scale::Test);
    let cores = 4;
    let chip = |hybrid_tiles: usize| -> u64 {
        let cfgs: Vec<MachineConfig> = (0..cores)
            .map(|i| {
                MachineConfig::for_mode(if i < hybrid_tiles {
                    SysMode::HybridCoherent
                } else {
                    SysMode::CacheBased
                })
            })
            .collect();
        RunSpec::new(&cg)
            .hetero(cfgs)
            .weights(&vec![1; cores])
            .run()
            .expect("hetero run")
            .into_multi()
            .makespan
    };
    let all_hybrid = chip(4);
    let mixed = chip(2);
    let all_cache = chip(0);
    let homo = RunSpec::new(&cg)
        .cores(cores)
        .run()
        .expect("homogeneous run")
        .into_multi()
        .makespan;
    assert_eq!(
        all_hybrid, homo,
        "hetero: the all-hybrid chip must equal the homogeneous machine"
    );
    let (lo, hi) = (all_hybrid.min(all_cache), all_hybrid.max(all_cache));
    assert!(
        mixed as f64 >= lo as f64 * 0.95 && mixed as f64 <= hi as f64 * 1.05,
        "hetero: the 2H+2C chip ({mixed}) must interpolate the endpoints [{lo}, {hi}]"
    );
    assert!(
        all_hybrid < all_cache,
        "hetero: CG must favor the hybrid endpoint ({all_hybrid} vs {all_cache})"
    );
    checked += 3;
    println!(
        "hetero shapes OK (CG 4H/2H+2C/0H makespans {all_hybrid}/{mixed}/{all_cache}, \
         all-hybrid == homogeneous)"
    );

    // ------------------------------------------------- protocol family
    // CG x4 under every directory protocol: dirty-recall policy orders
    // the DRAM read counts — MSI re-reads memory on every dirty recall,
    // MESI serves recalls without a re-read, MOESI's dirty sharing can
    // only drop further reads. MESIF's designated forwarder never
    // scores fewer shared hits than MESI. CG's shared table is
    // read-mostly, so ties are legitimate: the orderings are non-strict.
    let proto = protocol_sweep(
        &[nas::cg(Scale::Test)],
        &[4],
        SysMode::HybridCoherent,
        Parallelism::HostThreads,
    )
    .expect("protocol sweep");
    let row = |name: &str| {
        proto
            .iter()
            .find(|r| r.protocol == name)
            .unwrap_or_else(|| panic!("CG x4 must run under {name}"))
    };
    let (msi, mesi, moesi, mesif) = (row("msi"), row("mesi"), row("moesi"), row("mesif"));
    assert!(
        msi.dram_reads >= mesi.dram_reads,
        "protocol ordering: MSI DRAM reads ({}) must be >= MESI ({})",
        msi.dram_reads,
        mesi.dram_reads
    );
    assert!(
        mesi.dram_reads >= moesi.dram_reads,
        "protocol ordering: MESI DRAM reads ({}) must be >= MOESI ({})",
        mesi.dram_reads,
        moesi.dram_reads
    );
    assert!(
        mesif.shared_hits >= mesi.shared_hits,
        "protocol ordering: MESIF shared hits ({}) must be >= MESI ({})",
        mesif.shared_hits,
        mesi.shared_hits
    );
    let committed = mesi.committed;
    for r in &proto {
        assert_eq!(
            r.committed, committed,
            "protocol {} changed committed work",
            r.protocol
        );
    }
    checked += 3 + proto.len();
    println!(
        "protocol shapes OK (CG x4 dramR msi/mesi/moesi {}/{}/{}, \
         shrhits mesif/mesi {}/{})",
        msi.dram_reads, mesi.dram_reads, moesi.dram_reads, mesif.shared_hits, mesi.shared_hits
    );

    // ----------------------------------------------- comm workloads
    // The communication sweep's headline orderings. Hybrid tiles move
    // the ping-pong payload through LM + DMA bulk transfers and keep
    // only the no_map'd flags coherent; cache-based tiles ping-pong
    // every payload line through invalidations and interventions, so
    // the hybrid round trip must be cheaper. On the cache-based queue
    // hand-off, MSI recalls every dirty line through DRAM while
    // MOESI's dirty sharing and MESIF's forwarder avoid the re-read:
    // MSI upper-bounds both on DRAM reads.
    let comm = comm_sweep(Scale::Test, &[4], Parallelism::HostThreads).expect("comm sweep");
    let pp = |mode: SysMode| {
        comm.iter()
            .find(|r| r.workload == "pingpong" && r.mode == mode)
            .expect("ping-pong runs on both systems")
    };
    let (pp_hybrid, pp_cache) = (pp(SysMode::HybridCoherent), pp(SysMode::CacheBased));
    assert!(
        pp_hybrid.round_cycles < pp_cache.round_cycles,
        "comm: hybrid LM+DMA ping-pong RTT ({:.1}) must beat the \
         cache-coherent flag-spinning RTT ({:.1})",
        pp_hybrid.round_cycles,
        pp_cache.round_cycles
    );
    let q = |proto: &str| {
        comm.iter()
            .find(|r| r.workload == "queue" && r.mode == SysMode::CacheBased && r.protocol == proto)
            .unwrap_or_else(|| panic!("queue must run under {proto}"))
    };
    let (q_msi, q_moesi, q_mesif) = (q("msi"), q("moesi"), q("mesif"));
    assert!(
        q_msi.dram_reads >= q_moesi.dram_reads,
        "comm: MSI queue hand-off DRAM reads ({}) must be >= MOESI ({})",
        q_msi.dram_reads,
        q_moesi.dram_reads
    );
    assert!(
        q_msi.dram_reads >= q_mesif.dram_reads,
        "comm: MSI queue hand-off DRAM reads ({}) must be >= MESIF ({})",
        q_msi.dram_reads,
        q_mesif.dram_reads
    );
    // Protocols are timing-only: every cache-based queue run commits
    // the same instructions regardless of the directory table. (The
    // hybrid rows commit a different count — LM+DMA codegen — so the
    // invariance is asserted within one system mode.)
    let cache_queue: Vec<_> = comm
        .iter()
        .filter(|r| r.workload == "queue" && r.mode == SysMode::CacheBased)
        .collect();
    for r in &cache_queue {
        assert_eq!(
            r.committed, q_msi.committed,
            "comm: queue committed work must be protocol-invariant ({})",
            r.protocol
        );
    }
    checked += 3 + cache_queue.len();
    println!(
        "comm shapes OK (pingpong RTT hybrid/cache {:.1}/{:.1}, \
         queue dramR msi/moesi/mesif {}/{}/{})",
        pp_hybrid.round_cycles,
        pp_cache.round_cycles,
        q_msi.dram_reads,
        q_moesi.dram_reads,
        q_mesif.dram_reads
    );

    println!("all figure shapes hold ({checked} assertions)");
}
