//! Phase 1 of the compiler support: classification of memory references
//! (§3.1).
//!
//! * **Regular** references expose a unit-stride pattern and are mapped
//!   to the local memory (up to the 32-buffer directory limit; exceeding
//!   arrays are simply not mapped, as §3.2 prescribes).
//! * **Local** references (`scale = 0`) are loop-invariant scalars; they
//!   stay in the caches, where they are L1-resident.
//! * **Irregular** references are unpredictable accesses the analysis
//!   can prove disjoint from every LM-mapped array; they go to the
//!   caches.
//! * **Potentially incoherent** references are unpredictable accesses
//!   that `may`/`must` alias an LM-mapped array (or are forced by the
//!   microbenchmark modes); they become guarded instructions, and writes
//!   among them become double stores.

use crate::alias::AliasOracle;
use crate::ir::{Index, Kernel, LoopNest, RefId};
use std::collections::HashSet;

/// The class of a memory reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefClass {
    /// Unit-stride, mapped to an LM buffer.
    Regular,
    /// Unit-stride but not mapped (beyond the directory's buffer limit).
    RegularUnmapped,
    /// Loop-invariant scalar (cache-served, L1-resident).
    Local,
    /// Unpredictable, provably no alias with LM-mapped data.
    Irregular,
    /// Unpredictable, may/must alias LM-mapped data: guarded.
    PotentiallyIncoherent,
}

/// The per-loop compilation plan derived from classification.
#[derive(Clone, Debug)]
pub struct LoopPlan {
    /// Class per reference.
    pub classes: Vec<RefClass>,
    /// Arrays mapped to LM buffers, in buffer order.
    pub lm_arrays: Vec<usize>,
    /// LM buffer size in bytes (power of two).
    pub buf_size: u64,
    /// Elements per buffer window.
    pub chunk_elems: u64,
    /// Largest positive affine offset among mapped regular references
    /// (the work loop peels this many trailing iterations per tile).
    pub tail_span: u64,
    /// Arrays whose buffers are written and therefore written back.
    pub dirty_arrays: HashSet<usize>,
    /// References needing the double store (potentially incoherent
    /// writes, §3.1).
    pub double_stores: HashSet<RefId>,
}

impl LoopPlan {
    /// Count of references classified as potentially incoherent.
    pub fn guarded_refs(&self) -> usize {
        self.classes
            .iter()
            .filter(|c| **c == RefClass::PotentiallyIncoherent)
            .count()
    }

    /// Buffer index of an LM-mapped array.
    pub fn buffer_of(&self, array: usize) -> Option<usize> {
        self.lm_arrays.iter().position(|a| *a == array)
    }
}

/// Classifies one loop and derives its plan.
///
/// `lm_size` is the local-memory capacity; `max_buffers` the directory
/// entry count (32). Passing `lm_size = 0` (cache-based compilation)
/// classifies every strided reference as `RegularUnmapped` and suppresses
/// potential incoherence entirely (there is no LM to be incoherent
/// with).
pub fn classify_loop(kernel: &Kernel, l: &LoopNest, lm_size: u64, max_buffers: usize) -> LoopPlan {
    let alias: &AliasOracle = &kernel.alias;
    // Pass A: strided arrays in textual order of first appearance.
    // Forced-incoherent references still witness a strided pattern (the
    // Table 2 microbenchmark keeps its LM tiling in every mode and only
    // changes which accesses are guarded); arrays the workload explicitly
    // excludes (`no_map`) are skipped.
    let mut strided_arrays: Vec<usize> = Vec::new();
    for r in &l.refs {
        if l.unmapped_arrays.contains(&r.array) {
            continue;
        }
        if let Index::Affine { scale: 1, .. } = r.index {
            if !strided_arrays.contains(&r.array) {
                strided_arrays.push(r.array);
            }
        }
    }
    // Decide how many arrays fit: equal split of the LM rounded down to a
    // power of two, at least one cache line.
    let (lm_arrays, buf_size) = if lm_size == 0 || strided_arrays.is_empty() {
        (Vec::new(), 0)
    } else {
        let mut arrays = strided_arrays.clone();
        arrays.truncate(max_buffers);
        loop {
            let per = lm_size / arrays.len() as u64;
            let buf = prev_pow2(per);
            if buf >= 64 {
                break (arrays, buf);
            }
            arrays.pop();
        }
    };
    let mapped: HashSet<usize> = lm_arrays.iter().copied().collect();

    // Pass B: classify each reference.
    let mut classes = Vec::with_capacity(l.refs.len());
    for (rid, r) in l.refs.iter().enumerate() {
        let forced = l.forced_incoherent.contains(&rid);
        let class = match r.index {
            Index::Affine { scale: 0, .. } => RefClass::Local,
            Index::Affine { .. } => {
                if forced && lm_size > 0 {
                    RefClass::PotentiallyIncoherent
                } else if mapped.contains(&r.array) {
                    RefClass::Regular
                } else {
                    RefClass::RegularUnmapped
                }
            }
            Index::Indirect { .. } => {
                if lm_size == 0 {
                    RefClass::Irregular
                } else if forced || lm_arrays.iter().any(|a| alias.unresolved(r.array, *a)) {
                    RefClass::PotentiallyIncoherent
                } else {
                    RefClass::Irregular
                }
            }
        };
        classes.push(class);
    }

    // Pass C: tail span, dirty buffers, double stores.
    let mut tail_span = 0u64;
    for (rid, r) in l.refs.iter().enumerate() {
        if classes[rid] == RefClass::Regular {
            if let Index::Affine { offset, .. } = r.index {
                if offset > 0 {
                    tail_span = tail_span.max(offset as u64);
                }
            }
        }
    }
    let written = l.written_refs();
    let mut dirty_arrays = HashSet::new();
    let mut double_stores = HashSet::new();
    for rid in &written {
        match classes[*rid] {
            RefClass::Regular => {
                dirty_arrays.insert(l.refs[*rid].array);
            }
            RefClass::PotentiallyIncoherent => {
                // §3.1: the compiler can almost never prove the aliased
                // LM data will be written back, so potentially incoherent
                // writes always get the double store.
                double_stores.insert(*rid);
            }
            _ => {}
        }
    }

    LoopPlan {
        classes,
        chunk_elems: if buf_size == 0 { 0 } else { buf_size / 8 },
        lm_arrays,
        buf_size,
        tail_span,
        dirty_arrays,
        double_stores,
    }
}

fn prev_pow2(x: u64) -> u64 {
    if x == 0 {
        0
    } else {
        1u64 << (63 - x.leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Expr, KernelBuilder};

    const LM: u64 = 32 * 1024;

    /// The paper's Figure 3 example: a, b regular; c irregular (proved);
    /// ptr potentially incoherent (may-alias a).
    fn figure3() -> (Kernel, LoopPlan) {
        let mut kb = KernelBuilder::new("fig3");
        let a = kb.array_i64("a", 4096);
        let b = kb.array_i64("b", 4096);
        let c = kb.array_i64("c", 2048);
        let idx = kb.array_i64("idx", 4096);
        let ptr = kb.array_i64("ptr_target", 4096);
        kb.begin_loop(4096);
        let ra = kb.ref_affine(a, 1, 0);
        let rb = kb.ref_affine(b, 1, 0);
        let ridx = kb.ref_affine(idx, 1, 0);
        let rc = kb.ref_indirect(c, ridx, 0);
        let rp = kb.ref_indirect(ptr, ridx, 0);
        kb.stmt(ra, Expr::Ref(rb));
        kb.stmt(rc, Expr::ConstI(0));
        kb.stmt(rp, Expr::add(Expr::Ref(rp), Expr::ConstI(1)));
        kb.alias_mut().may_alias(ptr, a);
        kb.end_loop();
        let k = kb.build().unwrap();
        let plan = classify_loop(&k, &k.loops[0], LM, 32);
        (k, plan)
    }

    #[test]
    fn figure3_classification() {
        let (_, plan) = figure3();
        assert_eq!(plan.classes[0], RefClass::Regular); // a
        assert_eq!(plan.classes[1], RefClass::Regular); // b
        assert_eq!(plan.classes[2], RefClass::Regular); // idx (strided)
        assert_eq!(plan.classes[3], RefClass::Irregular); // c: proved no-alias
        assert_eq!(plan.classes[4], RefClass::PotentiallyIncoherent); // ptr
        assert_eq!(plan.guarded_refs(), 1);
    }

    #[test]
    fn figure3_plan_details() {
        let (_, plan) = figure3();
        // Three mapped arrays -> 32K/3 -> 8K buffers.
        assert_eq!(plan.lm_arrays.len(), 3);
        assert_eq!(plan.buf_size, 8192);
        assert_eq!(plan.chunk_elems, 1024);
        // a is written via a regular ref -> dirty; ptr write -> double
        // store.
        assert!(plan.dirty_arrays.contains(&0));
        assert!(!plan.dirty_arrays.contains(&1));
        assert_eq!(plan.double_stores.len(), 1);
        assert!(plan.double_stores.contains(&4));
    }

    #[test]
    fn paper_figure2_buffers_split_evenly() {
        // "In Figure 2 there are two regular accesses (a and b) so two
        // buffers would be allocated, each one of them occupying half the
        // storage."
        let mut kb = KernelBuilder::new("fig2");
        let a = kb.array_i64("a", 4096);
        let b = kb.array_i64("b", 4096);
        kb.begin_loop(4096);
        let ra = kb.ref_affine(a, 1, 0);
        let rb = kb.ref_affine(b, 1, 0);
        kb.stmt(ra, Expr::Ref(rb));
        kb.end_loop();
        let k = kb.build().unwrap();
        let plan = classify_loop(&k, &k.loops[0], LM, 32);
        assert_eq!(plan.buf_size, 16 * 1024);
    }

    #[test]
    fn cache_based_maps_nothing() {
        let (k, _) = figure3();
        let plan = classify_loop(&k, &k.loops[0], 0, 32);
        assert!(plan.lm_arrays.is_empty());
        assert_eq!(plan.classes[0], RefClass::RegularUnmapped);
        assert_eq!(plan.classes[4], RefClass::Irregular);
        assert_eq!(plan.guarded_refs(), 0);
        assert!(plan.double_stores.is_empty());
    }

    #[test]
    fn buffer_limit_demotes_extra_arrays() {
        // 40 strided arrays against a 32-entry directory: the last 8 are
        // not mapped (§3.2).
        let mut kb = KernelBuilder::new("many");
        let mut refs = Vec::new();
        for i in 0..40 {
            let a = kb.array_i64(&format!("a{i}"), 2048);
            refs.push(a);
        }
        kb.begin_loop(2048);
        let rs: Vec<_> = refs.iter().map(|a| kb.ref_affine(*a, 1, 0)).collect();
        for w in &rs {
            kb.stmt(*w, Expr::ConstI(1));
        }
        kb.end_loop();
        let k = kb.build().unwrap();
        let plan = classify_loop(&k, &k.loops[0], LM, 32);
        assert_eq!(plan.lm_arrays.len(), 32);
        assert_eq!(plan.buf_size, 1024); // 32K/32
        let unmapped = plan
            .classes
            .iter()
            .filter(|c| **c == RefClass::RegularUnmapped)
            .count();
        assert_eq!(unmapped, 8);
    }

    #[test]
    fn scalar_refs_are_local() {
        let mut kb = KernelBuilder::new("s");
        let a = kb.array_i64("a", 2048);
        let s = kb.array_i64("s", 4);
        kb.begin_loop(2048);
        let ra = kb.ref_affine(a, 1, 0);
        let rs = kb.ref_affine(s, 0, 2);
        kb.stmt(rs, Expr::add(Expr::Ref(rs), Expr::Ref(ra)));
        kb.end_loop();
        let k = kb.build().unwrap();
        let plan = classify_loop(&k, &k.loops[0], LM, 32);
        assert_eq!(plan.classes[1], RefClass::Local);
        // Scalars are not LM-mapped and never dirty buffers.
        assert!(!plan.dirty_arrays.contains(&1));
    }

    #[test]
    fn forced_incoherent_affine_is_guarded() {
        let mut kb = KernelBuilder::new("f");
        let a = kb.array_i64("a", 2049);
        kb.begin_loop(2048);
        let rload = kb.ref_affine(a, 1, 0);
        let rstore = kb.ref_affine(a, 1, 1);
        kb.force_incoherent(rstore);
        kb.stmt(rstore, Expr::add(Expr::Ref(rload), Expr::ConstI(3)));
        kb.end_loop();
        let k = kb.build().unwrap();
        let plan = classify_loop(&k, &k.loops[0], LM, 32);
        assert_eq!(plan.classes[0], RefClass::Regular);
        assert_eq!(plan.classes[1], RefClass::PotentiallyIncoherent);
        assert!(plan.double_stores.contains(&1));
        // Forced-incoherent writes do not dirty the buffer by themselves.
        assert!(!plan.dirty_arrays.contains(&0));
    }

    #[test]
    fn tail_span_follows_max_positive_offset() {
        let mut kb = KernelBuilder::new("t");
        let a = kb.array_i64("a", 4100);
        kb.begin_loop(4096);
        let r0 = kb.ref_affine(a, 1, 0);
        let r2 = kb.ref_affine(a, 1, 2);
        kb.stmt(r2, Expr::Ref(r0));
        kb.end_loop();
        let k = kb.build().unwrap();
        let plan = classify_loop(&k, &k.loops[0], LM, 32);
        assert_eq!(plan.tail_span, 2);
    }
}
