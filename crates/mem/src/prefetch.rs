//! IP-based stream prefetcher (Table 1: "IP-based stream prefetcher to L1,
//! L2 and L3", after Chen & Baer and the Intel Core smart-memory-access
//! design).
//!
//! The prefetcher keeps a finite, direct-mapped history table indexed by
//! the load/store PC. Each entry learns the stride of its stream and, once
//! confident, issues prefetches `distance` lines ahead with a configurable
//! `degree`. The **finite table is load-bearing for the paper's
//! evaluation**: loops with many concurrent strided references (MG: 60,
//! SP: 497) overflow the table, entries are continually re-allocated
//! ("collisions in the history tables of the prefetchers", §4.3), training
//! never completes, and the cache-based system loses both the prefetch
//! benefit and cache capacity to useless prefetches. The hybrid memory
//! system sidesteps this by serving strided references from the LM.

/// Prefetcher configuration.
#[derive(Clone, Debug)]
pub struct PrefetchConfig {
    /// Number of history-table entries (per-PC streams tracked).
    pub table_entries: usize,
    /// Consecutive same-stride observations required before prefetching.
    pub train_threshold: u32,
    /// Lines prefetched per trigger.
    pub degree: u32,
    /// How many strides ahead the first prefetch lands.
    pub distance: u32,
    /// Enables the prefetcher.
    pub enabled: bool,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            table_entries: 64,
            train_threshold: 2,
            degree: 2,
            distance: 4,
            enabled: true,
        }
    }
}

#[derive(Clone, Copy, Default)]
struct StreamEntry {
    pc_tag: u64,
    valid: bool,
    last_addr: u64,
    stride: i64,
    confidence: u32,
}

/// Prefetcher statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct PrefetchStats {
    /// Training observations processed.
    pub observations: u64,
    /// Table collisions: a PC evicted another live stream's entry.
    pub collisions: u64,
    /// Prefetch addresses issued.
    pub issued: u64,
}

/// The IP-based stream prefetcher.
pub struct StreamPrefetcher {
    cfg: PrefetchConfig,
    table: Vec<StreamEntry>,
    mask: usize,
    /// Statistics.
    pub stats: PrefetchStats,
}

impl StreamPrefetcher {
    /// Builds a prefetcher; `table_entries` is rounded up to a power of
    /// two.
    pub fn new(cfg: PrefetchConfig) -> Self {
        let n = cfg.table_entries.next_power_of_two().max(1);
        StreamPrefetcher {
            mask: n - 1,
            table: vec![StreamEntry::default(); n],
            cfg,
            stats: PrefetchStats::default(),
        }
    }

    /// Observes a demand access from `pc` to `addr` and returns the list
    /// of line addresses to prefetch (empty while training or disabled).
    pub fn observe(&mut self, pc: u64, addr: u64, line_bytes: u64) -> Vec<u64> {
        if !self.cfg.enabled {
            return Vec::new();
        }
        self.stats.observations += 1;
        // Instructions are 8-byte aligned: hash on the instruction index
        // so consecutive memory PCs spread over the whole table.
        let idx = ((pc >> 3) as usize ^ (pc >> 9) as usize) & self.mask;
        let e = &mut self.table[idx];
        if !e.valid || e.pc_tag != pc {
            if e.valid && e.pc_tag != pc {
                self.stats.collisions += 1;
            }
            *e = StreamEntry {
                pc_tag: pc,
                valid: true,
                last_addr: addr,
                stride: 0,
                confidence: 0,
            };
            return Vec::new();
        }
        let stride = addr as i64 - e.last_addr as i64;
        e.last_addr = addr;
        if stride == 0 {
            return Vec::new();
        }
        if stride == e.stride {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.stride = stride;
            e.confidence = 0;
        }
        if e.confidence < self.cfg.train_threshold {
            return Vec::new();
        }
        // Confident: prefetch `degree` lines starting `distance` *lines*
        // ahead in the stream's direction. Small strides advance less
        // than a line per access, so the lookahead must be line-granular
        // for the prefetch to stay ahead of the demand stream
        // (timeliness). Strides larger than a line use the stride itself.
        let mut out = Vec::with_capacity(self.cfg.degree as usize);
        let line_mask = !(line_bytes - 1);
        let step = if stride.unsigned_abs() >= line_bytes {
            stride
        } else {
            stride.signum() * line_bytes as i64
        };
        for k in 0..self.cfg.degree {
            let target = addr as i64 + step * (self.cfg.distance + k) as i64;
            if target < 0 {
                continue;
            }
            let line = target as u64 & line_mask;
            if !out.contains(&line) && line != (addr & line_mask) {
                out.push(line);
            }
        }
        self.stats.issued += out.len() as u64;
        out
    }

    /// Fraction of observations that collided in the table (0..1).
    pub fn collision_rate(&self) -> f64 {
        if self.stats.observations == 0 {
            0.0
        } else {
            self.stats.collisions as f64 / self.stats.observations as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf(entries: usize) -> StreamPrefetcher {
        StreamPrefetcher::new(PrefetchConfig {
            table_entries: entries,
            train_threshold: 2,
            degree: 2,
            distance: 4,
            enabled: true,
        })
    }

    #[test]
    fn trains_on_constant_stride() {
        let mut p = pf(16);
        let pc = 0x400;
        // stride 64: needs 1 (allocate) + 2 (train) observations.
        assert!(p.observe(pc, 0x1000, 64).is_empty());
        assert!(p.observe(pc, 0x1040, 64).is_empty()); // stride learned, conf=0
        assert!(p.observe(pc, 0x1080, 64).is_empty()); // conf=1
        let v = p.observe(pc, 0x10c0, 64); // conf=2 -> prefetch
        assert_eq!(v, vec![0x10c0 + 4 * 64, 0x10c0 + 5 * 64]);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = pf(16);
        let pc = 0x400;
        p.observe(pc, 0x1000, 64);
        p.observe(pc, 0x1040, 64);
        p.observe(pc, 0x1080, 64);
        assert!(!p.observe(pc, 0x10c0, 64).is_empty());
        // Irregular jump: confidence resets, no prefetch.
        assert!(p.observe(pc, 0x9000, 64).is_empty());
        assert!(p.observe(pc, 0x9040, 64).is_empty());
    }

    #[test]
    fn small_strides_dedup_lines() {
        let mut p = pf(16);
        let pc = 0x8;
        // stride 8 within a 64B line: distance 4 & 5 strides ahead both in
        // the same or adjacent line; duplicates must be removed.
        p.observe(pc, 0x1000, 64);
        p.observe(pc, 0x1008, 64);
        p.observe(pc, 0x1010, 64);
        let v = p.observe(pc, 0x1018, 64);
        assert!(!v.is_empty());
        let mut sorted = v.clone();
        sorted.dedup();
        assert_eq!(v, sorted);
    }

    #[test]
    fn table_collisions_prevent_training() {
        // 2-entry table, 8 interleaved streams with distinct PCs: entries
        // thrash, nothing trains.
        let mut p = pf(2);
        let mut issued = 0;
        for round in 0..50u64 {
            for s in 0..8u64 {
                let pc = 0x100 + s * 8;
                let addr = 0x10000 * s + round * 64;
                issued += p.observe(pc, addr, 64).len();
            }
        }
        assert_eq!(issued, 0, "thrashed table must never train");
        assert!(p.stats.collisions > 300);
        assert!(p.collision_rate() > 0.8);
    }

    #[test]
    fn large_table_handles_many_streams() {
        let mut p = pf(64);
        let mut issued = 0;
        for round in 0..50u64 {
            for s in 0..8u64 {
                let pc = 0x100 + s * 8;
                let addr = 0x10000 * s + round * 64;
                issued += p.observe(pc, addr, 64).len();
            }
        }
        assert!(issued > 0, "8 streams fit a 64-entry table");
    }

    #[test]
    fn disabled_prefetcher_is_silent() {
        let mut p = StreamPrefetcher::new(PrefetchConfig {
            enabled: false,
            ..PrefetchConfig::default()
        });
        for i in 0..10 {
            assert!(p.observe(0x4, 0x1000 + i * 64, 64).is_empty());
        }
        assert_eq!(p.stats.observations, 0);
    }

    #[test]
    fn zero_stride_never_prefetches() {
        let mut p = pf(16);
        for _ in 0..10 {
            assert!(p.observe(0x4, 0x1000, 64).is_empty());
        }
    }

    #[test]
    fn negative_stride_streams_train() {
        let mut p = pf(16);
        let pc = 0x40;
        p.observe(pc, 0x10000, 64);
        p.observe(pc, 0x10000 - 64, 64);
        p.observe(pc, 0x10000 - 128, 64);
        let v = p.observe(pc, 0x10000 - 192, 64);
        assert!(!v.is_empty());
        assert!(v[0] < 0x10000 - 192);
    }
}
