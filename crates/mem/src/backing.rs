//! Everything behind the last-level cache: the functional backing store
//! and the DRAM channel's timing model.
//!
//! Two independent concerns live here, deliberately side by side:
//!
//! * [`PagedMem`] — the **functional** sparse, paged 64-bit address
//!   space. Every byte of architectural state (data segment, local-memory
//!   window, DMA buffers) lives here. The cache hierarchy and local
//!   memory are pure *timing* models layered on top, so functional
//!   correctness is independent of timing bugs — which in turn lets the
//!   test suite check the coherence protocol end to end by comparing
//!   final memory images across machine configurations. Pages are 4 KiB
//!   and allocated on first touch; a one-entry translation cache makes
//!   the common sequential-access pattern cheap.
//! * [`DramController`] — the **timing** model of the memory channel the
//!   shared backside reads and writes through: per-DRAM-bank row buffers
//!   with an open-row policy (row hit / row miss / row conflict
//!   latencies), a bounded posted-write queue drained hit-first
//!   (FR-FCFS-style), and a flat-latency escape hatch
//!   ([`DramConfig::flat_dram`]) that reproduces the pre-banking model
//!   bit for bit.
//!
//! ## Invariants
//!
//! * **Stat partitioning** — [`DramController`] increments each
//!   [`DramStats`] counter exactly once per event and reports the
//!   affected requester to its caller ([`RowOutcome`], the drained-write
//!   owner), so the shared backside can mirror every increment into
//!   exactly one per-core share; summing per-core shares always
//!   reproduces the channel totals. The `core` recorded with a posted
//!   write is whoever the backside charges the write to — for write
//!   throughs and dirty victims the requester, for MESI M-state
//!   interventions the *owner* whose dirty line is recalled — and the
//!   drain-time row outcome is attributed to that same core, so
//!   intervention-triggered writes partition exactly like every other
//!   counter (pinned by the hierarchy partitioning tests in both
//!   coherence modes).
//! * **Horizon monotonicity** — [`DramController::next_event_after`]
//!   returns the earliest cycle strictly after `now` at which channel or
//!   bank occupancy changes. All controller state changes happen
//!   synchronously inside `read`/`write_posted` calls, so between calls
//!   the horizon can only move forward: the event-horizon cycle skipper
//!   may sleep until it without missing a state change.

use crate::fault::{FaultConfig, FaultRoller, FaultSite};
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const OFFSET_MASK: u64 = (PAGE_SIZE - 1) as u64;

/// The memo's empty sentinel: page numbers are `addr >> 12`, so a real
/// page can never equal it.
const NO_PAGE: u64 = u64::MAX;

/// Sparse paged memory. Reads of untouched memory return zero.
///
/// Frames live in a dense `Vec`; a `HashMap` translates page numbers to
/// frame slots, and a one-entry `(page, slot)` memo short-circuits the
/// map on the sequential access patterns that dominate kernel traffic
/// (both reads and writes).
pub struct PagedMem {
    /// Page frames, indexed by the slots stored in `index`.
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
    /// Page number → frame slot in `pages`.
    index: HashMap<u64, usize>,
    /// One-entry translation memo: the last resident page touched, as
    /// `(page number, frame slot)`. A `Cell` so the read path (`&self`)
    /// can refresh it too.
    last: Cell<(u64, usize)>,
}

impl Default for PagedMem {
    fn default() -> Self {
        PagedMem {
            pages: Vec::new(),
            index: HashMap::new(),
            last: Cell::new((NO_PAGE, 0)),
        }
    }
}

impl PagedMem {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    #[inline]
    fn page_of(addr: u64) -> (u64, usize) {
        (addr >> PAGE_SHIFT, (addr & OFFSET_MASK) as usize)
    }

    /// Resolves a page number to its frame slot, through the memo.
    #[inline]
    fn slot_of(&self, pn: u64) -> Option<usize> {
        let (last_pn, last_slot) = self.last.get();
        if last_pn == pn {
            return Some(last_slot);
        }
        let slot = *self.index.get(&pn)?;
        self.last.set((pn, slot));
        Some(slot)
    }

    /// The resident frame for `pn`, if any.
    #[inline]
    fn page(&self, pn: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.slot_of(pn).map(|s| &*self.pages[s])
    }

    /// The frame for `pn`, allocating (and memoizing) on first touch.
    fn page_mut(&mut self, pn: u64) -> &mut [u8; PAGE_SIZE] {
        let slot = match self.slot_of(pn) {
            Some(s) => s,
            None => {
                let s = self.pages.len();
                self.pages.push(Box::new([0; PAGE_SIZE]));
                self.index.insert(pn, s);
                self.last.set((pn, s));
                s
            }
        };
        &mut self.pages[slot]
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        let (pn, off) = Self::page_of(addr);
        match self.page(pn) {
            Some(p) => p[off],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        let (pn, off) = Self::page_of(addr);
        self.page_mut(pn)[off] = val;
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    #[inline]
    fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let (pn, off) = Self::page_of(addr);
        if off + N <= PAGE_SIZE {
            if let Some(p) = self.page(pn) {
                let mut out = [0u8; N];
                out.copy_from_slice(&p[off..off + N]);
                return out;
            }
            return [0u8; N];
        }
        // Page-crossing access: byte-by-byte (rare).
        let mut out = [0u8; N];
        for (i, b) in out.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        out
    }

    #[inline]
    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let (pn, off) = Self::page_of(addr);
        if off + bytes.len() <= PAGE_SIZE {
            self.page_mut(pn)[off..off + bytes.len()].copy_from_slice(bytes);
            return;
        }
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads a 32-bit little-endian value.
    #[inline]
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a 32-bit little-endian value.
    #[inline]
    pub fn write_u32(&mut self, addr: u64, val: u32) {
        self.write_bytes(addr, &val.to_le_bytes());
    }

    /// Reads a 64-bit little-endian value.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a 64-bit little-endian value.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, val: u64) {
        self.write_bytes(addr, &val.to_le_bytes());
    }

    /// Reads an `i64`.
    #[inline]
    pub fn read_i64(&self, addr: u64) -> i64 {
        self.read_u64(addr) as i64
    }

    /// Writes an `i64`.
    #[inline]
    pub fn write_i64(&mut self, addr: u64, val: i64) {
        self.write_u64(addr, val as u64);
    }

    /// Reads an `f64`.
    #[inline]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64`.
    #[inline]
    pub fn write_f64(&mut self, addr: u64, val: f64) {
        self.write_u64(addr, val.to_bits());
    }

    /// Copies `len` bytes from `src` to `dst` (the functional effect of a
    /// DMA transfer). Ranges may overlap; the copy behaves like
    /// `memmove`.
    pub fn copy(&mut self, dst: u64, src: u64, len: u64) {
        if len == 0 || dst == src {
            return;
        }
        // Buffer through a temporary to get memmove semantics over the
        // sparse pages. DMA transfers are at most tens of KiB.
        let mut tmp = vec![0u8; len as usize];
        for (i, b) in tmp.iter_mut().enumerate() {
            *b = self.read_u8(src + i as u64);
        }
        self.write_bytes(dst, &tmp);
    }

    /// Computes a FNV-1a checksum of `[addr, addr+len)`; used by tests to
    /// compare memory images cheaply.
    pub fn checksum(&self, addr: u64, len: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for i in 0..len {
            h ^= self.read_u8(addr + i) as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

// --------------------------------------------------------------------
// DRAM channel timing
// --------------------------------------------------------------------

/// Row-buffer timing of the DRAM devices behind one channel.
///
/// The defaults decompose the historical flat 200-cycle access
/// (`t_rcd + t_cas = 200`), so a cold access to a closed row costs
/// exactly what the flat model charged — the seed figures shift only
/// where row locality or bank conflicts actually occur.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DramTiming {
    /// Activate (row open) latency: RAS-to-CAS delay in cycles.
    pub t_rcd: u64,
    /// Precharge (row close) latency in cycles.
    pub t_rp: u64,
    /// Column access latency in cycles — the cost of a row-buffer hit.
    pub t_cas: u64,
    /// Row-buffer size in bytes. Consecutive lines within one row hit
    /// the open row.
    pub row_bytes: u64,
    /// Number of DRAM banks on the channel (power of two). Rows
    /// interleave across banks, so streaming accesses rotate banks at
    /// row boundaries.
    pub banks: usize,
    /// Posted-write queue depth. A write posted to a full queue forces
    /// the controller to drain one queued write first (hit-first, then
    /// oldest), occupying the channel.
    pub queue_depth: usize,
}

impl Default for DramTiming {
    fn default() -> Self {
        DramTiming {
            t_rcd: 120,
            t_rp: 60,
            t_cas: 80,
            row_bytes: 2048,
            banks: 16,
            queue_depth: 8,
        }
    }
}

/// DRAM channel configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Flat access latency in cycles, used only when `flat_dram` is set.
    pub latency: u64,
    /// Minimum gap between line transfers on the channel (bandwidth).
    pub gap: u64,
    /// Escape hatch: model the channel as a fixed-latency pipe with no
    /// row or bank state, reproducing the pre-banking backside bit for
    /// bit (`MachineConfig::with_flat_backside` sets this together with
    /// a single L3 bank).
    pub flat_dram: bool,
    /// Row-buffer timing (ignored when `flat_dram` is set).
    pub timing: DramTiming,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            latency: 200,
            gap: 12,
            flat_dram: false,
            timing: DramTiming::default(),
        }
    }
}

/// DRAM channel statistics. Per-core shares of these live in the shared
/// backside's `BacksideCoreStats` and partition the channel totals
/// exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Line reads.
    pub reads: u64,
    /// Line writes (posted).
    pub writes: u64,
    /// Accesses that hit the open row of their bank (`t_cas`).
    pub row_hits: u64,
    /// Accesses to a bank with no open row (`t_rcd + t_cas`).
    pub row_misses: u64,
    /// Accesses that closed another open row first
    /// (`t_rp + t_rcd + t_cas`).
    pub row_conflicts: u64,
    /// Write posts that found the queue full and forced a drain.
    pub queue_stalls: u64,
    /// The subset of `queue_stalls` whose drained victim was a MESI
    /// M-intervention write-back: the drain serviced another core's
    /// recalled dirty data, so the stall is attributed to that owner,
    /// not to whoever happened to post the triggering write.
    pub intervention_drain_stalls: u64,
    /// ECC retries: transient read errors injected by the fault plan
    /// that forced the column access to replay (`t_cas` extra latency
    /// plus one channel gap each). Zero whenever the plan's
    /// `dram_read_error_rate` is zero.
    pub ecc_retries: u64,
}

impl DramStats {
    /// Merges another stats block into this one, field by field — the
    /// partitioning tests sum per-core shares through this, so a newly
    /// added counter is covered the moment it exists.
    pub fn merge(&mut self, other: &DramStats) {
        let DramStats {
            reads,
            writes,
            row_hits,
            row_misses,
            row_conflicts,
            queue_stalls,
            intervention_drain_stalls,
            ecc_retries,
        } = other;
        self.reads += reads;
        self.writes += writes;
        self.row_hits += row_hits;
        self.row_misses += row_misses;
        self.row_conflicts += row_conflicts;
        self.queue_stalls += queue_stalls;
        self.intervention_drain_stalls += intervention_drain_stalls;
        self.ecc_retries += ecc_retries;
    }

    /// Row-classified accesses (reads plus drained writes).
    pub fn row_accesses(&self) -> u64 {
        self.row_hits + self.row_misses + self.row_conflicts
    }

    /// Row-buffer hit rate in percent over classified accesses (100.0
    /// when there were none, e.g. under `flat_dram`).
    pub fn row_hit_rate(&self) -> f64 {
        let n = self.row_accesses();
        if n == 0 {
            return 100.0;
        }
        100.0 * self.row_hits as f64 / n as f64
    }
}

/// How an access met its bank's row buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowOutcome {
    /// The target row was open: column access only.
    Hit,
    /// No row was open: activate, then column access.
    Miss,
    /// A different row was open: precharge, activate, column access.
    Conflict,
}

/// One write sitting in the posted-write queue.
#[derive(Clone, Copy, Debug)]
struct QueuedWrite {
    bank: usize,
    row: u64,
    /// Core that posted the write (stat attribution at drain time).
    core: usize,
    /// Whether this write is a MESI M-intervention write-back (another
    /// core's recalled dirty data, charged to that owner). Drains
    /// forced by such a victim attribute their stall to the owner too.
    intervention: bool,
}

/// The DRAM memory controller of one channel.
///
/// **Timing model.** Line addresses map to (bank, row) by interleaving
/// consecutive rows across banks. Each bank keeps an open row; an access
/// pays `t_cas` (row hit), `t_rcd + t_cas` (row closed) or
/// `t_rp + t_rcd + t_cas` (row conflict), starts no earlier than both
/// the channel (`gap`-spaced bursts) and its bank are free, and leaves
/// its row open (open-row policy). Reads return their full latency to
/// the caller at issue; posted writes park in a bounded queue and touch
/// the channel only when a full queue forces a drain — the drain picks a
/// queued write hitting an open row first, else the oldest
/// (FR-FCFS-style hit-first scheduling over the reorderable traffic;
/// read latencies are returned synchronously at issue, so reads
/// themselves serve in arrival order with priority over queued writes).
///
/// With [`DramConfig::flat_dram`] set, the controller is a fixed-latency
/// `gap`-spaced pipe with no row, bank or queue state — bit-identical to
/// the pre-banking model.
pub struct DramController {
    cfg: DramConfig,
    /// Finite-queue horizon: the furthest beyond `now` a request can be
    /// made to wait (`queue_depth` worst-case services). A real
    /// controller's bounded queue back-pressures producers; a
    /// synchronous call-return model cannot delay its callers'
    /// *issuing*, so sustained overload saturates each request's
    /// visible wait at one full queue drain instead of compounding
    /// without bound (the slow responses then stall the requesting
    /// core's ROB, which is the real feedback loop).
    backlog_window: u64,
    /// When the channel can start the next burst.
    busy_until: u64,
    /// Per-bank completion time of the last access.
    bank_busy: Vec<u64>,
    /// Per-bank open row.
    open_rows: Vec<Option<u64>>,
    /// Posted writes not yet drained.
    queue: VecDeque<QueuedWrite>,
    /// Deterministic transient-read-error roller (disabled by default:
    /// `new` builds a fault-free channel).
    faults: FaultRoller,
    /// Retry budget per faulting read (from the fault plan).
    ecc_max_retries: u32,
    /// Channel totals (per-core shares are kept by the caller).
    pub stats: DramStats,
}

impl DramController {
    /// Builds an idle, fault-free controller.
    pub fn new(cfg: DramConfig) -> Self {
        Self::with_faults(cfg, &FaultConfig::none(), 0)
    }

    /// Builds an idle controller under a fault plan. `instance` is the
    /// channel index, so multi-channel backsides draw independent
    /// fault streams per channel.
    pub fn with_faults(cfg: DramConfig, fault: &FaultConfig, instance: u64) -> Self {
        assert!(
            cfg.timing.banks.is_power_of_two(),
            "DRAM bank count must be a power of two"
        );
        assert!(cfg.timing.row_bytes > 0, "row size must be positive");
        assert!(cfg.timing.queue_depth > 0, "write queue needs a slot");
        let banks = cfg.timing.banks;
        let t = &cfg.timing;
        let worst_service = cfg.gap + t.t_rp + t.t_rcd + t.t_cas;
        DramController {
            backlog_window: t.queue_depth as u64 * worst_service,
            busy_until: 0,
            bank_busy: vec![0; banks],
            open_rows: vec![None; banks],
            queue: VecDeque::with_capacity(cfg.timing.queue_depth),
            faults: FaultRoller::new(fault, FaultSite::DramRead, instance),
            ecc_max_retries: fault.max_retries,
            stats: DramStats::default(),
            cfg,
        }
    }

    /// Maps a line address to its (bank, row) pair.
    ///
    /// The bank index is a multiplicative (Fibonacci) hash of the row
    /// id rather than its low bits: plain modulo interleaving sends
    /// equally-aligned arrays — and every core's identically-laid-out
    /// shard — to the *same* bank, where two active rows ping-pong at
    /// the row-conflict latency. Hashing permutes rows across banks the
    /// way real controllers' permutation-based interleaving (and
    /// scattered physical frame allocation) does, so independent
    /// streams keep their row locality instead of serializing on one
    /// bank. The row identity is the full row id, so distinct rows
    /// never alias within a bank.
    #[inline]
    fn map(&self, line_addr: u64) -> (usize, u64) {
        let row_id = line_addr / self.cfg.timing.row_bytes;
        let bank_bits = self.cfg.timing.banks.trailing_zeros();
        let bank = if bank_bits == 0 {
            0
        } else {
            (row_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - bank_bits)) as usize
        };
        (bank, row_id)
    }

    /// Classifies an access against its bank's row buffer and returns
    /// the access latency beyond the start cycle.
    #[inline]
    fn classify(&self, bank: usize, row: u64) -> (RowOutcome, u64) {
        let t = &self.cfg.timing;
        match self.open_rows[bank] {
            Some(open) if open == row => (RowOutcome::Hit, t.t_cas),
            Some(_) => (RowOutcome::Conflict, t.t_rp + t.t_rcd + t.t_cas),
            None => (RowOutcome::Miss, t.t_rcd + t.t_cas),
        }
    }

    /// Occupies the channel and the bank for one access starting no
    /// earlier than `now`; returns (start cycle, row outcome, latency).
    /// Waits behind the channel and the bank are capped at the
    /// finite-queue horizon (see `backlog_window`).
    fn schedule(&mut self, now: u64, bank: usize, row: u64) -> (u64, RowOutcome, u64) {
        let horizon = now + self.backlog_window;
        let start = now
            .max(self.busy_until.min(horizon))
            .max(self.bank_busy[bank].min(horizon));
        let (outcome, lat) = self.classify(bank, row);
        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Miss => self.stats.row_misses += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }
        self.open_rows[bank] = Some(row);
        self.busy_until = start + self.cfg.gap;
        // The bank is occupied by its *commands* (precharge/activate);
        // the column access overlaps the data burst, which occupies the
        // channel instead — so back-to-back hits to one open row stream
        // at channel rate, while the requester still sees the full
        // access latency.
        self.bank_busy[bank] = start + (lat - self.cfg.timing.t_cas).max(self.cfg.gap);
        (start, outcome, lat)
    }

    /// Rolls the transient-read-error site for one read: each injected
    /// error replays the column access and holds the channel for one
    /// more gap, bounded by the plan's retry budget (the last replay is
    /// assumed clean — recovery never livelocks). Returns the replay
    /// count; the caller mirrors it into the requesting core's share.
    /// Deliberately *not* routed through `schedule`: a replay re-reads
    /// the already-open row, so it must not re-classify the row buffer
    /// (which would break the exact stat partitioning).
    fn ecc_replays(&mut self) -> u64 {
        let mut n = 0u64;
        while n < self.ecc_max_retries as u64 && self.faults.roll() {
            n += 1;
            self.busy_until += self.cfg.gap;
        }
        self.stats.ecc_retries += n;
        n
    }

    /// A line read issued at cycle `now`. Returns the latency beyond
    /// `now` (wait plus access), in row mode how the access met the
    /// row buffer, and the number of injected ECC retries (each one
    /// `t_cas` extra latency) — the caller mirrors the outcome and the
    /// retries into the requesting core's stat share.
    pub fn read(&mut self, now: u64, line_addr: u64) -> (u64, Option<RowOutcome>, u64) {
        self.stats.reads += 1;
        if self.cfg.flat_dram {
            let start = now.max(self.busy_until);
            self.busy_until = start + self.cfg.gap;
            let retries = self.ecc_replays();
            return (
                (start - now) + self.cfg.latency + retries * self.cfg.timing.t_cas,
                None,
                retries,
            );
        }
        let (bank, row) = self.map(line_addr);
        let (start, outcome, lat) = self.schedule(now, bank, row);
        let retries = self.ecc_replays();
        (
            (start - now) + lat + retries * self.cfg.timing.t_cas,
            Some(outcome),
            retries,
        )
    }

    /// Posts a line write at cycle `now`. The write is counted
    /// immediately; in row mode it parks in the bounded queue, and when
    /// the queue is full one queued write is drained first — hit-first
    /// over the open rows, else the oldest. `intervention` marks a MESI
    /// M-intervention write-back (the caller charges those to the
    /// recalled owner). Returns the drained write's (posting core, row
    /// outcome, was-intervention) when a drain happened, so the caller
    /// can mirror the row outcome to the drained write's owner and the
    /// stall to either `core` or — when the victim was an intervention
    /// write-back — to that owner (see [`DramStats`]).
    pub fn write_posted(
        &mut self,
        now: u64,
        line_addr: u64,
        core: usize,
        intervention: bool,
    ) -> Option<(usize, RowOutcome, bool)> {
        self.stats.writes += 1;
        if self.cfg.flat_dram {
            let start = now.max(self.busy_until);
            self.busy_until = start + self.cfg.gap;
            return None;
        }
        let (bank, row) = self.map(line_addr);
        let drained = if self.queue.len() >= self.cfg.timing.queue_depth {
            self.stats.queue_stalls += 1;
            // FR-FCFS hit-first: drain a write whose row is open, else
            // the oldest.
            let pick = self
                .queue
                .iter()
                .position(|w| self.open_rows[w.bank] == Some(w.row))
                .unwrap_or(0);
            let w = self.queue.remove(pick).expect("queue is non-empty");
            let (_, outcome, _) = self.schedule(now, w.bank, w.row);
            if w.intervention {
                self.stats.intervention_drain_stalls += 1;
            }
            Some((w.core, outcome, w.intervention))
        } else {
            None
        };
        self.queue.push_back(QueuedWrite {
            bank,
            row,
            core,
            intervention,
        });
        drained
    }

    /// Writes parked in the posted-write queue (drained lazily; they
    /// never block program completion).
    pub fn queued_writes(&self) -> usize {
        self.queue.len()
    }

    /// The earliest cycle strictly after `now` at which the channel or a
    /// bank frees up, if any — the controller's contribution to the
    /// memory-side event horizon. Queued writes generate no autonomous
    /// events (they drain inside `write_posted` calls), so this is the
    /// complete set of future state-change times.
    pub fn next_event_after(&self, now: u64) -> Option<u64> {
        let banks = if self.cfg.flat_dram {
            &[]
        } else {
            self.bank_busy.as_slice()
        };
        std::iter::once(self.busy_until)
            .chain(banks.iter().copied())
            .filter(|&t| t > now)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let m = PagedMem::new();
        assert_eq!(m.read_u64(0x1234), 0);
        assert_eq!(m.read_u8(u64::MAX - 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn read_your_writes() {
        let mut m = PagedMem::new();
        m.write_u64(0x1000, 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(0x1000), 0xdead_beef_cafe_f00d);
        m.write_u32(0x2000, 0x1234_5678);
        assert_eq!(m.read_u32(0x2000), 0x1234_5678);
        m.write_u8(0x3000, 0xab);
        assert_eq!(m.read_u8(0x3000), 0xab);
        m.write_f64(0x4000, -1.25);
        assert_eq!(m.read_f64(0x4000), -1.25);
        m.write_i64(0x5000, -42);
        assert_eq!(m.read_i64(0x5000), -42);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = PagedMem::new();
        m.write_u32(0x100, 0x0403_0201);
        assert_eq!(m.read_u8(0x100), 1);
        assert_eq!(m.read_u8(0x103), 4);
    }

    #[test]
    fn page_crossing_access() {
        let mut m = PagedMem::new();
        let addr = (1 << 12) - 4; // crosses the first page boundary
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn memo_survives_page_crossing_and_alternation() {
        // Exercise the one-entry translation memo: sequential same-page
        // traffic, strict page alternation (every access evicts the
        // memo), and straddling accesses whose byte path walks both
        // pages through the memo — all must read back exactly.
        let mut m = PagedMem::new();
        let page = 1u64 << PAGE_SHIFT;
        for i in 0..64u64 {
            m.write_u8(3 * page + i, i as u8);
            m.write_u8(7 * page + i, !i as u8);
        }
        for i in 0..64u64 {
            assert_eq!(m.read_u8(3 * page + i), i as u8);
            assert_eq!(m.read_u8(7 * page + i), !i as u8);
        }
        // Writes through a stale memo must not land in the wrong frame.
        let boundary = 4 * page - 4;
        m.write_u64(boundary, 0xa1b2_c3d4_e5f6_0718);
        assert_eq!(m.read_u64(boundary), 0xa1b2_c3d4_e5f6_0718);
        assert_eq!(m.read_u32(boundary), 0xe5f6_0718);
        assert_eq!(m.read_u32(boundary + 4), 0xa1b2_c3d4);
        // The crossing allocated page 4; pages 3 and 7 already existed.
        assert_eq!(m.resident_pages(), 3);
        // Reads of absent pages still return zero and allocate nothing.
        assert_eq!(m.read_u64(100 * page), 0);
        assert_eq!(m.resident_pages(), 3);
    }

    #[test]
    fn copy_non_overlapping() {
        let mut m = PagedMem::new();
        for i in 0..64u64 {
            m.write_u8(0x1000 + i, i as u8);
        }
        m.copy(0x2000, 0x1000, 64);
        for i in 0..64u64 {
            assert_eq!(m.read_u8(0x2000 + i), i as u8);
        }
    }

    #[test]
    fn copy_overlapping_is_memmove() {
        let mut m = PagedMem::new();
        for i in 0..16u64 {
            m.write_u8(0x100 + i, i as u8);
        }
        m.copy(0x104, 0x100, 16); // forward overlap
        for i in 0..16u64 {
            assert_eq!(m.read_u8(0x104 + i), i as u8);
        }
    }

    #[test]
    fn copy_zero_len_and_self() {
        let mut m = PagedMem::new();
        m.write_u8(0x10, 7);
        m.copy(0x20, 0x10, 0);
        assert_eq!(m.read_u8(0x20), 0);
        m.copy(0x10, 0x10, 8);
        assert_eq!(m.read_u8(0x10), 7);
    }

    #[test]
    fn checksum_detects_differences() {
        let mut a = PagedMem::new();
        let mut b = PagedMem::new();
        a.write_u64(0x100, 1);
        b.write_u64(0x100, 1);
        assert_eq!(a.checksum(0x100, 64), b.checksum(0x100, 64));
        b.write_u8(0x120, 9);
        assert_ne!(a.checksum(0x100, 64), b.checksum(0x100, 64));
    }

    // ------------------------------------------------- DRAM controller

    fn dram() -> DramController {
        DramController::new(DramConfig::default())
    }

    #[test]
    fn first_access_to_a_closed_row_costs_the_flat_latency() {
        // The defaults decompose the historical flat 200 cycles:
        // t_rcd + t_cas = 200.
        let mut d = dram();
        let (lat, outcome, retries) = d.read(0, 0);
        assert_eq!(lat, 200);
        assert_eq!(outcome, Some(RowOutcome::Miss));
        assert_eq!(retries, 0, "fault-free controllers never ECC-retry");
    }

    #[test]
    fn same_row_second_access_pays_the_row_hit_latency() {
        let mut d = dram();
        let (first, _, _) = d.read(0, 0);
        // Next line in the same 2 KiB row, issued after the bank freed.
        let (second, outcome, _) = d.read(first, 64);
        assert_eq!(outcome, Some(RowOutcome::Hit));
        assert_eq!(second, 80, "row hit must cost t_cas only");
        assert_eq!(d.stats.row_hits, 1);
        assert_eq!(d.stats.row_misses, 1);
    }

    /// First row id whose bank relation to row 0 matches `same`.
    fn row_with_bank(d: &DramController, same: bool) -> u64 {
        let t = &d.cfg.timing;
        let bank0 = d.map(0).0;
        (1..1024)
            .find(|&r| (d.map(r * t.row_bytes).0 == bank0) == same)
            .expect("hashed interleave must produce both cases")
    }

    #[test]
    fn same_bank_different_row_conflicts_and_serializes() {
        let mut d = dram();
        d.read(0, 0); // opens row 0 of its bank; bank busy until 200
        let t = DramTiming::default();
        let other = row_with_bank(&d, true) * t.row_bytes;
        let (lat, outcome, _) = d.read(0, other);
        assert_eq!(outcome, Some(RowOutcome::Conflict));
        // Serializes behind the first access's bank commands (its
        // activate: t_rcd) then pays precharge + activate + column.
        assert_eq!(lat, t.t_rcd + t.t_rp + t.t_rcd + t.t_cas);
        assert_eq!(d.stats.row_conflicts, 1);
    }

    #[test]
    fn different_banks_overlap_on_the_channel() {
        let mut d = dram();
        d.read(0, 0);
        let t = DramTiming::default();
        let other = row_with_bank(&d, false) * t.row_bytes;
        let (lat, outcome, _) = d.read(0, other);
        assert_eq!(outcome, Some(RowOutcome::Miss));
        // Only the channel gap separates them, not the full access.
        assert_eq!(lat, d.cfg.gap + t.t_rcd + t.t_cas);
    }

    #[test]
    fn full_write_queue_drains_hit_first() {
        let mut d = dram();
        let t = DramTiming::default();
        // Open row 0 of its bank.
        d.read(0, 0);
        // Fill the queue: depth-1 writes to a different row first, then
        // one write to the open row LAST — FCFS alone would never pick
        // it.
        let other = row_with_bank(&d, true) * t.row_bytes;
        for _ in 1..t.queue_depth {
            assert_eq!(d.write_posted(300, other, 1, false), None);
        }
        assert_eq!(d.write_posted(300, 0, 0, false), None);
        assert_eq!(d.queued_writes(), t.queue_depth);
        // The next post forces a drain: FR-FCFS must pick the
        // row-hitting write (owner core 0) from the back of the queue.
        let drained = d.write_posted(400, 8 * t.row_bytes, 1, false);
        let (owner, outcome, iv) = drained.expect("full queue must drain");
        assert_eq!(owner, 0, "hit-first must pick the open-row write");
        assert_eq!(outcome, RowOutcome::Hit);
        assert!(!iv, "no intervention writes were queued");
        assert_eq!(d.stats.queue_stalls, 1);
        assert_eq!(d.stats.intervention_drain_stalls, 0);
        assert_eq!(d.queued_writes(), t.queue_depth);
    }

    #[test]
    fn drained_intervention_writebacks_are_flagged_to_the_caller() {
        let mut d = dram();
        let t = DramTiming::default();
        // Fill the queue with M-intervention write-backs owned by core
        // 2, then trigger a drain with core 5's plain write: the victim
        // must come back flagged so the backside can land the stall on
        // the owner, not the poster.
        for i in 0..t.queue_depth as u64 {
            assert_eq!(d.write_posted(0, i * t.row_bytes, 2, true), None);
        }
        let drained = d.write_posted(100, 100 * t.row_bytes, 5, false);
        let (owner, _, iv) = drained.expect("full queue must drain");
        assert_eq!(owner, 2, "the victim belongs to the intervention owner");
        assert!(iv, "the drained victim is an intervention write-back");
        assert_eq!(d.stats.queue_stalls, 1);
        assert_eq!(d.stats.intervention_drain_stalls, 1);
    }

    #[test]
    fn flat_dram_has_no_row_state() {
        let mut d = DramController::new(DramConfig {
            flat_dram: true,
            ..DramConfig::default()
        });
        let (a, oa, _) = d.read(0, 0);
        assert_eq!((a, oa), (200, None));
        // Same row again: still the flat latency plus the channel gap.
        let (b, ob, _) = d.read(0, 64);
        assert_eq!((b, ob), (12 + 200, None));
        assert_eq!(d.write_posted(0, 0, 0, false), None);
        assert_eq!(d.stats.row_accesses(), 0);
        assert_eq!(d.stats.row_hit_rate(), 100.0);
    }

    #[test]
    fn ecc_retries_are_deterministic_bounded_and_timing_only() {
        use crate::fault::FaultConfig;
        // Rate 1.0: every read replays exactly max_retries times (the
        // livelock watchdog) and pays t_cas + one channel gap each.
        let plan = FaultConfig {
            max_retries: 3,
            ..FaultConfig::uniform(11, 1.0)
        };
        let t = DramTiming::default();
        let mut d = DramController::with_faults(DramConfig::default(), &plan, 0);
        let (lat, outcome, retries) = d.read(0, 0);
        assert_eq!(retries, 3);
        assert_eq!(outcome, Some(RowOutcome::Miss));
        assert_eq!(lat, 200 + 3 * t.t_cas);
        assert_eq!(d.stats.ecc_retries, 3);
        assert_eq!(d.stats.row_misses, 1, "replays never re-classify rows");
        // The replays held the channel: 1 gap for the read + 3 more.
        assert_eq!(d.next_event_after(0), Some(4 * d.cfg.gap));
        // Same seed, fresh controller: byte-identical replay.
        let mut e = DramController::with_faults(DramConfig::default(), &plan, 0);
        assert_eq!(e.read(0, 0), (lat, outcome, retries));
        // Zero-rate plan: bit-identical to the fault-free controller.
        let mut z = DramController::with_faults(DramConfig::default(), &FaultConfig::none(), 0);
        assert_eq!(z.read(0, 0), dram().read(0, 0));
        assert_eq!(z.stats.ecc_retries, 0);
    }

    #[test]
    fn dram_horizon_reports_channel_and_bank_frees() {
        let mut d = dram();
        let t = DramTiming::default();
        assert_eq!(d.next_event_after(0), None);
        // Channel busy for the gap; the bank for its activate (t_rcd).
        d.read(0, 0);
        assert_eq!(d.next_event_after(0), Some(12));
        assert_eq!(d.next_event_after(12), Some(t.t_rcd));
        assert_eq!(d.next_event_after(t.t_rcd), None);
    }
}
