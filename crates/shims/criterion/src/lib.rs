//! Offline stand-in for the `criterion` crate (API subset).
//!
//! Implements the `bench_function` / `Bencher::iter` /
//! `criterion_group!` / `criterion_main!` surface with plain wall-clock
//! timing: each benchmark runs a short warm-up, then `sample_size`
//! timed batches, and prints the mean and minimum time per iteration.
//! No statistics machinery, no plots — enough for `cargo bench` to run
//! and produce comparable numbers in this offline environment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            warmup: Duration::from_millis(200),
            target_time: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<S: AsRef<str>>(
        &mut self,
        name: S,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.as_ref();
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: also calibrates how many iterations fit one sample.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            warm_iters += b.iters;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        let budget = self.target_time.as_nanos() / self.sample_size as u128;
        b.iters = ((budget / per_iter.max(1)) as u64).clamp(1, 1_000_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{name:<40} {:>12}/iter (min {:>12}, {} samples x {} iters)",
            fmt_ns(mean),
            fmt_ns(min),
            samples.len(),
            b.iters
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Timing helper passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group (subset of `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` (subset of `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial_add", |b| b.iter(|| black_box(1u64) + 1));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = trivial
    }

    #[test]
    fn group_runs() {
        benches();
    }
}
