//! # hsim-energy — Wattch-style activity-based energy model
//!
//! The paper evaluates energy with Wattch integrated into PTLsim, with
//! CACTI-derived per-structure access energies. This crate reproduces the
//! *methodology*: every architectural event (instruction dispatched, cache
//! accessed, DMA byte moved, directory CAM searched, …) is counted by the
//! simulator, and the model charges a per-event energy plus per-cycle
//! leakage for each structure.
//!
//! Absolute joules are not the point — the paper's Figures 8 and 10 are
//! built from *relative* magnitudes: an LM access costs a fraction of an
//! L1 access (no tag array, no TLB), a directory lookup is a 32-entry CAM
//! (tiny next to the memory subsystem), and cache misses re-execute
//! pipeline work. The default parameters encode those CACTI-flavoured
//! ratios for a 45 nm process; every number is overridable for
//! sensitivity studies (`bench/ablate_*`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod params;

pub use model::{Activity, EnergyBreakdown, EnergyModel};
pub use params::EnergyParams;
