//! Heterogeneous-chip sweep: mixed hybrid/cache-based tile ratios,
//! LM-size asymmetry and weighted shards on the NAS kernels.
//!
//! Each kernel runs on every machine shape of
//! [`hsim::experiments::hetero_sweep`]: all hybrid:cache tile ratios at
//! one core count (even shards), an all-hybrid chip with half the
//! tiles at a quarter LM budget, and a weighted mixed chip whose
//! hybrid tiles take double iteration shares. Results are printed as a
//! table and written to `BENCH_hetero.json`.
//!
//! ```text
//! cargo run --release -p hsim-bench --bin hetero [--test-scale|--smoke]
//! ```
//!
//! `--smoke` runs a minimal grid (test scale, CG + IS): the CI guard.
//! Asserted shapes: the all-hybrid row equals the homogeneous machine
//! exactly (the hetero path is a pure generalization), mixed ratios
//! sit between the all-hybrid and all-cache endpoints, and weighting
//! shards toward the hybrid tiles beats the even split on the mixed
//! chip.

use hsim::prelude::*;
use hsim_bench::{jstr, kernels, scale_from_args, SweepJson, Table};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke {
        Scale::Test
    } else {
        scale_from_args()
    };
    let mut kernels = kernels(scale);
    if smoke {
        kernels.retain(|k| k.name == "CG" || k.name == "IS");
    }
    let cores = 4;

    let rows =
        hetero_sweep(&kernels, cores, Parallelism::HostThreads).expect("hetero sweep failed");

    println!("HETERO: mixed hybrid/cache chips, LM asymmetry, weighted shards ({scale:?} scale)");
    println!("(shape xH+yC = x hybrid + y cache-based tiles; lm/4xN = N tiles at a quarter LM)");
    println!();
    let t = Table::new(&[6, 12, 10, 10, 10, 9, 8, 9]);
    t.row(
        &[
            "kernel",
            "shape",
            "makespan",
            "committed",
            "dramR",
            "buswait",
            "shrhits",
            "replfall",
        ]
        .map(String::from),
    );
    t.sep();
    for r in &rows {
        t.row(&[
            r.kernel.clone(),
            r.label.clone(),
            format!("{}", r.makespan),
            format!("{}", r.committed),
            format!("{}", r.dram_reads),
            format!("{}", r.bus_wait_cycles),
            format!("{}", r.shared_hits),
            format!("{}", r.replication_fallbacks),
        ]);
    }
    println!();

    // Shape assertions per kernel (the CI guard):
    for k in &kernels {
        let row = |label: &str| rows.iter().find(|r| r.kernel == k.name && r.label == label);
        let (Some(all_h), Some(all_c)) =
            (row(&format!("{cores}H+0C")), row(&format!("0H+{cores}C")))
        else {
            continue; // kernel does not shard to this core count
        };

        // 1. The all-hybrid shape is the homogeneous machine, exactly.
        let homo = RunSpec::new(k)
            .cores(cores)
            .run()
            .expect("homogeneous run")
            .into_multi();
        assert_eq!(
            all_h.makespan, homo.makespan,
            "{}: the all-hybrid hetero chip must reproduce the homogeneous \
             machine bit for bit",
            k.name
        );
        assert_eq!(all_h.committed, homo.total_committed(), "{}", k.name);

        // 2. Mixed ratios interpolate: every xH+yC point sits between
        //    the endpoints (inclusive, with a small contention
        //    tolerance).
        let (lo, hi) = (
            all_h.makespan.min(all_c.makespan),
            all_h.makespan.max(all_c.makespan),
        );
        for h in 1..cores {
            if let Some(mix) = row(&format!("{h}H+{}C", cores - h)) {
                assert!(
                    mix.makespan as f64 >= lo as f64 * 0.95
                        && mix.makespan as f64 <= hi as f64 * 1.05,
                    "{} {}: mixed makespan {} must interpolate the endpoints \
                     [{lo}, {hi}]",
                    k.name,
                    mix.label,
                    mix.makespan
                );
            }
        }

        // 3. Weighted shards beat the even split on the mixed chip —
        //    but only where the weights actually match tile strength:
        //    the gate is the even split itself sitting well above the
        //    all-hybrid endpoint (the cache tiles are the long pole).
        //    On kernels where the even mixed chip already runs near
        //    the hybrid endpoint (compute-bound EP: per-tile speeds
        //    converge on the shared backside), a 2:1 split is the
        //    *wrong* weighting and legitimately loses.
        let h = cores - cores / 2;
        if let (Some(even), Some(weighted)) = (
            row(&format!("{h}H+{}C", cores - h)),
            row(&format!("{h}H+{}C w2:1", cores / 2)),
        ) {
            if even.makespan as f64 > all_h.makespan as f64 * 1.3 {
                assert!(
                    weighted.makespan < even.makespan,
                    "{}: 2:1 weights ({}) must beat the even split ({})",
                    k.name,
                    weighted.makespan,
                    even.makespan
                );
            }
        }
    }
    println!("hetero shapes OK (all-hybrid == homogeneous, mixed interpolates, weights help)");

    let mut json = SweepJson::new(scale).meta("cores", cores);
    json.begin_rows("rows");
    for r in &rows {
        let weights: Vec<String> = r.weights.iter().map(|w| w.to_string()).collect();
        json.row(&[
            ("kernel", jstr(&r.kernel)),
            ("shape", jstr(&r.label)),
            ("hybrid_tiles", format!("{}", r.hybrid_tiles)),
            ("small_lm_tiles", format!("{}", r.small_lm_tiles)),
            ("weights", format!("[{}]", weights.join(", "))),
            ("makespan", format!("{}", r.makespan)),
            ("committed", format!("{}", r.committed)),
            ("dram_reads", format!("{}", r.dram_reads)),
            ("bus_wait_cycles", format!("{}", r.bus_wait_cycles)),
            ("shared_hits", format!("{}", r.shared_hits)),
            (
                "replication_fallbacks",
                format!("{}", r.replication_fallbacks),
            ),
        ]);
    }
    json.write("BENCH_hetero.json");
}
