//! Communication & request-serving workloads: the traffic *between*
//! cores as the measured quantity.
//!
//! Two sections:
//!
//! 1. **Comm microbenchmarks** ([`hsim::comm_sweep`]): producer-consumer
//!    flag/data ping-pong, a multi-buffered queue, lock and barrier
//!    contention — each on hybrid (LM + DMA double-buffering, coherent
//!    `no_map`'d flags) and cache-based (every line coherent) chips
//!    under the environment's inter-core protocol, plus the full
//!    MSI/MESI/MOESI/MESIF family on the cache-based queue hand-off.
//!    The headline is cycles per hand-off (`rt/rnd`): the hybrid
//!    round trip must beat the cache-coherent one.
//! 2. **Request serving** ([`hsim::request_serving_sweep`]): many short
//!    gather kernels against one shared read-mostly table, replayed
//!    through a deterministic open-loop arrival process; reports
//!    p50/p95/p99 sojourn latency and requests/sec at the nominal
//!    2 GHz clock.
//!
//! Results are printed as tables and written to `BENCH_comm.json`.
//!
//! ```text
//! cargo run --release -p hsim-bench --bin comm [--test-scale|--smoke]
//! ```
//!
//! `--smoke` runs the minimal grid (test scale, 2/4 cores): the CI
//! guard. Asserted shapes: hybrid ping-pong RTT < cache-coherent RTT at
//! every core count, and MSI reads at least as much DRAM as
//! MOESI/MESIF on the queue hand-off.

use hsim::prelude::*;
use hsim_bench::{jstr, scale_from_args, SweepJson, Table};

/// Open-loop offered load as a fraction of measured chip capacity
/// (permille). 700 keeps the system stable (ρ < 1) while producing a
/// visible queueing tail.
const LOAD_PERMILLE: u64 = 700;

/// Arrival-stream seed; any nonzero value works, the report pins
/// byte-identical output per seed.
const SEED: u64 = 0xC0_FFEE;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke {
        Scale::Test
    } else {
        scale_from_args()
    };
    let core_counts: &[usize] = if smoke { &[2, 4] } else { &[2, 4, 8] };

    let rows = comm_sweep(scale, core_counts, Parallelism::HostThreads).expect("comm sweep failed");

    println!("COMM: communication microbenchmarks ({scale:?} scale)");
    println!("(rt/rnd = cycles per hand-off; hybrid = LM+DMA payload, coherent flags)");
    println!();
    let t = Table::new(&[9, 5, 7, 9, 10, 8, 8, 8, 8, 8, 8]);
    t.row(
        &[
            "workload", "cores", "system", "proto", "makespan", "rt/rnd", "dramR", "shrhits",
            "invals", "intervs", "recalls",
        ]
        .map(String::from),
    );
    t.sep();
    for r in &rows {
        t.row(&[
            r.workload.clone(),
            format!("{}", r.cores),
            match r.mode {
                SysMode::CacheBased => "cache".into(),
                _ => "hybrid".into(),
            },
            r.protocol.clone(),
            format!("{}", r.makespan),
            format!("{:.1}", r.round_cycles),
            format!("{}", r.dram_reads),
            format!("{}", r.shared_hits),
            format!("{}", r.invalidations),
            format!("{}", r.interventions),
            format!("{}", r.dirty_recalls),
        ]);
    }
    println!();

    // Acceptance shape 1: the hybrid LM+DMA ping-pong round trip beats
    // cache-coherent flag spinning at every core count.
    for &cores in core_counts {
        let pp = |mode: SysMode| {
            rows.iter()
                .find(|r| r.workload == "pingpong" && r.cores == cores && r.mode == mode)
                .expect("ping-pong runs on both systems")
        };
        let (hybrid, cache) = (pp(SysMode::HybridCoherent), pp(SysMode::CacheBased));
        println!(
            "pingpong x{cores}: hybrid {:.1} vs cache {:.1} cycles/round",
            hybrid.round_cycles, cache.round_cycles
        );
        assert!(
            hybrid.round_cycles < cache.round_cycles,
            "pingpong x{cores}: hybrid RTT ({:.1}) must beat cache RTT ({:.1})",
            hybrid.round_cycles,
            cache.round_cycles
        );
    }
    // Acceptance shape 2: on the cache-based queue hand-off, MSI's
    // recall-through-DRAM reads at least as many lines as MOESI's dirty
    // sharing and MESIF's designated forwarder.
    for &cores in core_counts {
        let q = |proto: &str| {
            rows.iter()
                .find(|r| {
                    r.workload == "queue"
                        && r.cores == cores
                        && r.mode == SysMode::CacheBased
                        && r.protocol == proto
                })
                .unwrap_or_else(|| panic!("queue x{cores} must run under {proto}"))
        };
        assert!(
            q("msi").dram_reads >= q("moesi").dram_reads,
            "queue x{cores}: MSI DRAM reads must be >= MOESI"
        );
        assert!(
            q("msi").dram_reads >= q("mesif").dram_reads,
            "queue x{cores}: MSI DRAM reads must be >= MESIF"
        );
    }
    println!();
    println!("comm shapes OK (hybrid RTT < cache RTT; MSI >= MOESI/MESIF queue dramR)");
    println!();

    // -------------------------------------------------- request serving
    let reports = request_serving_sweep(
        scale,
        core_counts,
        SEED,
        LOAD_PERMILLE,
        Parallelism::HostThreads,
    )
    .expect("request-serving sweep failed");

    println!(
        "REQUEST SERVING: open-loop gather service ({scale:?} scale, \
         load {LOAD_PERMILLE} permille, seed {SEED:#x})"
    );
    println!();
    for rep in &reports {
        print!("{}", rep.render());
        println!();
    }

    let mut json = SweepJson::new(scale)
        .meta("seed", SEED)
        .meta("load_permille", LOAD_PERMILLE);
    json.begin_rows("rows");
    for r in &rows {
        json.row(&[
            ("workload", jstr(&r.workload)),
            ("cores", format!("{}", r.cores)),
            ("mode", jstr(format!("{:?}", r.mode))),
            ("protocol", jstr(&r.protocol)),
            ("rounds", format!("{}", r.rounds)),
            ("makespan", format!("{}", r.makespan)),
            ("round_cycles", format!("{:.2}", r.round_cycles)),
            ("dram_reads", format!("{}", r.dram_reads)),
            ("shared_hits", format!("{}", r.shared_hits)),
            ("invalidations", format!("{}", r.invalidations)),
            ("interventions", format!("{}", r.interventions)),
            ("dirty_recalls", format!("{}", r.dirty_recalls)),
            ("committed", format!("{}", r.committed)),
        ]);
    }
    json.begin_rows("request_serving");
    for r in &reports {
        json.row(&[
            ("cores", format!("{}", r.cores)),
            ("mode", jstr(format!("{:?}", r.mode))),
            ("requests", format!("{}", r.requests)),
            ("service_cycles", format!("{}", r.service_cycles)),
            ("mean_interarrival", format!("{}", r.mean_interarrival)),
            ("span_cycles", format!("{}", r.span_cycles)),
            ("p50", format!("{}", r.latency.p50())),
            ("p95", format!("{}", r.latency.p95())),
            ("p99", format!("{}", r.latency.p99())),
            ("mean", format!("{}", r.latency.mean())),
            ("max", format!("{}", r.latency.max())),
            ("requests_per_sec", format!("{}", r.requests_per_sec())),
            ("load_permille", format!("{}", r.offered_load_permille())),
        ]);
    }
    json.write("BENCH_comm.json");
}
