//! The three-valued alias oracle.
//!
//! The paper's classification (§3.1 phase 1) consumes an alias-analysis
//! function with three outcomes: the pointers *alias*, *do not alias*, or
//! *may alias*. Real analyses (GCC 4.6 in the paper) fail to prove
//! non-aliasing for many indirect references; the evaluation's per-
//! benchmark "guarded references" counts are exactly the references GCC
//! could not disambiguate. [`AliasOracle`] lets each workload state, per
//! array pair, what the modeled compiler is able to prove — the ground
//! truth (array identity) stays in the IR and the interpreter.

use crate::ir::ArrayId;
use std::collections::HashMap;

/// Outcome of the alias-analysis function (§3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AliasAnswer {
    /// Provably disjoint.
    #[default]
    No,
    /// The analysis cannot tell.
    May,
    /// Provably the same object.
    Must,
}

/// What the compiler's alias analysis can prove about array pairs.
///
/// Unlisted pairs default to [`AliasAnswer::No`] — distinct named arrays
/// are trivially disjoint — except the reflexive pair, which is always
/// [`AliasAnswer::Must`].
#[derive(Clone, Debug, Default)]
pub struct AliasOracle {
    pairs: HashMap<(ArrayId, ArrayId), AliasAnswer>,
}

impl AliasOracle {
    /// Empty oracle: perfect knowledge (only reflexive must-aliases).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares the analysis outcome for a pair (symmetric).
    pub fn set(&mut self, a: ArrayId, b: ArrayId, ans: AliasAnswer) {
        self.pairs.insert(key(a, b), ans);
    }

    /// Declares that the analysis cannot disambiguate `a` from `b`.
    pub fn may_alias(&mut self, a: ArrayId, b: ArrayId) {
        self.set(a, b, AliasAnswer::May);
    }

    /// Queries the oracle.
    pub fn query(&self, a: ArrayId, b: ArrayId) -> AliasAnswer {
        if a == b {
            return AliasAnswer::Must;
        }
        self.pairs.get(&key(a, b)).copied().unwrap_or_default()
    }

    /// True when the analysis cannot rule out aliasing.
    pub fn unresolved(&self, a: ArrayId, b: ArrayId) -> bool {
        self.query(a, b) != AliasAnswer::No
    }
}

fn key(a: ArrayId, b: ArrayId) -> (ArrayId, ArrayId) {
    (a.min(b), a.max(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reflexive_is_must() {
        let o = AliasOracle::new();
        assert_eq!(o.query(3, 3), AliasAnswer::Must);
    }

    #[test]
    fn default_is_no() {
        let o = AliasOracle::new();
        assert_eq!(o.query(0, 1), AliasAnswer::No);
        assert!(!o.unresolved(0, 1));
    }

    #[test]
    fn set_is_symmetric() {
        let mut o = AliasOracle::new();
        o.may_alias(2, 5);
        assert_eq!(o.query(2, 5), AliasAnswer::May);
        assert_eq!(o.query(5, 2), AliasAnswer::May);
        assert!(o.unresolved(5, 2));
    }

    #[test]
    fn later_set_overrides() {
        let mut o = AliasOracle::new();
        o.may_alias(0, 1);
        o.set(1, 0, AliasAnswer::No);
        assert_eq!(o.query(0, 1), AliasAnswer::No);
    }
}
