//! The **table-driven inter-core protocol family**: MSI, MESI, MOESI and
//! MESIF as declarative guarded-action tables over one shared state and
//! event vocabulary.
//!
//! PR 4 hard-coded the inter-core protocol as one hand-written `match`
//! ([`MesiState::step`]). This module refactors the protocol into *data*:
//! a [`ProtocolTable`] is a list of [`Rule`]s
//! `(state, event) → guard → (next_state, actions)`, evaluated
//! first-match-wins, in the guarded-action style of the GAL coherence
//! modeling papers. The backside's directory slices step whichever table
//! [`CoherenceProtocol`] selects, so a protocol sweep is one config axis
//! — and the whole family can be model-checked by the exhaustive
//! small-model [`protocol_explorer`](crate::protocol_explorer) instead of scenario tests.
//!
//! The four tables:
//!
//! * [`CoherenceProtocol::Msi`] — no Exclusive state: the first reader
//!   fills [`LineState::Shared`], and recalling a dirty line re-reads
//!   memory ([`Action::MemoryRead`]) because sharers may not forward.
//! * [`CoherenceProtocol::Mesi`] — the PR 4 protocol, row for row. The
//!   hand-written [`MesiState::step`] is kept as the refactor-equivalence
//!   reference; a proptest pins the table to it transition by transition.
//! * [`CoherenceProtocol::Moesi`] — adds [`LineState::Owned`]: a dirty
//!   line read by another core is supplied cache-to-cache
//!   ([`Action::CacheTransfer`]) and stays dirty at its owner instead of
//!   being written back on the S-fill, cutting DRAM write traffic.
//! * [`CoherenceProtocol::Mesif`] — adds [`LineState::Forward`]: a
//!   designated clean forwarder ([`Action::ClaimForward`] moves the
//!   designation to the newest reader) answers shared reads.
//!
//! Guards are the declarative residue of what the hand-written code
//! expressed with `if`s: a [`Guard`] inspects the *sharer context* of the
//! request (are there other sharers? is the requester the recorded
//! owner?) and selects among rows for the same `(state, event)` pair.
//! Actions are obligations the home slice must discharge — the table
//! never performs them, it only names them, which is what makes the
//! small-model explorer and the cycle-accurate backside share one
//! protocol definition (via [`DirLine`], the bookkeeping both step).

use crate::mesi::{MesiEvent, MesiState};

/// The inter-core protocol family member a directory runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CoherenceProtocol {
    /// Three-state Modified/Shared/Invalid (no silent-upgrade Exclusive;
    /// dirty recalls re-read memory).
    Msi,
    /// The PR 4 four-state protocol (reference: [`MesiState::step`]).
    Mesi,
    /// MESI plus an Owned state: dirty sharing via cache-to-cache
    /// transfer, write-backs deferred until the owner's copy is evicted.
    Moesi,
    /// MESI plus a Forward state: one designated clean forwarder per
    /// shared line.
    Mesif,
}

impl CoherenceProtocol {
    /// Every family member, in the order benches and CI sweep them.
    pub const ALL: [CoherenceProtocol; 4] = [
        CoherenceProtocol::Msi,
        CoherenceProtocol::Mesi,
        CoherenceProtocol::Moesi,
        CoherenceProtocol::Mesif,
    ];

    /// The lower-case knob / report name (`msi`, `mesi`, `moesi`,
    /// `mesif`).
    pub fn name(self) -> &'static str {
        match self {
            CoherenceProtocol::Msi => "msi",
            CoherenceProtocol::Mesi => "mesi",
            CoherenceProtocol::Moesi => "moesi",
            CoherenceProtocol::Mesif => "mesif",
        }
    }
}

/// Directory-side state of one shared line — the union of the four
/// protocols' state alphabets. Each table uses the subset it names;
/// the explorer proves the rest unreachable for that table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum LineState {
    /// No upper copies (the line may still be L3-resident).
    #[default]
    Invalid,
    /// One or more clean copies above the shared cache.
    Shared,
    /// Exactly one clean copy, silent upgrade allowed (MESI/MOESI/MESIF).
    Exclusive,
    /// Exactly one dirty copy at the owner.
    Modified,
    /// The owner holds a dirty copy *and* other cores hold clean copies
    /// supplied cache-to-cache; memory is stale (MOESI only).
    Owned,
    /// Clean shared copies with one designated forwarder that answers
    /// reads (MESIF only).
    Forward,
}

impl LineState {
    /// States in which exactly one core may hold the line.
    pub fn is_exclusive(self) -> bool {
        matches!(self, LineState::Exclusive | LineState::Modified)
    }

    /// States in which the shared cache / memory copy is stale against
    /// the owner's.
    pub fn is_dirty(self) -> bool {
        matches!(self, LineState::Modified | LineState::Owned)
    }

    /// States in which the `owner` field of a [`DirLine`] designates a
    /// specific core (the exclusive/dirty holder, or MESIF's forwarder).
    pub fn has_owner(self) -> bool {
        matches!(
            self,
            LineState::Exclusive | LineState::Modified | LineState::Owned | LineState::Forward
        )
    }
}

/// The guard column of a [`Rule`]: a predicate over the request's sharer
/// context, letting one `(state, event)` pair dispatch to different rows.
/// Rows are tried in table order; the first whose guard holds wins, so
/// specific guards precede [`Guard::Always`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Guard {
    /// Unconditional (the catch-all row).
    Always,
    /// Cores other than the requester hold copies.
    OtherSharers,
    /// No core other than the requester holds a copy.
    NoOtherSharers,
    /// The requester is the recorded owner of the line.
    RequesterIsOwner,
    /// The requester is not the recorded owner.
    RequesterNotOwner,
}

/// The sharer context a [`Guard`] is evaluated against.
#[derive(Clone, Copy, Debug, Default)]
pub struct GuardCtx {
    /// Cores other than the requester hold copies of the line.
    pub other_sharers: bool,
    /// The requester is the line's recorded owner (meaningful only in
    /// states where [`LineState::has_owner`] holds).
    pub requester_is_owner: bool,
}

impl Guard {
    /// Evaluates the guard against a request's sharer context.
    pub fn holds(self, ctx: GuardCtx) -> bool {
        match self {
            Guard::Always => true,
            Guard::OtherSharers => ctx.other_sharers,
            Guard::NoOtherSharers => !ctx.other_sharers,
            Guard::RequesterIsOwner => ctx.requester_is_owner,
            Guard::RequesterNotOwner => !ctx.requester_is_owner,
        }
    }
}

/// One obligation a transition imposes on the home slice. The table
/// *names* obligations; the backside (or the explorer's abstract memory
/// model) discharges them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// The previous owner's dirty data must be written back to memory.
    Writeback,
    /// Every copy above the shared cache other than the requester's must
    /// be invalidated.
    InvalidateSharers,
    /// The owner supplies the line cache-to-cache to the requester
    /// (MOESI dirty sharing); memory is *not* updated.
    CacheTransfer,
    /// The line must be re-read from memory to serve the request (MSI:
    /// sharers cannot forward, so a recalled dirty line is re-fetched).
    MemoryRead,
    /// The requester becomes the line's designated forwarder (MESIF).
    ClaimForward,
}

/// One guarded-action row of a protocol table.
#[derive(Clone, Copy, Debug)]
pub struct Rule {
    /// Directory state the row applies in.
    pub state: LineState,
    /// Event the row consumes.
    pub event: MesiEvent,
    /// Predicate selecting this row among same-`(state, event)` rows.
    pub guard: Guard,
    /// Successor state.
    pub next: LineState,
    /// Obligations the transition imposes.
    pub actions: &'static [Action],
}

/// Shorthand for writing the const rule arrays.
const fn rule(
    state: LineState,
    event: MesiEvent,
    guard: Guard,
    next: LineState,
    actions: &'static [Action],
) -> Rule {
    Rule {
        state,
        event,
        guard,
        next,
        actions,
    }
}

use Action::{CacheTransfer, ClaimForward, InvalidateSharers, MemoryRead, Writeback};
use Guard::{Always, RequesterIsOwner};
use LineState::{Exclusive, Forward, Invalid, Modified, Owned, Shared};
use MesiEvent::{Evict, LocalRead, LocalWrite, RemoteRead, RemoteWrite};

/// MSI: no Exclusive state — the first reader fills Shared — and a
/// recalled dirty line is re-read from memory (no forwarding).
const MSI_RULES: &[Rule] = &[
    rule(Invalid, LocalRead, Always, Shared, &[]),
    rule(Invalid, RemoteRead, Always, Shared, &[]),
    rule(Invalid, LocalWrite, Always, Modified, &[]),
    rule(Invalid, RemoteWrite, Always, Modified, &[]),
    rule(Invalid, Evict, Always, Invalid, &[]),
    rule(Shared, LocalRead, Always, Shared, &[]),
    rule(Shared, RemoteRead, Always, Shared, &[]),
    rule(Shared, LocalWrite, Always, Modified, &[InvalidateSharers]),
    rule(Shared, RemoteWrite, Always, Modified, &[InvalidateSharers]),
    rule(Shared, Evict, Always, Invalid, &[InvalidateSharers]),
    rule(Modified, LocalRead, Always, Modified, &[]),
    rule(Modified, LocalWrite, Always, Modified, &[]),
    rule(
        Modified,
        RemoteRead,
        Always,
        Shared,
        &[Writeback, MemoryRead],
    ),
    rule(
        Modified,
        RemoteWrite,
        Always,
        Modified,
        &[Writeback, InvalidateSharers, MemoryRead],
    ),
    rule(
        Modified,
        Evict,
        Always,
        Invalid,
        &[Writeback, InvalidateSharers],
    ),
];

/// MESI: row-for-row the PR 4 hand-written table ([`MesiState::step`]);
/// the refactor-equivalence proptest pins the correspondence.
const MESI_RULES: &[Rule] = &[
    rule(Invalid, LocalRead, Always, Exclusive, &[]),
    rule(Invalid, RemoteRead, Always, Exclusive, &[]),
    rule(Invalid, LocalWrite, Always, Modified, &[]),
    rule(Invalid, RemoteWrite, Always, Modified, &[]),
    rule(Invalid, Evict, Always, Invalid, &[]),
    rule(Exclusive, LocalRead, Always, Exclusive, &[]),
    // Silent E -> M upgrade: no bus traffic.
    rule(Exclusive, LocalWrite, Always, Modified, &[]),
    rule(Exclusive, RemoteRead, Always, Shared, &[]),
    rule(
        Exclusive,
        RemoteWrite,
        Always,
        Modified,
        &[InvalidateSharers],
    ),
    rule(Exclusive, Evict, Always, Invalid, &[InvalidateSharers]),
    rule(Shared, LocalRead, Always, Shared, &[]),
    rule(Shared, RemoteRead, Always, Shared, &[]),
    rule(Shared, LocalWrite, Always, Modified, &[InvalidateSharers]),
    rule(Shared, RemoteWrite, Always, Modified, &[InvalidateSharers]),
    rule(Shared, Evict, Always, Invalid, &[InvalidateSharers]),
    rule(Modified, LocalRead, Always, Modified, &[]),
    rule(Modified, LocalWrite, Always, Modified, &[]),
    // M-state intervention: owner's data written back, reader joins S.
    rule(Modified, RemoteRead, Always, Shared, &[Writeback]),
    rule(
        Modified,
        RemoteWrite,
        Always,
        Modified,
        &[Writeback, InvalidateSharers],
    ),
    rule(
        Modified,
        Evict,
        Always,
        Invalid,
        &[Writeback, InvalidateSharers],
    ),
];

/// MOESI: MESI plus the Owned state. A dirty line read by another core
/// moves M → O with a cache-to-cache transfer instead of a write-back;
/// the write-back is deferred to the owner's eviction.
const MOESI_RULES: &[Rule] = &[
    rule(Invalid, LocalRead, Always, Exclusive, &[]),
    rule(Invalid, RemoteRead, Always, Exclusive, &[]),
    rule(Invalid, LocalWrite, Always, Modified, &[]),
    rule(Invalid, RemoteWrite, Always, Modified, &[]),
    rule(Invalid, Evict, Always, Invalid, &[]),
    rule(Exclusive, LocalRead, Always, Exclusive, &[]),
    rule(Exclusive, LocalWrite, Always, Modified, &[]),
    rule(Exclusive, RemoteRead, Always, Shared, &[]),
    rule(
        Exclusive,
        RemoteWrite,
        Always,
        Modified,
        &[InvalidateSharers],
    ),
    rule(Exclusive, Evict, Always, Invalid, &[InvalidateSharers]),
    rule(Shared, LocalRead, Always, Shared, &[]),
    rule(Shared, RemoteRead, Always, Shared, &[]),
    rule(Shared, LocalWrite, Always, Modified, &[InvalidateSharers]),
    rule(Shared, RemoteWrite, Always, Modified, &[InvalidateSharers]),
    rule(Shared, Evict, Always, Invalid, &[InvalidateSharers]),
    rule(Modified, LocalRead, Always, Modified, &[]),
    rule(Modified, LocalWrite, Always, Modified, &[]),
    // Dirty sharing: the owner supplies the reader cache-to-cache and
    // keeps its dirty copy — no write-back on the S-fill.
    rule(Modified, RemoteRead, Always, Owned, &[CacheTransfer]),
    rule(
        Modified,
        RemoteWrite,
        Always,
        Modified,
        &[CacheTransfer, InvalidateSharers],
    ),
    rule(
        Modified,
        Evict,
        Always,
        Invalid,
        &[Writeback, InvalidateSharers],
    ),
    // Owned: the owner re-reads its own dirty copy for free; any other
    // reader is supplied by the owner.
    rule(Owned, LocalRead, RequesterIsOwner, Owned, &[]),
    rule(Owned, LocalRead, Always, Owned, &[CacheTransfer]),
    rule(Owned, RemoteRead, Always, Owned, &[CacheTransfer]),
    // Upgrading the owned line: the owner invalidates the clean sharers
    // it has been feeding; a non-owner writer additionally takes the
    // dirty data cache-to-cache.
    rule(
        Owned,
        LocalWrite,
        RequesterIsOwner,
        Modified,
        &[InvalidateSharers],
    ),
    rule(
        Owned,
        LocalWrite,
        Always,
        Modified,
        &[CacheTransfer, InvalidateSharers],
    ),
    rule(
        Owned,
        RemoteWrite,
        Always,
        Modified,
        &[CacheTransfer, InvalidateSharers],
    ),
    rule(
        Owned,
        Evict,
        Always,
        Invalid,
        &[Writeback, InvalidateSharers],
    ),
];

/// MESIF: MESI plus the Forward state — the newest clean reader is the
/// designated forwarder for subsequent shared reads.
const MESIF_RULES: &[Rule] = &[
    rule(Invalid, LocalRead, Always, Exclusive, &[]),
    rule(Invalid, RemoteRead, Always, Exclusive, &[]),
    rule(Invalid, LocalWrite, Always, Modified, &[]),
    rule(Invalid, RemoteWrite, Always, Modified, &[]),
    rule(Invalid, Evict, Always, Invalid, &[]),
    rule(Exclusive, LocalRead, Always, Exclusive, &[]),
    rule(Exclusive, LocalWrite, Always, Modified, &[]),
    // The second reader becomes the forwarder.
    rule(Exclusive, RemoteRead, Always, Forward, &[ClaimForward]),
    rule(
        Exclusive,
        RemoteWrite,
        Always,
        Modified,
        &[InvalidateSharers],
    ),
    rule(Exclusive, Evict, Always, Invalid, &[InvalidateSharers]),
    rule(Shared, LocalRead, Always, Shared, &[]),
    // A forwarderless line (the forwarder wrote back) re-designates on
    // the next remote read.
    rule(Shared, RemoteRead, Always, Forward, &[ClaimForward]),
    rule(Shared, LocalWrite, Always, Modified, &[InvalidateSharers]),
    rule(Shared, RemoteWrite, Always, Modified, &[InvalidateSharers]),
    rule(Shared, Evict, Always, Invalid, &[InvalidateSharers]),
    rule(Forward, LocalRead, Always, Forward, &[]),
    // Forwarder hand-off: the newest reader takes the designation.
    rule(Forward, RemoteRead, Always, Forward, &[ClaimForward]),
    rule(Forward, LocalWrite, Always, Modified, &[InvalidateSharers]),
    rule(Forward, RemoteWrite, Always, Modified, &[InvalidateSharers]),
    rule(Forward, Evict, Always, Invalid, &[InvalidateSharers]),
    rule(Modified, LocalRead, Always, Modified, &[]),
    rule(Modified, LocalWrite, Always, Modified, &[]),
    // Intervention, and the reader becomes the (clean) forwarder.
    rule(
        Modified,
        RemoteRead,
        Always,
        Forward,
        &[Writeback, ClaimForward],
    ),
    rule(
        Modified,
        RemoteWrite,
        Always,
        Modified,
        &[Writeback, InvalidateSharers],
    ),
    rule(
        Modified,
        Evict,
        Always,
        Invalid,
        &[Writeback, InvalidateSharers],
    ),
];

/// The outcome of stepping a table: the successor state and the
/// obligation set, decoded into flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepOutcome {
    /// Successor directory state.
    pub next: LineState,
    /// The previous owner's dirty data must be written back.
    pub writeback: bool,
    /// Other sharers' copies must be invalidated.
    pub invalidate: bool,
    /// The owner supplies the requester cache-to-cache.
    pub cache_transfer: bool,
    /// The request is served by a memory re-read.
    pub memory_read: bool,
    /// The requester becomes the designated forwarder.
    pub claim_forward: bool,
}

/// One protocol's rule table, steppable generically. Built from the
/// const family tables by [`ProtocolTable::new`], or from arbitrary rows
/// by [`ProtocolTable::from_rules`] (test mutants for the explorer's
/// diagnostics coverage).
#[derive(Clone, Debug)]
pub struct ProtocolTable {
    name: &'static str,
    rules: Vec<Rule>,
}

impl ProtocolTable {
    /// The table of one family member.
    pub fn new(protocol: CoherenceProtocol) -> Self {
        let rules = match protocol {
            CoherenceProtocol::Msi => MSI_RULES,
            CoherenceProtocol::Mesi => MESI_RULES,
            CoherenceProtocol::Moesi => MOESI_RULES,
            CoherenceProtocol::Mesif => MESIF_RULES,
        };
        ProtocolTable {
            name: protocol.name(),
            rules: rules.to_vec(),
        }
    }

    /// A table from explicit rows — for explorer tests that deliberately
    /// break a protocol and assert the violation is caught.
    pub fn from_rules(name: &'static str, rules: Vec<Rule>) -> Self {
        ProtocolTable { name, rules }
    }

    /// The table's report name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The rows (explorer mutants filter/patch these).
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Applies one event: the first row matching `(state, event)` whose
    /// guard holds decides the transition. `None` means no row matched —
    /// a stuck state, which the explorer reports as a protocol bug (the
    /// four shipped tables are total over their reachable spaces).
    pub fn step(&self, state: LineState, event: MesiEvent, ctx: GuardCtx) -> Option<StepOutcome> {
        let row = self
            .rules
            .iter()
            .find(|r| r.state == state && r.event == event && r.guard.holds(ctx))?;
        let mut out = StepOutcome {
            next: row.next,
            writeback: false,
            invalidate: false,
            cache_transfer: false,
            memory_read: false,
            claim_forward: false,
        };
        for a in row.actions {
            match a {
                Action::Writeback => out.writeback = true,
                Action::InvalidateSharers => out.invalidate = true,
                Action::CacheTransfer => out.cache_transfer = true,
                Action::MemoryRead => out.memory_read = true,
                Action::ClaimForward => out.claim_forward = true,
            }
        }
        Some(out)
    }
}

/// The discharged obligations of one directory operation on a
/// [`DirLine`] — what the home slice owes, with the sharer bookkeeping
/// already applied to the line. Timing-free: the backside charges
/// latencies and posts DRAM traffic from these flags; the explorer moves
/// its abstract data-version model from the same flags.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Obligations {
    /// The pre-transition owner's dirty data goes to memory (charged to
    /// that owner).
    pub writeback: bool,
    /// The pre-transition owner (meaningful when `writeback` or
    /// `cache_transfer` is set).
    pub old_owner: usize,
    /// Bitset of cores whose upper copies must be recalled (already
    /// removed from the line's sharer set).
    pub invalidate: u64,
    /// The line moves cache-to-cache from `old_owner` to the requester.
    pub cache_transfer: bool,
    /// The request is additionally served by a memory read.
    pub memory_read: bool,
    /// Another core's dirty copy was recalled to serve this request
    /// (write-back or cache-to-cache) — the MSHR intervention flag.
    pub intervention: bool,
    /// A read was served while other cores share the line (the
    /// replication traffic the directory saved).
    pub shared_hit: bool,
}

/// One shared line's directory record: protocol state plus what the
/// state enum cannot carry — the sharer bitset and the owner. This is
/// the bookkeeping the product backside *and* the model-checking
/// explorer both step, so the explorer checks the executed code, not a
/// re-implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DirLine {
    /// Directory state of the copies above the shared cache.
    pub state: LineState,
    /// Bitset of cores holding copies.
    pub sharers: u64,
    /// The owner/forwarder core (meaningful when
    /// [`LineState::has_owner`]).
    pub owner: usize,
}

impl DirLine {
    /// A line with no upper copies.
    pub fn empty() -> Self {
        DirLine {
            state: LineState::Invalid,
            sharers: 0,
            owner: 0,
        }
    }

    /// A freshly L3-resident line filled by `core` (`write` = RFO):
    /// steps the table's Invalid row, making the requester the sole
    /// holder in whatever state the table fills to.
    pub fn fill(table: &ProtocolTable, core: usize, write: bool) -> Self {
        let mut line = DirLine::empty();
        line.access(table, core, write);
        line
    }

    /// Whether `core` is recorded as holding a copy above the shared
    /// cache.
    pub fn holds(&self, core: usize) -> bool {
        match self.state {
            LineState::Invalid => false,
            LineState::Exclusive | LineState::Modified => self.owner == core,
            LineState::Shared | LineState::Owned | LineState::Forward => {
                self.sharers & (1 << core) != 0
            }
        }
    }

    /// The protocol event an access by `core` presents to the home
    /// slice: local if the core is recorded for the line, remote
    /// otherwise.
    pub fn event_for(&self, core: usize, write: bool) -> MesiEvent {
        match (write, self.holds(core)) {
            (false, true) => MesiEvent::LocalRead,
            (false, false) => MesiEvent::RemoteRead,
            (true, true) => MesiEvent::LocalWrite,
            (true, false) => MesiEvent::RemoteWrite,
        }
    }

    /// The guard context an access by `core` is evaluated under (public
    /// so the explorer can pre-check row coverage — a missing row is a
    /// *stuck state* it reports with a trace, where the product path
    /// panics).
    pub fn ctx_for(&self, core: usize) -> GuardCtx {
        GuardCtx {
            other_sharers: self.sharers & !(1u64 << core) != 0,
            requester_is_owner: self.state.has_owner() && self.owner == core,
        }
    }

    /// One access (read/prefetch or write) by `core`: steps the table
    /// and applies the sharer/owner bookkeeping. Invalidation is
    /// action-driven — only a row carrying
    /// [`Action::InvalidateSharers`] recalls the other sharers, so a
    /// table that forgets the action leaves stale sharers behind for the
    /// explorer to catch.
    pub fn access(&mut self, table: &ProtocolTable, core: usize, write: bool) -> Obligations {
        let me = 1u64 << core;
        let was = self.state;
        let old_owner = self.owner;
        let others = self.sharers & !me;
        let out = table
            .step(was, self.event_for(core, write), self.ctx_for(core))
            .unwrap_or_else(|| {
                panic!(
                    "protocol table '{}' is stuck: no row for ({:?}, {:?})",
                    table.name(),
                    was,
                    self.event_for(core, write),
                )
            });
        let intervention = out.writeback || out.cache_transfer;
        self.state = out.next;
        let mut ob = Obligations {
            writeback: out.writeback,
            old_owner,
            cache_transfer: out.cache_transfer,
            memory_read: out.memory_read,
            intervention,
            ..Default::default()
        };
        if write {
            let recalled = if out.invalidate { others } else { 0 };
            ob.invalidate = recalled;
            self.owner = core;
            self.sharers = me | (others & !recalled);
        } else {
            ob.shared_hit = !intervention && others != 0;
            if was == LineState::Invalid || out.claim_forward {
                self.owner = core;
            }
            self.sharers |= me;
        }
        ob
    }

    /// The line leaves the shared cache (capacity eviction or DMA
    /// invalidation): every upper copy is recalled; a dirty owner's data
    /// is written back when the table's Evict row says so.
    pub fn evict(&mut self, table: &ProtocolTable) -> Obligations {
        let out = table
            .step(
                self.state,
                MesiEvent::Evict,
                GuardCtx {
                    other_sharers: self.sharers != 0,
                    requester_is_owner: false,
                },
            )
            .unwrap_or_else(|| {
                panic!(
                    "protocol table '{}' is stuck: no row for ({:?}, Evict)",
                    table.name(),
                    self.state,
                )
            });
        debug_assert_eq!(out.next, LineState::Invalid, "eviction must empty the line");
        let ob = Obligations {
            writeback: out.writeback,
            old_owner: self.owner,
            // Every upper copy is recalled regardless of the action —
            // the copies are gone with the home line either way.
            invalidate: self.sharers,
            intervention: out.writeback,
            ..Default::default()
        };
        self.state = out.next;
        self.sharers = 0;
        ob
    }

    /// `core`'s L2 wrote the line back (upper eviction cascade): its
    /// sharer bit clears, and a departing owner demotes the line to
    /// Shared (or Invalid when it was the last holder).
    pub fn writeback_from(&mut self, core: usize) {
        let me = 1u64 << core;
        self.sharers &= !me;
        if self.state.has_owner() && self.owner == core {
            self.state = if self.sharers == 0 {
                LineState::Invalid
            } else {
                LineState::Shared
            };
        }
    }

    /// A non-caching reader (DMA snoop) hits a line dirty at another
    /// core: steps the RemoteRead row to recall the data, but leaves the
    /// sharer set and owner untouched — the DMA never joins the sharers.
    /// Returns `None` when the line is not dirty at another core.
    pub fn snoop_recall(&mut self, table: &ProtocolTable, core: usize) -> Option<Obligations> {
        if !(self.state.is_dirty() && self.owner != core) {
            return None;
        }
        let out = table
            .step(self.state, MesiEvent::RemoteRead, self.ctx_for(core))
            .unwrap_or_else(|| {
                panic!(
                    "protocol table '{}' is stuck: no row for ({:?}, RemoteRead)",
                    table.name(),
                    self.state,
                )
            });
        self.state = out.next;
        Some(Obligations {
            writeback: out.writeback,
            old_owner: self.owner,
            cache_transfer: out.cache_transfer,
            memory_read: out.memory_read,
            intervention: out.writeback || out.cache_transfer,
            ..Default::default()
        })
    }
}

/// Maps the legacy [`MesiState`] alphabet into the family-wide
/// [`LineState`] alphabet (the refactor-equivalence tests speak both).
pub fn line_state_of(m: MesiState) -> LineState {
    match m {
        MesiState::Invalid => LineState::Invalid,
        MesiState::Exclusive => LineState::Exclusive,
        MesiState::Shared => LineState::Shared,
        MesiState::Modified => LineState::Modified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesi::MesiAction;

    fn mesi() -> ProtocolTable {
        ProtocolTable::new(CoherenceProtocol::Mesi)
    }

    const EVENTS: [MesiEvent; 5] = [LocalRead, LocalWrite, RemoteRead, RemoteWrite, Evict];

    /// Satellite: the Mesi table is transition-for-transition the
    /// hand-written `MesiState::step` — exhaustively, over every
    /// (state, event) pair and both guard contexts.
    #[test]
    fn mesi_table_matches_handwritten_step_exhaustively() {
        let table = mesi();
        for s in [
            MesiState::Invalid,
            MesiState::Exclusive,
            MesiState::Shared,
            MesiState::Modified,
        ] {
            for e in EVENTS {
                let (next, action) = s.step(e);
                for other_sharers in [false, true] {
                    for requester_is_owner in [false, true] {
                        let out = table
                            .step(
                                line_state_of(s),
                                e,
                                GuardCtx {
                                    other_sharers,
                                    requester_is_owner,
                                },
                            )
                            .expect("mesi table is total");
                        assert_eq!(out.next, line_state_of(next), "({s:?}, {e:?})");
                        let (want_wb, want_inv) = match action {
                            MesiAction::None => (false, false),
                            MesiAction::Writeback => (true, false),
                            MesiAction::InvalidateSharers => (false, true),
                            MesiAction::WritebackAndInvalidate => (true, true),
                        };
                        assert_eq!(out.writeback, want_wb, "({s:?}, {e:?})");
                        assert_eq!(out.invalidate, want_inv, "({s:?}, {e:?})");
                        assert!(
                            !out.cache_transfer && !out.memory_read && !out.claim_forward,
                            "mesi emits no family-extension actions ({s:?}, {e:?})"
                        );
                    }
                }
            }
        }
    }

    /// All four tables are total over their full declared state × event
    /// grid under every guard context *for the states the table names* —
    /// stuck-freedom over the reachable subset is the explorer's job;
    /// this is the cheap static sanity pass.
    #[test]
    fn all_tables_are_total_over_their_states() {
        for p in CoherenceProtocol::ALL {
            let table = ProtocolTable::new(p);
            let states: Vec<LineState> = {
                let mut s: Vec<LineState> = table.rules().iter().map(|r| r.state).collect();
                s.dedup();
                s
            };
            for &st in &states {
                for e in EVENTS {
                    for other_sharers in [false, true] {
                        for requester_is_owner in [false, true] {
                            assert!(
                                table
                                    .step(
                                        st,
                                        e,
                                        GuardCtx {
                                            other_sharers,
                                            requester_is_owner,
                                        },
                                    )
                                    .is_some(),
                                "{}: no row for ({st:?}, {e:?})",
                                p.name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn msi_has_no_exclusive_and_rereads_memory_on_dirty_recall() {
        let table = ProtocolTable::new(CoherenceProtocol::Msi);
        let mut line = DirLine::fill(&table, 0, false);
        assert_eq!(line.state, LineState::Shared, "first reader fills Shared");
        let mut dirty = DirLine::fill(&table, 0, true);
        assert_eq!(dirty.state, LineState::Modified);
        let ob = dirty.access(&table, 1, false);
        assert!(ob.writeback && ob.memory_read && ob.intervention);
        assert_eq!(dirty.state, LineState::Shared);
        // A write while alone still costs no invalidation round.
        let ob = line.access(&table, 0, true);
        assert_eq!(ob.invalidate, 0);
        assert_eq!(line.state, LineState::Modified);
    }

    #[test]
    fn moesi_dirty_sharing_skips_the_writeback() {
        let table = ProtocolTable::new(CoherenceProtocol::Moesi);
        let mut line = DirLine::fill(&table, 0, true);
        assert_eq!(line.state, LineState::Modified);
        // Remote read: cache-to-cache, no write-back, owner keeps dirty.
        let ob = line.access(&table, 1, false);
        assert!(ob.cache_transfer && !ob.writeback && ob.intervention);
        assert_eq!(line.state, LineState::Owned);
        assert_eq!(line.owner, 0, "dirty owner unchanged");
        assert!(line.holds(0) && line.holds(1));
        // The owner re-reads its own line for free.
        let ob = line.access(&table, 0, false);
        assert!(!ob.cache_transfer && !ob.writeback);
        // Owner upgrade: invalidate the fed sharers, no transfer.
        let ob = line.access(&table, 0, true);
        assert_eq!(ob.invalidate, 1 << 1);
        assert!(!ob.cache_transfer);
        assert_eq!(line.state, LineState::Modified);
        assert_eq!(line.sharers, 1 << 0);
        // Eviction of the dirty line finally pays the write-back.
        let ob = line.evict(&table);
        assert!(ob.writeback);
        assert_eq!(ob.old_owner, 0);
    }

    #[test]
    fn mesif_designates_and_hands_off_the_forwarder() {
        let table = ProtocolTable::new(CoherenceProtocol::Mesif);
        let mut line = DirLine::fill(&table, 0, false);
        assert_eq!(line.state, LineState::Exclusive);
        // Second reader becomes the forwarder.
        let ob = line.access(&table, 1, false);
        assert!(ob.shared_hit);
        assert_eq!(line.state, LineState::Forward);
        assert_eq!(line.owner, 1);
        // Third reader takes the designation over.
        line.access(&table, 2, false);
        assert_eq!(line.owner, 2);
        assert_eq!(line.sharers, 0b111);
        // The forwarder writes: everyone else is recalled.
        let ob = line.access(&table, 2, true);
        assert_eq!(ob.invalidate, 0b011);
        assert_eq!(line.state, LineState::Modified);
        assert_eq!(line.sharers, 1 << 2);
    }

    /// Satellite: the §3 non-interaction claim holds for the whole
    /// family — interleaving hybrid (Figure 6) traffic with each
    /// protocol table's traffic moves neither machine off its isolated
    /// reference run.
    #[test]
    fn protocols_do_not_interact_across_the_family() {
        use crate::state::{DataEvent as H, DataState};
        let hybrid_events = [
            H::LmMap,
            H::CmAccess,
            H::CmEvict,
            H::LmWriteback,
            H::LmUnmap,
        ];
        // One read-share/write/evict episode; cores 0..2 on one line.
        let ops: [(usize, bool); 5] = [(0, false), (1, false), (2, true), (2, false), (0, true)];
        for p in CoherenceProtocol::ALL {
            let table = ProtocolTable::new(p);

            // Interleaved run.
            let mut hybrid = DataState::MM;
            let mut line = DirLine::empty();
            for (h, &(core, write)) in hybrid_events.iter().zip(&ops) {
                hybrid = hybrid.step(*h).expect("legal hybrid sequence");
                line.access(&table, core, write);
            }

            // Isolated reference runs.
            let mut hybrid_alone = DataState::MM;
            for h in &hybrid_events {
                hybrid_alone = hybrid_alone.step(*h).expect("legal hybrid sequence");
            }
            let mut line_alone = DirLine::empty();
            for &(core, write) in &ops {
                line_alone.access(&table, core, write);
            }

            assert_eq!(
                hybrid,
                hybrid_alone,
                "{} traffic must not move the hybrid machine",
                p.name()
            );
            assert_eq!(
                line,
                line_alone,
                "hybrid traffic must not move the {} machine",
                p.name()
            );
        }
    }
}
