//! Textual assembler and disassembler.
//!
//! The syntax is a minimal RISC-style format, one instruction per line,
//! with `;`/`#` comments and `name:` labels:
//!
//! ```text
//! ; increment loop
//!     li   r1, 0
//!     li   r2, 10
//! top:
//!     addi r1, r1, 1
//!     blt  r1, r2, top
//!     halt
//! ```
//!
//! Guarded and oracle memory operations use the `g`/`o` mnemonic prefixes
//! from the paper's Figure 3: `gld.d`, `gst.d`, `old.d`, `ost.w`, `gfld`,
//! `ofst`, …

use crate::inst::{AluOp, Cond, FpuOp, Inst, Operand, Phase, Route, Width};
use crate::program::Program;
use crate::reg::{FReg, Reg, NUM_FP_REGS, NUM_INT_REGS};
use std::collections::HashMap;
use std::fmt::Write as _;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable message.
    pub msg: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError {
        line,
        msg: msg.into(),
    }
}

/// Assembles source text into a [`Program`].
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    // Pass 1: collect labels.
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut pc = 0usize;
    for (ln, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_suffix(':') {
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(err(ln + 1, format!("bad label {line:?}")));
            }
            if labels.insert(name.to_string(), pc).is_some() {
                return Err(err(ln + 1, format!("duplicate label {name:?}")));
            }
        } else {
            pc += 1;
        }
    }

    // Pass 2: parse instructions.
    let mut insts = Vec::with_capacity(pc);
    for (ln, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() || line.ends_with(':') {
            continue;
        }
        insts.push(parse_inst(line, ln + 1, &labels)?);
    }
    let label_names = labels.into_iter().map(|(k, v)| (v, k)).collect();
    Ok(Program { insts, label_names })
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_inst(line: &str, ln: usize, labels: &HashMap<String, usize>) -> Result<Inst, AsmError> {
    let (mn, rest) = match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i..].trim()),
        None => (line, ""),
    };
    let ops: Vec<&str> = if rest.is_empty() {
        vec![]
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let nops = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                ln,
                format!("{mn}: expected {n} operands, got {}", ops.len()),
            ))
        }
    };

    // ALU register/immediate forms: `add rd, rs1, rs2|imm`,
    // `addi rd, rs1, imm`.
    let alu_ops: &[(&str, AluOp)] = &[
        ("add", AluOp::Add),
        ("sub", AluOp::Sub),
        ("mul", AluOp::Mul),
        ("div", AluOp::Div),
        ("and", AluOp::And),
        ("or", AluOp::Or),
        ("xor", AluOp::Xor),
        ("sll", AluOp::Sll),
        ("srl", AluOp::Srl),
        ("sra", AluOp::Sra),
        ("slt", AluOp::Slt),
        ("sltu", AluOp::Sltu),
    ];
    for &(name, op) in alu_ops {
        if mn == name || mn == format!("{name}i") {
            nops(3)?;
            let rd = parse_reg(ops[0], ln)?;
            let rs1 = parse_reg(ops[1], ln)?;
            let src2 = if mn.ends_with('i') || ops[2].parse::<i64>().is_ok() {
                Operand::Imm(parse_imm(ops[2], ln)?)
            } else {
                Operand::Reg(parse_reg(ops[2], ln)?)
            };
            return Ok(Inst::Alu { op, rd, rs1, src2 });
        }
    }

    let fpu_ops: &[(&str, FpuOp)] = &[
        ("fadd", FpuOp::FAdd),
        ("fsub", FpuOp::FSub),
        ("fmul", FpuOp::FMul),
        ("fdiv", FpuOp::FDiv),
        ("fsqrt", FpuOp::FSqrt),
        ("fmin", FpuOp::FMin),
        ("fmax", FpuOp::FMax),
    ];
    for &(name, op) in fpu_ops {
        if mn == name {
            if op.is_unary() {
                nops(2)?;
                let fd = parse_freg(ops[0], ln)?;
                let fs1 = parse_freg(ops[1], ln)?;
                return Ok(Inst::Fpu {
                    op,
                    fd,
                    fs1,
                    fs2: fs1,
                });
            }
            nops(3)?;
            return Ok(Inst::Fpu {
                op,
                fd: parse_freg(ops[0], ln)?,
                fs1: parse_freg(ops[1], ln)?,
                fs2: parse_freg(ops[2], ln)?,
            });
        }
    }

    // Loads/stores: `[g|o]ld.{b,w,d} rd, off(base)`, `[g|o]st.{b,w,d}`,
    // `[g|o]fld fd, off(base)`, `[g|o]fst fs, off(base)`.
    if let Some((route, kind, width)) = parse_mem_mnemonic(mn) {
        nops(2)?;
        match kind {
            MemKind::Load => {
                let rd = parse_reg(ops[0], ln)?;
                let (offset, base, index) = parse_mem_operand(ops[1], ln)?;
                return Ok(Inst::Load {
                    rd,
                    base,
                    index,
                    offset,
                    width,
                    route,
                });
            }
            MemKind::Store => {
                let rs = parse_reg(ops[0], ln)?;
                let (offset, base, index) = parse_mem_operand(ops[1], ln)?;
                return Ok(Inst::Store {
                    rs,
                    base,
                    index,
                    offset,
                    width,
                    route,
                });
            }
            MemKind::FLoad => {
                let fd = parse_freg(ops[0], ln)?;
                let (offset, base, index) = parse_mem_operand(ops[1], ln)?;
                return Ok(Inst::FLoad {
                    fd,
                    base,
                    index,
                    offset,
                    route,
                });
            }
            MemKind::FStore => {
                let fs = parse_freg(ops[0], ln)?;
                let (offset, base, index) = parse_mem_operand(ops[1], ln)?;
                return Ok(Inst::FStore {
                    fs,
                    base,
                    index,
                    offset,
                    route,
                });
            }
        }
    }

    let conds: &[(&str, Cond)] = &[
        ("beq", Cond::Eq),
        ("bne", Cond::Ne),
        ("blt", Cond::Lt),
        ("bge", Cond::Ge),
        ("bltu", Cond::Ltu),
        ("bgeu", Cond::Geu),
    ];
    for &(name, cond) in conds {
        if mn == name {
            nops(3)?;
            return Ok(Inst::Branch {
                cond,
                rs1: parse_reg(ops[0], ln)?,
                rs2: parse_reg(ops[1], ln)?,
                target: parse_target(ops[2], ln, labels)?,
            });
        }
    }

    match mn {
        "li" => {
            nops(2)?;
            Ok(Inst::Li {
                rd: parse_reg(ops[0], ln)?,
                imm: parse_imm(ops[1], ln)?,
            })
        }
        "mov.if" => {
            nops(2)?;
            Ok(Inst::MovIF {
                fd: parse_freg(ops[0], ln)?,
                rs: parse_reg(ops[1], ln)?,
            })
        }
        "mov.fi" => {
            nops(2)?;
            Ok(Inst::MovFI {
                rd: parse_reg(ops[0], ln)?,
                fs: parse_freg(ops[1], ln)?,
            })
        }
        "cvt.if" => {
            nops(2)?;
            Ok(Inst::CvtIF {
                fd: parse_freg(ops[0], ln)?,
                rs: parse_reg(ops[1], ln)?,
            })
        }
        "cvt.fi" => {
            nops(2)?;
            Ok(Inst::CvtFI {
                rd: parse_reg(ops[0], ln)?,
                fs: parse_freg(ops[1], ln)?,
            })
        }
        "jmp" => {
            nops(1)?;
            Ok(Inst::Jump {
                target: parse_target(ops[0], ln, labels)?,
            })
        }
        "call" => {
            nops(1)?;
            Ok(Inst::Call {
                target: parse_target(ops[0], ln, labels)?,
            })
        }
        "ret" => {
            nops(0)?;
            Ok(Inst::Ret)
        }
        "dma.get" | "dma.put" => {
            nops(4)?;
            let lm = parse_reg(ops[0], ln)?;
            let sm = parse_reg(ops[1], ln)?;
            let bytes = parse_reg(ops[2], ln)?;
            let tag = parse_tag(ops[3], ln)?;
            Ok(if mn == "dma.get" {
                Inst::DmaGet { lm, sm, bytes, tag }
            } else {
                Inst::DmaPut { lm, sm, bytes, tag }
            })
        }
        "dma.synch" => {
            nops(1)?;
            Ok(Inst::DmaSynch {
                tag: parse_tag(ops[0], ln)?,
            })
        }
        "dir.cfg" => {
            nops(1)?;
            Ok(Inst::DirCfg {
                rs: parse_reg(ops[0], ln)?,
            })
        }
        "phase" => {
            nops(1)?;
            let phase = match ops[0] {
                "other" => Phase::Other,
                "control" => Phase::Control,
                "synch" => Phase::Synch,
                "work" => Phase::Work,
                p => return Err(err(ln, format!("unknown phase {p:?}"))),
            };
            Ok(Inst::PhaseMark { phase })
        }
        "halt" => {
            nops(0)?;
            Ok(Inst::Halt)
        }
        "nop" => {
            nops(0)?;
            Ok(Inst::Nop)
        }
        _ => Err(err(ln, format!("unknown mnemonic {mn:?}"))),
    }
}

enum MemKind {
    Load,
    Store,
    FLoad,
    FStore,
}

fn parse_mem_mnemonic(mn: &str) -> Option<(Route, MemKind, Width)> {
    let (route, rest) = if let Some(r) = mn.strip_prefix('g') {
        (Route::Guarded, r)
    } else if let Some(r) = mn.strip_prefix('o') {
        (Route::Oracle, r)
    } else {
        (Route::Plain, mn)
    };
    if rest == "fld" {
        return Some((route, MemKind::FLoad, Width::D));
    }
    if rest == "fst" {
        return Some((route, MemKind::FStore, Width::D));
    }
    let (kind, rest) = if let Some(r) = rest.strip_prefix("ld") {
        (MemKind::Load, r)
    } else if let Some(r) = rest.strip_prefix("st") {
        (MemKind::Store, r)
    } else {
        return None;
    };
    let width = match rest {
        ".b" => Width::B,
        ".w" => Width::W,
        ".d" => Width::D,
        _ => return None,
    };
    Some((route, kind, width))
}

fn parse_reg(s: &str, ln: usize) -> Result<Reg, AsmError> {
    let n: usize = s
        .strip_prefix('r')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| err(ln, format!("expected integer register, got {s:?}")))?;
    if n >= NUM_INT_REGS {
        return Err(err(ln, format!("register {s} out of range")));
    }
    Ok(Reg(n as u8))
}

fn parse_freg(s: &str, ln: usize) -> Result<FReg, AsmError> {
    let n: usize = s
        .strip_prefix('f')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| err(ln, format!("expected fp register, got {s:?}")))?;
    if n >= NUM_FP_REGS {
        return Err(err(ln, format!("register {s} out of range")));
    }
    Ok(FReg(n as u8))
}

fn parse_imm(s: &str, ln: usize) -> Result<i64, AsmError> {
    let (neg, t) = match s.strip_prefix('-') {
        Some(t) => (true, t),
        None => (false, s),
    };
    let v = if let Some(hex) = t.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).ok()
    } else {
        t.parse::<i64>().ok().or_else(|| {
            // Allow u64 literals for high addresses.
            t.parse::<u64>().ok().map(|u| u as i64)
        })
    };
    let v = v.ok_or_else(|| err(ln, format!("bad immediate {s:?}")))?;
    Ok(if neg { v.wrapping_neg() } else { v })
}

/// Parses `off(base)` and `off(base+index)` memory operands.
fn parse_mem_operand(s: &str, ln: usize) -> Result<(i64, Reg, Option<Reg>), AsmError> {
    let open = s
        .find('(')
        .ok_or_else(|| err(ln, format!("expected off(base), got {s:?}")))?;
    if !s.ends_with(')') {
        return Err(err(ln, format!("expected off(base), got {s:?}")));
    }
    let off_str = s[..open].trim();
    let offset = if off_str.is_empty() {
        0
    } else {
        parse_imm(off_str, ln)?
    };
    let inner = s[open + 1..s.len() - 1].trim();
    match inner.split_once('+') {
        Some((b, i)) => Ok((
            offset,
            parse_reg(b.trim(), ln)?,
            Some(parse_reg(i.trim(), ln)?),
        )),
        None => Ok((offset, parse_reg(inner, ln)?, None)),
    }
}

fn parse_target(s: &str, ln: usize, labels: &HashMap<String, usize>) -> Result<usize, AsmError> {
    if let Some(&pc) = labels.get(s) {
        return Ok(pc);
    }
    if let Some(n) = s.strip_prefix('@').and_then(|n| n.parse::<usize>().ok()) {
        return Ok(n);
    }
    Err(err(ln, format!("unknown label {s:?}")))
}

fn parse_tag(s: &str, ln: usize) -> Result<u8, AsmError> {
    let t: u8 = s
        .parse()
        .map_err(|_| err(ln, format!("bad DMA tag {s:?}")))?;
    if t >= 8 {
        return Err(err(ln, format!("DMA tag {t} out of range (0-7)")));
    }
    Ok(t)
}

// ---------------------------------------------------------------------------
// Disassembler
// ---------------------------------------------------------------------------

fn fmt_base(base: &crate::reg::Reg, index: &Option<crate::reg::Reg>) -> String {
    match index {
        Some(i) => format!("{base}+{i}"),
        None => format!("{base}"),
    }
}

/// Formats one instruction in assembler syntax. Control-flow targets are
/// printed as `@pc` raw targets unless the program supplies a label name.
pub fn format_inst(inst: &Inst, label_names: &HashMap<usize, String>) -> String {
    let tgt = |t: &usize| {
        label_names
            .get(t)
            .cloned()
            .unwrap_or_else(|| format!("@{t}"))
    };
    match inst {
        Inst::Alu { op, rd, rs1, src2 } => match src2 {
            Operand::Reg(r) => format!("{} {rd}, {rs1}, {r}", op.mnemonic()),
            Operand::Imm(i) => format!("{}i {rd}, {rs1}, {i}", op.mnemonic()),
        },
        Inst::Li { rd, imm } => format!("li {rd}, {imm}"),
        Inst::Fpu { op, fd, fs1, fs2 } => {
            if op.is_unary() {
                format!("{} {fd}, {fs1}", op.mnemonic())
            } else {
                format!("{} {fd}, {fs1}, {fs2}", op.mnemonic())
            }
        }
        Inst::MovIF { fd, rs } => format!("mov.if {fd}, {rs}"),
        Inst::MovFI { rd, fs } => format!("mov.fi {rd}, {fs}"),
        Inst::CvtIF { fd, rs } => format!("cvt.if {fd}, {rs}"),
        Inst::CvtFI { rd, fs } => format!("cvt.fi {rd}, {fs}"),
        Inst::Load {
            rd,
            base,
            index,
            offset,
            width,
            route,
        } => format!(
            "{}ld{} {rd}, {offset}({})",
            route.prefix(),
            width.suffix(),
            fmt_base(base, index)
        ),
        Inst::Store {
            rs,
            base,
            index,
            offset,
            width,
            route,
        } => format!(
            "{}st{} {rs}, {offset}({})",
            route.prefix(),
            width.suffix(),
            fmt_base(base, index)
        ),
        Inst::FLoad {
            fd,
            base,
            index,
            offset,
            route,
        } => format!(
            "{}fld {fd}, {offset}({})",
            route.prefix(),
            fmt_base(base, index)
        ),
        Inst::FStore {
            fs,
            base,
            index,
            offset,
            route,
        } => format!(
            "{}fst {fs}, {offset}({})",
            route.prefix(),
            fmt_base(base, index)
        ),
        Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => format!("{} {rs1}, {rs2}, {}", cond.mnemonic(), tgt(target)),
        Inst::Jump { target } => format!("jmp {}", tgt(target)),
        Inst::Call { target } => format!("call {}", tgt(target)),
        Inst::Ret => "ret".to_string(),
        Inst::DmaGet { lm, sm, bytes, tag } => format!("dma.get {lm}, {sm}, {bytes}, {tag}"),
        Inst::DmaPut { lm, sm, bytes, tag } => format!("dma.put {lm}, {sm}, {bytes}, {tag}"),
        Inst::DmaSynch { tag } => format!("dma.synch {tag}"),
        Inst::DirCfg { rs } => format!("dir.cfg {rs}"),
        Inst::PhaseMark { phase } => format!("phase {}", phase.name()),
        Inst::Halt => "halt".to_string(),
        Inst::Nop => "nop".to_string(),
    }
}

/// Disassembles a whole program, emitting labels at branch targets.
pub fn disassemble(p: &Program) -> String {
    // Collect every control-flow target so we can emit labels for them.
    let mut targets: HashMap<usize, String> = p.label_names.clone();
    for inst in &p.insts {
        if let Inst::Branch { target, .. } | Inst::Jump { target } | Inst::Call { target } = inst {
            targets
                .entry(*target)
                .or_insert_with(|| format!("L{target}"));
        }
    }
    let mut out = String::new();
    for (pc, inst) in p.insts.iter().enumerate() {
        if let Some(name) = targets.get(&pc) {
            let _ = writeln!(out, "{name}:");
        }
        let _ = writeln!(out, "    {}", format_inst(inst, &targets));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_basic_loop() {
        let p = assemble(
            "; simple counting loop\n\
             \tli r1, 0\n\
             \tli r2, 10\n\
             top:\n\
             \taddi r1, r1, 1\n\
             \tblt r1, r2, top\n\
             \thalt\n",
        )
        .unwrap();
        assert_eq!(p.len(), 5);
        match p.insts[3] {
            Inst::Branch {
                cond: Cond::Lt,
                target,
                ..
            } => assert_eq!(target, 2),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn assemble_all_routes() {
        let p = assemble(
            "ld.d r1, 0(r2)\n\
             gld.d r1, 8(r2)\n\
             old.w r1, -4(r2)\n\
             st.b r1, 0(r2)\n\
             gst.d r1, 0(r2)\n\
             ost.d r1, 0(r2)\n\
             fld f1, 0(r2)\n\
             gfld f1, 0(r2)\n\
             fst f1, 16(r2)\n\
             gfst f1, 16(r2)\n\
             ofst f1, 16(r2)\n",
        )
        .unwrap();
        assert_eq!(p.count_route(Route::Guarded), 4);
        assert_eq!(p.count_route(Route::Oracle), 3);
        assert_eq!(p.count_route(Route::Plain), 4);
    }

    #[test]
    fn assemble_dma_and_phase() {
        let p = assemble(
            "phase control\n\
             dma.get r1, r2, r3, 1\n\
             phase synch\n\
             dma.synch 1\n\
             phase work\n\
             dir.cfg r4\n\
             dma.put r1, r2, r3, 0\n\
             halt\n",
        )
        .unwrap();
        assert_eq!(p.len(), 8);
        assert_eq!(
            p.insts[1],
            Inst::DmaGet {
                lm: Reg(1),
                sm: Reg(2),
                bytes: Reg(3),
                tag: 1
            }
        );
        assert_eq!(p.insts[4], Inst::PhaseMark { phase: Phase::Work });
    }

    #[test]
    fn immediate_forms() {
        let p = assemble("addi r1, r2, -8\nadd r1, r2, 16\nadd r1, r2, r3\nli r1, 0x1f\n").unwrap();
        assert_eq!(
            p.insts[0],
            Inst::Alu {
                op: AluOp::Add,
                rd: Reg(1),
                rs1: Reg(2),
                src2: Operand::Imm(-8)
            }
        );
        assert_eq!(
            p.insts[1],
            Inst::Alu {
                op: AluOp::Add,
                rd: Reg(1),
                rs1: Reg(2),
                src2: Operand::Imm(16)
            }
        );
        assert_eq!(
            p.insts[2],
            Inst::Alu {
                op: AluOp::Add,
                rd: Reg(1),
                rs1: Reg(2),
                src2: Operand::Reg(Reg(3))
            }
        );
        assert_eq!(
            p.insts[3],
            Inst::Li {
                rd: Reg(1),
                imm: 31
            }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = assemble("ld.d r1, r2\n").unwrap_err();
        assert!(e.msg.contains("off(base)"), "{}", e.msg);
        let e = assemble("beq r1, r2, nowhere\n").unwrap_err();
        assert!(e.msg.contains("unknown label"));
        let e = assemble("dma.synch 9\n").unwrap_err();
        assert!(e.msg.contains("out of range"));
        let e = assemble("ld.d r99, 0(r1)\n").unwrap_err();
        assert!(e.msg.contains("out of range"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a:\nnop\na:\nnop\n").unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn disassemble_round_trip() {
        let src = "\
            li r1, 0\n\
            li r2, 100\n\
            top:\n\
            gld.d r3, 0(r1)\n\
            ld.d r9, 8(r1+r2)\n\
            gst.w r9, -8(r1+r2)\n\
            gfld f5, 0(r1+r2)\n\
            addi r3, r3, 1\n\
            gst.d r3, 0(r1)\n\
            st.d r3, 0(r1)\n\
            fadd f1, f2, f3\n\
            fsqrt f4, f1\n\
            blt r1, r2, top\n\
            call fn\n\
            halt\n\
            fn:\n\
            phase work\n\
            ret\n";
        let p1 = assemble(src).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p1.insts, p2.insts, "round trip changed program:\n{text}");
    }
}
