//! Multicore scaling: one NAS kernel sharded over 1/2/4/8 simulated
//! cores of a single machine (shared L3/DRAM backside), plus the
//! host-parallel batch driver against the sequential experiment loop.
//!
//! Besides wall-clock timings, each configuration prints its simulated
//! cycles-per-core and makespan once, so `cargo bench` doubles as a
//! quick scaling report.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hsim::prelude::*;
use hsim_workloads::nas;

fn bench_core_count_sweep(c: &mut Criterion) {
    let kernel = nas::cg(Scale::Test);
    for cores in [1usize, 2, 4, 8] {
        let report = RunSpec::new(&kernel)
            .cores(cores)
            .mode(SysMode::HybridCoherent)
            .track(false)
            .run()
            .map(RunOutcome::into_multi)
            .unwrap();
        let cycles: Vec<u64> = report.per_core.iter().map(|r| r.cycles).collect();
        let total_cycles: u64 = cycles.iter().sum();
        println!(
            "cg x{cores}: makespan {} cycles, per-core {:?}, bus waits {}, {:.1}% skipped",
            report.makespan,
            cycles,
            report.total_bus_wait_cycles(),
            100.0 * report.total_skipped_cycles() as f64 / total_cycles.max(1) as f64
        );
        c.bench_function(format!("cg_shard_{cores}core_machine"), |b| {
            b.iter(|| {
                black_box(
                    RunSpec::new(&kernel)
                        .cores(cores)
                        .mode(SysMode::HybridCoherent)
                        .track(false)
                        .run()
                        .map(RunOutcome::into_multi)
                        .unwrap()
                        .makespan,
                )
            })
        });
    }
}

fn bench_batch_driver(c: &mut Criterion) {
    // The fig8 sweep over three kernels, sequential loop vs the
    // thread-pool driver. On a multi-core host the parallel driver wins
    // by roughly the worker count; results are identical either way.
    let kernels = vec![
        nas::ep(Scale::Test),
        nas::is(Scale::Test),
        nas::cg(Scale::Test),
    ];
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!("host parallelism: {host} thread(s)");
    c.bench_function("fig8_sweep_sequential", |b| {
        b.iter(|| black_box(fig8(&kernels, Parallelism::Serial).unwrap().len()))
    });
    c.bench_function("fig8_sweep_parallel", |b| {
        b.iter(|| black_box(fig8(&kernels, Parallelism::HostThreads).unwrap().len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_core_count_sweep, bench_batch_driver
}
criterion_main!(benches);
