//! Cycle-skipping equivalence: the event-horizon scheduler must be a
//! pure host-speed optimization. Every run here executes twice — once
//! with skipping (the default) and once with the `lockstep: true`
//! escape hatch — and every observable of the simulation must be
//! bit-identical: cycle counts, per-level hit counts, phase split,
//! backside bus waits, DRAM lines, energy, and the final memory image.
//!
//! The grids mirror the paper's row builders: the Figure 7
//! microbenchmark sweep, Figure 8's coherent-vs-oracle kernel runs, and
//! the Figure 9/10 hybrid-vs-cache comparison, on single-core and
//! 4-core machines in all three `SysMode`s.

use hsim::compiler::compile;
use hsim::prelude::*;
use hsim_workloads::nas;

/// Asserts that a skipping run and a lockstep run produced identical
/// reports (everything except the skip accounting itself).
fn assert_reports_equal(skip: &RunReport, lock: &RunReport, what: &str) {
    assert_eq!(lock.skipped_cycles, 0, "{what}: lockstep must not skip");
    assert_eq!(skip.cycles, lock.cycles, "{what}: cycles");
    assert_eq!(skip.committed, lock.committed, "{what}: committed");
    assert_eq!(skip.phase_cycles, lock.phase_cycles, "{what}: phases");
    assert_eq!(
        skip.amat.to_bits(),
        lock.amat.to_bits(),
        "{what}: AMAT ({} vs {})",
        skip.amat,
        lock.amat
    );
    assert_eq!(
        skip.l1d_hit_ratio.to_bits(),
        lock.l1d_hit_ratio.to_bits(),
        "{what}: L1D hit ratio"
    );
    assert_eq!(skip.l1_accesses, lock.l1_accesses, "{what}: L1 accesses");
    assert_eq!(skip.l2_accesses, lock.l2_accesses, "{what}: L2 accesses");
    assert_eq!(skip.l3_accesses, lock.l3_accesses, "{what}: L3 accesses");
    assert_eq!(skip.lm_accesses, lock.lm_accesses, "{what}: LM accesses");
    assert_eq!(skip.dir_accesses, lock.dir_accesses, "{what}: dir accesses");
    assert_eq!(skip.bus_requests, lock.bus_requests, "{what}: bus requests");
    assert_eq!(
        skip.bus_wait_cycles, lock.bus_wait_cycles,
        "{what}: bus waits"
    );
    assert_eq!(skip.dram_reads, lock.dram_reads, "{what}: DRAM reads");
    assert_eq!(skip.dram_writes, lock.dram_writes, "{what}: DRAM writes");
    assert_eq!(
        skip.energy_total().to_bits(),
        lock.energy_total().to_bits(),
        "{what}: energy"
    );
    // The full pipeline statistics, with the skip counter normalized
    // away (the only field allowed to differ).
    let mut core = skip.core.clone();
    core.skipped_cycles = 0;
    assert_eq!(core, lock.core, "{what}: core stats");
}

/// Runs `kernel` in `mode` both ways and checks the reports match.
/// Returns the skipping report for further assertions.
fn check_single(kernel: &hsim_compiler::Kernel, mode: SysMode) -> RunReport {
    let skip = run_kernel_with(kernel, MachineConfig::for_mode(mode)).expect("skip run");
    let lock =
        run_kernel_with(kernel, MachineConfig::for_mode(mode).with_lockstep()).expect("lockstep");
    assert_reports_equal(&skip, &lock, &format!("{} {:?}", kernel.name, mode));
    skip
}

#[test]
fn fig7_microbench_grid_is_identical() {
    // The Figure 7 row builder's inputs: every microbenchmark mode at a
    // few guard percentages, on the coherent machine.
    let mut any_skipped = false;
    for mode in [
        MicroMode::Baseline,
        MicroMode::Rd,
        MicroMode::Wr,
        MicroMode::RdWr,
    ] {
        for pct in [0, 50, 100] {
            let k = microbench(&MicrobenchConfig {
                mode,
                guarded_pct: pct,
                n: 2048,
            });
            let r = check_single(&k, SysMode::HybridCoherent);
            any_skipped |= r.skipped_cycles > 0;
        }
    }
    assert!(any_skipped, "the grid must actually exercise skipping");
}

#[test]
fn fig8_rows_are_identical_for_coherent_and_oracle() {
    for k in [nas::is(Scale::Test), nas::cg(Scale::Test)] {
        let coherent = check_single(&k, SysMode::HybridCoherent);
        check_single(&k, SysMode::HybridOracle);
        assert!(
            coherent.skipped_cycles > 0,
            "{}: DMA-phased kernels must have skippable dead time",
            k.name
        );
    }
}

#[test]
fn cache_based_rows_are_identical() {
    check_single(&nas::is(Scale::Test), SysMode::CacheBased);
}

#[test]
fn final_memory_images_match_lockstep() {
    let kernel = nas::is(Scale::Test);
    for mode in SysMode::ALL {
        let ck = compile(&kernel, mode.codegen());
        let mut skip = Machine::for_kernel(MachineConfig::for_mode(mode), &ck, &kernel);
        skip.run().expect("skip run");
        let mut lock =
            Machine::for_kernel(MachineConfig::for_mode(mode).with_lockstep(), &ck, &kernel);
        lock.run().expect("lockstep run");
        for id in 0..kernel.arrays.len() {
            assert_eq!(
                skip.read_array(&ck, &kernel, id),
                lock.read_array(&ck, &kernel, id),
                "{:?}: array {id} image diverged",
                mode
            );
        }
    }
}

#[test]
fn four_core_machines_are_identical_in_all_modes() {
    let kernel = nas::cg(Scale::Test);
    for mode in SysMode::ALL {
        let skip = run_kernel_multi_with(&kernel, 4, MachineConfig::for_mode(mode))
            .expect("4-core skip run");
        let lock = run_kernel_multi_with(&kernel, 4, MachineConfig::for_mode(mode).with_lockstep())
            .expect("4-core lockstep run");
        assert_eq!(skip.makespan, lock.makespan, "{mode:?}: makespan");
        assert_eq!(skip.n_cores(), lock.n_cores());
        assert_eq!(lock.total_skipped_cycles(), 0);
        for (s, l) in skip.per_core.iter().zip(&lock.per_core) {
            assert_reports_equal(s, l, &format!("cg x4 {:?} core {}", mode, s.core_id));
        }
        // Contention statistics must survive the jumped round-robin
        // rotation: both runs see the same arbitration order.
        assert_eq!(
            skip.total_bus_wait_cycles(),
            lock.total_bus_wait_cycles(),
            "{mode:?}: total bus waits"
        );
    }
}

#[test]
fn cycle_limit_fires_at_the_same_cycle() {
    // A machine that cannot finish within the budget must report the
    // limit after the same number of simulated cycles either way.
    let kernel = nas::cg(Scale::Test);
    let ck = compile(&kernel, SysMode::HybridCoherent.codegen());
    let run = |lockstep: bool| {
        let mut cfg = MachineConfig::for_mode(SysMode::HybridCoherent);
        cfg.core.max_cycles = 5_000;
        if lockstep {
            cfg = cfg.with_lockstep();
        }
        let mut m = Machine::for_kernel(cfg, &ck, &kernel);
        let err = m.run().expect_err("5k cycles cannot finish CG");
        (err, m.core.stats.cycles)
    };
    let (skip_err, skip_cycles) = run(false);
    let (lock_err, lock_cycles) = run(true);
    assert_eq!(skip_err, hsim::core::pipeline::SimError::CycleLimit);
    assert_eq!(skip_err, lock_err);
    assert_eq!(skip_cycles, lock_cycles, "limit must fire at one cycle");
}
