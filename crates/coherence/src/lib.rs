//! # hsim-coherence — the paper's hardware/software coherence protocol
//!
//! This crate models the hardware contribution of *"Hardware-Software
//! Coherence Protocol for the Coexistence of Caches and Local Memories"*
//! (SC 2012) and the machinery to check its correctness argument:
//!
//! * [`directory`] — the per-core **coherence directory** (Figure 4): a
//!   32-entry CAM mapping system-memory base addresses to local-memory
//!   buffers, configured through Base/Offset mask registers, updated by
//!   every `dma-get`, looked up during address generation of guarded
//!   memory instructions, with a presence bit per entry for double
//!   buffering.
//! * [`state`] — the data-replication state machine of Figure 6
//!   (MM / LM / CM / LM-CM) with its legal transitions.
//! * [`tracker`] — a runtime checker that replays the machine's memory
//!   and DMA events through the state machine and asserts the paper's
//!   §3.4 invariants: replicated copies are either identical or the LM
//!   copy is the newest, and every access is served by a memory holding a
//!   valid copy.
//! * [`mesi`] — the **inter-core** MESI line states a directory slice at
//!   a shared-L3 bank tracks. Deliberately type-disjoint from the
//!   intra-tile machinery above: the paper's §3 claim that the hybrid
//!   protocol "does not interact with the inter-core cache coherence
//!   protocol" is pinned by the `protocols_do_not_interact` test.
//!
//! The directory is deliberately independent of the pipeline model so it
//! can be exhaustively unit- and property-tested in isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod directory;
pub mod mesi;
pub mod state;
pub mod tracker;

pub use directory::{DirConfig, DirError, DirHit, DirStats, Directory};
pub use mesi::{MesiAction, MesiEvent, MesiState};
pub use state::{DataEvent, DataState, TransitionError};
pub use tracker::{AccessSide, CoherenceViolation, Tracker};
