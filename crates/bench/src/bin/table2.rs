//! Regenerates Table 2: the microbenchmark scheme — the four modes and
//! the assembly the compiler emits for each (the inner work loop).
//!
//! ```text
//! cargo run -p hsim-bench --bin table2
//! ```

use hsim::prelude::*;
use hsim_isa::asm::format_inst;
use hsim_isa::Inst;

fn main() {
    println!("TABLE 2: microbenchmark scheme");
    println!("int a[N]; int c;");
    println!("for(i=0; i<N-1; i++) {{ a[i+1] = a[i] + c; }}");
    println!();
    println!(
        "(one chain shown; the sweep runs {} such chains and guards",
        hsim_workloads::microbench::CHAINS
    );
    println!("a fraction of them — see `fig7`)");
    for mode in [
        MicroMode::Baseline,
        MicroMode::Rd,
        MicroMode::Wr,
        MicroMode::RdWr,
    ] {
        let k = microbench(&MicrobenchConfig {
            mode,
            guarded_pct: 100,
            n: 256,
        });
        let ck = compile(&k, CodegenMode::HybridCoherent);
        println!("\n=== mode {} ===", mode.name());
        // Show the first chain's statement instructions from the main
        // work-loop body: the slice between the `sll r0` index setup and
        // the second chain's load.
        let insts = &ck.program.insts;
        // Locate the main body: first `sll r0, r2, 3` after a Work phase
        // marker.
        let mut start = None;
        for (i, inst) in insts.iter().enumerate() {
            if let Inst::PhaseMark { phase: Phase::Work } = inst {
                start = Some(i);
                break;
            }
        }
        let start = start.expect("work phase");
        let mut shown = 0;
        let names = std::collections::HashMap::new();
        for inst in &insts[start..] {
            if inst.is_mem() || matches!(inst, Inst::Alu { .. } | Inst::Li { .. }) {
                println!("    {}", format_inst(inst, &names));
                shown += 1;
                // One chain: load, add(+1), store(s); stop after the
                // first chain's plain store.
                if inst.is_store() && inst.route() == Some(Route::Plain) && shown > 2 {
                    break;
                }
                if shown > 8 {
                    break;
                }
            }
        }
        let guarded = ck.program.count_route(Route::Guarded);
        println!("    ; guarded instructions in program: {guarded}");
    }
}
