//! Shape tests for the paper's experiments at test scale: the qualitative
//! claims (who wins, what is flat, what grows) must hold even on the
//! small workloads the CI runs.

use hsim::prelude::*;
use hsim_workloads::nas;

#[test]
fn fig7_rd_is_free_and_wr_grows_linearly() {
    let pts = fig7(4 * 1024, 20, Parallelism::Serial).unwrap();
    // RD: flat at 1.0 (guarded loads are free — the lookup fits the AGU
    // cycle).
    for p in pts.iter().filter(|p| p.mode == MicroMode::Rd) {
        assert!(
            (p.overhead - 1.0).abs() < 0.02,
            "RD overhead at {}% must be ~1.0, got {:.3}",
            p.pct,
            p.overhead
        );
    }
    // WR: monotonically growing with the guarded share, driven by the
    // double store's extra instructions.
    let wr: Vec<_> = pts.iter().filter(|p| p.mode == MicroMode::Wr).collect();
    assert!(
        wr.last().unwrap().overhead > 1.15,
        "WR @100% must cost >15%"
    );
    assert!(
        wr.last().unwrap().overhead < 1.6,
        "WR @100% must stay bounded"
    );
    for w in wr.windows(2) {
        assert!(
            w[1].overhead >= w[0].overhead - 0.02,
            "WR overhead must grow with the guarded share"
        );
    }
    // Instruction count at 100% grows by the double store's extra store.
    assert!(wr.last().unwrap().inst_ratio > 1.15);
    assert!(wr.last().unwrap().inst_ratio < 1.35);
    // RD/WR tracks WR (the guarded load adds nothing).
    let rdwr: Vec<_> = pts.iter().filter(|p| p.mode == MicroMode::RdWr).collect();
    for (a, b) in wr.iter().zip(&rdwr) {
        assert!(
            (a.overhead - b.overhead).abs() < 0.05,
            "RD/WR must track WR at {}%",
            a.pct
        );
    }
}

#[test]
fn fig8_overheads_are_small_and_double_store_driven() {
    let kernels = nas::all_nas(Scale::Test);
    let rows = fig8(&kernels, Parallelism::Serial).unwrap();
    for r in &rows {
        match r.name.as_str() {
            // No potentially incoherent writes: zero time overhead.
            "CG" | "MG" | "SP" => {
                assert!(
                    (r.time_ratio - 1.0).abs() < 0.002,
                    "{} must have ~zero protocol overhead, got {:.4}",
                    r.name,
                    r.time_ratio
                );
            }
            // Double-store kernels: small but nonzero.
            "EP" | "FT" | "IS" => {
                assert!(
                    r.time_ratio < 1.15,
                    "{} overhead must stay small, got {:.3}",
                    r.name,
                    r.time_ratio
                );
                assert!(r.coherent.committed > r.oracle.committed);
            }
            _ => unreachable!(),
        }
        // Energy overhead present but bounded.
        assert!(
            r.energy_ratio >= 0.999 && r.energy_ratio < 1.15,
            "{}",
            r.name
        );
    }
}

#[test]
fn fig9_memory_bound_kernels_favor_the_hybrid() {
    // At test scale the footprints are small, so only the strongest
    // effects are asserted: MG and FT (many streams, heavy reuse) must
    // favor the hybrid; EP (compute-bound) must be close to parity.
    let kernels = vec![
        nas::ep(Scale::Test),
        nas::ft(Scale::Test),
        nas::mg(Scale::Test),
    ];
    let rows = compare_systems(&kernels, Parallelism::Serial).unwrap();
    let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
    assert!(get("MG").speedup > 1.2, "MG: {:.2}", get("MG").speedup);
    assert!(get("FT").speedup > 1.1, "FT: {:.2}", get("FT").speedup);
    let ep = get("EP").speedup;
    assert!((0.8..1.25).contains(&ep), "EP must be near parity: {ep:.2}");
}

#[test]
fn fig10_hybrid_saves_energy_on_stream_kernels() {
    let kernels = vec![nas::ft(Scale::Test), nas::mg(Scale::Test)];
    for r in compare_systems(&kernels, Parallelism::Serial).unwrap() {
        assert!(
            r.energy_norm < 0.95,
            "{}: hybrid must save energy, got {:.3}",
            r.name,
            r.energy_norm
        );
        // The LM itself must be a small fraction of total energy (paper:
        // <5%).
        let lm_share = r.hybrid.energy.lm / r.hybrid.energy_total();
        assert!(lm_share < 0.10, "{}: LM share {:.3}", r.name, lm_share);
    }
}

#[test]
fn table3_activity_shifts_from_caches_to_lm() {
    let kernels = vec![nas::mg(Scale::Test)];
    let r = &compare_systems(&kernels, Parallelism::Serial).unwrap()[0];
    // The hybrid system must serve most traffic from the LM and touch the
    // caches less than the cache-based system does.
    assert!(r.hybrid.lm_accesses > 0);
    assert!(
        r.hybrid.l1_accesses < r.cache.l1_accesses,
        "L1 activity must drop: {} vs {}",
        r.hybrid.l1_accesses,
        r.cache.l1_accesses
    );
    assert!(r.hybrid.amat < r.cache.amat, "AMAT must improve");
}

#[test]
fn geomean_helper() {
    let g = hsim::geomean([2.0, 8.0].into_iter());
    assert!((g - 4.0).abs() < 1e-12);
    assert_eq!(hsim::geomean(std::iter::empty()), 1.0);
}

#[test]
fn parallel_drivers_match_sequential_results() {
    // Every simulation is deterministic and self-contained, so the
    // thread-pool drivers must reproduce the sequential results exactly.
    let kernels = vec![nas::ep(Scale::Test), nas::is(Scale::Test)];
    let seq = fig8(&kernels, Parallelism::Serial).unwrap();
    let par = fig8(&kernels, Parallelism::HostThreads).unwrap();
    assert_eq!(seq.len(), par.len());
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(s.name, p.name);
        assert_eq!(s.coherent.cycles, p.coherent.cycles);
        assert_eq!(s.oracle.cycles, p.oracle.cycles);
        assert_eq!(s.coherent.committed, p.coherent.committed);
    }

    let seq7 = fig7(512, 50, Parallelism::Serial).unwrap();
    let par7 = fig7(512, 50, Parallelism::HostThreads).unwrap();
    assert_eq!(seq7.len(), par7.len());
    for (s, p) in seq7.iter().zip(&par7) {
        assert_eq!((s.mode, s.pct), (p.mode, p.pct));
        assert!((s.overhead - p.overhead).abs() < 1e-12);
    }

    let seqc = compare_systems(&kernels, Parallelism::Serial).unwrap();
    let parc = compare_systems(&kernels, Parallelism::HostThreads).unwrap();
    for (s, p) in seqc.iter().zip(&parc) {
        assert_eq!(s.hybrid.cycles, p.hybrid.cycles);
        assert_eq!(s.cache.cycles, p.cache.cycles);
    }
}

#[test]
fn scaling_sweep_produces_rising_sublinear_curves() {
    // The promoted scaling experiment: per kernel, speedup rises with
    // cores but stays sublinear (shared backside), and the 1-core point
    // is exactly 1.0 by construction.
    let cfg = MachineConfig::for_mode(SysMode::HybridCoherent);
    let rows = scaling_sweep(
        &[nas::cg(Scale::Test)],
        &[1, 2, 4],
        &cfg,
        Parallelism::Serial,
    )
    .unwrap();
    assert_eq!(rows.len(), 3);
    assert!((rows[0].speedup - 1.0).abs() < 1e-12, "1-core speedup is 1");
    for w in rows.windows(2) {
        assert!(
            w[1].speedup > w[0].speedup,
            "speedup must rise: {:.2} -> {:.2}",
            w[0].speedup,
            w[1].speedup
        );
    }
    for r in &rows {
        assert!(
            r.speedup <= r.cores as f64,
            "x{}: sublinear expected, got {:.2}",
            r.cores,
            r.speedup
        );
    }
    // The parallel driver reproduces the sequential rows exactly.
    let par = scaling_sweep(
        &[nas::cg(Scale::Test)],
        &[1, 2, 4],
        &cfg,
        Parallelism::HostThreads,
    )
    .unwrap();
    assert_eq!(par.len(), rows.len());
    for (s, p) in rows.iter().zip(&par) {
        assert_eq!(s.makespan, p.makespan);
        assert_eq!(s.bus_wait_cycles, p.bus_wait_cycles);
    }
}

#[test]
fn hetero_sweep_covers_the_shapes_and_matches_parallel() {
    // The heterogeneous sweep on a 2-core chip: every hybrid:cache
    // ratio plus the LM-asymmetry and weighted shapes, with the
    // all-hybrid anchor equal to the homogeneous machine and the
    // parallel driver bit-identical to the sequential one.
    let kernels = [nas::cg(Scale::Test)];
    let rows = hetero_sweep(&kernels, 2, Parallelism::Serial).unwrap();
    let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
    assert_eq!(
        labels,
        ["2H+0C", "1H+1C", "0H+2C", "2H lm/4x1", "1H+1C w2:1"],
        "CG must shard to every 2-core shape"
    );
    let by = |l: &str| rows.iter().find(|r| r.label == l).unwrap();
    assert_eq!(by("2H+0C").hybrid_tiles, 2);
    assert_eq!(by("0H+2C").hybrid_tiles, 0);
    assert_eq!(by("2H lm/4x1").small_lm_tiles, 1);
    assert_eq!(by("1H+1C w2:1").weights, vec![2, 1]);

    // The all-hybrid shape anchors to the homogeneous machine exactly.
    let homo = RunSpec::new(&kernels[0])
        .cores(2)
        .mode(SysMode::HybridCoherent)
        .track(false)
        .run()
        .map(RunOutcome::into_multi)
        .unwrap();
    assert_eq!(by("2H+0C").makespan, homo.makespan);
    assert_eq!(by("2H+0C").committed, homo.total_committed());
    // Mixing in the cache tile costs cycles on CG.
    assert!(by("1H+1C").makespan > by("2H+0C").makespan);

    let par = hetero_sweep(&kernels, 2, Parallelism::HostThreads).unwrap();
    assert_eq!(par.len(), rows.len());
    for (s, p) in rows.iter().zip(&par) {
        assert_eq!(s.label, p.label);
        assert_eq!(s.makespan, p.makespan);
        assert_eq!(s.dram_reads, p.dram_reads);
        assert_eq!(s.bus_wait_cycles, p.bus_wait_cycles);
    }
}

#[test]
fn multicore_sharding_scales_the_makespan_down() {
    // One CG kernel sharded over 1/2/4 cores of one machine: more cores
    // means a shorter makespan (the slices shrink), while the shared
    // backside keeps the scaling sublinear and the contention visible.
    let kernel = nas::cg(Scale::Test);
    let solo = RunSpec::new(&kernel)
        .mode(SysMode::HybridCoherent)
        .track(false)
        .run()
        .map(RunOutcome::into_single)
        .unwrap();
    let m1 = RunSpec::new(&kernel)
        .cores(1)
        .mode(SysMode::HybridCoherent)
        .track(false)
        .run()
        .map(RunOutcome::into_multi)
        .unwrap();
    let m2 = RunSpec::new(&kernel)
        .cores(2)
        .mode(SysMode::HybridCoherent)
        .track(false)
        .run()
        .map(RunOutcome::into_multi)
        .unwrap();
    let m4 = RunSpec::new(&kernel)
        .cores(4)
        .mode(SysMode::HybridCoherent)
        .track(false)
        .run()
        .map(RunOutcome::into_multi)
        .unwrap();
    assert_eq!(m1.n_cores(), 1);
    assert_eq!(m4.n_cores(), 4);
    assert!(
        m2.makespan < m1.makespan && m4.makespan < m2.makespan,
        "makespan must shrink with cores: {} / {} / {}",
        m1.makespan,
        m2.makespan,
        m4.makespan
    );
    // The whole kernel's work happens: the per-core committed counts sum
    // close to the unsharded run (per-shard control overhead aside).
    let total = m4.total_committed() as f64;
    assert!(
        total > 0.8 * solo.committed as f64,
        "sharded work went missing: {} vs {}",
        total,
        solo.committed
    );
    // Sharing the backside must add waits beyond the one-core floor (a
    // lone core can still queue behind its own outstanding misses).
    assert!(
        m4.total_bus_wait_cycles() > m1.total_bus_wait_cycles(),
        "four cores must contend: {} vs {}",
        m4.total_bus_wait_cycles(),
        m1.total_bus_wait_cycles()
    );
    assert_eq!(m4.total_violations(), 0);
}
