//! Core configuration (Table 1 of the paper).
//!
//! The uncore knobs a machine configuration combines with [`CoreConfig`]
//! are re-exported here for discoverability: [`L3Geometry`] (banking of
//! the shared last-level cache), [`DramTiming`] (row-buffer timing of
//! the memory channel), and [`CoherenceMode`]/[`CoherenceConfig`] (the
//! inter-core coherence model of the shared backside —
//! [`CoherenceMode::Replicate`] keeps per-core private replicas bit-for-
//! bit as before; [`CoherenceMode::Mesi`] adds a directory slice per L3
//! bank serving registered shared ranges from one copy). The DRAM
//! defaults decompose the historical flat DRAM latency, so a cold access
//! costs the same either way; the `flat_dram` escape hatch in
//! `hsim_mem::DramConfig` restores the pre-banking backside bit for bit.

pub use hsim_mem::{CoherenceConfig, CoherenceMode, DramTiming, L3Geometry};

/// Configuration of the out-of-order core.
#[derive(Clone, Debug)]
pub struct CoreConfig {
    /// Fetch/decode/dispatch width (Table 1: 4 instructions wide).
    pub fetch_width: usize,
    /// Issue width (total instructions issued per cycle).
    pub issue_width: usize,
    /// Commit width.
    pub commit_width: usize,
    /// Reorder-buffer capacity.
    pub rob_size: usize,
    /// Fetch-queue capacity (fetched, not yet dispatched instructions).
    pub fetch_queue: usize,
    /// Integer physical registers (Table 1: 256).
    pub int_phys_regs: usize,
    /// Floating-point physical registers (Table 1: 256).
    pub fp_phys_regs: usize,
    /// Integer ALUs (Table 1: 3).
    pub int_alus: usize,
    /// Floating-point ALUs (Table 1: 3).
    pub fp_alus: usize,
    /// Load/store units (Table 1: 2).
    pub ls_units: usize,
    /// Maximum in-flight loads.
    pub lsq_loads: usize,
    /// Maximum in-flight stores.
    pub lsq_stores: usize,
    /// Store-to-load forwarding latency in cycles.
    pub forward_latency: u64,
    /// Front-end refill penalty after a branch resolves a misprediction.
    pub redirect_penalty: u64,
    /// Extra fetch bubble when a predicted-taken branch misses the BTB.
    pub btb_miss_penalty: u64,
    /// gshare table entries (Table 1: 4K).
    pub gshare_entries: usize,
    /// Bimodal table entries (Table 1: 4K).
    pub bimodal_entries: usize,
    /// Selector table entries (Table 1: 4K).
    pub selector_entries: usize,
    /// Global-history bits for gshare.
    pub ghist_bits: u32,
    /// BTB entries (Table 1: 4K, 4-way).
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_ways: usize,
    /// Return-address-stack entries (Table 1: 32).
    pub ras_entries: usize,
    /// Issued-instruction replays charged per load miss below L1 (models
    /// PTLsim's speculative-scheduling replays; energy-only effect).
    pub replay_per_miss: u64,
    /// Hard cycle limit: `run` aborts beyond this (deadlock guard).
    pub max_cycles: u64,
    /// Disables the event-horizon cycle skipper: `run` walks every cycle
    /// through the per-stage `tick` loop. Timing and statistics are
    /// identical either way — skipping only fast-forwards provably idle
    /// cycles — and the equivalence tests pin that claim against this
    /// escape hatch.
    pub lockstep: bool,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_size: 224,
            fetch_queue: 16,
            int_phys_regs: 256,
            fp_phys_regs: 256,
            int_alus: 3,
            fp_alus: 3,
            ls_units: 2,
            lsq_loads: 64,
            lsq_stores: 64,
            forward_latency: 1,
            redirect_penalty: 4,
            btb_miss_penalty: 2,
            gshare_entries: 4096,
            bimodal_entries: 4096,
            selector_entries: 4096,
            ghist_bits: 12,
            btb_entries: 4096,
            btb_ways: 4,
            ras_entries: 32,
            replay_per_miss: 2,
            max_cycles: u64::MAX,
            lockstep: false,
        }
    }
}

impl CoreConfig {
    /// In-flight instructions with an integer destination the rename
    /// stage can sustain (physical registers minus architectural state).
    pub fn int_rename_budget(&self) -> usize {
        self.int_phys_regs - hsim_isa::reg::NUM_INT_REGS
    }

    /// In-flight instructions with an FP destination the rename stage can
    /// sustain.
    pub fn fp_rename_budget(&self) -> usize {
        self.fp_phys_regs - hsim_isa::reg::NUM_FP_REGS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = CoreConfig::default();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.int_alus, 3);
        assert_eq!(c.fp_alus, 3);
        assert_eq!(c.ls_units, 2);
        assert_eq!(c.int_phys_regs, 256);
        assert_eq!(c.ras_entries, 32);
        assert_eq!(c.gshare_entries, 4096);
    }

    #[test]
    fn rename_budgets() {
        let c = CoreConfig::default();
        assert_eq!(c.int_rename_budget(), 256 - 32);
        assert_eq!(c.fp_rename_budget(), 256 - 32);
    }
}
