//! The cycle-level out-of-order pipeline.
//!
//! Functional-first, timing-directed: at **dispatch** an instruction
//! executes functionally (register values, memory data via the
//! [`MemoryPort`], DMA side effects), in program order. The timing model
//! then tracks it through issue, execution and commit under the Table 1
//! resource constraints. See the crate docs for the modeling choices.

use crate::branch::{BranchPredictor, Btb, Ras};
use crate::config::CoreConfig;
use crate::port::{DmaKind, MemSide, MemoryPort, RouteInfo};
use crate::stats::{level_index, phase_index, CoreStats};
use hsim_isa::inst::{Inst, Operand, Phase};
use hsim_isa::memmap::MemoryMap;
use hsim_isa::reg::{FReg, Reg};
use hsim_isa::{Program, Route, Width};
use std::collections::VecDeque;

/// Cycles without a commit before the watchdog declares
/// [`SimError::Deadlock`]. The cycle skipper clamps its jumps to
/// `last_commit + DEADLOCK_WINDOW` so the watchdog fires at the same
/// cycle number as the naive per-cycle loop.
pub const DEADLOCK_WINDOW: u64 = 200_000;

/// What the stalled machine looked like when the deadlock watchdog
/// fired: the stalled core, the instruction wedged at the ROB head, and
/// the memory-side work still in flight ([`MemoryPort::stall_diagnostics`]).
/// Derived purely from architectural + timing state at the firing
/// cycle, so the lockstep and cycle-skipping loops produce *equal*
/// reports — the skip-equivalence suites compare them with `==`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Tile/core id of the stalled core.
    pub core: usize,
    /// PC of the ROB-head instruction, `None` if the ROB was empty
    /// (front-end wedge).
    pub rob_head_pc: Option<usize>,
    /// Rendered opcode of the ROB-head instruction.
    pub rob_head_op: String,
    /// Outstanding MSHR entries at the firing cycle.
    pub mshr_in_flight: usize,
    /// Bitmask of DMA tags still in flight at the firing cycle.
    pub dma_tags: u8,
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core {} stalled at ", self.core)?;
        match self.rob_head_pc {
            Some(pc) => write!(f, "ROB head pc {} `{}`", pc, self.rob_head_op)?,
            None => write!(f, "an empty ROB (front-end wedge)")?,
        }
        write!(
            f,
            "; {} MSHR entr{} outstanding; DMA tags in flight {:#010b}",
            self.mshr_in_flight,
            if self.mshr_in_flight == 1 { "y" } else { "ies" },
            self.dma_tags
        )
    }
}

/// Simulation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No instruction committed for a long time: a modeling deadlock.
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Snapshot of the stall (boxed to keep the error small on the
        /// per-tick `Result` path).
        report: Box<DeadlockReport>,
    },
    /// The cycle budget (`CoreConfig::max_cycles`) was exhausted.
    CycleLimit,
    /// `ret` executed with an empty architectural call stack.
    RetWithoutCall {
        /// PC of the offending instruction.
        pc: usize,
    },
    /// Execution ran off the end of the program without `halt`.
    RanOffProgram,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { cycle, report } => {
                write!(f, "pipeline deadlock at cycle {cycle}: {report}")
            }
            SimError::CycleLimit => write!(f, "cycle limit exhausted"),
            SimError::RetWithoutCall { pc } => write!(f, "ret with empty call stack at pc {pc}"),
            SimError::RanOffProgram => write!(f, "execution ran off the end of the program"),
        }
    }
}

impl std::error::Error for SimError {}

/// Host wall-clock attribution for one simulated run, filled by
/// [`Core::run_profiled`]: where the *simulator* spends its time —
/// executing ticks, bulk-advancing over skipped stretches, or scanning
/// for the next event horizon. `simspeed --profile` reports this per
/// kernel so scheduler regressions are diagnosed with data.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HostProfile {
    /// Host seconds spent inside [`Core::tick`].
    pub tick_secs: f64,
    /// Ticks executed.
    pub ticks: u64,
    /// Host seconds spent inside [`Core::advance_to`] (bulk skips).
    pub advance_secs: f64,
    /// Bulk advances performed.
    pub advances: u64,
    /// Host seconds spent computing skip targets (the horizon scan:
    /// [`Core::next_event_at`] plus the memory-side horizon query).
    pub horizon_secs: f64,
    /// Horizon scans performed.
    pub horizon_scans: u64,
}

impl HostProfile {
    /// Merges another profile into this one (summing across cores or
    /// repetitions).
    pub fn merge(&mut self, other: &HostProfile) {
        self.tick_secs += other.tick_secs;
        self.ticks += other.ticks;
        self.advance_secs += other.advance_secs;
        self.advances += other.advances;
        self.horizon_secs += other.horizon_secs;
        self.horizon_scans += other.horizon_scans;
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum EState {
    Waiting,
    Issued,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum FuClass {
    IntAlu,
    FpAlu,
    Mem,
}

#[derive(Clone, Copy)]
struct MemOp {
    info: RouteInfo,
    width: Width,
    route: Route,
}

struct RobEntry {
    seq: u64,
    pc: usize,
    state: EState,
    /// Producer sequence numbers (up to 3: e.g. dma-get reads 3 regs).
    srcs: [Option<u64>; 3],
    fu: FuClass,
    /// Execution latency for non-memory instructions.
    latency: u64,
    /// Cycle the result is available (valid once issued).
    done_at: u64,
    is_load: bool,
    is_store: bool,
    is_fp: bool,
    is_branch: bool,
    mem: Option<MemOp>,
    /// `dma-synch`: may not complete before this cycle.
    synch_until: u64,
    /// Marks the start of an execution phase at commit.
    phase_mark: Option<Phase>,
    is_halt: bool,
    /// This control instruction was mispredicted; fetch restarts at
    /// `redirect_to` once it executes.
    mispredicted: bool,
    redirect_to: usize,
}

struct Fetched {
    pc: usize,
    /// Predicted next PC chosen by the front end.
    predicted_next: usize,
}

/// The out-of-order core.
pub struct Core {
    cfg: CoreConfig,
    program: Program,
    mmap: MemoryMap,

    // Architectural (functional) state.
    int_regs: [i64; 32],
    fp_regs: [f64; 32],
    arch_call_stack: Vec<u64>,

    // Front end.
    fetch_pc: usize,
    fetch_queue: VecDeque<Fetched>,
    fetch_resume_at: u64,
    last_fetch_line: u64,
    /// A mispredicted control instruction is in flight; fetch is stalled
    /// until it executes.
    pending_redirect: Option<u64>,
    fetch_off: bool,
    /// Branch predictor.
    pub bp: BranchPredictor,
    /// Branch target buffer.
    pub btb: Btb,
    /// Return address stack.
    pub ras: Ras,

    // Back end.
    rob: VecDeque<RobEntry>,
    head_seq: u64,
    next_seq: u64,
    last_writer_int: [Option<u64>; 32],
    last_writer_fp: [Option<u64>; 32],
    int_inflight: usize,
    fp_inflight: usize,
    loads_inflight: usize,
    stores_inflight: usize,

    now: u64,
    cur_phase: Phase,
    halted: bool,
    last_commit_cycle: u64,
    /// Statistics.
    pub stats: CoreStats,
}

impl Core {
    /// Builds a core ready to execute `program` from PC 0.
    pub fn new(cfg: CoreConfig, program: Program, mmap: MemoryMap) -> Self {
        Core {
            bp: BranchPredictor::new(
                cfg.gshare_entries,
                cfg.bimodal_entries,
                cfg.selector_entries,
                cfg.ghist_bits,
            ),
            btb: Btb::new(cfg.btb_entries, cfg.btb_ways),
            ras: Ras::new(cfg.ras_entries),
            cfg,
            program,
            mmap,
            int_regs: [0; 32],
            fp_regs: [0.0; 32],
            arch_call_stack: Vec::new(),
            fetch_pc: 0,
            fetch_queue: VecDeque::new(),
            fetch_resume_at: 0,
            last_fetch_line: u64::MAX,
            pending_redirect: None,
            fetch_off: false,
            rob: VecDeque::new(),
            head_seq: 0,
            next_seq: 0,
            last_writer_int: [None; 32],
            last_writer_fp: [None; 32],
            int_inflight: 0,
            fp_inflight: 0,
            loads_inflight: 0,
            stores_inflight: 0,
            now: 0,
            cur_phase: Phase::Other,
            halted: false,
            last_commit_cycle: 0,
            stats: CoreStats::default(),
        }
    }

    /// Whether the program has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Architectural value of an integer register.
    pub fn int_reg(&self, r: Reg) -> i64 {
        self.int_regs[r.index()]
    }

    /// Architectural value of an FP register.
    pub fn fp_reg(&self, r: FReg) -> f64 {
        self.fp_regs[r.index()]
    }

    /// Runs to completion (or error).
    ///
    /// By default the loop is tick → skip-to-horizon → tick: after every
    /// executed cycle the core computes the earliest cycle at which
    /// anything can change ([`Core::next_event_at`], clamped by
    /// [`Core::skip_target`]) and bulk-advances over the provably idle
    /// cycles in between ([`Core::advance_to`]). The result — every
    /// statistic, every port interaction, every error — is bit-identical
    /// to walking each cycle, which `CoreConfig::lockstep` still does.
    pub fn run(&mut self, port: &mut impl MemoryPort) -> Result<(), SimError> {
        if self.cfg.lockstep {
            while !self.halted {
                self.tick(port)?;
            }
            return Ok(());
        }
        while !self.halted {
            if self.progress_certain() {
                // A commit or dispatch is guaranteed this cycle, so the
                // fingerprint must change — skip both probes.
                self.tick(port)?;
                continue;
            }
            let before = self.progress_fingerprint();
            self.tick(port)?;
            if self.halted {
                break;
            }
            if self.progress_fingerprint() != before {
                // The pipeline moved something this cycle; assume it
                // stays busy and skip the horizon scan entirely — idle
                // periods reveal themselves with one no-op tick.
                continue;
            }
            let target = self.skip_target(port.next_mem_event_at(self.now));
            if target > self.now {
                self.advance_to(target);
            }
        }
        Ok(())
    }

    /// Runs to completion like [`Core::run`], attributing host wall-clock
    /// time to the scheduler's phases in `prof` (the `simspeed --profile`
    /// instrumentation). The simulated outcome is identical to `run`;
    /// only host-side timing is added.
    pub fn run_profiled(
        &mut self,
        port: &mut impl MemoryPort,
        prof: &mut HostProfile,
    ) -> Result<(), SimError> {
        if self.cfg.lockstep {
            while !self.halted {
                let t0 = std::time::Instant::now();
                self.tick(port)?;
                prof.tick_secs += t0.elapsed().as_secs_f64();
                prof.ticks += 1;
            }
            return Ok(());
        }
        while !self.halted {
            if self.progress_certain() {
                let t0 = std::time::Instant::now();
                self.tick(port)?;
                prof.tick_secs += t0.elapsed().as_secs_f64();
                prof.ticks += 1;
                continue;
            }
            let before = self.progress_fingerprint();
            let t0 = std::time::Instant::now();
            self.tick(port)?;
            prof.tick_secs += t0.elapsed().as_secs_f64();
            prof.ticks += 1;
            if self.halted {
                break;
            }
            if self.progress_fingerprint() != before {
                continue;
            }
            let t1 = std::time::Instant::now();
            let target = self.skip_target(port.next_mem_event_at(self.now));
            prof.horizon_secs += t1.elapsed().as_secs_f64();
            prof.horizon_scans += 1;
            if target > self.now {
                let t2 = std::time::Instant::now();
                self.advance_to(target);
                prof.advance_secs += t2.elapsed().as_secs_f64();
                prof.advances += 1;
            }
        }
        Ok(())
    }

    /// Whether the ROB head commits on the next tick: it has issued and
    /// its completion time has arrived. Such a tick provably changes the
    /// progress fingerprint, so the run loops skip both fingerprint
    /// probes around it — the dominant case in busy stretches.
    #[inline]
    pub fn commit_ready(&self) -> bool {
        self.rob
            .front()
            .is_some_and(|e| e.state == EState::Issued && e.done_at <= self.now)
    }

    /// Whether the next tick provably changes the progress fingerprint,
    /// so the run loops can skip both probes around it. True when the
    /// ROB head commits ([`Core::commit_ready`]) or the fetch-queue head
    /// clears every dispatch gate: within one tick the gates only loosen
    /// (commit alone shrinks the ROB and the inflight counters), and the
    /// one commit that could flush the fetch queue — a taken
    /// misprediction — bumps `committed` itself, so either way the
    /// fingerprint moves. An off-program head also counts: its tick
    /// raises `RanOffProgram` exactly as the probed path would.
    #[inline]
    pub fn progress_certain(&self) -> bool {
        self.commit_ready()
            || (!self.fetch_queue.is_empty()
                && self.rob.len() < self.cfg.rob_size
                && !self.dispatch_blocked())
    }

    /// A monotone counter that advances whenever a tick moves anything
    /// through the pipeline (fetch, dispatch, issue or commit). The
    /// run loops consult it to spend horizon scans only on cycles that
    /// did nothing — the cheap busy/idle discriminator of the
    /// cycle-skipping scheduler.
    pub fn progress_fingerprint(&self) -> u64 {
        self.stats.fetched + self.stats.dispatched + self.stats.issued + self.stats.committed
    }

    /// The earliest cycle at or after `now` at which *anything* in the
    /// pipeline can change: the ROB head completing (commit), a waiting
    /// instruction's operands becoming ready (issue), or the front end
    /// leaving an I-miss/redirect stall (fetch). Returns `now` itself
    /// whenever any stage may make progress this cycle — the
    /// conservative "don't skip" answer. Cycles strictly before the
    /// returned horizon are provable no-ops: no port traffic and no
    /// state change beyond the per-cycle stall accounting that
    /// [`Core::advance_to`] replicates in bulk.
    pub fn next_event_at(&self) -> u64 {
        let now = self.now;
        // Dispatch can drain the fetch queue whenever the ROB has room
        // and the head instruction clears the rename/LSQ gates. A head
        // blocked on those gates unblocks only when an inflight counter
        // drops — which happens at commit, already covered by the
        // ROB-head horizon below.
        if !self.fetch_queue.is_empty()
            && self.rob.len() < self.cfg.rob_size
            && !self.dispatch_blocked()
        {
            return now;
        }
        let mut horizon = u64::MAX;
        // Fetch wakes when the front end leaves its stall — if it has
        // instructions left and somewhere to put them.
        if !self.fetch_off
            && self.pending_redirect.is_none()
            && self.fetch_pc < self.program.len()
            && self.fetch_queue.len() < self.cfg.fetch_queue
        {
            let t = self.fetch_resume_at.max(now);
            if t == now {
                return now;
            }
            horizon = horizon.min(t);
        }
        for (i, e) in self.rob.iter().enumerate() {
            match e.state {
                EState::Issued => {
                    // Completion matters at the head (commit); elsewhere
                    // it is observed through dependents' readiness below.
                    if i == 0 {
                        horizon = horizon.min(e.done_at.max(now));
                    }
                }
                EState::Waiting => {
                    // Earliest cycle the operands can be ready. Entries
                    // whose producers have not issued wake through those
                    // producers' own horizons instead.
                    let Some(ready_at) = self.operand_ready_at(i) else {
                        continue;
                    };
                    let ready_at = ready_at.max(now);
                    // A ready load can still be blocked by memory
                    // disambiguation; it unblocks only when the older
                    // store issues or commits — both events of their
                    // own, so the blocked load adds no horizon.
                    if ready_at <= now
                        && e.is_load
                        && matches!(self.load_disambiguate(i), LoadPath::Blocked)
                    {
                        continue;
                    }
                    horizon = horizon.min(ready_at);
                }
            }
        }
        horizon
    }

    /// The cycle-skipping target for the current state:
    /// [`Core::next_event_at`] clamped so the jump never crosses a
    /// pending memory-side event (`mem_event`, from
    /// [`MemoryPort::next_mem_event_at`]), the deadlock watchdog, or the
    /// cycle budget. The watchdog fires on the tick *at*
    /// `last_commit + DEADLOCK_WINDOW` and the budget on the tick at
    /// `max_cycles - 1`; ticking exactly there keeps error cycle numbers
    /// identical to the naive loop.
    pub fn skip_target(&self, mem_event: Option<u64>) -> u64 {
        let mut target = self.next_event_at();
        if let Some(m) = mem_event {
            target = target.min(m.max(self.now));
        }
        target = target.min(self.last_commit_cycle + DEADLOCK_WINDOW);
        target = target.min(self.cfg.max_cycles.saturating_sub(1));
        target.max(self.now)
    }

    /// Bulk-advances the clock to `target`, accounting the skipped
    /// cycles exactly as the equivalent run of no-op [`Core::tick`]s
    /// would: per-cycle phase attribution, ROB-full and fetch-stall
    /// counters, no port traffic. Callers must only pass targets at or
    /// below [`Core::skip_target`] for the current state.
    pub fn advance_to(&mut self, target: u64) {
        if target <= self.now {
            return;
        }
        let delta = target - self.now;
        self.stats.phase_cycles[phase_index(self.cur_phase)] += delta;
        if self.rob.len() >= self.cfg.rob_size {
            self.stats.rob_full_stalls += delta;
        }
        if self.fetch_off || self.pending_redirect.is_some() {
            self.stats.fetch_stall_cycles += delta;
        } else {
            // Cycles below `fetch_resume_at` charge a front-end stall;
            // at or above it fetch idles silently (full queue or program
            // end — otherwise the horizon would have stopped the skip).
            self.stats.fetch_stall_cycles +=
                self.fetch_resume_at.clamp(self.now, target) - self.now;
        }
        self.stats.skipped_cycles += delta;
        self.now = target;
        self.stats.cycles = self.now;
    }

    /// Advances the machine one cycle.
    pub fn tick(&mut self, port: &mut impl MemoryPort) -> Result<(), SimError> {
        self.commit(port);
        if self.halted {
            self.end_cycle();
            return Ok(());
        }
        self.issue(port);
        self.dispatch(port)?;
        self.fetch(port);
        self.end_cycle();
        if self.now - self.last_commit_cycle > DEADLOCK_WINDOW {
            return Err(SimError::Deadlock {
                cycle: self.now,
                report: Box::new(self.deadlock_report(port)),
            });
        }
        if self.now >= self.cfg.max_cycles {
            return Err(SimError::CycleLimit);
        }
        Ok(())
    }

    /// Builds the watchdog's stall snapshot from the ROB head and the
    /// port's in-flight memory state. State-derived only, so lockstep
    /// and skipping runs that fire at the same cycle report identically.
    fn deadlock_report(&self, port: &impl MemoryPort) -> DeadlockReport {
        let diag = port.stall_diagnostics(self.now);
        let (rob_head_pc, rob_head_op) = match self.rob.front() {
            Some(e) => (Some(e.pc), format!("{:?}", self.program.insts[e.pc])),
            None => (None, String::new()),
        };
        DeadlockReport {
            core: diag.core,
            rob_head_pc,
            rob_head_op,
            mshr_in_flight: diag.mshr_in_flight,
            dma_tags: diag.dma_tags,
        }
    }

    fn end_cycle(&mut self) {
        self.stats.phase_cycles[phase_index(self.cur_phase)] += 1;
        self.now += 1;
        self.stats.cycles = self.now;
    }

    // --------------------------------------------------------------- commit

    fn commit(&mut self, port: &mut impl MemoryPort) {
        let mut committed = 0;
        let mut store_ports = self.cfg.ls_units;
        let mut last_store: Option<(u64, u64, MemSide)> = None; // (addr, width, side)
        while committed < self.cfg.commit_width {
            let Some(e) = self.rob.front() else { break };
            if e.state != EState::Issued || e.done_at > self.now {
                break;
            }
            if e.is_store && store_ports == 0 {
                break;
            }
            let e = self.rob.pop_front().unwrap();
            self.head_seq = e.seq + 1;
            committed += 1;
            self.stats.committed += 1;
            if e.is_load {
                self.stats.loads += 1;
                self.loads_inflight -= 1;
            }
            if e.is_fp {
                self.stats.fp_ops += 1;
                self.fp_inflight -= 1;
            } else if writes_int(&self.program.insts[e.pc]) {
                self.int_inflight -= 1;
            }
            if e.is_branch {
                self.stats.branches += 1;
            }
            if let Some(m) = &e.mem {
                match e.mem_route() {
                    Route::Guarded => self.stats.guarded += 1,
                    Route::Oracle => self.stats.oracle_routed += 1,
                    Route::Plain => {}
                }
                if e.is_store {
                    self.stats.stores += 1;
                    self.stores_inflight -= 1;
                    store_ports -= 1;
                    let key = (m.info.addr, m.width.bytes(), m.info.side);
                    if last_store == Some(key) {
                        // Store collapsing: the LSQ merges the second
                        // store into the first — one cache access.
                        self.stats.collapsed_stores += 1;
                    } else {
                        let _ = port.timing_access(self.now, self.pc_addr(e.pc), &m.info, true);
                        last_store = Some(key);
                    }
                }
            }
            if let Some(p) = e.phase_mark {
                self.cur_phase = p;
            }
            if e.is_halt {
                self.halted = true;
                self.last_commit_cycle = self.now;
                return;
            }
            self.last_commit_cycle = self.now;
        }
    }

    // ---------------------------------------------------------------- issue

    fn issue(&mut self, port: &mut impl MemoryPort) {
        let mut int_free = self.cfg.int_alus;
        let mut fp_free = self.cfg.fp_alus;
        let mut mem_free = self.cfg.ls_units;
        let mut slots = self.cfg.issue_width;
        let now = self.now;

        // Oldest-first selection.
        for i in 0..self.rob.len() {
            if slots == 0 {
                break;
            }
            if self.rob[i].state != EState::Waiting {
                continue;
            }
            // Operand readiness.
            match self.operand_ready_at(i) {
                Some(ready_at) if ready_at <= now => {}
                _ => continue,
            }
            // FU availability.
            let fu_free = match self.rob[i].fu {
                FuClass::IntAlu => &mut int_free,
                FuClass::FpAlu => &mut fp_free,
                FuClass::Mem => &mut mem_free,
            };
            if *fu_free == 0 {
                continue;
            }
            // Loads: memory disambiguation against older stores.
            if self.rob[i].is_load {
                match self.load_disambiguate(i) {
                    LoadPath::Blocked => continue,
                    LoadPath::Forward => {
                        *fu_free -= 1;
                        slots -= 1;
                        let done = now + 1 + self.cfg.forward_latency;
                        let e = &mut self.rob[i];
                        e.state = EState::Issued;
                        e.done_at = done;
                        self.stats.issued += 1;
                        self.stats.lsq_forwards += 1;
                        self.stats.served[5] += 1;
                        continue;
                    }
                    LoadPath::Memory => {
                        *fu_free -= 1;
                        slots -= 1;
                        let pc_addr = self.pc_addr(self.rob[i].pc);
                        let e = &mut self.rob[i];
                        let m = e.mem.as_ref().unwrap();
                        // AGU takes one cycle; the presence bit may delay
                        // the access further (§3.2 double-buffer support).
                        let mut start = now + 1;
                        if m.info.ready_at > start {
                            self.stats.presence_stalls += 1;
                            start = m.info.ready_at;
                        }
                        let info = m.info;
                        let (lat, served) = port.timing_access(start, pc_addr, &info, false);
                        e.state = EState::Issued;
                        e.done_at = start + lat;
                        self.stats.issued += 1;
                        self.stats.load_latency_sum += e.done_at - (now + 1);
                        self.stats.loads_timed += 1;
                        self.stats.served[level_index(served)] += 1;
                        if matches!(
                            served,
                            hsim_mem::Level::L2 | hsim_mem::Level::L3 | hsim_mem::Level::Dram
                        ) {
                            self.stats.replay_issues += self.cfg.replay_per_miss;
                        }
                        continue;
                    }
                }
            }
            // Everything else.
            *fu_free -= 1;
            slots -= 1;
            let e = &mut self.rob[i];
            e.state = EState::Issued;
            e.done_at = if e.synch_until > 0 {
                (now + 1).max(e.synch_until)
            } else {
                now + e.latency
            };
            self.stats.issued += 1;
            // A resolved misprediction restarts the front end.
            if e.mispredicted {
                let target = e.redirect_to;
                let resume = e.done_at + self.cfg.redirect_penalty;
                self.pending_redirect = None;
                self.fetch_pc = target;
                self.fetch_resume_at = self.fetch_resume_at.max(resume);
                self.last_fetch_line = u64::MAX;
            }
        }
    }

    /// Earliest cycle ROB entry `i`'s operands can all be ready:
    /// `None` while a producer has not issued (its completion time is
    /// unknown), otherwise the latest `done_at` over its in-flight
    /// producers (0 when every producer committed). Shared between
    /// [`Core::issue`]'s selection and [`Core::next_event_at`]'s horizon
    /// so the two can never disagree on readiness.
    fn operand_ready_at(&self, i: usize) -> Option<u64> {
        let head = self.head_seq;
        let mut ready_at = 0u64;
        for s in self.rob[i].srcs.iter().flatten() {
            if *s < head {
                continue; // producer committed
            }
            let p = &self.rob[(*s - head) as usize];
            if p.state != EState::Issued {
                return None;
            }
            ready_at = ready_at.max(p.done_at);
        }
        Some(ready_at)
    }

    fn load_disambiguate(&self, i: usize) -> LoadPath {
        let e = &self.rob[i];
        let m = e.mem.as_ref().unwrap();
        let (a, w) = (m.info.addr, m.width.bytes());
        // Scan older stores, youngest first.
        for j in (0..i).rev() {
            let s = &self.rob[j];
            if !s.is_store {
                continue;
            }
            let sm = s.mem.as_ref().unwrap();
            let (sa, sw) = (sm.info.addr, sm.width.bytes());
            let overlap = a < sa + sw && sa < a + w;
            if !overlap {
                continue;
            }
            if s.state == EState::Waiting {
                return LoadPath::Blocked; // store address not generated yet
            }
            if sa == a && sw == w {
                return LoadPath::Forward;
            }
            return LoadPath::Blocked; // partial overlap: wait for commit
        }
        LoadPath::Memory
    }

    // ------------------------------------------------------------- dispatch

    /// Whether the fetch-queue head provably cannot dispatch this cycle:
    /// the exact rename/LSQ gates [`Core::dispatch`] applies to it. An
    /// off-program pc counts as *not* blocked — the impending
    /// `RanOffProgram` error must surface on a real tick, never be
    /// skipped over.
    fn dispatch_blocked(&self) -> bool {
        let Some(f) = self.fetch_queue.front() else {
            return true;
        };
        let pc = f.pc;
        if pc >= self.program.len() {
            return false;
        }
        let inst = self.program.insts[pc];
        (writes_int(&inst) && self.int_inflight >= self.cfg.int_rename_budget())
            || (writes_fp(&inst) && self.fp_inflight >= self.cfg.fp_rename_budget())
            || (inst.is_load() && self.loads_inflight >= self.cfg.lsq_loads)
            || (inst.is_store() && self.stores_inflight >= self.cfg.lsq_stores)
    }

    fn dispatch(&mut self, port: &mut impl MemoryPort) -> Result<(), SimError> {
        let mut budget = self.cfg.fetch_width;
        while budget > 0 {
            if self.rob.len() >= self.cfg.rob_size {
                self.stats.rob_full_stalls += 1;
                break;
            }
            let Some(f) = self.fetch_queue.front() else {
                break;
            };
            let pc = f.pc;
            if pc >= self.program.len() {
                return Err(SimError::RanOffProgram);
            }
            let inst = self.program.insts[pc];
            // Rename resource checks.
            if writes_int(&inst) && self.int_inflight >= self.cfg.int_rename_budget() {
                break;
            }
            if writes_fp(&inst) && self.fp_inflight >= self.cfg.fp_rename_budget() {
                break;
            }
            if inst.is_load() && self.loads_inflight >= self.cfg.lsq_loads {
                break;
            }
            if inst.is_store() && self.stores_inflight >= self.cfg.lsq_stores {
                break;
            }
            let f = self.fetch_queue.pop_front().unwrap();
            budget -= 1;
            let seq = self.next_seq;
            self.next_seq += 1;
            self.stats.dispatched += 1;

            let mut entry = RobEntry {
                seq,
                pc,
                state: EState::Waiting,
                srcs: [None; 3],
                fu: FuClass::IntAlu,
                latency: 1,
                done_at: 0,
                is_load: inst.is_load(),
                is_store: inst.is_store(),
                is_fp: writes_fp(&inst),
                is_branch: inst.is_cond_branch(),
                mem: None,
                synch_until: 0,
                phase_mark: None,
                is_halt: false,
                mispredicted: false,
                redirect_to: 0,
            };

            // Functional execution + dependence collection.
            let actual_next = self.exec_functional(port, &inst, pc, seq, &mut entry)?;

            if writes_int(&inst) {
                self.int_inflight += 1;
            }
            if writes_fp(&inst) {
                self.fp_inflight += 1;
            }
            if entry.is_load {
                self.loads_inflight += 1;
            }
            if entry.is_store {
                self.stores_inflight += 1;
            }
            self.rob.push_back(entry);

            // Control-flow resolution: compare against the front end's
            // prediction.
            if actual_next != f.predicted_next {
                self.stats.mispredicts += 1;
                let e = self.rob.back_mut().unwrap();
                e.mispredicted = true;
                e.redirect_to = actual_next;
                self.pending_redirect = Some(seq);
                self.fetch_queue.clear();
                self.bp.repair();
                self.ras.restore_from(&self.arch_call_stack);
                break;
            }
            if matches!(inst, Inst::Halt) {
                self.fetch_off = true;
                self.fetch_queue.clear();
                break;
            }
        }
        Ok(())
    }

    /// Functionally executes `inst`, filling producers/latency/FU class in
    /// `entry`, and returns the actual next PC.
    fn exec_functional(
        &mut self,
        port: &mut impl MemoryPort,
        inst: &Inst,
        pc: usize,
        _seq: u64,
        entry: &mut RobEntry,
    ) -> Result<usize, SimError> {
        use Inst::*;
        let mut next = pc + 1;
        match *inst {
            Alu { op, rd, rs1, src2 } => {
                let a = self.int_regs[rs1.index()];
                let (b, src2_dep) = match src2 {
                    Operand::Reg(r) => (self.int_regs[r.index()], self.last_writer_int[r.index()]),
                    Operand::Imm(i) => (i, None),
                };
                entry.srcs[0] = self.last_writer_int[rs1.index()];
                entry.srcs[1] = src2_dep;
                entry.latency = op.latency() as u64;
                self.write_int(rd, op.eval(a, b), entry);
            }
            Li { rd, imm } => {
                self.write_int(rd, imm, entry);
            }
            Fpu { op, fd, fs1, fs2 } => {
                let a = self.fp_regs[fs1.index()];
                let b = self.fp_regs[fs2.index()];
                entry.srcs[0] = self.last_writer_fp[fs1.index()];
                entry.srcs[1] = self.last_writer_fp[fs2.index()];
                entry.fu = FuClass::FpAlu;
                entry.latency = op.latency() as u64;
                self.write_fp(fd, op.eval(a, b), entry);
            }
            MovIF { fd, rs } => {
                entry.srcs[0] = self.last_writer_int[rs.index()];
                entry.fu = FuClass::FpAlu;
                let v = f64::from_bits(self.int_regs[rs.index()] as u64);
                self.write_fp(fd, v, entry);
            }
            MovFI { rd, fs } => {
                entry.srcs[0] = self.last_writer_fp[fs.index()];
                self.write_int(rd, self.fp_regs[fs.index()].to_bits() as i64, entry);
            }
            CvtIF { fd, rs } => {
                entry.srcs[0] = self.last_writer_int[rs.index()];
                entry.fu = FuClass::FpAlu;
                entry.latency = 3;
                self.write_fp(fd, self.int_regs[rs.index()] as f64, entry);
            }
            CvtFI { rd, fs } => {
                entry.srcs[0] = self.last_writer_fp[fs.index()];
                entry.latency = 3;
                self.write_int(rd, self.fp_regs[fs.index()] as i64, entry);
            }
            Load {
                rd,
                base,
                index,
                offset,
                width,
                route,
            } => {
                entry.srcs[0] = self.last_writer_int[base.index()];
                entry.srcs[1] = index.and_then(|x| self.last_writer_int[x.index()]);
                entry.fu = FuClass::Mem;
                let addr = self.effective_addr(base, index, offset);
                let (bits, info) = port.exec_mem(self.pc_addr(pc), addr, width, route, None);
                entry.mem = Some(MemOp { info, width, route });
                self.write_int(rd, bits as i64, entry);
            }
            Store {
                rs,
                base,
                index,
                offset,
                width,
                route,
            } => {
                entry.srcs[0] = self.last_writer_int[rs.index()];
                entry.srcs[1] = self.last_writer_int[base.index()];
                entry.srcs[2] = index.and_then(|x| self.last_writer_int[x.index()]);
                entry.fu = FuClass::Mem;
                let addr = self.effective_addr(base, index, offset);
                let bits = self.int_regs[rs.index()] as u64;
                let (_, info) = port.exec_mem(self.pc_addr(pc), addr, width, route, Some(bits));
                entry.mem = Some(MemOp { info, width, route });
            }
            FLoad {
                fd,
                base,
                index,
                offset,
                route,
            } => {
                entry.srcs[0] = self.last_writer_int[base.index()];
                entry.srcs[1] = index.and_then(|x| self.last_writer_int[x.index()]);
                entry.fu = FuClass::Mem;
                let addr = self.effective_addr(base, index, offset);
                let (bits, info) = port.exec_mem(self.pc_addr(pc), addr, Width::D, route, None);
                entry.mem = Some(MemOp {
                    info,
                    width: Width::D,
                    route,
                });
                self.write_fp(fd, f64::from_bits(bits), entry);
            }
            FStore {
                fs,
                base,
                index,
                offset,
                route,
            } => {
                entry.srcs[0] = self.last_writer_fp[fs.index()];
                entry.srcs[1] = self.last_writer_int[base.index()];
                entry.srcs[2] = index.and_then(|x| self.last_writer_int[x.index()]);
                entry.fu = FuClass::Mem;
                let addr = self.effective_addr(base, index, offset);
                let bits = self.fp_regs[fs.index()].to_bits();
                let (_, info) = port.exec_mem(self.pc_addr(pc), addr, Width::D, route, Some(bits));
                entry.mem = Some(MemOp {
                    info,
                    width: Width::D,
                    route,
                });
            }
            Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                entry.srcs[0] = self.last_writer_int[rs1.index()];
                entry.srcs[1] = self.last_writer_int[rs2.index()];
                let taken = cond.eval(self.int_regs[rs1.index()], self.int_regs[rs2.index()]);
                self.bp.update(self.pc_addr(pc), taken);
                next = if taken { target } else { pc + 1 };
            }
            Jump { target } => {
                next = target;
            }
            Call { target } => {
                self.arch_call_stack.push((pc + 1) as u64);
                next = target;
            }
            Ret => {
                let Some(ra) = self.arch_call_stack.pop() else {
                    return Err(SimError::RetWithoutCall { pc });
                };
                next = ra as usize;
            }
            DmaGet { lm, sm, bytes, tag } => {
                entry.srcs[0] = self.last_writer_int[lm.index()];
                entry.srcs[1] = self.last_writer_int[sm.index()];
                entry.srcs[2] = self.last_writer_int[bytes.index()];
                entry.fu = FuClass::Mem;
                let _ = port.exec_dma(
                    self.now,
                    DmaKind::Get,
                    self.int_regs[lm.index()] as u64,
                    self.int_regs[sm.index()] as u64,
                    self.int_regs[bytes.index()] as u64,
                    tag,
                );
            }
            DmaPut { lm, sm, bytes, tag } => {
                entry.srcs[0] = self.last_writer_int[lm.index()];
                entry.srcs[1] = self.last_writer_int[sm.index()];
                entry.srcs[2] = self.last_writer_int[bytes.index()];
                entry.fu = FuClass::Mem;
                let _ = port.exec_dma(
                    self.now,
                    DmaKind::Put,
                    self.int_regs[lm.index()] as u64,
                    self.int_regs[sm.index()] as u64,
                    self.int_regs[bytes.index()] as u64,
                    tag,
                );
            }
            DmaSynch { tag } => {
                entry.synch_until = port.dma_synch(self.now, tag).max(1);
            }
            DirCfg { rs } => {
                entry.srcs[0] = self.last_writer_int[rs.index()];
                port.dir_configure(self.int_regs[rs.index()] as u64);
            }
            PhaseMark { phase } => {
                entry.phase_mark = Some(phase);
            }
            Halt => {
                entry.is_halt = true;
            }
            Nop => {}
        }
        Ok(next)
    }

    #[inline]
    fn effective_addr(&self, base: Reg, index: Option<Reg>, offset: i64) -> u64 {
        let mut a = self.int_regs[base.index()] as u64;
        if let Some(x) = index {
            a = a.wrapping_add(self.int_regs[x.index()] as u64);
        }
        a.wrapping_add(offset as u64)
    }

    fn write_int(&mut self, rd: Reg, v: i64, entry: &mut RobEntry) {
        self.int_regs[rd.index()] = v;
        self.last_writer_int[rd.index()] = Some(entry.seq);
    }

    fn write_fp(&mut self, fd: FReg, v: f64, entry: &mut RobEntry) {
        self.fp_regs[fd.index()] = v;
        self.last_writer_fp[fd.index()] = Some(entry.seq);
    }

    #[inline]
    fn pc_addr(&self, pc: usize) -> u64 {
        self.mmap.pc_addr(pc)
    }

    // ---------------------------------------------------------------- fetch

    fn fetch(&mut self, port: &mut impl MemoryPort) {
        if self.fetch_off || self.pending_redirect.is_some() {
            self.stats.fetch_stall_cycles += 1;
            return;
        }
        if self.now < self.fetch_resume_at {
            self.stats.fetch_stall_cycles += 1;
            return;
        }
        let mut slots = self.cfg.fetch_width;
        while slots > 0 && self.fetch_queue.len() < self.cfg.fetch_queue {
            let pc = self.fetch_pc;
            if pc >= self.program.len() {
                break; // dispatch will flag RanOffProgram if reached
            }
            // I-cache: charge a bubble when crossing into a line that
            // misses.
            let addr = self.pc_addr(pc);
            let line = addr / 64;
            if line != self.last_fetch_line {
                let lat = port.fetch_latency(self.now, addr);
                self.last_fetch_line = line;
                if lat > 2 {
                    self.fetch_resume_at = self.now + lat;
                    return;
                }
            }
            let inst = self.program.insts[pc];
            let predicted_next = self.predict_next(pc, &inst);
            self.fetch_queue.push_back(Fetched { pc, predicted_next });
            self.stats.fetched += 1;
            slots -= 1;
            self.fetch_pc = predicted_next;
            if predicted_next != pc + 1 {
                break; // taken-control fetch break
            }
            if matches!(inst, Inst::Halt) {
                break;
            }
        }
    }

    /// Front-end next-PC logic: real predictor state, no peeking at
    /// functional outcomes.
    fn predict_next(&mut self, pc: usize, inst: &Inst) -> usize {
        match *inst {
            Inst::Branch { target, .. } => {
                let taken = self.bp.predict(self.pc_addr(pc));
                if taken {
                    if !self.btb.lookup_allocate(self.pc_addr(pc)) {
                        self.stats.btb_bubbles += 1;
                        self.fetch_resume_at = self.now + self.cfg.btb_miss_penalty;
                    }
                    target
                } else {
                    pc + 1
                }
            }
            Inst::Jump { target } => target,
            Inst::Call { target } => {
                self.ras.push((pc + 1) as u64);
                target
            }
            Inst::Ret => match self.ras.pop() {
                Some(ra) => ra as usize,
                None => pc + 1, // cold RAS: will mispredict
            },
            _ => pc + 1,
        }
    }
}

enum LoadPath {
    Blocked,
    Forward,
    Memory,
}

impl RobEntry {
    fn mem_route(&self) -> Route {
        self.mem.map(|m| m.route).unwrap_or(Route::Plain)
    }
}

fn writes_int(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Alu { .. }
            | Inst::Li { .. }
            | Inst::MovFI { .. }
            | Inst::CvtFI { .. }
            | Inst::Load { .. }
    )
}

fn writes_fp(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Fpu { .. } | Inst::MovIF { .. } | Inst::CvtIF { .. } | Inst::FLoad { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::ServedLevel;
    use hsim_isa::inst::{AluOp, Cond};
    use hsim_isa::ProgramBuilder;
    use std::collections::HashMap;

    /// A flat test port: all SM accesses hit a 4-cycle memory; LM window
    /// accesses take 2 cycles; no directory.
    struct MockPort {
        mem: HashMap<u64, u64>,
        mmap: MemoryMap,
        sm_latency: u64,
        accesses: Vec<(u64, bool)>,
        timed: Vec<(u64, bool)>,
    }

    impl MockPort {
        fn new() -> Self {
            MockPort {
                mem: HashMap::new(),
                mmap: MemoryMap::default(),
                sm_latency: 4,
                accesses: Vec::new(),
                timed: Vec::new(),
            }
        }

        fn read64(&self, addr: u64) -> u64 {
            let base = addr & !7;
            let off = (addr - base) * 8;
            let lo = self.mem.get(&base).copied().unwrap_or(0);
            if off == 0 {
                lo
            } else {
                let hi = self.mem.get(&(base + 8)).copied().unwrap_or(0);
                (lo >> off) | (hi << (64 - off))
            }
        }
    }

    impl MemoryPort for MockPort {
        fn exec_mem(
            &mut self,
            _pc: u64,
            addr: u64,
            width: Width,
            _route: Route,
            store: Option<u64>,
        ) -> (u64, RouteInfo) {
            let side = if self.mmap.is_lm(addr) {
                MemSide::Lm
            } else {
                MemSide::Sm
            };
            let info = RouteInfo {
                side,
                addr,
                dir_lookup: false,
                dir_hit: false,
                ready_at: 0,
            };
            self.accesses.push((addr, store.is_some()));
            match store {
                Some(bits) => {
                    // Only 8-byte aligned stores needed by the tests.
                    let mask = match width {
                        Width::B => 0xff,
                        Width::W => 0xffff_ffff,
                        Width::D => u64::MAX,
                    };
                    let old = self.read64(addr & !7);
                    let sh = (addr & 7) * 8;
                    let nv = (old & !(mask << sh)) | ((bits & mask) << sh);
                    self.mem.insert(addr & !7, nv);
                    (0, info)
                }
                None => {
                    let raw = self.read64(addr);
                    let v = match width {
                        Width::B => raw & 0xff,
                        Width::W => (raw & 0xffff_ffff) as u32 as i32 as i64 as u64,
                        Width::D => raw,
                    };
                    (v, info)
                }
            }
        }

        fn timing_access(
            &mut self,
            _now: u64,
            _pc: u64,
            info: &RouteInfo,
            write: bool,
        ) -> (u64, ServedLevel) {
            self.timed.push((info.addr, write));
            match info.side {
                MemSide::Lm => (2, ServedLevel::Lm),
                MemSide::Sm => (self.sm_latency, ServedLevel::L1),
            }
        }

        fn exec_dma(
            &mut self,
            now: u64,
            _k: DmaKind,
            _lm: u64,
            _sm: u64,
            bytes: u64,
            _tag: u8,
        ) -> u64 {
            now + 10 + bytes / 16
        }

        fn dma_synch(&mut self, now: u64, _tag: u8) -> u64 {
            now + 25
        }

        fn dir_configure(&mut self, _b: u64) {}

        fn fetch_latency(&mut self, _now: u64, _addr: u64) -> u64 {
            2
        }
    }

    fn run_prog(build: impl FnOnce(&mut ProgramBuilder)) -> (Core, MockPort) {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        let p = b.build();
        let mut core = Core::new(CoreConfig::default(), p, MemoryMap::default());
        let mut port = MockPort::new();
        core.run(&mut port).expect("program must halt");
        (core, port)
    }

    #[test]
    fn arithmetic_and_halt() {
        let (core, _) = run_prog(|b| {
            b.li(Reg(1), 6);
            b.li(Reg(2), 7);
            b.alu(AluOp::Mul, Reg(3), Reg(1), Reg(2));
            b.alui(AluOp::Add, Reg(3), Reg(3), 100);
            b.halt();
        });
        assert_eq!(core.int_reg(Reg(3)), 142);
        assert_eq!(core.stats.committed, 5);
        assert!(core.halted());
    }

    #[test]
    fn loop_commits_right_instruction_count() {
        let n = 50;
        let (core, _) = run_prog(|b| {
            let top = b.new_label();
            b.li(Reg(1), 0);
            b.li(Reg(2), n);
            b.bind(top);
            b.addi(Reg(1), Reg(1), 1);
            b.branch(Cond::Lt, Reg(1), Reg(2), top);
            b.halt();
        });
        assert_eq!(core.int_reg(Reg(1)), n);
        // 2 setup + 2*n loop + 1 halt.
        assert_eq!(core.stats.committed, 2 + 2 * n as u64 + 1);
        assert!(core.stats.branches == n as u64);
        // The loop branch should mispredict only a handful of times.
        assert!(
            core.stats.mispredicts <= 4,
            "mispredicts={}",
            core.stats.mispredicts
        );
    }

    #[test]
    fn memory_round_trip_through_port() {
        let (core, port) = run_prog(|b| {
            b.li(Reg(1), 0x1000_0000);
            b.li(Reg(2), 12345);
            b.st(Reg(2), Reg(1), 0);
            b.ld(Reg(3), Reg(1), 0);
            b.halt();
        });
        assert_eq!(core.int_reg(Reg(3)), 12345);
        assert_eq!(port.accesses.len(), 2);
        assert_eq!(core.stats.loads, 1);
        assert_eq!(core.stats.stores, 1);
        // The load forwarded from the in-flight store.
        assert_eq!(core.stats.lsq_forwards, 1);
    }

    #[test]
    fn store_commit_collapsing() {
        // Two back-to-back stores to the same address commit with one
        // cache access (the paper's double-store optimization).
        let (core, port) = run_prog(|b| {
            b.li(Reg(1), 0x1000_0000);
            b.li(Reg(2), 7);
            b.st(Reg(2), Reg(1), 0);
            b.st(Reg(2), Reg(1), 0);
            b.halt();
        });
        assert_eq!(core.stats.stores, 2);
        assert_eq!(core.stats.collapsed_stores, 1);
        let writes = port.timed.iter().filter(|(_, w)| *w).count();
        assert_eq!(writes, 1, "only one timed store access");
    }

    #[test]
    fn different_address_stores_do_not_collapse() {
        let (core, port) = run_prog(|b| {
            b.li(Reg(1), 0x1000_0000);
            b.li(Reg(2), 7);
            b.st(Reg(2), Reg(1), 0);
            b.st(Reg(2), Reg(1), 8);
            b.halt();
        });
        assert_eq!(core.stats.collapsed_stores, 0);
        let writes = port.timed.iter().filter(|(_, w)| *w).count();
        assert_eq!(writes, 2);
    }

    #[test]
    fn dependent_chain_is_serialized() {
        // 20 dependent 1-cycle adds take at least 20 cycles; 20
        // independent ones finish much faster.
        let (dep, _) = run_prog(|b| {
            b.li(Reg(1), 0);
            for _ in 0..20 {
                b.addi(Reg(1), Reg(1), 1);
            }
            b.halt();
        });
        let (indep, _) = run_prog(|b| {
            b.li(Reg(1), 0);
            for i in 0..20 {
                b.li(Reg((1 + (i % 8)) as u8), i);
            }
            b.halt();
        });
        assert_eq!(dep.int_reg(Reg(1)), 20);
        assert!(
            dep.stats.cycles > indep.stats.cycles + 8,
            "dep {} vs indep {}",
            dep.stats.cycles,
            indep.stats.cycles
        );
    }

    #[test]
    fn call_ret_roundtrip() {
        let (core, _) = run_prog(|b| {
            let f = b.new_label();
            let done = b.new_label();
            b.li(Reg(1), 1);
            b.call(f);
            b.addi(Reg(1), Reg(1), 10); // after return
            b.jump(done);
            b.bind(f);
            b.addi(Reg(1), Reg(1), 100);
            b.ret();
            b.bind(done);
            b.halt();
        });
        assert_eq!(core.int_reg(Reg(1)), 111);
    }

    #[test]
    fn ret_without_call_errors() {
        let mut b = ProgramBuilder::new();
        b.ret();
        b.halt();
        let p = b.build();
        let mut core = Core::new(CoreConfig::default(), p, MemoryMap::default());
        let mut port = MockPort::new();
        assert_eq!(core.run(&mut port), Err(SimError::RetWithoutCall { pc: 0 }));
    }

    #[test]
    fn dma_and_synch_complete() {
        let (core, _) = run_prog(|b| {
            b.li(Reg(1), 0x7fff_0000_0000u64 as i64);
            b.li(Reg(2), 0x1000_0000);
            b.li(Reg(3), 1024);
            b.dma_get(Reg(1), Reg(2), Reg(3), 0);
            b.dma_synch(0);
            b.halt();
        });
        assert_eq!(core.stats.committed, 6);
    }

    #[test]
    fn phase_cycles_are_attributed() {
        let (core, _) = run_prog(|b| {
            b.phase(Phase::Control);
            for _ in 0..10 {
                b.nop();
            }
            b.phase(Phase::Work);
            b.li(Reg(1), 0);
            for _ in 0..50 {
                b.addi(Reg(1), Reg(1), 1);
            }
            b.halt();
        });
        assert!(core.stats.phase(Phase::Work) > core.stats.phase(Phase::Control));
        let total: u64 = core.stats.phase_cycles.iter().sum();
        assert_eq!(total, core.stats.cycles);
    }

    #[test]
    fn mispredicts_cost_cycles() {
        // A data-dependent unpredictable branch pattern (period 3 with a
        // short history) vs an always-taken one of the same length.
        let mk = |pattern: bool| {
            move |b: &mut ProgramBuilder| {
                let top = b.new_label();
                let skip = b.new_label();
                b.li(Reg(1), 0);
                b.li(Reg(2), 300);
                b.li(Reg(4), 0); // lfsr-ish state
                b.bind(top);
                if pattern {
                    // r4 = (r4*1103515245 + 12345) >> 16 & 1: pseudo-random
                    b.alui(AluOp::Mul, Reg(4), Reg(4), 1103515245);
                    b.alui(AluOp::Add, Reg(4), Reg(4), 12345);
                    b.alui(AluOp::Srl, Reg(5), Reg(4), 16);
                    b.alui(AluOp::And, Reg(5), Reg(5), 1);
                } else {
                    b.li(Reg(5), 0);
                }
                b.li(Reg(6), 1);
                b.branch(Cond::Eq, Reg(5), Reg(6), skip);
                b.addi(Reg(3), Reg(3), 1);
                b.bind(skip);
                b.addi(Reg(1), Reg(1), 1);
                b.branch(Cond::Lt, Reg(1), Reg(2), top);
                b.halt();
            }
        };
        let (random, _) = run_prog(mk(true));
        let (steady, _) = run_prog(mk(false));
        assert!(random.stats.mispredicts > steady.stats.mispredicts + 20);
    }

    #[test]
    fn deterministic_across_runs() {
        let build = |b: &mut ProgramBuilder| {
            let top = b.new_label();
            b.li(Reg(1), 0);
            b.li(Reg(2), 100);
            b.li(Reg(7), 0x1000_0000);
            b.bind(top);
            b.st(Reg(1), Reg(7), 0);
            b.ld(Reg(3), Reg(7), 0);
            b.addi(Reg(1), Reg(1), 1);
            b.branch(Cond::Lt, Reg(1), Reg(2), top);
            b.halt();
        };
        let (a, _) = run_prog(build);
        let (b2, _) = run_prog(build);
        assert_eq!(a.stats.cycles, b2.stats.cycles);
        assert_eq!(a.stats.committed, b2.stats.committed);
        assert_eq!(a.stats.mispredicts, b2.stats.mispredicts);
    }

    /// Runs the same program in lockstep and skipping configurations and
    /// asserts the statistics are identical (minus the skip counter).
    fn assert_skip_equivalent(build: impl Fn(&mut ProgramBuilder) + Copy) -> (CoreStats, u64) {
        let run = |lockstep: bool| {
            let mut b = ProgramBuilder::new();
            build(&mut b);
            let p = b.build();
            let cfg = CoreConfig {
                lockstep,
                ..Default::default()
            };
            let mut core = Core::new(cfg, p, MemoryMap::default());
            let mut port = MockPort::new();
            core.run(&mut port).expect("program must halt");
            (core, port)
        };
        let (skip, skip_port) = run(false);
        let (lock, lock_port) = run(true);
        assert_eq!(lock.stats.skipped_cycles, 0);
        let skipped = skip.stats.skipped_cycles;
        let mut norm = skip.stats.clone();
        norm.skipped_cycles = 0;
        assert_eq!(norm, lock.stats, "stats must be bit-identical");
        assert_eq!(skip_port.accesses, lock_port.accesses);
        assert_eq!(skip_port.timed, lock_port.timed);
        (lock.stats, skipped)
    }

    #[test]
    fn skipping_matches_lockstep_on_mixed_program() {
        let (stats, skipped) = assert_skip_equivalent(|b| {
            let top = b.new_label();
            b.li(Reg(1), 0);
            b.li(Reg(2), 40);
            b.li(Reg(7), 0x1000_0000);
            b.bind(top);
            b.st(Reg(1), Reg(7), 0);
            b.ld(Reg(3), Reg(7), 8);
            b.addi(Reg(1), Reg(1), 1);
            b.branch(Cond::Lt, Reg(1), Reg(2), top);
            b.li(Reg(4), 0x7fff_0000_0000u64 as i64);
            b.li(Reg(5), 0x1000_0000);
            b.li(Reg(6), 4096);
            b.dma_get(Reg(4), Reg(5), Reg(6), 2);
            b.dma_synch(2);
            b.halt();
        });
        assert!(stats.cycles > 0);
        assert!(skipped > 0, "the dma-synch wait must be skipped");
    }

    #[test]
    fn deadlock_watchdog_fires_at_the_same_cycle_with_skipping() {
        // A dma-synch completing far beyond the watchdog window starves
        // commit; the skipper's horizon must clamp to
        // `last_commit + DEADLOCK_WINDOW` so the watchdog fires at the
        // same cycle number as the naive loop.
        struct FarSynch(MockPort);
        impl MemoryPort for FarSynch {
            fn exec_mem(
                &mut self,
                pc: u64,
                addr: u64,
                width: Width,
                route: Route,
                store: Option<u64>,
            ) -> (u64, RouteInfo) {
                self.0.exec_mem(pc, addr, width, route, store)
            }
            fn timing_access(
                &mut self,
                now: u64,
                pc: u64,
                info: &RouteInfo,
                write: bool,
            ) -> (u64, ServedLevel) {
                self.0.timing_access(now, pc, info, write)
            }
            fn exec_dma(
                &mut self,
                now: u64,
                k: DmaKind,
                lm: u64,
                sm: u64,
                bytes: u64,
                tag: u8,
            ) -> u64 {
                self.0.exec_dma(now, k, lm, sm, bytes, tag)
            }
            fn dma_synch(&mut self, _now: u64, _tag: u8) -> u64 {
                1_000_000
            }
            fn dir_configure(&mut self, b: u64) {
                self.0.dir_configure(b)
            }
            fn fetch_latency(&mut self, now: u64, addr: u64) -> u64 {
                self.0.fetch_latency(now, addr)
            }
        }
        let run = |lockstep: bool| {
            let mut b = ProgramBuilder::new();
            b.li(Reg(1), 1);
            b.dma_synch(0);
            b.halt();
            let p = b.build();
            let cfg = CoreConfig {
                lockstep,
                ..Default::default()
            };
            let mut core = Core::new(cfg, p, MemoryMap::default());
            let mut port = FarSynch(MockPort::new());
            let err = core.run(&mut port).expect_err("must deadlock");
            (err, core.stats.cycles, core.stats.skipped_cycles)
        };
        let (skip_err, skip_cycles, skipped) = run(false);
        let (lock_err, lock_cycles, lock_skipped) = run(true);
        let SimError::Deadlock { report, .. } = &skip_err else {
            panic!("must be a deadlock, got {skip_err:?}");
        };
        assert_eq!(
            report.rob_head_pc,
            Some(1),
            "dma-synch wedged at the ROB head"
        );
        assert!(
            report.rob_head_op.contains("DmaSynch"),
            "report names the wedged opcode: {}",
            report.rob_head_op
        );
        let shown = skip_err.to_string();
        assert!(
            shown.contains("DmaSynch") && shown.contains("MSHR"),
            "Display carries the report: {shown}"
        );
        assert_eq!(skip_err, lock_err, "same error at the same cycle");
        assert_eq!(skip_cycles, lock_cycles);
        assert_eq!(lock_skipped, 0);
        assert!(
            skipped > DEADLOCK_WINDOW / 2,
            "the dead window must be jumped, not walked ({skipped})"
        );
    }

    #[test]
    fn cycle_limit_fires_at_the_same_cycle_with_skipping() {
        // An infinite loop exhausts `max_cycles`; the horizon clamps to
        // `max_cycles - 1` so both runs report the limit at the same
        // simulated cycle.
        let run = |lockstep: bool| {
            let mut b = ProgramBuilder::new();
            let top = b.new_label();
            b.bind(top);
            b.addi(Reg(1), Reg(1), 1);
            b.jump(top);
            let p = b.build();
            let cfg = CoreConfig {
                max_cycles: 20_000,
                lockstep,
                ..Default::default()
            };
            let mut core = Core::new(cfg, p, MemoryMap::default());
            let mut port = MockPort::new();
            let err = core.run(&mut port).expect_err("must hit the limit");
            (err, core.stats.cycles)
        };
        let (skip_err, skip_cycles) = run(false);
        let (lock_err, lock_cycles) = run(true);
        assert_eq!(skip_err, SimError::CycleLimit);
        assert_eq!(skip_err, lock_err);
        assert_eq!(skip_cycles, lock_cycles);
    }

    #[test]
    fn presence_bit_stalls_load() {
        // A port that reports the LM mapping ready only at cycle 500.
        struct StallPort(MockPort);
        impl MemoryPort for StallPort {
            fn exec_mem(
                &mut self,
                pc: u64,
                addr: u64,
                width: Width,
                route: Route,
                store: Option<u64>,
            ) -> (u64, RouteInfo) {
                let (v, mut info) = self.0.exec_mem(pc, addr, width, route, store);
                if route == Route::Guarded {
                    info.ready_at = 500;
                }
                (v, info)
            }
            fn timing_access(
                &mut self,
                now: u64,
                pc: u64,
                info: &RouteInfo,
                write: bool,
            ) -> (u64, ServedLevel) {
                self.0.timing_access(now, pc, info, write)
            }
            fn exec_dma(
                &mut self,
                now: u64,
                k: DmaKind,
                lm: u64,
                sm: u64,
                bytes: u64,
                tag: u8,
            ) -> u64 {
                self.0.exec_dma(now, k, lm, sm, bytes, tag)
            }
            fn dma_synch(&mut self, now: u64, tag: u8) -> u64 {
                self.0.dma_synch(now, tag)
            }
            fn dir_configure(&mut self, b: u64) {
                self.0.dir_configure(b)
            }
            fn fetch_latency(&mut self, now: u64, addr: u64) -> u64 {
                self.0.fetch_latency(now, addr)
            }
        }
        let mut b = ProgramBuilder::new();
        b.li(Reg(1), 0x1000_0000);
        b.load(Reg(2), Reg(1), 0, Width::D, Route::Guarded);
        b.halt();
        let p = b.build();
        let mut core = Core::new(CoreConfig::default(), p, MemoryMap::default());
        let mut port = StallPort(MockPort::new());
        core.run(&mut port).unwrap();
        assert!(
            core.stats.cycles >= 500,
            "guarded load must wait for the presence bit"
        );
        assert_eq!(core.stats.presence_stalls, 1);
    }
}
