//! # hsim-compiler — the paper's compiler support (§3.1)
//!
//! A small loop-nest compiler that reproduces the three-phase compiler
//! support of the paper on a compact IR:
//!
//! 1. **Classification of memory references** ([`classify`]): every
//!    reference is classified as *regular* (strided → mapped to the local
//!    memory), *irregular* (non-strided, provably no alias with any
//!    regular reference → served by the caches) or *potentially
//!    incoherent* (non-strided, `may`/`must` alias → guarded). The alias
//!    analysis is a pluggable three-valued oracle ([`alias`]) so each
//!    workload can encode exactly what GCC could and could not prove for
//!    the corresponding NAS benchmark.
//! 2. **Code transformation** ([`codegen`]): regular references are tiled
//!    into the control / synchronization / work execution model of
//!    Figure 2, with buffer-size-aligned windows DMA-mapped onto
//!    equally-sized LM buffers and write-back of dirty buffers only.
//! 3. **Code generation** ([`codegen`]): plain loads/stores for regular
//!    (LM) and irregular (SM) accesses, **guarded** instructions for
//!    potentially incoherent ones, and the **double store** for
//!    potentially incoherent writes (Figure 3, lines 19–20).
//!
//! Three code-generation modes produce the three machines of the
//! evaluation: `HybridCoherent` (the proposal), `HybridOracle` (the
//! incoherent oracle-compiler baseline of Figure 8) and `CacheBased`
//! (the §4.3 comparison system: no LM, straight loops).
//!
//! [`interp`] provides a reference interpreter over flat arrays — the
//! functional ground truth every compiled variant is tested against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod classify;
pub mod codegen;
pub mod interp;
pub mod ir;
pub mod layout;

pub use alias::{AliasAnswer, AliasOracle};
pub use classify::{classify_loop, LoopPlan, RefClass};
pub use codegen::{compile, compile_with_lm, CodegenMode, CompiledKernel};
pub use interp::interpret;
pub use ir::{
    ArrayDecl, ArrayId, Elem, Expr, Index, Kernel, KernelBuilder, LoopNest, MemRef, RefId,
    ShardError, Stmt,
};
pub use layout::{ArrayLayout, Layout};
