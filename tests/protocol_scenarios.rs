//! Hand-written machine-level scenarios for the protocol's §3.4 corner
//! cases — the situations the design discussion reasons about, exercised
//! directly with assembly on the coherent machine.

use hsim::isa::asm::assemble;
use hsim::machine::{Machine, MachineConfig, MultiMachine, SysMode};
use hsim_compiler::compile;
use hsim_isa::memmap::{DATA_BASE, LM_BASE};
use hsim_isa::Reg;
use hsim_workloads::{nas, Scale};

fn machine(src: &str) -> Machine {
    let program = assemble(src).expect("assembles");
    let mut cfg = MachineConfig::for_mode(SysMode::HybridCoherent);
    cfg.track_coherence = true;
    Machine::new(cfg, program)
}

/// The double-store motivation (§3.1): data mapped read-only (no
/// write-back), modified through a potentially incoherent store. With the
/// double store, the update survives the unmap; a single guarded store
/// would lose it.
#[test]
fn double_store_survives_readonly_unmap() {
    let w0 = DATA_BASE; // window 0 of the "array"
    let w1 = DATA_BASE + 0x8000; // an unrelated chunk, same buffer later
    let src = format!(
        "
        li r1, 1024
        dir.cfg r1
        ; map w0 read-only (never dma-put)
        li r2, {lm}
        li r3, {w0}
        li r4, 1024
        dma.get r2, r3, r4, 0
        dma.synch 0
        ; potentially incoherent write: double store (gst hits LM + st to SM)
        li r5, {w0}
        li r6, 777
        gst.d r6, 16(r5)
        st.d  r6, 16(r5)
        ; unmap: reuse the buffer for another chunk (read-only data discarded)
        li r3, {w1}
        dma.get r2, r3, r4, 0
        dma.synch 0
        ; read back through the SM: the update must be visible
        ld.d r7, 16(r5)
        halt
        ",
        lm = LM_BASE,
        w0 = w0,
        w1 = w1,
    );
    let mut m = machine(&src);
    m.run().expect("halts");
    assert_eq!(m.core.int_reg(Reg(7)), 777, "update lost at unmap");
    assert_eq!(
        m.violations(),
        0,
        "{:?}",
        m.world.tracker.as_ref().unwrap().violations
    );
}

/// Figure 5 step 4: a guarded load hits the directory and reads the LM
/// copy (which may be newer than the SM's), then a guarded load outside
/// any mapping falls through to the caches.
#[test]
fn guarded_load_reads_valid_lm_copy() {
    let w0 = DATA_BASE;
    let src = format!(
        "
        li r1, 1024
        dir.cfg r1
        li r2, {lm}
        li r3, {w0}
        li r4, 1024
        dma.get r2, r3, r4, 0
        dma.synch 0
        ; modify the LM copy through a plain LM store (regular access)
        li r5, {lm}
        li r6, 42
        st.d r6, 8(r5)
        ; guarded load with the SM address: must divert and see 42
        li r7, {w0}
        gld.d r8, 8(r7)
        ; guarded load of an unmapped chunk: falls through to the SM
        li r9, {far}
        gld.d r10, 0(r9)
        halt
        ",
        lm = LM_BASE,
        w0 = w0,
        far = w0 + 0x100000,
    );
    let mut m = machine(&src);
    m.world.backing.write_u64(w0 + 0x100000, 9001);
    m.run().expect("halts");
    assert_eq!(
        m.core.int_reg(Reg(8)),
        42,
        "guarded load must divert to the LM"
    );
    assert_eq!(
        m.core.int_reg(Reg(10)),
        9001,
        "guarded miss must read the SM"
    );
    let dir = m.world.dir.as_ref().unwrap();
    assert_eq!(dir.stats.hits, 1);
    assert_eq!(dir.stats.lookups, 2);
    assert_eq!(m.violations(), 0);
}

/// LM-writeback keeps the mapping (§3.4.1: "an LM-writeback action does
/// not imply a switch to the MM state"): guarded accesses after a
/// `dma-put` still divert to the LM, and the cached copy was invalidated.
#[test]
fn writeback_keeps_mapping_and_invalidates_cache() {
    let w0 = DATA_BASE;
    let src = format!(
        "
        li r1, 1024
        dir.cfg r1
        li r2, {lm}
        li r3, {w0}
        li r4, 1024
        dma.get r2, r3, r4, 0
        dma.synch 0
        ; dirty the LM copy, write it back
        li r5, {lm}
        li r6, 1234
        st.d r6, 0(r5)
        dma.put r2, r3, r4, 0
        dma.synch 0
        ; guarded access still diverts (mapping survives the put)
        li r7, {w0}
        gld.d r8, 0(r7)
        halt
        ",
        lm = LM_BASE,
        w0 = w0,
    );
    let mut m = machine(&src);
    m.run().expect("halts");
    assert_eq!(m.core.int_reg(Reg(8)), 1234);
    assert_eq!(m.world.backing.read_u64(w0), 1234, "put wrote the SM");
    let dir = m.world.dir.as_ref().unwrap();
    assert_eq!(dir.stats.hits, 1, "mapping must survive the writeback");
    assert_eq!(m.violations(), 0);
}

/// Reconfiguring the directory invalidates every mapping: the same
/// guarded access that hit before must miss after `dir.cfg`.
#[test]
fn reconfiguration_unmaps_everything() {
    let w0 = DATA_BASE;
    let src = format!(
        "
        li r1, 1024
        dir.cfg r1
        li r2, {lm}
        li r3, {w0}
        li r4, 1024
        dma.get r2, r3, r4, 0
        dma.synch 0
        li r7, {w0}
        gld.d r8, 0(r7)     ; hit
        li r1, 2048
        dir.cfg r1          ; invalidates all entries
        gld.d r9, 0(r7)     ; miss: served by the SM
        halt
        ",
        lm = LM_BASE,
        w0 = w0,
    );
    let mut m = machine(&src);
    m.world.backing.write_u64(w0, 5);
    m.run().expect("halts");
    assert_eq!(m.core.int_reg(Reg(8)), 5);
    assert_eq!(m.core.int_reg(Reg(9)), 5);
    let dir = m.world.dir.as_ref().unwrap();
    assert_eq!(dir.stats.hits, 1, "second lookup must miss after dir.cfg");
    assert_eq!(m.violations(), 0);
}

/// DMA coherence (§2.1): a dma-get must observe data that only lives in
/// the cache hierarchy (written by plain stores, not yet evicted) — the
/// snoop path of Figure 5's MAP transitions.
#[test]
fn dma_get_snoops_dirty_cache_data() {
    let w0 = DATA_BASE;
    let src = format!(
        "
        ; write through the caches
        li r1, {w0}
        li r2, 31337
        st.d r2, 24(r1)
        ; now map that chunk into the LM and read the LM copy directly
        li r3, 1024
        dir.cfg r3
        li r4, {lm}
        li r5, {w0}
        li r6, 1024
        dma.get r4, r5, r6, 0
        dma.synch 0
        li r7, {lm}
        ld.d r8, 24(r7)
        halt
        ",
        lm = LM_BASE,
        w0 = w0,
    );
    let mut m = machine(&src);
    m.run().expect("halts");
    assert_eq!(
        m.core.int_reg(Reg(8)),
        31337,
        "dma-get must see the cached write"
    );
    assert!(
        m.world.mem.l1d.stats.snoops > 0,
        "get must snoop the caches"
    );
    assert_eq!(m.violations(), 0);
}

/// The tracker actually catches violations: a plain SM store to a mapped,
/// diverged chunk is flagged (this is the bug class the protocol
/// prevents; we bypass the compiler to inject it).
#[test]
fn tracker_flags_injected_incoherence() {
    let w0 = DATA_BASE;
    let src = format!(
        "
        li r1, 1024
        dir.cfg r1
        li r2, {lm}
        li r3, {w0}
        li r4, 1024
        dma.get r2, r3, r4, 0
        dma.synch 0
        ; diverge the copies: write the LM only (legal, buffer is dirty-able)
        li r5, {lm}
        li r6, 1
        st.d r6, 0(r5)
        ; now an UNGUARDED SM store to the same chunk: incoherent update
        li r7, {w0}
        li r8, 2
        st.d r8, 8(r7)
        halt
        ",
        lm = LM_BASE,
        w0 = w0,
    );
    let mut m = machine(&src);
    m.run().expect("halts");
    assert!(
        m.violations() > 0,
        "the checker must flag the unguarded diverging SM store"
    );
}

// ----------------------------------------------------------------- multicore

/// Builds the `n`-core coherent machine running the CG shards, plus the
/// compiled shard kernels, with one shared configuration.
fn cg_shard_machine(
    n: usize,
    cfg: &MachineConfig,
) -> (
    MultiMachine,
    Vec<(hsim_compiler::CompiledKernel, hsim_compiler::Kernel)>,
) {
    let kernel = nas::cg(Scale::Test);
    let shards = kernel.shard(n).expect("CG shards cleanly");
    let compiled: Vec<_> = shards
        .into_iter()
        .map(|s| (compile(&s, cfg.mode.codegen()), s))
        .collect();
    (MultiMachine::for_kernels(cfg.clone(), &compiled), compiled)
}

/// §3: the directory is replicated per core and never sees another
/// core's traffic. Running the same program on every tile of a 4-core
/// machine must leave each tile's directory statistics *identical* to a
/// solo single-core run — any cross-core directory traffic would show up
/// as extra lookups or updates.
#[test]
fn multicore_directories_are_isolated() {
    let w0 = DATA_BASE;
    let src = format!(
        "
        li r1, 1024
        dir.cfg r1
        li r2, {lm}
        li r3, {w0}
        li r4, 1024
        dma.get r2, r3, r4, 0
        dma.synch 0
        li r7, {w0}
        gld.d r8, 8(r7)     ; directory hit, diverted to the LM
        li r9, {far}
        gld.d r10, 0(r9)    ; directory miss, served by the SM
        halt
        ",
        lm = LM_BASE,
        w0 = w0,
        far = w0 + 0x100000,
    );
    let program = assemble(&src).expect("assembles");

    let mut solo = machine(&src);
    solo.run().expect("solo halts");
    let solo_dir = solo.world.dir.as_ref().unwrap().stats;

    let mut cfg = MachineConfig::for_mode(SysMode::HybridCoherent);
    cfg.track_coherence = true;
    let mut multi = Machine::new_multi(4, cfg, vec![program; 4]);
    multi.run().expect("all cores halt");

    for tile in &multi.tiles {
        let dir = tile.world.dir.as_ref().unwrap();
        assert_eq!(
            dir.stats.lookups, solo_dir.lookups,
            "extra directory lookups"
        );
        assert_eq!(
            dir.stats.hits, solo_dir.hits,
            "directory hit count diverged"
        );
        assert_eq!(
            dir.stats.updates, solo_dir.updates,
            "extra directory updates"
        );
        assert_eq!(tile.violations(), 0);
    }
    assert_eq!(multi.violations(), 0);
}

/// Disjoint-slice equivalence: a 4-core machine on CG's shards computes,
/// per core, bit-for-bit what four independent single-core machines
/// compute on the same shards. The shared backside only couples timing,
/// never function.
#[test]
fn disjoint_shards_match_single_core_runs() {
    let mut cfg = MachineConfig::for_mode(SysMode::HybridCoherent);
    cfg.track_coherence = true;
    let (mut multi, compiled) = cg_shard_machine(4, &cfg);
    multi.run().expect("all cores halt");
    assert_eq!(multi.violations(), 0);

    for (tile, (ck, shard)) in multi.tiles.iter().zip(&compiled) {
        let mut solo = Machine::for_kernel(cfg.clone(), ck, shard);
        solo.run().expect("solo shard halts");
        assert_eq!(
            tile.core.stats.committed, solo.core.stats.committed,
            "{}: committed instructions diverged",
            shard.name
        );
        for id in 0..shard.arrays.len() {
            assert_eq!(
                tile.read_array(ck, shard, id),
                solo.read_array(ck, shard, id),
                "{}: array {} diverged between multi-core and solo runs",
                shard.name,
                shard.arrays[id].name
            );
        }
        assert_eq!(solo.violations(), 0);
    }
}

/// Shared-L3/DRAM contention is visible per core: with four cores
/// hammering one backside, every core's cycle count strictly exceeds its
/// own uncontended (solo, same configuration) run, and the arbiter
/// records bus waits for every core.
#[test]
fn shared_backside_contention_slows_every_core() {
    let mut cfg = MachineConfig::for_mode(SysMode::HybridCoherent);
    cfg.mem.l3_port_gap = 16;
    let (mut multi, compiled) = cg_shard_machine(4, &cfg);
    multi.run().expect("all cores halt");

    for (tile, (ck, shard)) in multi.tiles.iter().zip(&compiled) {
        let mut solo = Machine::for_kernel(cfg.clone(), ck, shard);
        solo.run().expect("solo shard halts");
        let contended = tile.core.stats.cycles;
        let uncontended = solo.core.stats.cycles;
        assert!(
            contended > uncontended,
            "{}: contended run must be strictly slower ({contended} vs {uncontended})",
            shard.name
        );
        // A solo core can queue behind its own outstanding misses (the
        // port bounds memory-level parallelism); cross-core contention
        // must add waits beyond that self-induced floor.
        let waits = tile.world.mem.backside_stats().bus_wait_cycles;
        let solo_waits = solo.world.mem.backside_stats().bus_wait_cycles;
        assert!(
            waits > solo_waits,
            "{}: sharing the backside must add bus waits ({waits} vs solo {solo_waits})",
            shard.name
        );
    }
}
