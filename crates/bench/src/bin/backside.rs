//! Backside-sensitivity sweep: DRAM row-buffer locality and L3 bank
//! contention per NAS kernel and core count.
//!
//! Runs the hybrid-coherent machine with the default (banked, row-aware)
//! backside and reports, for every kernel × core-count point, the DRAM
//! row-hit rate, the row hit/miss/conflict split, L3 bank-port conflicts
//! and wait cycles, and write-queue stalls — the contention structure
//! the paper's §3 multicore argument attributes to the shared last-level
//! cache and memory channel. Results are printed as a table and written
//! to `BENCH_backside.json`.
//!
//! ```text
//! cargo run --release -p hsim-bench --bin backside [--test-scale|--smoke]
//! ```
//!
//! `--smoke` runs a minimal grid (test scale, two kernels, 1–2 cores):
//! the CI guard that keeps this driver from rotting.

use hsim::prelude::*;
use hsim_bench::{jstr, kernels, scale_from_args, SweepJson, Table};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke {
        Scale::Test
    } else {
        scale_from_args()
    };
    let mut kernels = kernels(scale);
    let core_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    if smoke {
        kernels.truncate(2);
    }

    let rows = backside_sweep(
        &kernels,
        core_counts,
        SysMode::HybridCoherent,
        Parallelism::HostThreads,
    )
    .expect("backside sweep failed");

    println!("BACKSIDE: row-buffer locality and L3 bank contention ({scale:?} scale)");
    println!("(hybrid-coherent machine, default banked L3 + row-aware DRAM controller)");
    println!();
    let t = Table::new(&[6, 5, 10, 8, 9, 9, 9, 9, 10, 8]);
    t.row(
        &[
            "kernel", "cores", "makespan", "rowhit%", "rhits", "rmisses", "rconfl", "bankcfl",
            "buswait", "qstall",
        ]
        .map(String::from),
    );
    t.sep();
    for r in &rows {
        t.row(&[
            r.kernel.clone(),
            format!("{}", r.cores),
            format!("{}", r.makespan),
            format!("{:.1}", r.dram_row_hit_rate),
            format!("{}", r.dram_row_hits),
            format!("{}", r.dram_row_misses),
            format!("{}", r.dram_row_conflicts),
            format!("{}", r.bank_conflicts),
            format!("{}", r.bus_wait_cycles),
            format!("{}", r.dram_queue_stalls),
        ]);
    }
    println!();

    // Sanity the sweep is expected to show: locality and contention must
    // actually vary across the grid, or the model has gone flat.
    let rates: Vec<f64> = rows.iter().map(|r| r.dram_row_hit_rate).collect();
    let varies = rates.iter().any(|&r| r != rates[0]);
    println!(
        "row-hit rate {} across the grid; total bank conflicts {}",
        if varies { "varies" } else { "is constant" },
        rows.iter().map(|r| r.bank_conflicts).sum::<u64>(),
    );
    assert!(
        varies || rows.len() < 2,
        "row-hit rate must vary across kernels/core counts"
    );

    let mut json = SweepJson::new(scale).meta("mode", jstr("HybridCoherent"));
    json.begin_rows("rows");
    for r in &rows {
        json.row(&[
            ("kernel", jstr(&r.kernel)),
            ("cores", format!("{}", r.cores)),
            ("makespan", format!("{}", r.makespan)),
            ("dram_row_hits", format!("{}", r.dram_row_hits)),
            ("dram_row_misses", format!("{}", r.dram_row_misses)),
            ("dram_row_conflicts", format!("{}", r.dram_row_conflicts)),
            ("dram_row_hit_rate", format!("{:.2}", r.dram_row_hit_rate)),
            ("bank_conflicts", format!("{}", r.bank_conflicts)),
            ("bus_wait_cycles", format!("{}", r.bus_wait_cycles)),
            ("dram_queue_stalls", format!("{}", r.dram_queue_stalls)),
        ]);
    }
    json.write("BENCH_backside.json");
}
