//! Per-event energies and per-cycle leakage, in nanojoules.
//!
//! Magnitudes follow CACTI-style scaling for a 45 nm process at ~2 GHz:
//! SRAM access energy grows with capacity and associativity; a CAM of 32
//! entries is small; a scratchpad saves the tag array, the comparators
//! and the TLB lookup of an equally sized cache (the paper's §2.1
//! motivation); DRAM is off-chip and accounted separately.

/// Energy parameters (all dynamic energies in nJ/event, leakage in
/// nJ/cycle).
#[derive(Clone, Debug)]
pub struct EnergyParams {
    // ---- core pipeline ----
    /// Fetch + decode energy per fetched instruction.
    pub fetch_per_inst: f64,
    /// Rename + ROB-allocate energy per dispatched instruction.
    pub dispatch_per_inst: f64,
    /// Wakeup/select + register-file + bypass energy per issued
    /// instruction (also charged for each replayed issue slot).
    pub issue_per_inst: f64,
    /// Commit/retire energy per instruction.
    pub commit_per_inst: f64,
    /// Extra energy of an FP operation over an INT one.
    pub fp_extra: f64,
    /// LSQ search energy per load/store.
    pub lsq_per_memop: f64,
    /// Branch-direction-predictor energy per lookup/update.
    pub bpred_per_event: f64,
    /// BTB energy per lookup.
    pub btb_per_lookup: f64,
    /// Core leakage + clock tree, per cycle.
    pub core_leak_per_cycle: f64,

    // ---- memory structures ----
    /// L1 (I or D) energy per access.
    pub l1_per_access: f64,
    /// L2 energy per access.
    pub l2_per_access: f64,
    /// L3 energy per access.
    pub l3_per_access: f64,
    /// Combined cache leakage per cycle (dominated by the L3).
    pub cache_leak_per_cycle: f64,
    /// Local-memory energy per CPU access (no tags, no TLB: a fraction
    /// of `l1_per_access`).
    pub lm_per_access: f64,
    /// Local-memory energy per DMA-transferred 64-byte block.
    pub lm_per_dma_block: f64,
    /// LM leakage per cycle.
    pub lm_leak_per_cycle: f64,
    /// TLB energy per lookup.
    pub tlb_per_lookup: f64,
    /// Prefetcher history-table energy per observation.
    pub prefetch_per_obs: f64,
    /// Directory CAM energy per lookup (32-entry CAM, §3.2).
    pub dir_per_lookup: f64,
    /// Directory energy per entry update.
    pub dir_per_update: f64,
    /// DMA engine + bus energy per transferred 64-byte block.
    pub dma_per_block: f64,
    /// Bus energy per cache line moved between levels (fills,
    /// write-backs).
    pub bus_per_line: f64,
    /// Off-chip DRAM energy per 64-byte line (reported separately).
    pub dram_per_line: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            fetch_per_inst: 0.06,
            dispatch_per_inst: 0.05,
            issue_per_inst: 0.09,
            commit_per_inst: 0.04,
            fp_extra: 0.10,
            lsq_per_memop: 0.035,
            bpred_per_event: 0.004,
            btb_per_lookup: 0.005,
            core_leak_per_cycle: 0.25,

            l1_per_access: 0.055,
            l2_per_access: 0.28,
            l3_per_access: 1.10,
            cache_leak_per_cycle: 0.30,
            lm_per_access: 0.022, // ~0.4x of L1: no tag array, no TLB
            lm_per_dma_block: 0.05,
            lm_leak_per_cycle: 0.012,
            tlb_per_lookup: 0.012,
            prefetch_per_obs: 0.006,
            dir_per_lookup: 0.011, // 32-entry CAM at 45nm (CACTI, §3.2)
            dir_per_update: 0.008,
            dma_per_block: 0.06,
            bus_per_line: 0.08,
            dram_per_line: 15.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_magnitudes_hold() {
        let p = EnergyParams::default();
        // The LM must be substantially cheaper than the L1 (paper §1).
        assert!(p.lm_per_access < 0.5 * p.l1_per_access);
        // Cache energy grows down the hierarchy.
        assert!(p.l1_per_access < p.l2_per_access);
        assert!(p.l2_per_access < p.l3_per_access);
        // The directory CAM is a small structure, well under the L1.
        assert!(p.dir_per_lookup < 0.5 * p.l1_per_access);
        // DRAM dominates any on-chip access.
        assert!(p.dram_per_line > 10.0 * p.l3_per_access);
    }
}
