//! Property-based tests: randomized kernels and access streams checked
//! against reference models.
//!
//! The central property is the paper's correctness claim: for *any* loop
//! kernel, the code the compiler generates for the coherent hybrid
//! machine (and for the oracle and cache-based machines) computes exactly
//! what the direct interpretation of the kernel computes, with zero
//! coherence violations — regardless of aliasing, tiling boundaries,
//! guarded stores and window crossings.

use hsim::prelude::*;
use proptest::prelude::*;

/// A random but well-formed kernel: 1-3 arrays of i64, one loop with a
/// mix of strided (offset 0..=2), scalar, indirect and forced-incoherent
/// references.
fn arb_kernel() -> impl Strategy<Value = Kernel> {
    (
        2u64..600,                           // n
        1usize..4,                           // value arrays
        prop::collection::vec(0u8..5, 1..5), // statement shapes
        any::<u64>(),                        // data seed
        prop::bool::ANY,                     // force an incoherent ref?
    )
        .prop_map(|(n, n_arrays, shapes, seed, force)| {
            let mut kb = KernelBuilder::new("prop");
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let arrays: Vec<_> = (0..n_arrays)
                .map(|k| {
                    let init: Vec<i64> = (0..n + 2).map(|_| (next() % 1000) as i64).collect();
                    kb.array_i64_init(&format!("a{k}"), &init)
                })
                .collect();
            let idx_init: Vec<i64> = (0..n).map(|_| (next() % n) as i64).collect();
            let idx = kb.array_i64_init("idx", &idx_init);
            let scal = kb.array_i64_init("s", &[3, 5]);
            kb.begin_loop(n);
            let ridx = kb.ref_affine(idx, 1, 0);
            for (si, shape) in shapes.iter().enumerate() {
                let a = arrays[si % arrays.len()];
                match shape {
                    // strided read-modify-write with offset
                    0 => {
                        let r0 = kb.ref_affine(a, 1, 0);
                        let r1 = kb.ref_affine(a, 1, (si as i64 % 3).min(2));
                        kb.stmt(r1, Expr::add(Expr::Ref(r0), Expr::ConstI(1)));
                    }
                    // scalar accumulate
                    1 => {
                        let r0 = kb.ref_affine(a, 1, 0);
                        let rs = kb.ref_affine(scal, 0, 0);
                        kb.stmt(rs, Expr::add(Expr::Ref(rs), Expr::Ref(r0)));
                    }
                    // indirect write (scatter) into the first array:
                    // must-aliases its own regular refs -> guarded
                    2 => {
                        let rg = kb.ref_indirect(arrays[0], ridx, 0);
                        kb.stmt(rg, Expr::add(Expr::Ref(rg), Expr::ConstI(2)));
                    }
                    // indirect read (gather) combined with ivar
                    3 => {
                        let rg = kb.ref_indirect(arrays[0], ridx, 0);
                        let r1 = kb.ref_affine(a, 1, 0);
                        kb.stmt(r1, Expr::add(Expr::Ref(rg), Expr::Ivar));
                    }
                    // plain strided copy between arrays
                    _ => {
                        let r0 = kb.ref_affine(arrays[(si + 1) % arrays.len()], 1, 0);
                        let r1 = kb.ref_affine(a, 1, 0);
                        kb.stmt(r1, Expr::sub(Expr::Ref(r0), Expr::ConstI(1)));
                    }
                }
            }
            if force {
                // Force the idx stream's own access guarded as well.
                kb.force_incoherent(ridx);
            }
            kb.end_loop();
            kb.build().expect("generated kernel must validate")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The flagship property: all three machines compute the interpreter's
    /// result, with zero coherence violations.
    #[test]
    fn compiled_kernels_match_interpreter(kernel in arb_kernel()) {
        for mode in [SysMode::HybridCoherent, SysMode::HybridOracle, SysMode::CacheBased] {
            let (r, mismatches) = RunSpec::new(&kernel)
            .mode(mode)
            .track(true)
            .verified()
            .run()
            .map(|out| {
                let m = out.verify_mismatches.expect("verified run");
                (out.into_single(), m)
            }).unwrap();
            prop_assert_eq!(mismatches, 0, "memory diverged in {:?}", mode);
            prop_assert_eq!(r.violations, 0, "violations in {:?}", mode);
        }
    }

    /// Simulation is deterministic for arbitrary kernels.
    #[test]
    fn simulation_is_deterministic(kernel in arb_kernel()) {
        let a = RunSpec::new(&kernel).mode(SysMode::HybridCoherent).track(false).run().map(RunOutcome::into_single).unwrap();
        let b = RunSpec::new(&kernel).mode(SysMode::HybridCoherent).track(false).run().map(RunOutcome::into_single).unwrap();
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.committed, b.committed);
    }

    /// Cycle skipping is timing-invisible for arbitrary kernels: the
    /// event-horizon scheduler and the naive per-cycle loop agree on
    /// every pipeline statistic.
    #[test]
    fn cycle_skipping_is_timing_invisible(kernel in arb_kernel()) {
        let cfg = MachineConfig::for_mode(SysMode::HybridCoherent);
        let skip = RunSpec::new(&kernel).config(cfg.clone()).run().map(RunOutcome::into_single).unwrap();
        let lock = RunSpec::new(&kernel).config(cfg.with_lockstep()).run().map(RunOutcome::into_single).unwrap();
        prop_assert_eq!(lock.skipped_cycles, 0);
        let mut core = skip.core.clone();
        core.skipped_cycles = 0;
        prop_assert_eq!(core, lock.core, "core stats diverged");
        prop_assert_eq!(skip.bus_wait_cycles, lock.bus_wait_cycles);
        prop_assert_eq!(skip.dram_reads, lock.dram_reads);
        prop_assert_eq!(skip.dram_writes, lock.dram_writes);
        prop_assert_eq!(skip.l3_accesses, lock.l3_accesses);
    }
}

mod shard_props {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Uniform weights are the identity: for any kernel and shard
        /// count, `shard_weighted(&[1; n])` must reproduce `shard(n)`
        /// shard by shard — same names, trip counts, array declarations
        /// and initial data (or fail with the same error).
        #[test]
        fn uniform_weighted_shards_equal_plain_shard(
            kernel in arb_kernel(),
            n in 1usize..6,
        ) {
            let weights = vec![1u64; n];
            match (kernel.shard(n), kernel.shard_weighted(&weights)) {
                (Ok(plain), Ok(weighted)) => {
                    prop_assert_eq!(plain.len(), weighted.len());
                    for (p, w) in plain.iter().zip(&weighted) {
                        prop_assert_eq!(&p.name, &w.name);
                        prop_assert_eq!(p.loops.len(), w.loops.len());
                        for (pl, wl) in p.loops.iter().zip(&w.loops) {
                            prop_assert_eq!(pl.n, wl.n);
                        }
                        prop_assert_eq!(p.arrays.len(), w.arrays.len());
                        for (pa, wa) in p.arrays.iter().zip(&w.arrays) {
                            prop_assert_eq!(pa.len, wa.len);
                            prop_assert_eq!(pa.shared, wa.shared);
                        }
                        prop_assert_eq!(&p.init, &w.init);
                    }
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (p, w) => prop_assert!(
                    false,
                    "plain and uniform-weighted sharding disagree: {:?} vs {:?}",
                    p.map(|s| s.len()),
                    w.map(|s| s.len())
                ),
            }
        }

        /// Weighted shards always cover the iteration space exactly:
        /// trip counts sum to the original for any positive weights.
        #[test]
        fn weighted_shards_cover_all_iterations(
            kernel in arb_kernel(),
            weights in prop::collection::vec(1u64..8, 1..6),
        ) {
            if let Ok(shards) = kernel.shard_weighted(&weights) {
                let total: u64 = shards.iter().map(|s| s.loops[0].n).sum();
                prop_assert_eq!(total, kernel.loops[0].n);
                for s in &shards {
                    prop_assert!(s.loops[0].n >= 1);
                    prop_assert!(s.validate().is_ok());
                }
            }
        }
    }
}

mod coherence_mode_props {
    use super::*;
    use hsim::compiler::compile;
    use hsim::machine::MultiMachine;

    /// Final array images, indexed `[shard][array][element]`.
    type Images = Vec<Vec<Vec<u64>>>;

    /// Shards a kernel over `n` cores under one coherence mode and
    /// returns (final array images per shard, committed per core);
    /// `None` when the kernel does not shard.
    fn run_mode(kernel: &Kernel, n: usize, cm: CoherenceMode) -> Option<(Images, Vec<u64>)> {
        let shards = kernel.shard(n).ok()?;
        let cfg = MachineConfig::for_mode(SysMode::HybridCoherent).with_coherence(cm);
        let compiled: Vec<_> = shards
            .iter()
            .map(|s| (compile(s, cfg.mode.codegen()), s.clone()))
            .collect();
        let mut m = MultiMachine::for_kernels(cfg, &compiled);
        m.run().expect("run");
        let images = m
            .tiles
            .iter()
            .zip(&compiled)
            .map(|(tile, (ck, shard))| {
                (0..shard.arrays.len())
                    .map(|id| tile.read_array(ck, shard, id))
                    .collect()
            })
            .collect();
        let committed = m.tiles.iter().map(|t| t.core.stats.committed).collect();
        Some((images, committed))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The coherence mode is a pure timing model: for any shardable
        /// kernel, the `Replicate` baseline and every directory protocol
        /// (`Msi`/`Mesi`/`Moesi`/`Mesif`) commit identical architectural
        /// state (final memory images, committed instruction counts) —
        /// the directory may only move cycles around.
        #[test]
        fn coherence_mode_never_changes_architectural_state(kernel in arb_kernel()) {
            let Some((rep_img, rep_committed)) =
                run_mode(&kernel, 2, CoherenceMode::Replicate) else { return Ok(()); };
            for cm in CoherenceMode::DIRECTORY {
                let (img, committed) =
                    run_mode(&kernel, 2, cm).expect("shards under every mode");
                prop_assert_eq!(
                    &rep_img, &img,
                    "memory images diverged under {}", cm.name()
                );
                prop_assert_eq!(
                    &rep_committed, &committed,
                    "committed work diverged under {}", cm.name()
                );
            }
        }
    }
}

mod cluster_props {
    use super::*;
    use hsim::cluster::{ClusterConfig, ClusterTopology};
    use hsim::experiments::MultiRunError;

    /// Runs a random kernel on a clustered machine; `None` when the
    /// kernel does not shard to the topology.
    fn run(
        kernel: &Kernel,
        topo: ClusterTopology,
        cm: CoherenceMode,
        channels: usize,
        serial: bool,
    ) -> Option<hsim::ClusterRunReport> {
        let mut cluster = ClusterConfig::new(topo);
        if serial {
            cluster = cluster.serial();
        }
        let mut cfg = MachineConfig::for_mode(SysMode::HybridCoherent).with_coherence(cm);
        cfg.mem.dram_channels = channels;
        match RunSpec::new(kernel)
            .clustered(&cluster)
            .config(cfg)
            .run()
            .map(RunOutcome::into_clusters)
        {
            Ok(r) => Some(r),
            Err(MultiRunError::Shard(_)) => None,
            Err(e) => panic!("simulation failed: {e}"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Host-parallel epoch execution is invisible: for any kernel,
        /// cluster topology, coherence mode and channel count, one host
        /// thread per cluster produces bit-identical results to the
        /// serial round-robin oracle — every per-core statistic
        /// including the cycle-skip counters, every makespan, the epoch
        /// count and the fallback accounting.
        #[test]
        fn threaded_clusters_match_serial_for_any_topology(
            kernel in arb_kernel(),
            clusters in 1usize..4,
            per in 1usize..3,
            mode_idx in 0usize..CoherenceMode::ALL.len(),
            two_channels in prop::bool::ANY,
        ) {
            let topo = ClusterTopology::new(clusters, per);
            let cm = CoherenceMode::ALL[mode_idx];
            let channels = if two_channels { 2 } else { 1 };
            let Some(serial) = run(&kernel, topo, cm, channels, true) else { return Ok(()); };
            let threaded = run(&kernel, topo, cm, channels, false)
                .expect("shardability cannot depend on threading");
            prop_assert_eq!(serial.makespan, threaded.makespan, "makespan");
            prop_assert_eq!(serial.epochs, threaded.epochs, "epochs");
            prop_assert_eq!(
                serial.cross_cluster_fallbacks,
                threaded.cross_cluster_fallbacks
            );
            prop_assert_eq!(serial.per_cluster.len(), threaded.per_cluster.len());
            for (ca, cb) in serial.per_cluster.iter().zip(&threaded.per_cluster) {
                prop_assert_eq!(ca.makespan, cb.makespan, "cluster makespan");
                prop_assert_eq!(ca.replication_fallbacks, cb.replication_fallbacks);
                for (ra, rb) in ca.per_core.iter().zip(&cb.per_core) {
                    prop_assert_eq!(&ra.core, &rb.core, "core stats (incl. skips)");
                    prop_assert_eq!(ra.bus_wait_cycles, rb.bus_wait_cycles);
                    prop_assert_eq!(ra.dram_reads, rb.dram_reads);
                    prop_assert_eq!(ra.dram_writes, rb.dram_writes);
                    prop_assert_eq!(ra.dram_row_hits, rb.dram_row_hits);
                    prop_assert_eq!(ra.l3_accesses, rb.l3_accesses);
                }
            }
        }
    }
}

mod directory_props {
    use super::*;
    use hsim::coherence::{DirConfig, Directory};
    use hsim::isa::memmap::{LM_BASE, LM_SIZE};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Address decomposition: for any configured buffer size and any
        /// mapped chunk, every in-chunk address diverts to the LM address
        /// with the same offset, and out-of-chunk addresses miss.
        #[test]
        fn lookup_matches_reference_model(
            buf_log in 6u32..15, // 64 B .. 16 KiB
            buf_idx in 0u64..32,
            chunk_sel in 0u64..1024,
            offset in 0u64..16384,
        ) {
            let buf_size = 1u64 << buf_log;
            let mut dir = Directory::new(DirConfig::default());
            dir.configure(buf_size).unwrap();
            let n_bufs = dir.num_buffers() as u64;
            let buf_idx = buf_idx % n_bufs;
            let sm_chunk = 0x1000_0000u64 + chunk_sel * buf_size;
            let lm_addr = LM_BASE + buf_idx * buf_size;
            dir.update_get(lm_addr, sm_chunk, 7).unwrap();

            let probe = sm_chunk.wrapping_add(offset);
            let hit = dir.lookup(probe);
            if offset < buf_size {
                let h = hit.expect("in-chunk must hit");
                prop_assert_eq!(h.lm_addr, lm_addr + offset);
                prop_assert_eq!(h.ready_at, 7);
                prop_assert!(h.lm_addr >= LM_BASE && h.lm_addr < LM_BASE + LM_SIZE);
            } else if offset >= buf_size {
                // Outside the chunk: may only hit if it falls into the
                // same chunk again (it cannot, offsets < 16K and chunks
                // don't repeat) — must miss.
                prop_assert!(hit.is_none());
            }
        }

        /// Base/offset masks decompose and reassemble any address.
        #[test]
        fn masks_partition_addresses(buf_log in 6u32..15, addr in any::<u64>()) {
            let mut dir = Directory::new(DirConfig::default());
            dir.configure(1 << buf_log).unwrap();
            let base = addr & dir.base_mask();
            let off = addr & dir.offset_mask();
            prop_assert_eq!(base | off, addr);
            prop_assert_eq!(base & off, 0);
        }
    }
}

mod state_machine_props {
    use super::*;
    use hsim::coherence::{DataEvent, DataState};

    fn arb_event() -> impl Strategy<Value = DataEvent> {
        prop_oneof![
            Just(DataEvent::LmMap),
            Just(DataEvent::LmUnmap),
            Just(DataEvent::LmWriteback),
            Just(DataEvent::CmAccess),
            Just(DataEvent::CmEvict),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Under arbitrary event streams (applying only the legal ones),
        /// the replica invariants of §3.4 hold: replica count matches the
        /// state, and no single event removes two replicas.
        #[test]
        fn replica_count_is_consistent(events in prop::collection::vec(arb_event(), 0..64)) {
            let mut s = DataState::MM;
            for e in events {
                if let Ok(next) = s.step(e) {
                    let before = s.replicas() as i64;
                    let after = next.replicas() as i64;
                    prop_assert!((after - before).abs() <= 1,
                        "{:?} --{:?}--> {:?} changed replicas by more than one", s, e, next);
                    // LM-CM never jumps straight to MM (§3.4.2).
                    if s == DataState::LmCm {
                        prop_assert_ne!(next, DataState::MM);
                    }
                    s = next;
                }
            }
        }
    }
}

mod cache_props {
    use super::*;
    use hsim::mem::{AccessKind, Cache, CacheConfig, WritePolicy};
    use std::collections::HashSet;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Inclusion-of-recency: immediately after any access sequence,
        /// re-probing the most recent `ways` distinct lines of any one set
        /// always hits (true LRU never evicts the most recent).
        #[test]
        fn lru_keeps_most_recent_lines(addrs in prop::collection::vec(0u64..(1 << 16), 1..200)) {
            let mut c = Cache::new(CacheConfig {
                name: "T",
                size_bytes: 4096,
                ways: 4,
                line_bytes: 64,
                latency: 1,
                write_policy: WritePolicy::WriteBack,
            });
            for a in &addrs {
                if !c.access(*a, AccessKind::Read) {
                    c.fill(c.line_addr(*a), false, false);
                }
            }
            // The last 4 distinct lines touched within one set must hit.
            let last = *addrs.last().unwrap();
            let set_of = |a: u64| (a / 64) % 16;
            let mut recent = Vec::new();
            let mut seen = HashSet::new();
            for a in addrs.iter().rev() {
                if set_of(*a) == set_of(last) && seen.insert(c.line_addr(*a)) {
                    recent.push(c.line_addr(*a));
                    if recent.len() == 4 {
                        break;
                    }
                }
            }
            for line in recent {
                prop_assert!(c.probe(line), "recently-touched line {line:#x} missing");
            }
        }

        /// Write-back caches never lose dirty data silently: every dirty
        /// line is either resident or was reported evicted.
        #[test]
        fn dirty_lines_are_never_lost(writes in prop::collection::vec(0u64..(1 << 14), 1..150)) {
            let mut c = Cache::new(CacheConfig {
                name: "T",
                size_bytes: 2048,
                ways: 2,
                line_bytes: 64,
                latency: 1,
                write_policy: WritePolicy::WriteBack,
            });
            let mut dirty: HashSet<u64> = HashSet::new();
            for a in &writes {
                let line = c.line_addr(*a);
                if !c.access(*a, AccessKind::Write) {
                    if let Some(ev) = c.fill(line, true, false) {
                        if ev.dirty {
                            prop_assert!(dirty.remove(&ev.addr), "evicted unknown dirty line");
                        }
                    }
                }
                dirty.insert(line);
                // Re-access as write to mark dirty if the fill path raced.
                c.access(*a, AccessKind::Write);
            }
            for line in dirty {
                prop_assert!(c.probe(line), "dirty line {line:#x} vanished");
            }
        }
    }
}

mod asm_props {
    use super::*;
    use hsim::isa::asm::{assemble, disassemble};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Assembler/disassembler round trip over random compiled
        /// programs (which exercise every instruction the compiler can
        /// emit, including guarded forms and DMA ops).
        #[test]
        fn compiled_programs_roundtrip_through_asm(kernel in arb_kernel()) {
            let ck = compile(&kernel, CodegenMode::HybridCoherent);
            let text = disassemble(&ck.program);
            let back = assemble(&text).expect("disassembly must re-assemble");
            prop_assert_eq!(&back.insts, &ck.program.insts);
        }
    }
}
