//! Shape tests for the paper's experiments at test scale: the qualitative
//! claims (who wins, what is flat, what grows) must hold even on the
//! small workloads the CI runs.

use hsim::prelude::*;
use hsim_workloads::nas;

#[test]
fn fig7_rd_is_free_and_wr_grows_linearly() {
    let pts = fig7(4 * 1024, 20).unwrap();
    // RD: flat at 1.0 (guarded loads are free — the lookup fits the AGU
    // cycle).
    for p in pts.iter().filter(|p| p.mode == MicroMode::Rd) {
        assert!(
            (p.overhead - 1.0).abs() < 0.02,
            "RD overhead at {}% must be ~1.0, got {:.3}",
            p.pct,
            p.overhead
        );
    }
    // WR: monotonically growing with the guarded share, driven by the
    // double store's extra instructions.
    let wr: Vec<_> = pts.iter().filter(|p| p.mode == MicroMode::Wr).collect();
    assert!(wr.last().unwrap().overhead > 1.15, "WR @100% must cost >15%");
    assert!(wr.last().unwrap().overhead < 1.6, "WR @100% must stay bounded");
    for w in wr.windows(2) {
        assert!(
            w[1].overhead >= w[0].overhead - 0.02,
            "WR overhead must grow with the guarded share"
        );
    }
    // Instruction count at 100% grows by the double store's extra store.
    assert!(wr.last().unwrap().inst_ratio > 1.15);
    assert!(wr.last().unwrap().inst_ratio < 1.35);
    // RD/WR tracks WR (the guarded load adds nothing).
    let rdwr: Vec<_> = pts.iter().filter(|p| p.mode == MicroMode::RdWr).collect();
    for (a, b) in wr.iter().zip(&rdwr) {
        assert!(
            (a.overhead - b.overhead).abs() < 0.05,
            "RD/WR must track WR at {}%",
            a.pct
        );
    }
}

#[test]
fn fig8_overheads_are_small_and_double_store_driven() {
    let kernels = nas::all_nas(Scale::Test);
    let rows = fig8(&kernels).unwrap();
    for r in &rows {
        match r.name.as_str() {
            // No potentially incoherent writes: zero time overhead.
            "CG" | "MG" | "SP" => {
                assert!(
                    (r.time_ratio - 1.0).abs() < 0.002,
                    "{} must have ~zero protocol overhead, got {:.4}",
                    r.name,
                    r.time_ratio
                );
            }
            // Double-store kernels: small but nonzero.
            "EP" | "FT" | "IS" => {
                assert!(
                    r.time_ratio < 1.15,
                    "{} overhead must stay small, got {:.3}",
                    r.name,
                    r.time_ratio
                );
                assert!(r.coherent.committed > r.oracle.committed);
            }
            _ => unreachable!(),
        }
        // Energy overhead present but bounded.
        assert!(r.energy_ratio >= 0.999 && r.energy_ratio < 1.15, "{}", r.name);
    }
}

#[test]
fn fig9_memory_bound_kernels_favor_the_hybrid() {
    // At test scale the footprints are small, so only the strongest
    // effects are asserted: MG and FT (many streams, heavy reuse) must
    // favor the hybrid; EP (compute-bound) must be close to parity.
    let kernels = vec![nas::ep(Scale::Test), nas::ft(Scale::Test), nas::mg(Scale::Test)];
    let rows = compare_systems(&kernels).unwrap();
    let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
    assert!(get("MG").speedup > 1.2, "MG: {:.2}", get("MG").speedup);
    assert!(get("FT").speedup > 1.1, "FT: {:.2}", get("FT").speedup);
    let ep = get("EP").speedup;
    assert!((0.8..1.25).contains(&ep), "EP must be near parity: {ep:.2}");
}

#[test]
fn fig10_hybrid_saves_energy_on_stream_kernels() {
    let kernels = vec![nas::ft(Scale::Test), nas::mg(Scale::Test)];
    for r in compare_systems(&kernels).unwrap() {
        assert!(
            r.energy_norm < 0.95,
            "{}: hybrid must save energy, got {:.3}",
            r.name,
            r.energy_norm
        );
        // The LM itself must be a small fraction of total energy (paper:
        // <5%).
        let lm_share = r.hybrid.energy.lm / r.hybrid.energy_total();
        assert!(lm_share < 0.10, "{}: LM share {:.3}", r.name, lm_share);
    }
}

#[test]
fn table3_activity_shifts_from_caches_to_lm() {
    let kernels = vec![nas::mg(Scale::Test)];
    let r = &compare_systems(&kernels).unwrap()[0];
    // The hybrid system must serve most traffic from the LM and touch the
    // caches less than the cache-based system does.
    assert!(r.hybrid.lm_accesses > 0);
    assert!(
        r.hybrid.l1_accesses < r.cache.l1_accesses,
        "L1 activity must drop: {} vs {}",
        r.hybrid.l1_accesses,
        r.cache.l1_accesses
    );
    assert!(r.hybrid.amat < r.cache.amat, "AMAT must improve");
}

#[test]
fn geomean_helper() {
    let g = hsim::geomean([2.0, 8.0].into_iter());
    assert!((g - 4.0).abs() < 1e-12);
    assert_eq!(hsim::geomean(std::iter::empty()), 1.0);
}
