//! # hsim-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — simulator configuration parameters |
//! | `table2` | Table 2 — microbenchmark scheme + emitted assembly |
//! | `table3` | Table 3 — memory-subsystem activity, hybrid vs cache-based |
//! | `fig7`   | Figure 7 — microbenchmark overhead vs % guarded |
//! | `fig8`   | Figure 8 — protocol overhead vs the incoherent oracle |
//! | `fig9`   | Figure 9 — execution-time reduction vs cache-based |
//! | `fig10`  | Figure 10 — energy reduction vs cache-based |
//! | `ablate` | design-choice ablations (store collapsing, directory latency, prefetcher table, DMA pipelining) |
//! | `simspeed` | host-speed benchmark of the event-horizon cycle skipper (`BENCH_simspeed.json`) |
//! | `backside` | DRAM row-hit rate and L3 bank contention per kernel × core count (`BENCH_backside.json`; `--smoke` runs the CI guard grid) |
//! | `scaling` | speedup-vs-cores curves per kernel with bus-wait breakdowns (`BENCH_scaling.json`; `--smoke` for CI) |
//! | `coherence` | `Replicate` vs `Mesi` coherence modes side by side — DRAM traffic, shared hits, invalidations, interventions, replication fallbacks (`BENCH_coherence.json`; `--smoke` for CI) |
//! | `hetero` | mixed hybrid/cache-based chips: tile ratios, LM-size asymmetry and weighted shards, with interpolation/identity assertions (`BENCH_hetero.json`; `--smoke` for CI) |
//! | `clusters` | hierarchical clusters: channels × clusters × cores sweep, threaded runs asserted bit-identical to the serial oracle, cross-cluster replication fallbacks counted (`BENCH_clusters.json`; `--smoke` for CI) |
//! | `faults` | fault-injection sweep: fault rate × kernel makespan-degradation curves with recovery counters, every point replayed same-seed and asserted bit-identical, committed totals asserted fault-invariant (`BENCH_faults.json`; `--smoke` for CI) |
//! | `comm` | communication workloads (ping-pong, multi-buffered queue, lock, barrier) hybrid vs cache-based plus the protocol family on the queue hand-off, and the open-loop request-serving latency report with p50/p95/p99 and requests/sec (`BENCH_comm.json`; `--smoke` for CI) |
//! | `figshapes` | no output files — asserts the monotonicity/ordering invariants of figures 7/8/9, the scaling curves, the mixed-chip interpolation and the communication-workload orderings (the CI figure-shapes job) |
//!
//! Every binary accepts `--test-scale` to run the small workloads (CI),
//! and prints the paper-reported values next to the measured ones.
//! The inter-core coherence mode of default-configured machines follows
//! `HSIM_COHERENCE` (CI runs the smoke grid once per mode).
//! `cargo bench` additionally provides Criterion microbenchmarks of the
//! simulator components and end-to-end simulation throughput.

use hsim::prelude::*;
use hsim_workloads::nas;

/// Parses the common `--test-scale` flag.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--test-scale") {
        Scale::Test
    } else {
        Scale::Paper
    }
}

/// The six NAS-signature kernels at the chosen scale.
pub fn kernels(scale: Scale) -> Vec<hsim_compiler::Kernel> {
    nas::all_nas(scale)
}

/// Paper-reported speedups for Figure 9 (cache-based / hybrid).
pub fn paper_speedup(name: &str) -> f64 {
    match name {
        "CG" => 1.34,
        "EP" => 1.00,
        "FT" => 1.30,
        "IS" => 1.55,
        "MG" => 1.64,
        "SP" => 1.66,
        _ => f64::NAN,
    }
}

/// Paper-reported Figure 8 execution-time overheads (percent).
pub fn paper_time_overhead(name: &str) -> f64 {
    match name {
        "FT" => 1.03,
        "IS" => 0.44,
        _ => 0.0,
    }
}

/// Paper-reported Figure 8 energy overheads (percent, approximate from
/// the figure).
pub fn paper_energy_overhead(name: &str) -> f64 {
    match name {
        "IS" => 5.0,
        _ => 1.5,
    }
}

/// Paper Table 3 rows: (guarded/total, AMAT, L1 hit %) per system.
pub fn paper_table3(name: &str) -> Option<(&'static str, f64, f64, f64, f64)> {
    // (guarded refs, hybrid AMAT, hybrid L1%, cache AMAT, cache L1%)
    Some(match name {
        "CG" => ("1/7 (14%)", 3.15, 90.52, 4.31, 82.23),
        "EP" => ("1/20 (5%)", 2.14, 99.93, 2.37, 98.93),
        "FT" => ("4/34 (11%)", 2.60, 96.61, 4.95, 78.54),
        "IS" => ("2/5 (25%)", 6.27, 74.00, 7.93, 64.10),
        "MG" => ("1/60 (1.66%)", 2.24, 99.71, 3.89, 90.65),
        "SP" => ("0/497 (0%)", 2.41, 98.37, 4.73, 79.59),
        _ => return None,
    })
}

/// Simple fixed-width table printer.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Creates a printer with the given column widths.
    pub fn new(widths: &[usize]) -> Self {
        Table {
            widths: widths.to_vec(),
        }
    }

    /// Prints one row.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            let w = self.widths.get(i).copied().unwrap_or(12);
            line.push_str(&format!("{:>w$}  ", c, w = w));
        }
        println!("{}", line.trim_end());
    }

    /// Prints a separator line.
    pub fn sep(&self) {
        let total: usize = self.widths.iter().map(|w| w + 2).sum();
        println!("{}", "-".repeat(total));
    }
}

/// Formats a count in thousands, Table 3 style.
pub fn k(x: u64) -> String {
    format!("{}", x / 1000)
}

/// Quotes a display value as a JSON string.
pub fn jstr(s: impl std::fmt::Display) -> String {
    format!("\"{s}\"")
}

/// The one JSON document shape every bench binary emits (hand-rendered;
/// no serde in the offline tree): flat metadata fields followed by one
/// or more named row arrays. Keeping the rendering here means every
/// `BENCH_*.json` file indents, separates and terminates identically —
/// the CI artifact parsers rely on that.
///
/// Values are pre-rendered JSON fragments: numbers via `format!`,
/// strings via [`jstr`].
pub struct SweepJson {
    meta: Vec<(String, String)>,
    arrays: Vec<(String, Vec<String>)>,
}

impl SweepJson {
    /// Starts a document carrying the workload scale every bench runs
    /// at.
    pub fn new(scale: Scale) -> Self {
        SweepJson {
            meta: vec![("scale".into(), jstr(format!("{scale:?}")))],
            arrays: Vec::new(),
        }
    }

    /// Adds a metadata field; `value` must already be a JSON fragment
    /// (use [`jstr`] for strings).
    pub fn meta(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.meta.push((key.into(), value.to_string()));
        self
    }

    /// Opens a row array; subsequent [`SweepJson::row`] calls append to
    /// it. The first array of most documents is `"rows"`.
    pub fn begin_rows(&mut self, name: &str) {
        self.arrays.push((name.into(), Vec::new()));
    }

    /// Appends one row object to the most recently opened array.
    /// Values must already be JSON fragments.
    pub fn row(&mut self, fields: &[(&str, String)]) {
        let body: Vec<String> = fields
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        self.arrays
            .last_mut()
            .expect("begin_rows before row")
            .1
            .push(format!("    {{{}}}", body.join(", ")));
    }

    /// Renders the document.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (k, v) in &self.meta {
            out.push_str(&format!("  \"{k}\": {v},\n"));
        }
        for (a, (name, rows)) in self.arrays.iter().enumerate() {
            out.push_str(&format!("  \"{name}\": [\n"));
            out.push_str(&rows.join(",\n"));
            out.push('\n');
            out.push_str(if a + 1 == self.arrays.len() {
                "  ]\n"
            } else {
                "  ],\n"
            });
        }
        out.push_str("}\n");
        out
    }

    /// Writes the document to `path` and prints the standard
    /// `wrote <path> (<n> rows)` line.
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.render()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        let rows: usize = self.arrays.iter().map(|(_, r)| r.len()).sum();
        println!("wrote {path} ({rows} rows)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_cover_all_benchmarks() {
        for n in ["CG", "EP", "FT", "IS", "MG", "SP"] {
            assert!(paper_speedup(n).is_finite());
            assert!(paper_table3(n).is_some());
        }
        assert!(paper_speedup("XX").is_nan());
    }

    #[test]
    fn kernels_build_at_test_scale() {
        assert_eq!(kernels(Scale::Test).len(), 6);
    }
}
