//! Functional backing store: a sparse, paged 64-bit address space.
//!
//! Every byte of architectural state (data segment, local-memory window,
//! DMA buffers) lives here. The cache hierarchy and local memory are pure
//! *timing* models layered on top, so functional correctness is independent
//! of timing bugs — which in turn lets the test suite check the coherence
//! protocol end to end by comparing final memory images across machine
//! configurations.
//!
//! Pages are 4 KiB and allocated on first touch. A one-entry translation
//! cache makes the common sequential-access pattern cheap.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const OFFSET_MASK: u64 = (PAGE_SIZE - 1) as u64;

/// Sparse paged memory. Reads of untouched memory return zero.
#[derive(Default)]
pub struct PagedMem {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
    /// One-entry lookup cache: (page number, raw pointer-free index).
    last_page: Option<u64>,
}

impl PagedMem {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    #[inline]
    fn page_of(addr: u64) -> (u64, usize) {
        (addr >> PAGE_SHIFT, (addr & OFFSET_MASK) as usize)
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        let (pn, off) = Self::page_of(addr);
        match self.pages.get(&pn) {
            Some(p) => p[off],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        let (pn, off) = Self::page_of(addr);
        self.last_page = Some(pn);
        self.page_mut(pn)[off] = val;
    }

    fn page_mut(&mut self, pn: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(pn)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    #[inline]
    fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let (pn, off) = Self::page_of(addr);
        if off + N <= PAGE_SIZE {
            if let Some(p) = self.pages.get(&pn) {
                let mut out = [0u8; N];
                out.copy_from_slice(&p[off..off + N]);
                return out;
            }
            return [0u8; N];
        }
        // Page-crossing access: byte-by-byte (rare).
        let mut out = [0u8; N];
        for (i, b) in out.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        out
    }

    #[inline]
    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let (pn, off) = Self::page_of(addr);
        if off + bytes.len() <= PAGE_SIZE {
            self.page_mut(pn)[off..off + bytes.len()].copy_from_slice(bytes);
            return;
        }
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads a 32-bit little-endian value.
    #[inline]
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a 32-bit little-endian value.
    #[inline]
    pub fn write_u32(&mut self, addr: u64, val: u32) {
        self.write_bytes(addr, &val.to_le_bytes());
    }

    /// Reads a 64-bit little-endian value.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a 64-bit little-endian value.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, val: u64) {
        self.write_bytes(addr, &val.to_le_bytes());
    }

    /// Reads an `i64`.
    #[inline]
    pub fn read_i64(&self, addr: u64) -> i64 {
        self.read_u64(addr) as i64
    }

    /// Writes an `i64`.
    #[inline]
    pub fn write_i64(&mut self, addr: u64, val: i64) {
        self.write_u64(addr, val as u64);
    }

    /// Reads an `f64`.
    #[inline]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64`.
    #[inline]
    pub fn write_f64(&mut self, addr: u64, val: f64) {
        self.write_u64(addr, val.to_bits());
    }

    /// Copies `len` bytes from `src` to `dst` (the functional effect of a
    /// DMA transfer). Ranges may overlap; the copy behaves like
    /// `memmove`.
    pub fn copy(&mut self, dst: u64, src: u64, len: u64) {
        if len == 0 || dst == src {
            return;
        }
        // Buffer through a temporary to get memmove semantics over the
        // sparse pages. DMA transfers are at most tens of KiB.
        let mut tmp = vec![0u8; len as usize];
        for (i, b) in tmp.iter_mut().enumerate() {
            *b = self.read_u8(src + i as u64);
        }
        self.write_bytes(dst, &tmp);
    }

    /// Computes a FNV-1a checksum of `[addr, addr+len)`; used by tests to
    /// compare memory images cheaply.
    pub fn checksum(&self, addr: u64, len: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for i in 0..len {
            h ^= self.read_u8(addr + i) as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let m = PagedMem::new();
        assert_eq!(m.read_u64(0x1234), 0);
        assert_eq!(m.read_u8(u64::MAX - 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn read_your_writes() {
        let mut m = PagedMem::new();
        m.write_u64(0x1000, 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(0x1000), 0xdead_beef_cafe_f00d);
        m.write_u32(0x2000, 0x1234_5678);
        assert_eq!(m.read_u32(0x2000), 0x1234_5678);
        m.write_u8(0x3000, 0xab);
        assert_eq!(m.read_u8(0x3000), 0xab);
        m.write_f64(0x4000, -1.25);
        assert_eq!(m.read_f64(0x4000), -1.25);
        m.write_i64(0x5000, -42);
        assert_eq!(m.read_i64(0x5000), -42);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = PagedMem::new();
        m.write_u32(0x100, 0x0403_0201);
        assert_eq!(m.read_u8(0x100), 1);
        assert_eq!(m.read_u8(0x103), 4);
    }

    #[test]
    fn page_crossing_access() {
        let mut m = PagedMem::new();
        let addr = (1 << 12) - 4; // crosses the first page boundary
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn copy_non_overlapping() {
        let mut m = PagedMem::new();
        for i in 0..64u64 {
            m.write_u8(0x1000 + i, i as u8);
        }
        m.copy(0x2000, 0x1000, 64);
        for i in 0..64u64 {
            assert_eq!(m.read_u8(0x2000 + i), i as u8);
        }
    }

    #[test]
    fn copy_overlapping_is_memmove() {
        let mut m = PagedMem::new();
        for i in 0..16u64 {
            m.write_u8(0x100 + i, i as u8);
        }
        m.copy(0x104, 0x100, 16); // forward overlap
        for i in 0..16u64 {
            assert_eq!(m.read_u8(0x104 + i), i as u8);
        }
    }

    #[test]
    fn copy_zero_len_and_self() {
        let mut m = PagedMem::new();
        m.write_u8(0x10, 7);
        m.copy(0x20, 0x10, 0);
        assert_eq!(m.read_u8(0x20), 0);
        m.copy(0x10, 0x10, 8);
        assert_eq!(m.read_u8(0x10), 7);
    }

    #[test]
    fn checksum_detects_differences() {
        let mut a = PagedMem::new();
        let mut b = PagedMem::new();
        a.write_u64(0x100, 1);
        b.write_u64(0x100, 1);
        assert_eq!(a.checksum(0x100, 64), b.checksum(0x100, 64));
        b.write_u8(0x120, 9);
        assert_ne!(a.checksum(0x100, 64), b.checksum(0x100, 64));
    }
}
