//! Communication-workload equivalence and determinism suite.
//!
//! The comm kernel sets (`hsim_workloads::comm`) are where the
//! inter-core protocol actually works for a living, so they get the
//! same treatment the NAS shards do:
//!
//! - **skip == lockstep**: the event-horizon scheduler must stay a pure
//!   host-speed optimization under flag ping-pong, dirty queue
//!   hand-offs and the request-serving gather — across every
//!   [`CoherenceMode`], on hybrid and cache-based chips.
//! - **clusters serial == threaded**: comm kernel sets on the
//!   epoch-synchronized cluster machine are bit-identical whether the
//!   clusters run on one host thread or one thread each.
//! - **open-loop determinism** (proptest): the request-serving arrival
//!   replay is pure integer math on a seeded stream — the same seed
//!   must render a byte-identical report.
//! - **diverged comm layouts are hard errors**: a per-core kernel set
//!   whose comm-marked declarations disagree must fail with
//!   [`ShardError::CommLayoutDiverged`], never silently fall back to
//!   replication and report wrong-answer timings.
//! - **legacy wrappers pin bit-identical**: every deprecated
//!   `run_kernel*` entry point must return exactly what the equivalent
//!   [`RunSpec`] does.

use hsim::compiler::ShardError;
use hsim::prelude::*;
use hsim_workloads::comm;

/// Bit-compares the observables of two multicore runs (everything
/// except the skip accounting, which the caller checks).
fn assert_multi_equal(a: &MultiRunReport, b: &MultiRunReport, what: &str) {
    assert_eq!(a.makespan, b.makespan, "{what}: makespan");
    assert_eq!(
        a.total_committed(),
        b.total_committed(),
        "{what}: committed"
    );
    assert_eq!(
        a.total_dram_reads(),
        b.total_dram_reads(),
        "{what}: DRAM reads"
    );
    assert_eq!(
        a.total_shared_hits(),
        b.total_shared_hits(),
        "{what}: shared hits"
    );
    assert_eq!(
        a.total_invalidations(),
        b.total_invalidations(),
        "{what}: invalidations"
    );
    assert_eq!(
        a.total_interventions(),
        b.total_interventions(),
        "{what}: interventions"
    );
    assert_eq!(
        a.total_dirty_recalls(),
        b.total_dirty_recalls(),
        "{what}: dirty recalls"
    );
    assert_eq!(
        a.total_bus_wait_cycles(),
        b.total_bus_wait_cycles(),
        "{what}: bus waits"
    );
    assert_eq!(
        a.replication_fallbacks, b.replication_fallbacks,
        "{what}: replication fallbacks"
    );
    for (i, (ra, rb)) in a.per_core.iter().zip(&b.per_core).enumerate() {
        assert_eq!(ra.cycles, rb.cycles, "{what}: core {i} cycles");
        assert_eq!(ra.committed, rb.committed, "{what}: core {i} committed");
    }
}

/// Runs one comm kernel set with and without cycle skipping and
/// demands identical observables.
fn check_skip_lockstep(w: &comm::CommWorkload, mode: SysMode, cm: CoherenceMode) {
    let what = format!("{} {mode:?} {}", w.name, cm.name());
    let cfg = MachineConfig::for_mode(mode).with_coherence(cm);
    let skip = RunSpec::many(&w.kernels)
        .config(cfg.clone())
        .run()
        .unwrap_or_else(|e| panic!("{what}: {e}"))
        .into_multi();
    let lock = RunSpec::many(&w.kernels)
        .config(cfg.with_lockstep())
        .run()
        .unwrap_or_else(|e| panic!("{what} lockstep: {e}"))
        .into_multi();
    assert_eq!(
        lock.total_skipped_cycles(),
        0,
        "{what}: lockstep must not skip"
    );
    assert_multi_equal(&skip, &lock, &what);
}

/// Ping-pong and queue hand-offs — the protocol-differentiating
/// traffic — under every coherence mode on both chip styles.
#[test]
fn skip_equals_lockstep_for_handoff_workloads_all_protocols() {
    for w in [
        comm::ping_pong(Scale::Test, 4),
        comm::queue(Scale::Test, 4, 64),
    ] {
        for cm in CoherenceMode::ALL {
            for mode in [SysMode::HybridCoherent, SysMode::CacheBased] {
                check_skip_lockstep(&w, mode, cm);
            }
        }
    }
}

/// Lock and barrier contention under every coherence mode (one chip
/// style each keeps the matrix affordable; the hand-off suite above
/// covers the mode × system cross).
#[test]
fn skip_equals_lockstep_for_contention_workloads() {
    for cm in CoherenceMode::ALL {
        check_skip_lockstep(&comm::lock(Scale::Test, 4), SysMode::CacheBased, cm);
        check_skip_lockstep(&comm::barrier(Scale::Test, 4), SysMode::HybridCoherent, cm);
    }
}

/// The request-serving gather set (shared read-mostly table) is
/// skip-clean too — this is the machine run under the open-loop driver.
#[test]
fn skip_equals_lockstep_for_request_serving_set() {
    let w = comm::request_serving(Scale::Test, 4);
    let fake = comm::CommWorkload {
        name: "serve".into(),
        kernels: w.kernels,
        rounds: w.requests_per_core,
    };
    for cm in CoherenceMode::ALL {
        for mode in [SysMode::HybridCoherent, SysMode::CacheBased] {
            check_skip_lockstep(&fake, mode, cm);
        }
    }
}

/// Comm kernel sets on the clustered machine: one host thread per
/// cluster must be bit-identical to the serial oracle.
#[test]
fn clusters_serial_matches_threaded_for_comm_sets() {
    for w in [
        comm::ping_pong(Scale::Test, 4),
        comm::queue(Scale::Test, 4, 64),
    ] {
        let topo = ClusterTopology::new(2, 2);
        let cfg = MachineConfig::for_mode(SysMode::HybridCoherent);
        let serial = RunSpec::many(&w.kernels)
            .clustered(&ClusterConfig::new(topo).serial())
            .config(cfg.clone())
            .run()
            .unwrap_or_else(|e| panic!("{} serial: {e}", w.name))
            .into_clusters();
        let threaded = RunSpec::many(&w.kernels)
            .clustered(&ClusterConfig::new(topo))
            .config(cfg)
            .run()
            .unwrap_or_else(|e| panic!("{} threaded: {e}", w.name))
            .into_clusters();
        assert_eq!(serial.makespan, threaded.makespan, "{}: makespan", w.name);
        assert_eq!(serial.epochs, threaded.epochs, "{}: epochs", w.name);
        assert_eq!(
            serial.total_committed(),
            threaded.total_committed(),
            "{}: committed",
            w.name
        );
        assert_eq!(
            serial.total_skipped_cycles(),
            threaded.total_skipped_cycles(),
            "{}: skipped",
            w.name
        );
        assert_eq!(
            serial.total_dram_reads(),
            threaded.total_dram_reads(),
            "{}: DRAM reads",
            w.name
        );
        assert_eq!(
            serial.cross_cluster_fallbacks, threaded.cross_cluster_fallbacks,
            "{}: fallbacks",
            w.name
        );
    }
}

/// A per-core kernel set whose comm-marked arrays disagree (here: two
/// queues of different capacities) must be rejected outright — wrong
/// layouts would silently turn the hand-off into private traffic and
/// report meaningless timings.
#[test]
fn diverged_comm_layout_is_a_hard_error() {
    fn queue_kernel(slots: u64) -> Kernel {
        let mut kb = KernelBuilder::new("divergent.queue");
        let q = kb.array_f64("q", slots);
        kb.mark_comm(q);
        kb.begin_loop(64);
        let rq = kb.ref_affine(q, 1, 0);
        kb.stmt(rq, Expr::add(Expr::Ref(rq), Expr::ConstF(1.0)));
        kb.end_loop();
        kb.build().expect("divergent queue kernel")
    }
    let kernels = vec![queue_kernel(1024), queue_kernel(2048)];
    match RunSpec::many(&kernels).run() {
        Err(MultiRunError::Shard(ShardError::CommLayoutDiverged { .. })) => {}
        Err(other) => panic!("expected CommLayoutDiverged, got {other}"),
        Ok(_) => panic!("diverging comm layouts must not run"),
    }
}

/// Different arrival seeds actually change the replay (the proptest
/// below pins the converse).
#[test]
fn different_seeds_change_the_request_serving_report() {
    let a = hsim::request_serving(Scale::Test, 2, SysMode::HybridCoherent, 1, 700).unwrap();
    let b = hsim::request_serving(Scale::Test, 2, SysMode::HybridCoherent, 2, 700).unwrap();
    assert_ne!(a.render(), b.render(), "seed must steer the arrivals");
    assert_eq!(a.requests, b.requests, "seed must not change the load");
}

mod open_loop_determinism {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The paper-facing pin: the open-loop replay is a pure
        /// function of (workload, seed, load) — the same seed renders a
        /// byte-identical report.
        #[test]
        fn same_seed_renders_byte_identical_reports(
            seed in any::<u64>(),
            load in 100u64..901,
        ) {
            let a = hsim::request_serving(
                Scale::Test, 2, SysMode::HybridCoherent, seed, load,
            ).unwrap();
            let b = hsim::request_serving(
                Scale::Test, 2, SysMode::HybridCoherent, seed, load,
            ).unwrap();
            prop_assert_eq!(a.render(), b.render());
            prop_assert_eq!(a.latency.p99(), b.latency.p99());
            prop_assert_eq!(a.span_cycles, b.span_cycles);
        }
    }
}

/// Every deprecated entry point must return exactly what the
/// equivalent [`RunSpec`] does — the compatibility contract of the
/// redesign.
#[allow(deprecated)]
#[test]
fn legacy_wrappers_pin_bit_identical_to_runspec() {
    use hsim_workloads::nas;
    let k = nas::cg(Scale::Test);
    let cfg = MachineConfig::for_mode(SysMode::HybridCoherent);

    let assert_single = |a: &RunReport, b: &RunReport, what: &str| {
        assert_eq!(a.cycles, b.cycles, "{what}: cycles");
        assert_eq!(a.committed, b.committed, "{what}: committed");
        assert_eq!(a.dram_reads, b.dram_reads, "{what}: DRAM reads");
        assert_eq!(a.amat.to_bits(), b.amat.to_bits(), "{what}: AMAT");
        assert_eq!(a.skipped_cycles, b.skipped_cycles, "{what}: skipped");
    };

    let legacy = hsim::run_kernel(&k, SysMode::CacheBased, false).unwrap();
    let spec = RunSpec::new(&k)
        .mode(SysMode::CacheBased)
        .run()
        .unwrap()
        .into_single();
    assert_single(&legacy, &spec, "run_kernel");

    let legacy = hsim::run_kernel_with(&k, cfg.clone()).unwrap();
    let spec = RunSpec::new(&k)
        .config(cfg.clone())
        .run()
        .unwrap()
        .into_single();
    assert_single(&legacy, &spec, "run_kernel_with");

    let (legacy, lm) = hsim::run_kernel_verified(&k, SysMode::HybridCoherent, true).unwrap();
    let out = RunSpec::new(&k)
        .mode(SysMode::HybridCoherent)
        .track(true)
        .verified()
        .run()
        .unwrap();
    assert_eq!(lm, out.verify_mismatches.expect("verified run"));
    assert_single(&legacy, &out.into_single(), "run_kernel_verified");

    let (legacy, lprof) = hsim::run_kernel_profiled(&k, cfg.clone()).unwrap();
    let out = RunSpec::new(&k)
        .config(cfg.clone())
        .profiled()
        .run()
        .unwrap();
    let sprof = out.profile.expect("profiled run");
    assert_eq!(lprof.ticks, sprof.ticks, "run_kernel_profiled: ticks");
    assert_eq!(
        lprof.advances, sprof.advances,
        "run_kernel_profiled: advances"
    );
    assert_single(&legacy, &out.into_single(), "run_kernel_profiled");

    let legacy = hsim::run_kernel_multi(&k, 4, SysMode::HybridCoherent, false).unwrap();
    let spec = RunSpec::new(&k)
        .cores(4)
        .mode(SysMode::HybridCoherent)
        .run()
        .unwrap()
        .into_multi();
    assert_multi_equal(&legacy, &spec, "run_kernel_multi");

    let legacy = hsim::run_kernel_multi_with(&k, 4, cfg.clone()).unwrap();
    let spec = RunSpec::new(&k)
        .cores(4)
        .config(cfg.clone())
        .run()
        .unwrap()
        .into_multi();
    assert_multi_equal(&legacy, &spec, "run_kernel_multi_with");

    let (legacy, _) = hsim::run_kernel_multi_profiled(&k, 4, cfg.clone()).unwrap();
    let spec = RunSpec::new(&k)
        .cores(4)
        .config(cfg.clone())
        .profiled()
        .run()
        .unwrap()
        .into_multi();
    assert_multi_equal(&legacy, &spec, "run_kernel_multi_profiled");

    let cfgs = vec![cfg.clone(); 2];
    let legacy = hsim::run_kernel_multi_hetero(&k, &cfgs, &[1, 3]).unwrap();
    let spec = RunSpec::new(&k)
        .hetero(cfgs)
        .weights(&[1, 3])
        .run()
        .unwrap()
        .into_multi();
    assert_multi_equal(&legacy, &spec, "run_kernel_multi_hetero");

    let cluster = ClusterConfig::new(ClusterTopology::new(2, 2));
    let legacy = hsim::run_kernel_clustered(&k, &cluster, cfg.clone()).unwrap();
    let spec = RunSpec::new(&k)
        .clustered(&cluster)
        .config(cfg)
        .run()
        .unwrap()
        .into_clusters();
    assert_eq!(legacy.makespan, spec.makespan, "run_kernel_clustered");
    assert_eq!(legacy.epochs, spec.epochs, "run_kernel_clustered: epochs");
    assert_eq!(
        legacy.total_committed(),
        spec.total_committed(),
        "run_kernel_clustered: committed"
    );
}
