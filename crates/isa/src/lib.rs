//! # hsim-isa — instruction set of the hybrid-memory simulator
//!
//! A compact RISC-like, 64-bit ISA used by the `hsim` cycle-level simulator.
//! It is deliberately small (the paper's mechanisms do not depend on ISA
//! richness) but carries the three extensions the SC 2012 hybrid-memory
//! coherence paper requires:
//!
//! * **Guarded memory instructions** (`gld`/`gst`): loads and stores whose
//!   effective address is looked up in the per-core coherence directory
//!   during address generation and diverted to the local memory when the
//!   data is mapped there (paper §3.1, phase 3).
//! * **Oracle-routed memory instructions** (`old`/`ost`): the incoherent
//!   baseline of the paper's Figure 8 — unguarded accesses that are always
//!   served by the memory holding the valid copy, with no directory
//!   hardware involved.
//! * **DMA operations** (`dma.get`/`dma.put`/`dma.synch`) and the directory
//!   configuration write (`dir.cfg`), which the paper models as stores to
//!   non-cacheable memory-mapped I/O registers. We expose them as
//!   pseudo-instructions for clarity; the machine routes them to the DMA
//!   controller exactly as MMIO stores would.
//!
//! The crate also provides the **memory map** shared by all components
//! (local-memory window, MMIO window, code/data segments), a textual
//! **assembler** and **disassembler**, and a label-resolving
//! [`ProgramBuilder`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod inst;
pub mod memmap;
pub mod program;
pub mod reg;

pub use inst::{AluOp, Cond, FpuOp, Inst, Operand, Phase, Route, Width};
pub use memmap::MemoryMap;
pub use program::{Label, Program, ProgramBuilder};
pub use reg::{FReg, Reg};
