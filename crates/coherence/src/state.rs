//! The data-replication state machine of Figure 6.
//!
//! A piece of data (one buffer-sized chunk of the address space) can be:
//! in main memory only (**MM**), replicated in the local memory (**LM**),
//! replicated in the cache hierarchy (**CM**), or replicated in both
//! (**LM-CM**). Software LM actions (`LM-map`, `LM-unmap`,
//! `LM-writeback`) and hardware cache actions (`CM-access`, `CM-evict`)
//! move the chunk between states.
//!
//! The diagram is conceptual — the paper stresses it is *not* implemented
//! in hardware. Here it serves two purposes: documentation of §3.4, and a
//! reference model the [`tracker`](crate::tracker) replays at run time to
//! prove that a simulation never leaves the legal state space.

/// Replication state of one chunk of data (Figure 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum DataState {
    /// Only the main-memory copy exists.
    #[default]
    MM,
    /// One replica, in the local memory.
    LM,
    /// One replica, in the cache hierarchy.
    CM,
    /// Two replicas: local memory and cache hierarchy.
    LmCm,
}

/// Events that move a chunk between states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataEvent {
    /// A `dma-get` copies the chunk into an LM buffer.
    LmMap,
    /// A `dma-get` overwrites the LM buffer that held this chunk.
    LmUnmap,
    /// A `dma-put` writes the chunk back to system memory (and
    /// invalidates the cached copy, per §2.1).
    LmWriteback,
    /// A cache line of the chunk is placed in the cache hierarchy (a
    /// demand SM access, e.g. the plain half of a double store).
    CmAccess,
    /// The last cache line of the chunk is evicted from the hierarchy.
    CmEvict,
}

/// An illegal transition: the simulation produced an event the protocol's
/// state machine does not allow from the current state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransitionError {
    /// State the chunk was in.
    pub state: DataState,
    /// The offending event.
    pub event: DataEvent,
}

impl std::fmt::Display for TransitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "illegal transition: {:?} in state {:?}",
            self.event, self.state
        )
    }
}

impl std::error::Error for TransitionError {}

impl DataState {
    /// Applies one event, returning the successor state or an error for
    /// transitions Figure 6 does not define.
    pub fn step(self, event: DataEvent) -> Result<DataState, TransitionError> {
        use DataEvent::*;
        use DataState::*;
        let next = match (self, event) {
            // From MM: a copy is created on either side.
            (MM, LmMap) => LM,
            (MM, CmAccess) => CM,
            // From LM: writeback keeps the replica; unmap discards it; a
            // cache access (double store) creates the second replica.
            (LM, LmWriteback) => LM,
            (LM, LmUnmap) => MM,
            (LM, CmAccess) => LmCm,
            // A dma-get re-mapping the same chunk refreshes the replica.
            (LM, LmMap) => LM,
            // From CM: eviction discards the replica; an LM map creates
            // the second replica (coherent DMA reads the cached copy).
            (CM, CmEvict) => MM,
            (CM, CmAccess) => CM,
            (CM, LmMap) => LmCm,
            // From LM-CM: the writeback invalidates the cached copy
            // (dma-put semantics), eviction drops the cache copy, unmap
            // drops the LM copy.
            (LmCm, LmWriteback) => LM,
            (LmCm, CmEvict) => LM,
            (LmCm, LmUnmap) => CM,
            (LmCm, CmAccess) => LmCm,
            (LmCm, LmMap) => LmCm,
            // Everything else is illegal (e.g. evicting a non-existent
            // cache copy, unmapping a chunk that is not in the LM).
            (s, e) => return Err(TransitionError { state: s, event: e }),
        };
        Ok(next)
    }

    /// True when an LM replica exists.
    pub fn in_lm(self) -> bool {
        matches!(self, DataState::LM | DataState::LmCm)
    }

    /// True when a cache replica exists.
    pub fn in_cache(self) -> bool {
        matches!(self, DataState::CM | DataState::LmCm)
    }

    /// Number of replicas outside main memory.
    pub fn replicas(self) -> u32 {
        self.in_lm() as u32 + self.in_cache() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use DataEvent::*;
    use DataState::*;

    #[test]
    fn figure6_happy_paths() {
        // MM -> LM -> LM-CM (double store) -> LM (evict) -> MM (unmap).
        let mut s = MM;
        for (e, want) in [(LmMap, LM), (CmAccess, LmCm), (CmEvict, LM), (LmUnmap, MM)] {
            s = s.step(e).unwrap();
            assert_eq!(s, want);
        }
        // MM -> CM -> LM-CM (map) -> CM (unmap) -> MM (evict).
        let mut s = MM;
        for (e, want) in [(CmAccess, CM), (LmMap, LmCm), (LmUnmap, CM), (CmEvict, MM)] {
            s = s.step(e).unwrap();
            assert_eq!(s, want);
        }
    }

    #[test]
    fn writeback_does_not_unmap() {
        // §3.4.1: "an LM-writeback action does not imply a switch to the
        // MM state".
        assert_eq!(LM.step(LmWriteback).unwrap(), LM);
        // A dma-put from LM-CM invalidates the cache copy.
        assert_eq!(LmCm.step(LmWriteback).unwrap(), LM);
    }

    #[test]
    fn no_direct_eviction_from_lmcm_to_mm() {
        // §3.4.2: "There is no direct transition from the LM-CM state to
        // the MM state" — each single event removes at most one replica.
        for e in [LmMap, LmUnmap, LmWriteback, CmAccess, CmEvict] {
            if let Ok(next) = LmCm.step(e) {
                assert_ne!(next, MM, "event {e:?} must not jump to MM");
            }
        }
    }

    #[test]
    fn illegal_transitions_are_rejected() {
        assert!(MM.step(LmUnmap).is_err());
        assert!(MM.step(LmWriteback).is_err());
        assert!(MM.step(CmEvict).is_err());
        assert!(LM.step(CmEvict).is_err());
        assert!(CM.step(LmUnmap).is_err());
        assert!(CM.step(LmWriteback).is_err());
    }

    #[test]
    fn replica_counting() {
        assert_eq!(MM.replicas(), 0);
        assert_eq!(LM.replicas(), 1);
        assert_eq!(CM.replicas(), 1);
        assert_eq!(LmCm.replicas(), 2);
        assert!(LmCm.in_lm() && LmCm.in_cache());
        assert!(LM.in_lm() && !LM.in_cache());
    }

    #[test]
    fn error_display() {
        let e = MM.step(CmEvict).unwrap_err();
        assert!(e.to_string().contains("CmEvict"));
        assert!(e.to_string().contains("MM"));
    }
}
