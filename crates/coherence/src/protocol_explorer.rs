//! **Exhaustive small-model explorer** for the inter-core protocol
//! family: the model-checking discipline of the BedRock/CXL coherence
//! papers, run as an ordinary `cargo test`.
//!
//! The model is deliberately tiny — **one line, 2–4 cores** — but
//! *complete*: starting from the empty directory, the explorer applies
//! every applicable event ([`ModelEvent`]) in every reachable
//! configuration, enumerating the full reachable
//! `directory-state × sharer-set × owner` space of a [`ProtocolTable`]
//! by breadth-first search. Data is abstracted to a *version* model: a
//! boolean per copy (core copies and the memory/L3 copy) saying whether
//! it holds the **latest-written** version. That abstraction is what
//! bounds the space (a few thousand states at 4 cores) while still
//! expressing the invariants that matter:
//!
//! * **SWMR** — at most one writable copy: in `Exclusive`/`Modified` the
//!   sharer set is exactly the owner, and a dirty line's owner is
//!   recorded as holding it. A table that forgets an invalidation leaves
//!   a second sharer recorded behind a Modified line, which this check
//!   catches.
//! * **Data-value** — a read after the last write observes it: every
//!   recorded copy holds the latest version, reads (and DMA snoops) are
//!   served from a latest-version copy, and whenever the line is not
//!   dirty the memory/L3 copy is current (so eviction and refill cannot
//!   resurrect stale data).
//! * **No stuck states** — every applicable event in every reachable
//!   configuration has a matching table row (totality over the
//!   *reachable* space, which is the part that matters).
//!
//! On a violation the explorer returns the **shortest** event trace
//! reaching it (BFS order guarantees minimality), and [`replay`] runs a
//! trace back through the model so a counterexample is independently
//! checkable. What the small model does **not** prove: anything about
//! timing, about multiple lines (the directory is per-line, so one line
//! is the protocol's whole state), or about event sequences the
//! backside can never generate (the model over-approximates: it allows
//! every interleaving, so passing it is strictly stronger than passing
//! the machine's reachable subset).
//!
//! The explorer steps the same [`DirLine`] bookkeeping the cycle-level
//! backside steps — it model-checks the executed code, not a
//! re-implementation of it.

use crate::mesi::MesiEvent;
use crate::protocol::{DirLine, GuardCtx, LineState, ProtocolTable};
use std::collections::HashMap;
use std::fmt;

/// One event of the small model: the protocol-visible things any core
/// (or the DMA engine, or the shared cache itself) can do to the line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelEvent {
    /// A (demand or prefetch) read by the core.
    Read(usize),
    /// A write (RFO or write-through) by the core.
    Write(usize),
    /// The core's upper cache evicts its copy back to the shared cache
    /// (only applicable while the core is recorded as a holder).
    WritebackFrom(usize),
    /// A DMA transfer on behalf of the core snoops the line without
    /// joining the sharers (only applicable while the core holds no
    /// copy).
    Snoop(usize),
    /// The shared cache evicts the line (capacity or DMA invalidation):
    /// every upper copy is recalled.
    Evict,
}

impl fmt::Display for ModelEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelEvent::Read(c) => write!(f, "Read(core{c})"),
            ModelEvent::Write(c) => write!(f, "Write(core{c})"),
            ModelEvent::WritebackFrom(c) => write!(f, "WritebackFrom(core{c})"),
            ModelEvent::Snoop(c) => write!(f, "Snoop(core{c})"),
            ModelEvent::Evict => write!(f, "Evict"),
        }
    }
}

/// An invariant violation with its shortest counterexample trace.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which invariant broke: `"swmr"`, `"data-value"` or
    /// `"stuck-state"`.
    pub invariant: &'static str,
    /// What exactly is wrong in the violating configuration.
    pub detail: String,
    /// The shortest event interleaving reaching the violation (BFS
    /// guarantees no shorter one exists).
    pub trace: Vec<ModelEvent>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} violation: {}", self.invariant, self.detail)?;
        writeln!(f, "shortest counterexample ({} events):", self.trace.len())?;
        for (i, e) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>2}. {e}", i + 1)?;
        }
        Ok(())
    }
}

/// Summary of a completed (violation-free) exploration.
#[derive(Clone, Copy, Debug)]
pub struct Exploration {
    /// Distinct reachable configurations (directory state × sharer set
    /// × owner × data-version abstraction).
    pub states: usize,
    /// Transitions taken (applicable events summed over all states).
    pub transitions: usize,
}

/// The abstract configuration the explorer enumerates: the directory
/// record plus the data-version abstraction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Model {
    line: DirLine,
    /// The memory/L3 copy holds the latest-written version.
    mem_latest: bool,
    /// Bitset: cores whose upper copy holds the latest version.
    fresh: u64,
}

impl Model {
    fn initial() -> Self {
        Model {
            line: DirLine::empty(),
            mem_latest: true,
            fresh: 0,
        }
    }

    /// The invariant check every reachable configuration must pass.
    fn check(&self, cores: usize) -> Result<(), (&'static str, String)> {
        let l = &self.line;
        // SWMR (structural form): an exclusive-write-capable state has
        // exactly one recorded holder, and a dirty line's owner holds it.
        let structural_ok = match l.state {
            LineState::Invalid => l.sharers == 0,
            LineState::Exclusive | LineState::Modified => l.sharers == 1 << l.owner,
            LineState::Owned | LineState::Forward => l.sharers & (1 << l.owner) != 0,
            LineState::Shared => true,
        };
        if !structural_ok {
            return Err((
                "swmr",
                format!(
                    "{:?} line must have exactly its owner (core{}) recorded, \
                     but the sharer set is {:#b}",
                    l.state, l.owner, l.sharers
                ),
            ));
        }
        // Data-value: every recorded copy is the latest version.
        for c in 0..cores {
            if l.holds(c) && self.fresh & (1 << c) == 0 {
                return Err((
                    "data-value",
                    format!(
                        "core{c} is recorded as holding the line in {:?} but its \
                         copy is stale against the last write",
                        l.state
                    ),
                ));
            }
        }
        // Data-value: a clean line's home copy is current, so refills
        // after eviction serve the last write.
        if !l.state.is_dirty() && !self.mem_latest {
            return Err((
                "data-value",
                format!(
                    "line is {:?} (clean) but the memory/L3 copy misses the \
                     last write — a refill would read stale data",
                    l.state
                ),
            ));
        }
        Ok(())
    }

    /// Whether `event` is applicable in this configuration.
    fn applicable(&self, event: ModelEvent) -> bool {
        match event {
            ModelEvent::Read(_) | ModelEvent::Write(_) | ModelEvent::Evict => true,
            ModelEvent::WritebackFrom(c) => self.line.holds(c),
            ModelEvent::Snoop(c) => !self.line.holds(c),
        }
    }

    /// The `(event, guard-context)` pair `event` will present to the
    /// table, or `None` for bookkeeping-only events that consume no row.
    fn table_input(&self, event: ModelEvent) -> Option<(MesiEvent, GuardCtx)> {
        match event {
            ModelEvent::Read(c) => Some((self.line.event_for(c, false), self.line.ctx_for(c))),
            ModelEvent::Write(c) => Some((self.line.event_for(c, true), self.line.ctx_for(c))),
            ModelEvent::Snoop(c) => {
                if self.line.state.is_dirty() && self.line.owner != c {
                    Some((MesiEvent::RemoteRead, self.line.ctx_for(c)))
                } else {
                    None
                }
            }
            ModelEvent::Evict => Some((
                MesiEvent::Evict,
                GuardCtx {
                    other_sharers: self.line.sharers != 0,
                    requester_is_owner: false,
                },
            )),
            ModelEvent::WritebackFrom(_) => None,
        }
    }

    /// Applies one applicable event, moving the data-version abstraction
    /// per the discharged obligations. `Err` is an *event-level*
    /// data-value violation: the read was served from a stale copy.
    fn apply(
        &mut self,
        table: &ProtocolTable,
        event: ModelEvent,
    ) -> Result<(), (&'static str, String)> {
        match event {
            ModelEvent::Read(c) => {
                // A dirty line's owner reads its own copy (dirty data
                // never leaves the owner's caches silently — only via
                // WritebackFrom, which the directory sees).
                let dirty_at_self = self.line.state.is_dirty() && self.line.owner == c;
                let ob = self.line.access(table, c, false);
                let owner_fresh = self.fresh & (1 << ob.old_owner) != 0;
                if ob.writeback {
                    self.mem_latest = owner_fresh;
                }
                let served_latest = if ob.cache_transfer {
                    owner_fresh
                } else if dirty_at_self {
                    self.fresh & (1 << c) != 0
                } else {
                    // L3 hit, a fill, or an MSI MemoryRead: all serve
                    // the home (L3/memory) copy.
                    self.mem_latest
                };
                if served_latest {
                    self.fresh |= 1 << c;
                } else {
                    return Err((
                        "data-value",
                        format!("the read by core{c} was served a stale copy"),
                    ));
                }
            }
            ModelEvent::Write(c) => {
                let ob = self.line.access(table, c, true);
                if ob.writeback {
                    self.mem_latest = self.fresh & (1 << ob.old_owner) != 0;
                }
                // The write creates a new version held (above the shared
                // cache) only by the writer.
                self.fresh = 1 << c;
                self.mem_latest = false;
            }
            ModelEvent::WritebackFrom(c) => {
                if self.line.state.is_dirty() && self.line.owner == c {
                    self.mem_latest = self.fresh & (1 << c) != 0;
                }
                self.line.writeback_from(c);
                self.fresh &= !(1 << c);
            }
            ModelEvent::Snoop(c) => {
                let served_latest = match self.line.snoop_recall(table, c) {
                    Some(ob) => {
                        let owner_fresh = self.fresh & (1 << ob.old_owner) != 0;
                        if ob.writeback {
                            self.mem_latest = owner_fresh;
                        }
                        if ob.cache_transfer {
                            owner_fresh
                        } else {
                            self.mem_latest
                        }
                    }
                    None => self.mem_latest,
                };
                if !served_latest {
                    return Err((
                        "data-value",
                        format!("the DMA snoop for core{c} read a stale copy"),
                    ));
                }
            }
            ModelEvent::Evict => {
                let ob = self.line.evict(table);
                if ob.writeback {
                    self.mem_latest = self.fresh & (1 << ob.old_owner) != 0;
                }
                self.fresh &= !ob.invalidate;
            }
        }
        Ok(())
    }
}

/// All events of the `cores`-core model, in a fixed enumeration order.
fn all_events(cores: usize) -> Vec<ModelEvent> {
    let mut evs = Vec::with_capacity(4 * cores + 1);
    for c in 0..cores {
        evs.push(ModelEvent::Read(c));
        evs.push(ModelEvent::Write(c));
        evs.push(ModelEvent::WritebackFrom(c));
        evs.push(ModelEvent::Snoop(c));
    }
    evs.push(ModelEvent::Evict);
    evs
}

/// Exhaustively enumerates the reachable configuration space of `table`
/// for a 1-line, `cores`-core model (BFS over every applicable event in
/// every reachable configuration), checking SWMR, data-value and
/// stuck-freedom everywhere. Returns the size of the space, or the
/// shortest counterexample trace to the first violation.
///
/// # Panics
/// Panics if `cores` is outside the small-model range `2..=4` (1 core
/// cannot express sharing; beyond 4 adds states but no new protocol
/// behavior).
pub fn explore(table: &ProtocolTable, cores: usize) -> Result<Exploration, Violation> {
    assert!(
        (2..=4).contains(&cores),
        "small model covers 2..=4 cores, got {cores}"
    );
    let events = all_events(cores);
    // BFS bookkeeping: every discovered configuration remembers the
    // (parent, event) edge that first reached it, so a violating edge
    // replays into the (minimal) trace by walking parents back.
    let mut order: Vec<(Model, Option<(usize, ModelEvent)>)> = vec![(Model::initial(), None)];
    let mut seen: HashMap<Model, usize> = HashMap::from([(Model::initial(), 0)]);
    let mut transitions = 0usize;

    let trace_to =
        |order: &Vec<(Model, Option<(usize, ModelEvent)>)>, idx: usize, last: ModelEvent| {
            let mut trace = vec![last];
            let mut at = idx;
            while let (_, Some((parent, ev))) = order[at] {
                trace.push(ev);
                at = parent;
            }
            trace.reverse();
            trace
        };

    let mut head = 0;
    while head < order.len() {
        let (model, _) = order[head];
        for &ev in &events {
            if !model.applicable(ev) {
                continue;
            }
            // Stuck check: the row the event is about to consume exists.
            if let Some((tev, ctx)) = model.table_input(ev) {
                if table.step(model.line.state, tev, ctx).is_none() {
                    return Err(Violation {
                        invariant: "stuck-state",
                        detail: format!(
                            "no '{}' row for ({:?}, {tev:?}) — the event {ev} has \
                             nowhere to go",
                            table.name(),
                            model.line.state,
                        ),
                        trace: trace_to(&order, head, ev),
                    });
                }
            }
            transitions += 1;
            let mut next = model;
            if let Err((invariant, detail)) = next.apply(table, ev) {
                return Err(Violation {
                    invariant,
                    detail,
                    trace: trace_to(&order, head, ev),
                });
            }
            if let Err((invariant, detail)) = next.check(cores) {
                return Err(Violation {
                    invariant,
                    detail,
                    trace: trace_to(&order, head, ev),
                });
            }
            if let std::collections::hash_map::Entry::Vacant(slot) = seen.entry(next) {
                slot.insert(order.len());
                order.push((next, Some((head, ev))));
            }
        }
        head += 1;
    }
    Ok(Exploration {
        states: order.len(),
        transitions,
    })
}

/// Replays an event trace through the model, returning the violation it
/// reproduces (`None` when the trace runs clean) — counterexamples from
/// [`explore`] are independently checkable artifacts, not just prints.
pub fn replay(table: &ProtocolTable, cores: usize, trace: &[ModelEvent]) -> Option<Violation> {
    let mut model = Model::initial();
    for (i, &ev) in trace.iter().enumerate() {
        if !model.applicable(ev) {
            return Some(Violation {
                invariant: "stuck-state",
                detail: format!("{ev} is not applicable at step {}", i + 1),
                trace: trace[..=i].to_vec(),
            });
        }
        if let Some((tev, ctx)) = model.table_input(ev) {
            if table.step(model.line.state, tev, ctx).is_none() {
                return Some(Violation {
                    invariant: "stuck-state",
                    detail: format!(
                        "no '{}' row for ({:?}, {tev:?})",
                        table.name(),
                        model.line.state,
                    ),
                    trace: trace[..=i].to_vec(),
                });
            }
        }
        let step = model
            .apply(table, ev)
            .err()
            .or_else(|| model.check(cores).err());
        if let Some((invariant, detail)) = step {
            return Some(Violation {
                invariant,
                detail,
                trace: trace[..=i].to_vec(),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Action, CoherenceProtocol, Rule};
    use crate::MesiEvent;

    /// The headline guarantee: all four shipped tables pass SWMR,
    /// data-value and stuck-freedom over their *entire* reachable
    /// 1-line spaces at every small-model core count.
    #[test]
    fn all_four_protocols_pass_exhaustive_exploration() {
        for p in CoherenceProtocol::ALL {
            let table = ProtocolTable::new(p);
            for cores in 2..=4 {
                let ex = explore(&table, cores)
                    .unwrap_or_else(|v| panic!("{} at {cores} cores:\n{v}", p.name()));
                assert!(
                    ex.states > cores,
                    "{} at {cores} cores explored only {} states",
                    p.name(),
                    ex.states
                );
            }
        }
    }

    /// The version abstraction keeps the space genuinely small — the
    /// point of a small model is that exhaustiveness stays trivial.
    #[test]
    fn reachable_spaces_are_small() {
        for p in CoherenceProtocol::ALL {
            let ex = explore(&ProtocolTable::new(p), 4).expect("shipped tables pass");
            assert!(
                ex.states < 10_000,
                "{}: {} states — the abstraction leaked",
                p.name(),
                ex.states
            );
            assert!(ex.transitions > ex.states, "{}", p.name());
        }
    }

    /// MOESI actually reaches Owned and MESIF actually reaches Forward —
    /// the exploration exercises the family extensions, not just the
    /// MESI core.
    #[test]
    fn family_extension_states_are_reachable() {
        for (p, want) in [
            (CoherenceProtocol::Moesi, LineState::Owned),
            (CoherenceProtocol::Mesif, LineState::Forward),
        ] {
            let table = ProtocolTable::new(p);
            // Write(0) then Read(1) reaches the extension state directly.
            let mut m = Model::initial();
            m.apply(&table, ModelEvent::Write(0)).unwrap();
            m.apply(&table, ModelEvent::Read(1)).unwrap();
            assert_eq!(m.line.state, want, "{}", p.name());
            m.check(2).expect("extension state is invariant-clean");
        }
    }

    fn mutate_mesi<F: Fn(&Rule) -> Rule>(name: &'static str, f: F) -> ProtocolTable {
        let rules = ProtocolTable::new(CoherenceProtocol::Mesi)
            .rules()
            .iter()
            .map(f)
            .collect();
        ProtocolTable::from_rules(name, rules)
    }

    /// Satellite: explorer diagnostics. A mutant MESI table whose
    /// Shared-write rows forget [`Action::InvalidateSharers`] must be
    /// caught, with a counterexample that (a) names the violating
    /// interleaving, (b) is minimal-length, and (c) replays to the same
    /// violation.
    #[test]
    fn dropped_invalidation_yields_minimal_replayable_counterexample() {
        let mutant = mutate_mesi("mesi-dropped-inval", |r| {
            if r.state == LineState::Shared
                && matches!(r.event, MesiEvent::LocalWrite | MesiEvent::RemoteWrite)
            {
                Rule { actions: &[], ..*r }
            } else {
                *r
            }
        });
        let v = explore(&mutant, 2).expect_err("the mutant must be caught");
        assert_eq!(v.invariant, "swmr", "stale sharers behind a Modified line");

        // (a) The trace names the interleaving: share the line between
        // two readers, then write it — the third event is the write
        // whose invalidation the mutant dropped.
        assert!(
            matches!(v.trace.last(), Some(ModelEvent::Write(_))),
            "violating event must be the un-invalidating write: {v}"
        );
        let rendered = v.to_string();
        assert!(
            rendered.contains("Write(core") && rendered.contains("counterexample"),
            "diagnostic must print the interleaving:\n{rendered}"
        );

        // (b) Minimal: two events provably cannot violate MESI-minus-
        // inval (a second sharer only exists after two sharing events),
        // and BFS found nothing shorter.
        assert_eq!(v.trace.len(), 3, "shortest counterexample is 3 events");
        for len in 0..3 {
            assert!(
                replay(&mutant, 2, &v.trace[..len]).is_none(),
                "no prefix of the counterexample may already violate"
            );
        }

        // (c) Replayable: the trace independently reproduces the same
        // violation.
        let r = replay(&mutant, 2, &v.trace).expect("replay reproduces the violation");
        assert_eq!(r.invariant, v.invariant);
        assert_eq!(r.trace, v.trace);
    }

    /// A mutant that forgets the write-back on a Modified eviction
    /// breaks the data-value invariant (the refill would serve stale
    /// data), not SWMR — the two invariants catch different bugs.
    #[test]
    fn dropped_eviction_writeback_breaks_data_value() {
        let mutant = mutate_mesi("mesi-dropped-evict-wb", |r| {
            if r.state == LineState::Modified && r.event == MesiEvent::Evict {
                Rule {
                    actions: &[Action::InvalidateSharers],
                    ..*r
                }
            } else {
                *r
            }
        });
        let v = explore(&mutant, 2).expect_err("the mutant must be caught");
        assert_eq!(v.invariant, "data-value");
        assert_eq!(
            v.trace.len(),
            2,
            "Write then Evict is the shortest stale-memory trace"
        );
        assert!(replay(&mutant, 2, &v.trace).is_some());
    }

    /// A mutant with a *missing row* is reported as a stuck state, with
    /// the trace that walks into the hole.
    #[test]
    fn missing_row_is_reported_as_stuck() {
        let rules = ProtocolTable::new(CoherenceProtocol::Mesi)
            .rules()
            .iter()
            .filter(|r| !(r.state == LineState::Shared && r.event == MesiEvent::Evict))
            .copied()
            .collect();
        let mutant = ProtocolTable::from_rules("mesi-no-shared-evict", rules);
        let v = explore(&mutant, 2).expect_err("the hole must be found");
        assert_eq!(v.invariant, "stuck-state");
        assert_eq!(v.trace.last(), Some(&ModelEvent::Evict));
        assert!(v.detail.contains("Shared"));
    }
}
