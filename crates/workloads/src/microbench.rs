//! The Table 2 microbenchmark.
//!
//! The paper's microbenchmark is a loop of load / add / store sequences
//! (`a[i+1] = a[i] + c`) that can be configured in four modes:
//!
//! * **Baseline** — no reference is assumed potentially incoherent.
//! * **RD** — the read `a[i]` is potentially incoherent: a guarded load
//!   is emitted.
//! * **WR** — the write `a[i+1]` is potentially incoherent and no
//!   write-back can be guaranteed: the double store is emitted.
//! * **RD/WR** — both.
//!
//! "To model all possible scenarios in terms of the ratio of accesses
//! that are potentially incoherent, the percentage of memory operations
//! that need to be guarded can also be adjusted" — we realize the
//! percentage with ten independent chains (ten arrays, one statement
//! each); guarding k of them gives k×10 %. Multiple chains also keep the
//! loop throughput-bound (as the paper's 4-wide x86 core is), so the WR
//! overhead reflects the extra instructions of the double store rather
//! than a single serial forwarding chain.

use hsim_compiler::{Expr, Kernel, KernelBuilder};

/// Microbenchmark mode (Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MicroMode {
    /// No guarded references.
    Baseline,
    /// Guarded loads.
    Rd,
    /// Guarded (double) stores.
    Wr,
    /// Both.
    RdWr,
}

impl MicroMode {
    /// Display name used in Figure 7.
    pub fn name(self) -> &'static str {
        match self {
            MicroMode::Baseline => "Baseline",
            MicroMode::Rd => "RD",
            MicroMode::Wr => "WR",
            MicroMode::RdWr => "RD/WR",
        }
    }
}

/// Microbenchmark configuration.
#[derive(Clone, Debug)]
pub struct MicrobenchConfig {
    /// The mode.
    pub mode: MicroMode,
    /// Percentage of references that are potentially incoherent, in
    /// steps of 10 (0–100).
    pub guarded_pct: u32,
    /// Iterations.
    pub n: u64,
}

impl Default for MicrobenchConfig {
    fn default() -> Self {
        MicrobenchConfig {
            mode: MicroMode::Baseline,
            guarded_pct: 0,
            n: 64 * 1024,
        }
    }
}

/// Number of independent chains (percentage granularity = 100/CHAINS).
pub const CHAINS: usize = 10;

/// Builds the microbenchmark kernel.
pub fn microbench(cfg: &MicrobenchConfig) -> Kernel {
    assert!(
        cfg.guarded_pct <= 100 && cfg.guarded_pct.is_multiple_of(10),
        "guarded_pct must be a multiple of 10"
    );
    let guarded_chains = (cfg.guarded_pct as usize * CHAINS) / 100;
    let mut kb = KernelBuilder::new("microbench");
    let arrays: Vec<_> = (0..CHAINS)
        .map(|k| {
            let mut init = vec![0i64; (cfg.n + 1) as usize];
            init[0] = k as i64 + 1;
            kb.array_i64_init(&format!("a{k}"), &init)
        })
        .collect();
    kb.begin_loop(cfg.n);
    for (k, a) in arrays.iter().enumerate() {
        let rload = kb.ref_affine(*a, 1, 0);
        let rstore = kb.ref_affine(*a, 1, 1);
        if k < guarded_chains {
            match cfg.mode {
                MicroMode::Baseline => {}
                MicroMode::Rd => kb.force_incoherent(rload),
                MicroMode::Wr => kb.force_incoherent(rstore),
                MicroMode::RdWr => {
                    kb.force_incoherent(rload);
                    kb.force_incoherent(rstore);
                }
            }
        }
        // a[i+1] = a[i] + c  (c = 1).
        kb.stmt(rstore, Expr::add(Expr::Ref(rload), Expr::ConstI(1)));
    }
    kb.end_loop();
    kb.build().expect("microbench must validate")
}

/// Expected final value of chain `k` at element `i` (for tests):
/// `a_k[i] = (k+1) + i`.
pub fn expected(k: usize, i: u64) -> i64 {
    (k as i64 + 1) + i as i64
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index math doubles as the expected value
mod tests {
    use super::*;
    use hsim_compiler::{classify_loop, interpret, RefClass};

    #[test]
    fn interpreter_matches_closed_form() {
        let cfg = MicrobenchConfig {
            n: 257,
            ..Default::default()
        };
        let k = microbench(&cfg);
        let out = interpret(&k).unwrap();
        for c in 0..CHAINS {
            for i in 0..=257u64 {
                assert_eq!(
                    out[c][i as usize] as i64,
                    expected(c, i),
                    "chain {c} elem {i}"
                );
            }
        }
    }

    #[test]
    fn guarded_fraction_matches_mode() {
        for (mode, pct, want) in [
            (MicroMode::Baseline, 100, 0),
            (MicroMode::Rd, 50, 5),
            (MicroMode::Wr, 100, 10),
            (MicroMode::RdWr, 30, 6),
        ] {
            let k = microbench(&MicrobenchConfig {
                mode,
                guarded_pct: pct,
                n: 1024,
            });
            let plan = classify_loop(&k, &k.loops[0], 32 * 1024, 32);
            let guarded = plan
                .classes
                .iter()
                .filter(|c| **c == RefClass::PotentiallyIncoherent)
                .count();
            assert_eq!(guarded, want, "{mode:?} at {pct}%");
        }
    }

    #[test]
    fn wr_mode_needs_double_stores() {
        let k = microbench(&MicrobenchConfig {
            mode: MicroMode::Wr,
            guarded_pct: 40,
            n: 1024,
        });
        let plan = classify_loop(&k, &k.loops[0], 32 * 1024, 32);
        assert_eq!(plan.double_stores.len(), 4);
        // RD mode has none.
        let k = microbench(&MicrobenchConfig {
            mode: MicroMode::Rd,
            guarded_pct: 40,
            n: 1024,
        });
        let plan = classify_loop(&k, &k.loops[0], 32 * 1024, 32);
        assert!(plan.double_stores.is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple of 10")]
    fn bad_percentage_rejected() {
        microbench(&MicrobenchConfig {
            mode: MicroMode::Rd,
            guarded_pct: 15,
            n: 16,
        });
    }
}
