//! Programs and the label-resolving program builder.

use crate::inst::{AluOp, Cond, FpuOp, Inst, Operand, Phase, Route, Width};
use crate::reg::{FReg, Reg};
use std::collections::HashMap;

/// A forward-referenceable code label handed out by [`ProgramBuilder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// A fully resolved program: a dense instruction array whose control-flow
/// targets are instruction indices.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// The instructions; `pc` indexes this vector.
    pub insts: Vec<Inst>,
    /// Optional label names for the disassembler, keyed by target PC.
    pub label_names: HashMap<usize, String>,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Counts instructions matching a predicate (used by tests and the
    /// experiment harness, e.g. to count guarded references).
    pub fn count(&self, f: impl Fn(&Inst) -> bool) -> usize {
        self.insts.iter().filter(|i| f(i)).count()
    }

    /// Counts memory instructions with the given routing.
    pub fn count_route(&self, route: Route) -> usize {
        self.count(|i| i.route() == Some(route))
    }
}

/// Builds a [`Program`], resolving labels to instruction indices.
///
/// ```
/// use hsim_isa::{ProgramBuilder, Reg, Cond};
///
/// let mut b = ProgramBuilder::new();
/// let loop_top = b.new_label();
/// b.li(Reg(1), 0);
/// b.li(Reg(2), 10);
/// b.bind(loop_top);
/// b.addi(Reg(1), Reg(1), 1);
/// b.branch(Cond::Lt, Reg(1), Reg(2), loop_top);
/// b.halt();
/// let p = b.build();
/// assert_eq!(p.len(), 5);
/// ```
#[derive(Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    /// For each instruction that references a label, the label it uses.
    fixups: Vec<(usize, Label)>,
    /// Label id -> bound PC.
    bound: Vec<Option<usize>>,
    names: Vec<Option<String>>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current instruction count (the PC of the next emitted instruction).
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.bound.push(None);
        self.names.push(None);
        Label(self.bound.len() - 1)
    }

    /// Allocates a fresh label with a name (kept for disassembly).
    pub fn new_named_label(&mut self, name: &str) -> Label {
        let l = self.new_label();
        self.names[l.0] = Some(name.to_string());
        l
    }

    /// Binds `label` to the current position.
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.bound[label.0].is_none(), "label bound twice");
        self.bound[label.0] = Some(self.insts.len());
    }

    /// Emits a raw instruction. Control-flow targets emitted this way must
    /// already be resolved indices.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    // ---- ALU helpers -----------------------------------------------------

    /// `rd = rs1 op rs2`.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Inst::Alu {
            op,
            rd,
            rs1,
            src2: Operand::Reg(rs2),
        });
    }

    /// `rd = rs1 op imm`.
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i64) {
        self.push(Inst::Alu {
            op,
            rd,
            rs1,
            src2: Operand::Imm(imm),
        });
    }

    /// `rd = rs1 + rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.alu(AluOp::Add, rd, rs1, rs2);
    }

    /// `rd = rs1 + imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alui(AluOp::Add, rd, rs1, imm);
    }

    /// `rd = imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) {
        self.push(Inst::Li { rd, imm });
    }

    /// `rd = rs` (encoded as `rd = rs + 0`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }

    /// `fd = fs1 op fs2`.
    pub fn fpu(&mut self, op: FpuOp, fd: FReg, fs1: FReg, fs2: FReg) {
        self.push(Inst::Fpu { op, fd, fs1, fs2 });
    }

    // ---- memory helpers --------------------------------------------------

    /// Integer load with explicit routing.
    pub fn load(&mut self, rd: Reg, base: Reg, offset: i64, width: Width, route: Route) {
        self.push(Inst::Load {
            rd,
            base,
            index: None,
            offset,
            width,
            route,
        });
    }

    /// Integer load with base+index addressing.
    pub fn load_x(
        &mut self,
        rd: Reg,
        base: Reg,
        index: Reg,
        offset: i64,
        width: Width,
        route: Route,
    ) {
        self.push(Inst::Load {
            rd,
            base,
            index: Some(index),
            offset,
            width,
            route,
        });
    }

    /// Integer store with explicit routing.
    pub fn store(&mut self, rs: Reg, base: Reg, offset: i64, width: Width, route: Route) {
        self.push(Inst::Store {
            rs,
            base,
            index: None,
            offset,
            width,
            route,
        });
    }

    /// Integer store with base+index addressing.
    pub fn store_x(
        &mut self,
        rs: Reg,
        base: Reg,
        index: Reg,
        offset: i64,
        width: Width,
        route: Route,
    ) {
        self.push(Inst::Store {
            rs,
            base,
            index: Some(index),
            offset,
            width,
            route,
        });
    }

    /// 64-bit plain load.
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.load(rd, base, offset, Width::D, Route::Plain);
    }

    /// 64-bit plain store.
    pub fn st(&mut self, rs: Reg, base: Reg, offset: i64) {
        self.store(rs, base, offset, Width::D, Route::Plain);
    }

    /// FP load with explicit routing.
    pub fn fload(&mut self, fd: FReg, base: Reg, offset: i64, route: Route) {
        self.push(Inst::FLoad {
            fd,
            base,
            index: None,
            offset,
            route,
        });
    }

    /// FP load with base+index addressing.
    pub fn fload_x(&mut self, fd: FReg, base: Reg, index: Reg, offset: i64, route: Route) {
        self.push(Inst::FLoad {
            fd,
            base,
            index: Some(index),
            offset,
            route,
        });
    }

    /// FP store with explicit routing.
    pub fn fstore(&mut self, fs: FReg, base: Reg, offset: i64, route: Route) {
        self.push(Inst::FStore {
            fs,
            base,
            index: None,
            offset,
            route,
        });
    }

    /// FP store with base+index addressing.
    pub fn fstore_x(&mut self, fs: FReg, base: Reg, index: Reg, offset: i64, route: Route) {
        self.push(Inst::FStore {
            fs,
            base,
            index: Some(index),
            offset,
            route,
        });
    }

    // ---- control flow ----------------------------------------------------

    /// Conditional branch to a label.
    pub fn branch(&mut self, cond: Cond, rs1: Reg, rs2: Reg, target: Label) {
        self.fixups.push((self.insts.len(), target));
        self.push(Inst::Branch {
            cond,
            rs1,
            rs2,
            target: usize::MAX,
        });
    }

    /// Unconditional jump to a label.
    pub fn jump(&mut self, target: Label) {
        self.fixups.push((self.insts.len(), target));
        self.push(Inst::Jump { target: usize::MAX });
    }

    /// Call to a label.
    pub fn call(&mut self, target: Label) {
        self.fixups.push((self.insts.len(), target));
        self.push(Inst::Call { target: usize::MAX });
    }

    /// Return.
    pub fn ret(&mut self) {
        self.push(Inst::Ret);
    }

    // ---- system ------------------------------------------------------------

    /// `dma-get`: SM -> LM transfer; updates the directory.
    pub fn dma_get(&mut self, lm: Reg, sm: Reg, bytes: Reg, tag: u8) {
        self.push(Inst::DmaGet { lm, sm, bytes, tag });
    }

    /// `dma-put`: LM -> SM transfer; invalidates cached copies.
    pub fn dma_put(&mut self, lm: Reg, sm: Reg, bytes: Reg, tag: u8) {
        self.push(Inst::DmaPut { lm, sm, bytes, tag });
    }

    /// `dma-synch`: wait for transfers with `tag`.
    pub fn dma_synch(&mut self, tag: u8) {
        self.push(Inst::DmaSynch { tag });
    }

    /// Directory buffer-size configuration.
    pub fn dir_cfg(&mut self, rs: Reg) {
        self.push(Inst::DirCfg { rs });
    }

    /// Phase marker.
    pub fn phase(&mut self, phase: Phase) {
        self.push(Inst::PhaseMark { phase });
    }

    /// Halt.
    pub fn halt(&mut self) {
        self.push(Inst::Halt);
    }

    /// Nop.
    pub fn nop(&mut self) {
        self.push(Inst::Nop);
    }

    /// Resolves all labels and returns the program.
    ///
    /// Panics if any referenced label was never bound.
    pub fn build(self) -> Program {
        let ProgramBuilder {
            mut insts,
            fixups,
            bound,
            names,
        } = self;
        for (pc, label) in fixups {
            let dst = bound[label.0]
                .unwrap_or_else(|| panic!("label {:?} referenced but never bound", label));
            match &mut insts[pc] {
                Inst::Branch { target, .. } | Inst::Jump { target } | Inst::Call { target } => {
                    *target = dst;
                }
                other => panic!("fixup on non-control instruction {other:?}"),
            }
        }
        let mut label_names = HashMap::new();
        for (id, pc) in bound.iter().enumerate() {
            if let (Some(pc), Some(name)) = (pc, &names[id]) {
                label_names.insert(*pc, name.clone());
            }
        }
        Program { insts, label_names }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        let fwd = b.new_label();
        let back = b.new_label();
        b.bind(back);
        b.li(Reg(1), 1);
        b.jump(fwd); // forward reference
        b.branch(Cond::Eq, Reg(1), Reg(1), back); // backward reference
        b.bind(fwd);
        b.halt();
        let p = b.build();
        assert_eq!(p.insts[1], Inst::Jump { target: 3 });
        match p.insts[2] {
            Inst::Branch { target, .. } => assert_eq!(target, 0),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.jump(l);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l);
        b.nop();
        b.bind(l);
    }

    #[test]
    fn count_routes() {
        let mut b = ProgramBuilder::new();
        b.load(Reg(1), Reg(2), 0, Width::D, Route::Guarded);
        b.store(Reg(1), Reg(2), 0, Width::D, Route::Guarded);
        b.store(Reg(1), Reg(2), 0, Width::D, Route::Plain);
        b.ld(Reg(3), Reg(2), 8);
        b.halt();
        let p = b.build();
        assert_eq!(p.count_route(Route::Guarded), 2);
        assert_eq!(p.count_route(Route::Plain), 2);
        assert_eq!(p.count_route(Route::Oracle), 0);
        assert_eq!(p.count(|i| i.is_store()), 2);
    }

    #[test]
    fn named_labels_survive() {
        let mut b = ProgramBuilder::new();
        let l = b.new_named_label("loop");
        b.bind(l);
        b.nop();
        b.jump(l);
        let p = b.build();
        assert_eq!(p.label_names.get(&0).map(String::as_str), Some("loop"));
    }
}
