//! Set-associative cache timing model.
//!
//! Caches here hold tags and metadata only — data lives in the functional
//! [`PagedMem`](crate::backing::PagedMem). Each cache tracks the full
//! Table 3 accounting: demand hits/misses by kind, prefetch fills, line
//! placements, write-through traffic, write-backs, snoop lookups and
//! invalidations.

/// Write policy of one cache level (Table 1: L1D is write-through, L2 and
/// L3 are write-back).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WritePolicy {
    /// Stores update this level and are forwarded to the next level.
    /// Lines at this level are never dirty.
    WriteThrough,
    /// Stores update this level only; dirty lines are written back on
    /// eviction.
    WriteBack,
}

/// Geometry and policy of one cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable name used in reports ("L1D", "L2", …).
    pub name: &'static str,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub latency: u64,
    /// Write policy.
    pub write_policy: WritePolicy,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        let sets = self.size_bytes / (self.ways as u64 * self.line_bytes);
        assert!(
            sets.is_power_of_two(),
            "{}: set count must be a power of two",
            self.name
        );
        sets as usize
    }
}

/// What kind of access is being performed (affects accounting only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Demand load.
    Read,
    /// Demand store.
    Write,
    /// Prefetcher-initiated access.
    Prefetch,
}

/// Per-cache activity counters. `total_accesses()` reproduces the paper's
/// Table 3 accounting: "hits, misses, lookups and invalidations provoked by
/// memory instructions, prefetchers, placement of cache lines by the MSHRs,
/// write-through and write-back policies and bus requests of the DMA
/// commands".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand read hits.
    pub read_hits: u64,
    /// Demand read misses.
    pub read_misses: u64,
    /// Demand write hits.
    pub write_hits: u64,
    /// Demand write misses.
    pub write_misses: u64,
    /// Write accesses arriving from a write-through upper level.
    pub writethrough_writes: u64,
    /// Line placements (fills) from the level below.
    pub fills: u64,
    /// Of which, fills triggered by the prefetcher.
    pub prefetch_fills: u64,
    /// Prefetch probe lookups that hit (no fill needed).
    pub prefetch_hits: u64,
    /// Dirty lines written back to the level below on eviction.
    pub writebacks_out: u64,
    /// Write-back traffic arriving from the level above.
    pub writebacks_in: u64,
    /// DMA snoop lookups (dma-get bus requests).
    pub snoops: u64,
    /// Lines invalidated by DMA put requests (includes the lookup).
    pub invalidations: u64,
}

impl CacheStats {
    /// Demand accesses (reads + writes).
    pub fn demand_accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Demand hit ratio in percent, 100.0 when there were no accesses.
    pub fn hit_ratio(&self) -> f64 {
        let acc = self.demand_accesses();
        if acc == 0 {
            return 100.0;
        }
        100.0 * (self.read_hits + self.write_hits) as f64 / acc as f64
    }

    /// Total activity per the Table 3 accounting.
    pub fn total_accesses(&self) -> u64 {
        self.demand_accesses()
            + self.writethrough_writes
            + self.fills
            + self.prefetch_hits
            + self.writebacks_in
            + self.snoops
            + self.invalidations
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.read_hits += other.read_hits;
        self.read_misses += other.read_misses;
        self.write_hits += other.write_hits;
        self.write_misses += other.write_misses;
        self.writethrough_writes += other.writethrough_writes;
        self.fills += other.fills;
        self.prefetch_fills += other.prefetch_fills;
        self.prefetch_hits += other.prefetch_hits;
        self.writebacks_out += other.writebacks_out;
        self.writebacks_in += other.writebacks_in;
        self.snoops += other.snoops;
        self.invalidations += other.invalidations;
    }
}

#[derive(Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// True when the line was placed by the prefetcher and has not yet
    /// been touched by a demand access (used for pollution statistics).
    prefetched: bool,
    /// LRU timestamp (global counter).
    lru: u64,
}

/// A dirty line evicted by a fill; the owner must write it back below.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// Line-aligned address of the victim.
    pub addr: u64,
    /// Whether the victim was dirty (needs writing back).
    pub dirty: bool,
}

/// One cache level (tags + metadata only).
pub struct Cache {
    /// The immutable configuration.
    pub cfg: CacheConfig,
    sets: Vec<Line>,
    ways: usize,
    set_mask: u64,
    line_shift: u32,
    clock: u64,
    /// Activity counters.
    pub stats: CacheStats,
    /// Useful prefetches: demand hits on lines the prefetcher brought in.
    pub prefetch_useful: u64,
}

impl Cache {
    /// Builds an empty cache from its configuration.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.num_sets();
        assert!(cfg.line_bytes.is_power_of_two());
        Cache {
            ways: cfg.ways,
            set_mask: sets as u64 - 1,
            line_shift: cfg.line_bytes.trailing_zeros(),
            sets: vec![Line::default(); sets * cfg.ways],
            clock: 0,
            stats: CacheStats::default(),
            prefetch_useful: 0,
            cfg,
        }
    }

    /// Line-aligns an address.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    #[inline]
    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        (((line & self.set_mask) as usize) * self.ways, line)
    }

    #[inline]
    fn find(&self, addr: u64) -> Option<usize> {
        let (base, tag) = self.index(addr);
        (0..self.ways).map(|w| base + w).find(|&i| {
            let l = &self.sets[i];
            l.valid && l.tag == tag
        })
    }

    /// Tag lookup with no state change and no accounting.
    #[inline]
    pub fn probe(&self, addr: u64) -> bool {
        self.find(addr).is_some()
    }

    /// Performs a demand or prefetch access. Returns `true` on hit. Misses
    /// do **not** fill the line; the hierarchy calls [`Cache::fill`] after
    /// fetching from below, mirroring an MSHR-mediated placement.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> bool {
        self.clock += 1;
        let hit = match self.find(addr) {
            Some(i) => {
                let clock = self.clock;
                let line = &mut self.sets[i];
                line.lru = clock;
                if line.prefetched && kind != AccessKind::Prefetch {
                    line.prefetched = false;
                    self.prefetch_useful += 1;
                }
                if kind == AccessKind::Write {
                    debug_assert!(
                        self.cfg.write_policy == WritePolicy::WriteBack || !self.sets[i].dirty,
                        "write-through lines must stay clean"
                    );
                    if self.cfg.write_policy == WritePolicy::WriteBack {
                        self.sets[i].dirty = true;
                    }
                }
                true
            }
            None => false,
        };
        match (kind, hit) {
            (AccessKind::Read, true) => self.stats.read_hits += 1,
            (AccessKind::Read, false) => self.stats.read_misses += 1,
            (AccessKind::Write, true) => self.stats.write_hits += 1,
            (AccessKind::Write, false) => self.stats.write_misses += 1,
            (AccessKind::Prefetch, true) => self.stats.prefetch_hits += 1,
            (AccessKind::Prefetch, false) => {} // fill accounted separately
        }
        hit
    }

    /// A write arriving from a write-through level above. Updates the line
    /// if present (setting dirty under write-back policy); misses do not
    /// allocate (write-through traffic is non-allocating at this level).
    pub fn writethrough_from_above(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.stats.writethrough_writes += 1;
        if let Some(i) = self.find(addr) {
            self.sets[i].lru = self.clock;
            if self.cfg.write_policy == WritePolicy::WriteBack {
                self.sets[i].dirty = true;
            }
            true
        } else {
            false
        }
    }

    /// Places a line fetched from below, evicting the LRU victim if the
    /// set is full. `dirty` marks the fill as already-modified (used when a
    /// write-allocate store fills a write-back level).
    pub fn fill(&mut self, addr: u64, dirty: bool, prefetched: bool) -> Option<Evicted> {
        self.clock += 1;
        self.stats.fills += 1;
        if prefetched {
            self.stats.prefetch_fills += 1;
        }
        let (base, tag) = self.index(addr);
        // Already present (e.g. race between prefetch and demand): refresh.
        for w in 0..self.ways {
            let l = &mut self.sets[base + w];
            if l.valid && l.tag == tag {
                l.lru = self.clock;
                l.dirty |= dirty;
                return None;
            }
        }
        // Choose victim: first invalid way, else LRU.
        let mut victim = base;
        let mut best = u64::MAX;
        for w in 0..self.ways {
            let l = &self.sets[base + w];
            if !l.valid {
                victim = base + w;
                break;
            }
            if l.lru < best {
                best = l.lru;
                victim = base + w;
            }
        }
        let old = self.sets[victim];
        let evicted = old.valid.then(|| Evicted {
            addr: (old.tag) << self.line_shift,
            dirty: old.dirty,
        });
        self.sets[victim] = Line {
            tag,
            valid: true,
            dirty: dirty && self.cfg.write_policy == WritePolicy::WriteBack,
            prefetched,
            lru: self.clock,
        };
        if let Some(e) = evicted {
            if e.dirty {
                self.stats.writebacks_out += 1;
            }
        }
        evicted
    }

    /// DMA snoop lookup (bus request of a `dma-get`): counted, no state
    /// change beyond statistics. Returns whether the line is present.
    pub fn snoop(&mut self, addr: u64) -> bool {
        self.stats.snoops += 1;
        self.probe(addr)
    }

    /// Invalidates a line if present (bus request of a `dma-put`). Returns
    /// whether the line was present and whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        self.stats.invalidations += 1;
        self.find(addr).map(|i| {
            let was_dirty = self.sets[i].dirty;
            self.sets[i] = Line::default();
            was_dirty
        })
    }

    /// Accepts a dirty line written back from the level above: marks it
    /// dirty when resident, otherwise fills it dirty (possibly evicting a
    /// victim that the caller must push further down).
    pub fn writeback_fill(&mut self, addr: u64) -> Option<Evicted> {
        self.stats.writebacks_in += 1;
        self.clock += 1;
        if let Some(i) = self.find(addr) {
            self.sets[i].lru = self.clock;
            if self.cfg.write_policy == WritePolicy::WriteBack {
                self.sets[i].dirty = true;
            }
            return None;
        }
        self.fill(addr, true, false)
    }

    /// Number of valid lines currently resident (for tests).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().filter(|l| l.valid).count()
    }

    /// Resets all lines (not the statistics).
    pub fn flush_all(&mut self) {
        self.sets.fill(Line::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B.
        Cache::new(CacheConfig {
            name: "T",
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            latency: 2,
            write_policy: WritePolicy::WriteBack,
        })
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.cfg.num_sets(), 4);
        assert_eq!(c.line_addr(0x12345), 0x12340);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000, AccessKind::Read));
        assert_eq!(c.fill(0x1000, false, false), None);
        assert!(c.access(0x1000, AccessKind::Read));
        assert_eq!(c.stats.read_hits, 1);
        assert_eq!(c.stats.read_misses, 1);
        assert_eq!(c.stats.fills, 1);
    }

    #[test]
    fn same_line_different_offset_hits() {
        let mut c = tiny();
        c.fill(0x1000, false, false);
        assert!(c.access(0x103f, AccessKind::Read));
        assert!(!c.access(0x1040, AccessKind::Read), "next line misses");
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set index = (addr>>6) & 3. Use set 0: line addrs multiples of 0x100.
        c.fill(0x0000, false, false);
        c.fill(0x1000, false, false);
        // Touch 0x0000 so 0x1000 becomes LRU.
        c.access(0x0000, AccessKind::Read);
        let ev = c.fill(0x2000, false, false).expect("eviction expected");
        assert_eq!(ev.addr, 0x1000);
        assert!(!ev.dirty);
        assert!(c.probe(0x0000) && c.probe(0x2000) && !c.probe(0x1000));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(0x0000, false, false);
        c.access(0x0000, AccessKind::Write); // marks dirty (write-back)
        c.fill(0x1000, false, false);
        let ev = c.fill(0x2000, false, false).unwrap();
        assert_eq!(ev.addr, 0x0000);
        assert!(ev.dirty);
        assert_eq!(c.stats.writebacks_out, 1);
    }

    #[test]
    fn writethrough_lines_stay_clean() {
        let mut c = Cache::new(CacheConfig {
            name: "WT",
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            latency: 2,
            write_policy: WritePolicy::WriteThrough,
        });
        c.fill(0x0000, false, false);
        c.access(0x0000, AccessKind::Write);
        c.fill(0x1000, false, false);
        let ev = c.fill(0x2000, false, false).unwrap();
        assert!(!ev.dirty, "write-through lines are never dirty");
        assert_eq!(c.stats.writebacks_out, 0);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(0x1000, false, false);
        c.access(0x1000, AccessKind::Write);
        assert_eq!(c.invalidate(0x1000), Some(true));
        assert!(!c.probe(0x1000));
        assert_eq!(c.invalidate(0x1000), None);
        assert_eq!(c.stats.invalidations, 2);
    }

    #[test]
    fn snoop_counts_without_disturbing() {
        let mut c = tiny();
        c.fill(0x1000, false, false);
        assert!(c.snoop(0x1000));
        assert!(!c.snoop(0x2000));
        assert_eq!(c.stats.snoops, 2);
        assert!(c.probe(0x1000));
    }

    #[test]
    fn prefetch_accounting() {
        let mut c = tiny();
        assert!(!c.access(0x1000, AccessKind::Prefetch));
        c.fill(0x1000, false, true);
        assert_eq!(c.stats.prefetch_fills, 1);
        // Demand touch marks the prefetch useful.
        assert!(c.access(0x1000, AccessKind::Read));
        assert_eq!(c.prefetch_useful, 1);
        // Second prefetch to the same line is a prefetch hit.
        assert!(c.access(0x1000, AccessKind::Prefetch));
        assert_eq!(c.stats.prefetch_hits, 1);
    }

    #[test]
    fn fill_of_resident_line_does_not_evict() {
        let mut c = tiny();
        c.fill(0x1000, false, false);
        assert_eq!(c.fill(0x1000, true, false), None);
        assert_eq!(c.stats.fills, 2);
    }

    #[test]
    fn hit_ratio_and_totals() {
        let mut c = tiny();
        c.access(0x1000, AccessKind::Read); // miss
        c.fill(0x1000, false, false);
        c.access(0x1000, AccessKind::Read); // hit
        c.access(0x1000, AccessKind::Write); // hit
        assert!((c.stats.hit_ratio() - 66.666).abs() < 0.01);
        assert_eq!(c.stats.total_accesses(), 3 + 1); // 3 demand + 1 fill
    }

    #[test]
    fn flush_all_clears_lines_keeps_stats() {
        let mut c = tiny();
        c.fill(0x1000, false, false);
        c.flush_all();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.stats.fills, 1);
    }
}
