//! Functional backing store: a sparse, paged 64-bit address space.
//!
//! Every byte of architectural state (data segment, local-memory window,
//! DMA buffers) lives here. The cache hierarchy and local memory are pure
//! *timing* models layered on top, so functional correctness is independent
//! of timing bugs — which in turn lets the test suite check the coherence
//! protocol end to end by comparing final memory images across machine
//! configurations.
//!
//! Pages are 4 KiB and allocated on first touch. A one-entry translation
//! cache makes the common sequential-access pattern cheap.

use std::cell::Cell;
use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const OFFSET_MASK: u64 = (PAGE_SIZE - 1) as u64;

/// The memo's empty sentinel: page numbers are `addr >> 12`, so a real
/// page can never equal it.
const NO_PAGE: u64 = u64::MAX;

/// Sparse paged memory. Reads of untouched memory return zero.
///
/// Frames live in a dense `Vec`; a `HashMap` translates page numbers to
/// frame slots, and a one-entry `(page, slot)` memo short-circuits the
/// map on the sequential access patterns that dominate kernel traffic
/// (both reads and writes).
pub struct PagedMem {
    /// Page frames, indexed by the slots stored in `index`.
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
    /// Page number → frame slot in `pages`.
    index: HashMap<u64, usize>,
    /// One-entry translation memo: the last resident page touched, as
    /// `(page number, frame slot)`. A `Cell` so the read path (`&self`)
    /// can refresh it too.
    last: Cell<(u64, usize)>,
}

impl Default for PagedMem {
    fn default() -> Self {
        PagedMem {
            pages: Vec::new(),
            index: HashMap::new(),
            last: Cell::new((NO_PAGE, 0)),
        }
    }
}

impl PagedMem {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    #[inline]
    fn page_of(addr: u64) -> (u64, usize) {
        (addr >> PAGE_SHIFT, (addr & OFFSET_MASK) as usize)
    }

    /// Resolves a page number to its frame slot, through the memo.
    #[inline]
    fn slot_of(&self, pn: u64) -> Option<usize> {
        let (last_pn, last_slot) = self.last.get();
        if last_pn == pn {
            return Some(last_slot);
        }
        let slot = *self.index.get(&pn)?;
        self.last.set((pn, slot));
        Some(slot)
    }

    /// The resident frame for `pn`, if any.
    #[inline]
    fn page(&self, pn: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.slot_of(pn).map(|s| &*self.pages[s])
    }

    /// The frame for `pn`, allocating (and memoizing) on first touch.
    fn page_mut(&mut self, pn: u64) -> &mut [u8; PAGE_SIZE] {
        let slot = match self.slot_of(pn) {
            Some(s) => s,
            None => {
                let s = self.pages.len();
                self.pages.push(Box::new([0; PAGE_SIZE]));
                self.index.insert(pn, s);
                self.last.set((pn, s));
                s
            }
        };
        &mut self.pages[slot]
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        let (pn, off) = Self::page_of(addr);
        match self.page(pn) {
            Some(p) => p[off],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        let (pn, off) = Self::page_of(addr);
        self.page_mut(pn)[off] = val;
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    #[inline]
    fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let (pn, off) = Self::page_of(addr);
        if off + N <= PAGE_SIZE {
            if let Some(p) = self.page(pn) {
                let mut out = [0u8; N];
                out.copy_from_slice(&p[off..off + N]);
                return out;
            }
            return [0u8; N];
        }
        // Page-crossing access: byte-by-byte (rare).
        let mut out = [0u8; N];
        for (i, b) in out.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        out
    }

    #[inline]
    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let (pn, off) = Self::page_of(addr);
        if off + bytes.len() <= PAGE_SIZE {
            self.page_mut(pn)[off..off + bytes.len()].copy_from_slice(bytes);
            return;
        }
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads a 32-bit little-endian value.
    #[inline]
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a 32-bit little-endian value.
    #[inline]
    pub fn write_u32(&mut self, addr: u64, val: u32) {
        self.write_bytes(addr, &val.to_le_bytes());
    }

    /// Reads a 64-bit little-endian value.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a 64-bit little-endian value.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, val: u64) {
        self.write_bytes(addr, &val.to_le_bytes());
    }

    /// Reads an `i64`.
    #[inline]
    pub fn read_i64(&self, addr: u64) -> i64 {
        self.read_u64(addr) as i64
    }

    /// Writes an `i64`.
    #[inline]
    pub fn write_i64(&mut self, addr: u64, val: i64) {
        self.write_u64(addr, val as u64);
    }

    /// Reads an `f64`.
    #[inline]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64`.
    #[inline]
    pub fn write_f64(&mut self, addr: u64, val: f64) {
        self.write_u64(addr, val.to_bits());
    }

    /// Copies `len` bytes from `src` to `dst` (the functional effect of a
    /// DMA transfer). Ranges may overlap; the copy behaves like
    /// `memmove`.
    pub fn copy(&mut self, dst: u64, src: u64, len: u64) {
        if len == 0 || dst == src {
            return;
        }
        // Buffer through a temporary to get memmove semantics over the
        // sparse pages. DMA transfers are at most tens of KiB.
        let mut tmp = vec![0u8; len as usize];
        for (i, b) in tmp.iter_mut().enumerate() {
            *b = self.read_u8(src + i as u64);
        }
        self.write_bytes(dst, &tmp);
    }

    /// Computes a FNV-1a checksum of `[addr, addr+len)`; used by tests to
    /// compare memory images cheaply.
    pub fn checksum(&self, addr: u64, len: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for i in 0..len {
            h ^= self.read_u8(addr + i) as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let m = PagedMem::new();
        assert_eq!(m.read_u64(0x1234), 0);
        assert_eq!(m.read_u8(u64::MAX - 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn read_your_writes() {
        let mut m = PagedMem::new();
        m.write_u64(0x1000, 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(0x1000), 0xdead_beef_cafe_f00d);
        m.write_u32(0x2000, 0x1234_5678);
        assert_eq!(m.read_u32(0x2000), 0x1234_5678);
        m.write_u8(0x3000, 0xab);
        assert_eq!(m.read_u8(0x3000), 0xab);
        m.write_f64(0x4000, -1.25);
        assert_eq!(m.read_f64(0x4000), -1.25);
        m.write_i64(0x5000, -42);
        assert_eq!(m.read_i64(0x5000), -42);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = PagedMem::new();
        m.write_u32(0x100, 0x0403_0201);
        assert_eq!(m.read_u8(0x100), 1);
        assert_eq!(m.read_u8(0x103), 4);
    }

    #[test]
    fn page_crossing_access() {
        let mut m = PagedMem::new();
        let addr = (1 << 12) - 4; // crosses the first page boundary
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn memo_survives_page_crossing_and_alternation() {
        // Exercise the one-entry translation memo: sequential same-page
        // traffic, strict page alternation (every access evicts the
        // memo), and straddling accesses whose byte path walks both
        // pages through the memo — all must read back exactly.
        let mut m = PagedMem::new();
        let page = 1u64 << PAGE_SHIFT;
        for i in 0..64u64 {
            m.write_u8(3 * page + i, i as u8);
            m.write_u8(7 * page + i, !i as u8);
        }
        for i in 0..64u64 {
            assert_eq!(m.read_u8(3 * page + i), i as u8);
            assert_eq!(m.read_u8(7 * page + i), !i as u8);
        }
        // Writes through a stale memo must not land in the wrong frame.
        let boundary = 4 * page - 4;
        m.write_u64(boundary, 0xa1b2_c3d4_e5f6_0718);
        assert_eq!(m.read_u64(boundary), 0xa1b2_c3d4_e5f6_0718);
        assert_eq!(m.read_u32(boundary), 0xe5f6_0718);
        assert_eq!(m.read_u32(boundary + 4), 0xa1b2_c3d4);
        // The crossing allocated page 4; pages 3 and 7 already existed.
        assert_eq!(m.resident_pages(), 3);
        // Reads of absent pages still return zero and allocate nothing.
        assert_eq!(m.read_u64(100 * page), 0);
        assert_eq!(m.resident_pages(), 3);
    }

    #[test]
    fn copy_non_overlapping() {
        let mut m = PagedMem::new();
        for i in 0..64u64 {
            m.write_u8(0x1000 + i, i as u8);
        }
        m.copy(0x2000, 0x1000, 64);
        for i in 0..64u64 {
            assert_eq!(m.read_u8(0x2000 + i), i as u8);
        }
    }

    #[test]
    fn copy_overlapping_is_memmove() {
        let mut m = PagedMem::new();
        for i in 0..16u64 {
            m.write_u8(0x100 + i, i as u8);
        }
        m.copy(0x104, 0x100, 16); // forward overlap
        for i in 0..16u64 {
            assert_eq!(m.read_u8(0x104 + i), i as u8);
        }
    }

    #[test]
    fn copy_zero_len_and_self() {
        let mut m = PagedMem::new();
        m.write_u8(0x10, 7);
        m.copy(0x20, 0x10, 0);
        assert_eq!(m.read_u8(0x20), 0);
        m.copy(0x10, 0x10, 8);
        assert_eq!(m.read_u8(0x10), 7);
    }

    #[test]
    fn checksum_detects_differences() {
        let mut a = PagedMem::new();
        let mut b = PagedMem::new();
        a.write_u64(0x100, 1);
        b.write_u64(0x100, 1);
        assert_eq!(a.checksum(0x100, 64), b.checksum(0x100, 64));
        b.write_u8(0x120, 9);
        assert_ne!(a.checksum(0x100, 64), b.checksum(0x100, 64));
    }
}
