//! The interface between the core and the machine's memory world.
//!
//! The core executes instructions *functionally* at dispatch and needs
//! the machine to (a) resolve memory routing — the pre-MMU range check,
//! the coherence-directory lookup for guarded accesses, the oracle
//! routing of the incoherent baseline — and perform the functional data
//! access, (b) provide access *timing* at issue/commit, and (c) execute
//! DMA commands. [`MemoryPort`] is that boundary; the machine in the root
//! crate implements it over `hsim-mem` + `hsim-coherence`.

use hsim_isa::{Route, Width};

/// Which memory a routed access targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemSide {
    /// The local memory.
    Lm,
    /// System memory (cache hierarchy).
    Sm,
}

/// Routing decision for one memory access, produced at functional
/// execution time and consumed by the timing model.
#[derive(Clone, Copy, Debug)]
pub struct RouteInfo {
    /// The memory that serves the access.
    pub side: MemSide,
    /// The final (possibly directory-diverted) address.
    pub addr: u64,
    /// Whether the hardware directory was looked up (guarded accesses in
    /// the coherent machine).
    pub dir_lookup: bool,
    /// Whether that lookup hit.
    pub dir_hit: bool,
    /// Presence-bit constraint: the access may not issue before this
    /// cycle (completion of the mapping `dma-get`); 0 when absent.
    pub ready_at: u64,
}

/// DMA command kinds forwarded by the core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmaKind {
    /// `dma-get` (SM → LM).
    Get,
    /// `dma-put` (LM → SM).
    Put,
}

/// Level that served a timed access (re-exported shape of
/// `hsim_mem::Level` to keep this crate decoupled from the hierarchy).
pub type ServedLevel = hsim_mem::Level;

/// Memory-side snapshot attached to a deadlock report: what the tile's
/// memory machinery still had in flight when the watchdog fired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PortDiagnostics {
    /// Tile/core id of the port's owner (0 for single-core mocks).
    pub core: usize,
    /// Outstanding MSHR entries at the snapshot cycle.
    pub mshr_in_flight: usize,
    /// Bitmask of DMA tags still in flight at the snapshot cycle.
    pub dma_tags: u8,
}

/// The machine-side callbacks the core drives.
pub trait MemoryPort {
    /// Functionally executes a memory access: routes `addr` (range check,
    /// directory or oracle), performs the data read/write against the
    /// backing store, and returns the loaded bits (zero for stores)
    /// together with the routing decision.
    ///
    /// `store` carries the raw bits to write for stores, `None` for
    /// loads. Loaded integer values are already width-adjusted
    /// (zero-extended bytes, sign-extended words).
    fn exec_mem(
        &mut self,
        pc: u64,
        addr: u64,
        width: Width,
        route: Route,
        store: Option<u64>,
    ) -> (u64, RouteInfo);

    /// Timing of the memory access previously routed as `info`:
    /// loads call this at issue, stores at commit. Returns the latency
    /// and the serving level.
    fn timing_access(
        &mut self,
        now: u64,
        pc: u64,
        info: &RouteInfo,
        write: bool,
    ) -> (u64, ServedLevel);

    /// Executes a DMA command functionally (copy + directory update +
    /// cache snoops/invalidations) and returns its completion cycle.
    fn exec_dma(&mut self, now: u64, kind: DmaKind, lm: u64, sm: u64, bytes: u64, tag: u8) -> u64;

    /// The cycle at which a `dma-synch` on `tag` unblocks.
    fn dma_synch(&mut self, now: u64, tag: u8) -> u64;

    /// Reconfigures the directory buffer size (`dir.cfg`).
    fn dir_configure(&mut self, buf_size: u64);

    /// Instruction-fetch latency for the line containing `pc_addr`.
    fn fetch_latency(&mut self, now: u64, pc_addr: u64) -> u64;

    /// The earliest cycle strictly after `now` at which pending
    /// memory-side work completes — an outstanding MSHR fill, an
    /// in-flight DMA transfer, a busy backside port — or `None` when
    /// nothing is pending. Cycle-skipping cores clamp their jump to this
    /// so they never skip past a backside event that could change
    /// arbitration; the wake-up is a provable no-op, so reporting a
    /// conservative (early) cycle is always safe. Timing-only mocks can
    /// rely on this default.
    fn next_mem_event_at(&self, now: u64) -> Option<u64> {
        let _ = now;
        None
    }

    /// Snapshot of the port's in-flight memory state at `now`, taken by
    /// the deadlock watchdog when it fires so [`SimError::Deadlock`]
    /// can name what the stall was waiting on. Purely observational —
    /// implementations must not mutate timing state. Timing-only mocks
    /// can rely on this default.
    ///
    /// [`SimError::Deadlock`]: crate::pipeline::SimError::Deadlock
    fn stall_diagnostics(&self, now: u64) -> PortDiagnostics {
        let _ = now;
        PortDiagnostics::default()
    }
}
