//! Offline stand-in for the `proptest` crate (API subset).
//!
//! Implements the slice of proptest this repository's property tests
//! use: the [`Strategy`] trait with [`StrategyExt::prop_map`], range /
//! tuple / [`Just`] / [`prop_oneof!`] / `collection::vec` / `any::<T>()`
//! / `bool::ANY` strategies, the [`proptest!`] macro (with
//! `#![proptest_config(..)]`), and the `prop_assert*` macros.
//!
//! Differences from the real crate: the generator is a fixed-seed
//! SplitMix64 (fully deterministic across runs), and there is **no
//! shrinking** — a failing case reports its index and message only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

/// Test-runner plumbing: the deterministic RNG and failure type.
pub mod test_runner {
    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A fixed-seed generator (reproducible test streams).
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x5EED_CAFE_F00D_BEEF,
            }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// A failed property assertion (no shrinking: message only).
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A value generator (subset of `proptest::strategy::Strategy`).
///
/// Object safe: combinators live on [`StrategyExt`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Combinators over [`Strategy`] (kept separate for object safety).
pub trait StrategyExt: Strategy + Sized {
    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }
}

impl<S: Strategy + Sized> StrategyExt for S {}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The [`StrategyExt::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one constant value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty range strategy");
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy type.
pub struct Any<T> {
    #[doc(hidden)]
    pub _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T` (subset of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Uniform choice among boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union from its alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Namespaced strategies mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec<T>` with a length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `Vec` strategy: elements from `element`, length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start).max(1) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::Any;

        /// The unconstrained boolean strategy.
        pub const ANY: Any<::core::primitive::bool> = Any {
            _marker: ::std::marker::PhantomData,
        };
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, StrategyExt, TestCaseError,
    };
}

/// Uniform choice among strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),+ ])
    };
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Declares property tests (subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let result = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!("property {} failed at case {case}: {e}", stringify!($name));
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, v in prop::collection::vec(0u8..5, 1..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|e| *e < 5));
        }

        #[test]
        fn tuples_and_map(pair in (0i64..10, 0i64..10).prop_map(|(a, b)| a + b)) {
            prop_assert!((0..19).contains(&pair));
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert_ne!(v, 0u8);
            prop_assert!(v <= 3u8, "v={v}");
        }
    }

    #[test]
    fn generated_tests_run() {
        ranges_stay_in_bounds();
        tuples_and_map();
        oneof_and_just();
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        proptest! {
            fn always_fails(x in 0u64..2) {
                prop_assert_eq!(x, 99u64);
            }
        }
        always_fails();
    }
}
