//! Regenerates Figure 8: overhead of the coherence protocol on the real
//! benchmarks, against the incoherent hybrid with an oracle compiler.
//!
//! ```text
//! cargo run --release -p hsim-bench --bin fig8 [--test-scale]
//! ```

use hsim::prelude::*;
use hsim_bench::{kernels, paper_energy_overhead, paper_time_overhead, scale_from_args, Table};

fn main() {
    let rows = fig8(&kernels(scale_from_args()), Parallelism::Serial).expect("simulation failed");
    println!("FIGURE 8: coherence-protocol overhead vs the oracle baseline");
    println!();
    let t = Table::new(&[4, 12, 12, 14, 14]);
    t.row(&["", "time ovh", "energy ovh", "paper time", "paper energy"].map(String::from));
    t.sep();
    let (mut ts, mut es) = (0.0, 0.0);
    for r in &rows {
        ts += r.time_ratio - 1.0;
        es += r.energy_ratio - 1.0;
        t.row(&[
            r.name.clone(),
            format!("{:+.2}%", (r.time_ratio - 1.0) * 100.0),
            format!("{:+.2}%", (r.energy_ratio - 1.0) * 100.0),
            format!("{:+.2}%", paper_time_overhead(&r.name)),
            format!("~{:+.1}%", paper_energy_overhead(&r.name)),
        ]);
    }
    t.sep();
    t.row(&[
        "AVG".into(),
        format!("{:+.2}%", ts / rows.len() as f64 * 100.0),
        format!("{:+.2}%", es / rows.len() as f64 * 100.0),
        "+0.26%".into(),
        "+2.03%".into(),
    ]);
    println!();
    println!("Directory accesses (coherent runs):");
    for r in &rows {
        println!(
            "  {:4} {:10} lookups+updates; collapsed double stores: {}",
            r.name, r.coherent.dir_accesses, r.coherent.core.collapsed_stores
        );
    }
}
