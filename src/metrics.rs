//! Run reports: the measurements every experiment consumes.

use crate::machine::{Machine, MultiMachine, SysMode};
use hsim_compiler::CompiledKernel;
use hsim_core::CoreStats;
use hsim_energy::{Activity, EnergyBreakdown, EnergyModel};
use hsim_isa::Phase;

/// Everything measured in one run — the union of what Table 3 and
/// Figures 7–10 need, per core.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Workload name.
    pub name: String,
    /// System mode.
    pub mode: SysMode,
    /// Which core of its machine produced this report (0 on a
    /// single-core machine).
    pub core_id: usize,
    /// Total cycles.
    pub cycles: u64,
    /// Idle cycles the event-horizon scheduler fast-forwarded in bulk
    /// (included in `cycles`; 0 on lockstep runs). The simulated timing
    /// is identical either way — this measures how much dead time the
    /// workload had, and how much host work skipping saved.
    pub skipped_cycles: u64,
    /// Committed instructions.
    pub committed: u64,
    /// Cycles per phase `[other, control, synch, work]`.
    pub phase_cycles: [u64; 4],
    /// Average memory access time over timed loads.
    pub amat: f64,
    /// L1D demand hit ratio (%).
    pub l1d_hit_ratio: f64,
    /// Total L1D accesses (Table 3 accounting).
    pub l1_accesses: u64,
    /// Total L2 accesses.
    pub l2_accesses: u64,
    /// This core's share of shared-L3 accesses.
    pub l3_accesses: u64,
    /// Total LM accesses (CPU + DMA blocks).
    pub lm_accesses: u64,
    /// Directory accesses (lookups + updates; coherent mode only).
    pub dir_accesses: u64,
    /// Arbitrated backside (shared L3/DRAM) requests issued by this core.
    pub bus_requests: u64,
    /// Cycles this core's backside requests spent waiting on their L3
    /// bank port — the multi-core contention signal (0 when
    /// uncontended).
    pub bus_wait_cycles: u64,
    /// Backside requests of this core that found their L3 bank's port
    /// busy (0 when the port is ideal or uncontended).
    pub l3_bank_conflicts: u64,
    /// DRAM lines read on behalf of this core.
    pub dram_reads: u64,
    /// DRAM lines written on behalf of this core.
    pub dram_writes: u64,
    /// This core's DRAM accesses that hit an open row (`flat_dram` runs
    /// report 0 row activity).
    pub dram_row_hits: u64,
    /// This core's DRAM accesses to a bank with no open row.
    pub dram_row_misses: u64,
    /// This core's DRAM accesses that closed another row first.
    pub dram_row_conflicts: u64,
    /// This core's posted DRAM writes that found the write queue full.
    /// Directory-aware attribution: a stall whose drained victim was an
    /// M-intervention write-back is charged to the recalled owner, not
    /// the posting core (see `dram_intervention_drain_stalls`).
    pub dram_queue_stalls: u64,
    /// The subset of this core's `dram_queue_stalls` whose drained
    /// victim was an M-intervention write-back of *this core's* dirty
    /// data (`CoherenceMode::Mesi` only; 0 under `Replicate`).
    pub dram_intervention_drain_stalls: u64,
    /// L3 hits this core scored on shared, directory-tracked lines also
    /// held or brought in by another core (`CoherenceMode::Mesi` only;
    /// 0 under `Replicate`).
    pub coh_shared_hits: u64,
    /// Invalidation messages this core's writes/evictions sent to other
    /// cores' upper levels (Mesi only).
    pub coh_invalidations: u64,
    /// M-state interventions this core's requests triggered (Mesi only).
    pub coh_interventions: u64,
    /// MSHR merges that stalled on a fill lengthened by an intervention
    /// (Mesi only).
    pub coh_intervention_stalls: u64,
    /// Back-invalidations that recalled a *dirty* line out of this
    /// core's L1/L2, each charging the tile-side recall port occupancy
    /// (Mesi only).
    pub coh_dirty_recalls: u64,
    /// Injected transient DRAM read errors recovered by ECC replay on
    /// behalf of this core (0 without a fault plan; timing-only).
    pub ecc_retries: u64,
    /// This core's DMA transfers re-streamed after an injected timeout
    /// (0 without a fault plan).
    pub dma_retries: u64,
    /// Injected directory/bank NACKs this core's contended backside
    /// arbitrations absorbed (0 without a fault plan).
    pub dir_nacks: u64,
    /// This core's fault events that exhausted their retry budget and
    /// escalated (the operation still completed — see
    /// `hsim_mem::FaultEscalation`).
    pub escalations: u64,
    /// Static guarded/total reference counts of the compiled kernel.
    pub guarded_refs: usize,
    /// Static total reference count.
    pub total_refs: usize,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Coherence violations recorded (tracking runs only).
    pub violations: usize,
    /// Full core statistics.
    pub core: CoreStats,
}

impl RunReport {
    /// Collects a report from a finished machine.
    pub fn collect(m: &Machine, ck: &CompiledKernel) -> RunReport {
        let core = m.core.stats.clone();
        let w = &m.world;
        let coherent = matches!(m.cfg.mode, SysMode::HybridCoherent);
        let dir_accesses = match (&w.dir, coherent) {
            (Some(d), true) => d.stats.lookups + d.stats.updates,
            _ => 0,
        };
        let energy = EnergyModel::new().evaluate(&activity(m));
        let backside = w.mem.backside_stats();
        RunReport {
            name: ck.name.clone(),
            mode: m.cfg.mode,
            core_id: w.mem.core_id(),
            cycles: core.cycles,
            skipped_cycles: core.skipped_cycles,
            committed: core.committed,
            phase_cycles: core.phase_cycles,
            amat: core.amat(),
            l1d_hit_ratio: w.mem.l1d.stats.hit_ratio(),
            l1_accesses: w.mem.l1d.stats.total_accesses(),
            l2_accesses: w.mem.l2.stats.total_accesses(),
            l3_accesses: backside.l3.total_accesses(),
            lm_accesses: w.mem.lm_total_accesses(),
            dir_accesses,
            bus_requests: backside.bus_requests,
            bus_wait_cycles: backside.bus_wait_cycles,
            l3_bank_conflicts: backside.bank_conflicts,
            dram_reads: backside.dram.reads,
            dram_writes: backside.dram.writes,
            dram_row_hits: backside.dram.row_hits,
            dram_row_misses: backside.dram.row_misses,
            dram_row_conflicts: backside.dram.row_conflicts,
            dram_queue_stalls: backside.dram.queue_stalls,
            dram_intervention_drain_stalls: backside.dram.intervention_drain_stalls,
            coh_shared_hits: backside.coh.shared_hits,
            coh_invalidations: backside.coh.invalidations_sent,
            coh_interventions: backside.coh.interventions,
            coh_intervention_stalls: w.mem.mshr.stats.intervention_stalls,
            coh_dirty_recalls: backside.coh.dirty_recalls,
            ecc_retries: backside.dram.ecc_retries,
            dma_retries: w.mem.dmac.stats.retries,
            dir_nacks: backside.coh.dir_nacks,
            escalations: w.mem.dmac.stats.escalations,
            guarded_refs: ck.guarded_refs(),
            total_refs: ck.total_refs(),
            energy,
            violations: m.violations(),
            core,
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.committed as f64 / self.cycles.max(1) as f64
    }

    /// Fraction of simulated cycles the scheduler skipped (0.0 on
    /// lockstep runs; close to 1.0 for DMA- or DRAM-bound workloads).
    pub fn skipped_fraction(&self) -> f64 {
        self.skipped_cycles as f64 / self.cycles.max(1) as f64
    }

    /// This core's DRAM row-buffer hit rate in percent over its
    /// row-classified accesses (100.0 when there were none, e.g. under
    /// `flat_dram`).
    pub fn dram_row_hit_rate(&self) -> f64 {
        let n = self.dram_row_hits + self.dram_row_misses + self.dram_row_conflicts;
        if n == 0 {
            return 100.0;
        }
        100.0 * self.dram_row_hits as f64 / n as f64
    }

    /// Cycles in a phase.
    pub fn phase(&self, p: Phase) -> u64 {
        self.phase_cycles[hsim_core::stats::phase_index(p)]
    }

    /// Total on-chip energy (nJ).
    pub fn energy_total(&self) -> f64 {
        self.energy.total()
    }
}

/// The measurements of one N-core machine run: one [`RunReport`] per
/// core plus machine-level aggregates.
#[derive(Clone, Debug)]
pub struct MultiRunReport {
    /// Per-core reports, indexed by core id.
    pub per_core: Vec<RunReport>,
    /// Parallel makespan: the cycle the last core halted.
    pub makespan: u64,
    /// Shared-marked arrays that fell back to per-core replication
    /// because the shards' layouts diverged (uneven weighted shards):
    /// under `CoherenceMode::Mesi` those arrays are *not* served from
    /// shared lines. 0 on evenly-sharded machines.
    pub replication_fallbacks: u64,
}

impl MultiRunReport {
    /// Collects per-core reports from a finished multi-core machine.
    /// `cks[i]` must be the kernel core `i` executed.
    pub fn collect(m: &MultiMachine, cks: &[CompiledKernel]) -> MultiRunReport {
        assert_eq!(m.tiles.len(), cks.len(), "one compiled kernel per core");
        let per_core: Vec<RunReport> = m
            .tiles
            .iter()
            .zip(cks)
            .map(|(tile, ck)| RunReport::collect(tile, ck))
            .collect();
        let makespan = per_core.iter().map(|r| r.cycles).max().unwrap_or(0);
        MultiRunReport {
            per_core,
            makespan,
            replication_fallbacks: m.replication_fallbacks(),
        }
    }

    /// The per-tile system modes, indexed by core id — equal on a
    /// homogeneous machine, mixed on a heterogeneous one.
    pub fn tile_modes(&self) -> Vec<SysMode> {
        self.per_core.iter().map(|r| r.mode).collect()
    }

    /// Whether the tiles run more than one `SysMode` (a mixed
    /// hybrid/cache-based chip).
    pub fn is_mixed_chip(&self) -> bool {
        self.per_core
            .iter()
            .any(|r| r.mode != self.per_core[0].mode)
    }

    /// A compact per-mode tile census, e.g. `"2xHybrid coherent + 2xCache-based"`.
    pub fn mode_summary(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for mode in SysMode::ALL {
            let n = self.per_core.iter().filter(|r| r.mode == mode).count();
            if n > 0 {
                parts.push(format!("{}x{}", n, mode.name()));
            }
        }
        parts.join(" + ")
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.per_core.len()
    }

    /// Total backside-port wait cycles over all cores — the headline
    /// shared-L3/DRAM contention figure.
    pub fn total_bus_wait_cycles(&self) -> u64 {
        self.per_core.iter().map(|r| r.bus_wait_cycles).sum()
    }

    /// Total cycles the event-horizon scheduler skipped over all cores
    /// (0 on lockstep runs).
    pub fn total_skipped_cycles(&self) -> u64 {
        self.per_core.iter().map(|r| r.skipped_cycles).sum()
    }

    /// Total L3 bank-port conflicts over all cores — the banked-backside
    /// contention headline next to [`Self::total_bus_wait_cycles`].
    pub fn total_bank_conflicts(&self) -> u64 {
        self.per_core.iter().map(|r| r.l3_bank_conflicts).sum()
    }

    /// Total DRAM line reads over all cores (the replication-traffic
    /// headline the MESI directory reduces on shared tables).
    pub fn total_dram_reads(&self) -> u64 {
        self.per_core.iter().map(|r| r.dram_reads).sum()
    }

    /// Total shared-line L3 hits over all cores (0 under `Replicate`).
    pub fn total_shared_hits(&self) -> u64 {
        self.per_core.iter().map(|r| r.coh_shared_hits).sum()
    }

    /// Total invalidation messages over all cores (0 under `Replicate`).
    pub fn total_invalidations(&self) -> u64 {
        self.per_core.iter().map(|r| r.coh_invalidations).sum()
    }

    /// Total M-state interventions over all cores (0 under `Replicate`).
    pub fn total_interventions(&self) -> u64 {
        self.per_core.iter().map(|r| r.coh_interventions).sum()
    }

    /// Total dirty upper-level recalls over all cores (0 under
    /// `Replicate`).
    pub fn total_dirty_recalls(&self) -> u64 {
        self.per_core.iter().map(|r| r.coh_dirty_recalls).sum()
    }

    /// Total queued-drain stalls serviced for intervention write-backs
    /// over all cores (0 under `Replicate`).
    pub fn total_intervention_drain_stalls(&self) -> u64 {
        self.per_core
            .iter()
            .map(|r| r.dram_intervention_drain_stalls)
            .sum()
    }

    /// Machine-wide DRAM row-buffer hit rate in percent over all cores'
    /// row-classified accesses (100.0 when there were none).
    pub fn dram_row_hit_rate(&self) -> f64 {
        let hits: u64 = self.per_core.iter().map(|r| r.dram_row_hits).sum();
        let total: u64 = self
            .per_core
            .iter()
            .map(|r| r.dram_row_hits + r.dram_row_misses + r.dram_row_conflicts)
            .sum();
        if total == 0 {
            return 100.0;
        }
        100.0 * hits as f64 / total as f64
    }

    /// Total injected-and-recovered DRAM ECC retries over all cores (0
    /// without a fault plan).
    pub fn total_ecc_retries(&self) -> u64 {
        self.per_core.iter().map(|r| r.ecc_retries).sum()
    }

    /// Total DMA timeout retries over all cores (0 without a fault
    /// plan).
    pub fn total_dma_retries(&self) -> u64 {
        self.per_core.iter().map(|r| r.dma_retries).sum()
    }

    /// Total directory/bank NACKs over all cores (0 without a fault
    /// plan).
    pub fn total_dir_nacks(&self) -> u64 {
        self.per_core.iter().map(|r| r.dir_nacks).sum()
    }

    /// Total retry-budget escalations over all cores (0 without a fault
    /// plan).
    pub fn total_escalations(&self) -> u64 {
        self.per_core.iter().map(|r| r.escalations).sum()
    }

    /// Total committed instructions over all cores.
    pub fn total_committed(&self) -> u64 {
        self.per_core.iter().map(|r| r.committed).sum()
    }

    /// Total coherence violations over all cores.
    pub fn total_violations(&self) -> usize {
        self.per_core.iter().map(|r| r.violations).sum()
    }

    /// Aggregate instructions per cycle of the machine (total committed
    /// over the makespan).
    pub fn aggregate_ipc(&self) -> f64 {
        self.total_committed() as f64 / self.makespan.max(1) as f64
    }
}

/// Nominal tile clock used to convert simulated cycles into wall-clock
/// service figures (requests/sec) in the request-serving reports. The
/// simulator itself is clockless — everything is cycles — so this is a
/// presentation constant, chosen to match the class of chip the paper
/// evaluates; using one fixed constant keeps every requests/sec figure
/// comparable across runs and exactly reproducible (integer math only).
pub const NOMINAL_CLOCK_HZ: u64 = 2_000_000_000;

/// A power-of-two-bucketed latency histogram: cheap to record into
/// (one shift per sample), mergeable across cores, and with
/// **integer-only** percentile interpolation so that reports rendered
/// from equal histograms are byte-identical across hosts and runs —
/// the property the open-loop determinism proptest pins.
///
/// Bucket `b` (1‥63) holds samples in `[2^(b-1), 2^b)`; bucket 0 holds
/// the value 0. Within a bucket, percentiles interpolate linearly by
/// rank, clamped to the observed `min`/`max`, so exact small counts
/// (the common case for per-request latencies) stay tight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one latency sample (cycles).
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one (e.g. per-core partials).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, n) in self.buckets.iter_mut().zip(other.buckets) {
            *b += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (cycles).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 on an empty histogram).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 on an empty histogram).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, rounded to the nearest cycle (0 on an empty
    /// histogram). Integer math — deterministic across hosts.
    pub fn mean(&self) -> u64 {
        (self.sum + self.count / 2)
            .checked_div(self.count)
            .unwrap_or(0)
    }

    /// The latency at the given permille rank (`500` → p50, `950` →
    /// p95, `990` → p99), interpolated within its power-of-two bucket
    /// by rank and clamped to the observed extremes. Integer-only:
    /// equal histograms give equal percentiles on every host.
    pub fn percentile_permille(&self, permille: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let need = (permille * self.count).div_ceil(1000).max(1);
        let mut before = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if before + n >= need {
                // Sample `need` falls in bucket `b`, spanning
                // [2^(b-1), 2^b) (or exactly {0} for b == 0).
                let lo = if b == 0 { 0 } else { 1u64 << (b - 1) };
                let width = if b == 0 { 1 } else { 1u64 << (b - 1) };
                let rank_in = need - before - 1;
                let v = lo + (rank_in * width) / n;
                return v.clamp(self.min, self.max);
            }
            before += n;
        }
        self.max
    }

    /// Median latency (cycles).
    pub fn p50(&self) -> u64 {
        self.percentile_permille(500)
    }

    /// 95th-percentile latency (cycles).
    pub fn p95(&self) -> u64 {
        self.percentile_permille(950)
    }

    /// 99th-percentile latency (cycles).
    pub fn p99(&self) -> u64 {
        self.percentile_permille(990)
    }
}

/// The outcome of one request-serving run: the open-loop queueing
/// measurements layered over the underlying machine run. Produced by
/// `experiments::request_serving`; rendered deterministically (integer
/// math only) so equal seeds give byte-identical reports.
#[derive(Clone, Debug)]
pub struct RequestServingReport {
    /// Workload name.
    pub name: String,
    /// System mode of the serving tiles.
    pub mode: SysMode,
    /// Number of serving cores.
    pub cores: usize,
    /// Arrival-process seed (drives the open-loop inter-arrival draws).
    pub seed: u64,
    /// Requests served.
    pub requests: u64,
    /// Per-request service time in cycles, as measured on the simulated
    /// machine (core busy time per request, contention included).
    pub service_cycles: u64,
    /// Mean offered inter-arrival gap in cycles (open loop: arrivals
    /// don't wait for completions).
    pub mean_interarrival: u64,
    /// First arrival to last completion, in cycles.
    pub span_cycles: u64,
    /// Sojourn-time histogram (arrival → completion), all requests.
    pub latency: LatencyHistogram,
}

impl RequestServingReport {
    /// Served throughput in requests per second at the
    /// [`NOMINAL_CLOCK_HZ`] presentation clock (integer math).
    pub fn requests_per_sec(&self) -> u64 {
        if self.span_cycles == 0 {
            return 0;
        }
        // requests * hz / span, reordered to avoid overflow for any
        // realistic span (requests and hz both fit well inside u128).
        ((self.requests as u128 * NOMINAL_CLOCK_HZ as u128) / self.span_cycles as u128) as u64
    }

    /// Offered load in percent of capacity: service time over
    /// inter-arrival gap, per core (integer permille → one decimal).
    pub fn offered_load_permille(&self) -> u64 {
        if self.mean_interarrival == 0 || self.cores == 0 {
            return 0;
        }
        self.service_cycles * 1000 / (self.mean_interarrival * self.cores as u64)
    }

    /// Renders the report as a deterministic multi-line string: only
    /// integers appear, so equal runs are **byte-identical** (the
    /// property `tests/comm_workloads.rs` pins across seeds).
    pub fn render(&self) -> String {
        format!(
            "request-serving {name} mode={mode} cores={cores} seed={seed}\n\
             requests={req} service_cycles={svc} mean_interarrival={gap} span_cycles={span}\n\
             latency_cycles p50={p50} p95={p95} p99={p99} mean={mean} min={min} max={max}\n\
             throughput={rps} req/s @{ghz}GHz load={load}permille\n",
            name = self.name,
            mode = self.mode.name(),
            cores = self.cores,
            seed = self.seed,
            req = self.requests,
            svc = self.service_cycles,
            gap = self.mean_interarrival,
            span = self.span_cycles,
            p50 = self.latency.p50(),
            p95 = self.latency.p95(),
            p99 = self.latency.p99(),
            mean = self.latency.mean(),
            min = self.latency.min(),
            max = self.latency.max(),
            rps = self.requests_per_sec(),
            ghz = NOMINAL_CLOCK_HZ / 1_000_000_000,
            load = self.offered_load_permille(),
        )
    }
}

/// Converts a finished machine's counters into the energy model's
/// activity vector. Shared-L3 and DRAM activity is this core's share of
/// the backside, so per-core energies of a multi-core machine partition
/// the chip total.
pub fn activity(m: &Machine) -> Activity {
    let c = &m.core.stats;
    let w = &m.world;
    let mem = &w.mem;
    let coherent = matches!(m.cfg.mode, SysMode::HybridCoherent);
    let (dir_lookups, dir_updates) = match (&w.dir, coherent) {
        (Some(d), true) => (d.stats.lookups, d.stats.updates),
        _ => (0, 0),
    };
    let line = mem.cfg.l1d.line_bytes;
    let lm = mem.lm.as_ref();
    let dma = &mem.dmac.stats;
    let backside = mem.backside_stats();
    let bus_lines = mem.l1d.stats.fills
        + mem.l1i.stats.fills
        + mem.l2.stats.fills
        + backside.l3.fills
        + mem.l1d.stats.writebacks_out
        + mem.l2.stats.writebacks_out
        + backside.l3.writebacks_out;
    Activity {
        cycles: c.cycles,
        fetched: c.fetched,
        dispatched: c.dispatched,
        issued: c.issued,
        replayed: c.replay_issues,
        committed: c.committed,
        fp_ops: c.fp_ops,
        memops: c.loads + c.stores,
        bpred_events: m.core.bp.lookups + m.core.bp.updates,
        btb_lookups: m.core.btb.lookups,
        l1_accesses: mem.l1d.stats.total_accesses() + mem.l1i.stats.total_accesses(),
        l2_accesses: mem.l2.stats.total_accesses(),
        l3_accesses: backside.l3.total_accesses(),
        bus_lines,
        lm_accesses: lm.map(|l| l.stats.cpu_accesses()).unwrap_or(0),
        lm_dma_blocks: lm
            .map(|l| (l.stats.dma_bytes_in + l.stats.dma_bytes_out).div_ceil(line))
            .unwrap_or(0),
        tlb_lookups: mem.tlb.lookups(),
        prefetch_obs: mem.prefetcher.stats.observations,
        dir_lookups,
        dir_updates,
        dma_blocks: (dma.bytes_get + dma.bytes_put).div_ceil(line),
        dram_lines: backside.dram.reads + backside.dram.writes,
        has_lm: lm.is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::LatencyHistogram;

    #[test]
    fn histogram_percentiles_are_ordered_and_clamped() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= h.max());
        assert!(p50 >= h.min());
        // p50 of 1..=1000 must land in the 512-element bucket
        // containing the true median.
        assert!((256..1024).contains(&p50), "{p50}");
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in [3u64, 17, 100, 255, 256, 4096] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 2, 9000, 77] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.p99(), 0);
    }
}
